/**
 * @file
 * Contention-anomaly detection (paper Section 6, "detect and stop
 * ongoing side-channel attacks" after CloudRadar / Hunger et al.).
 *
 * The provider monitors per-host contention bursts on rarely-used
 * shared resources (the hardware RNG). Co-location verification
 * necessarily hammers that resource, so a sliding-window burst counter
 * flags hosts under test — forcing the attacker to slow down or risk
 * exposure.
 */

#ifndef EAAO_DEFENSE_DETECTOR_HPP
#define EAAO_DEFENSE_DETECTOR_HPP

#include <cstdint>
#include <deque>
#include <set>
#include <unordered_map>
#include <vector>

#include "faas/types.hpp"
#include "hw/host.hpp"
#include "sim/time.hpp"

namespace eaao::defense {

/** Tuning of the provider-side contention detector. */
struct DetectorConfig
{
    /** Sliding window length. */
    sim::Duration window = sim::Duration::minutes(10);

    /**
     * Bursts within the window needed to flag a host. A burst is one
     * covert-channel test interval during which >= 2 parties pressured
     * the RNG simultaneously.
     */
    std::uint32_t burst_threshold = 20;

    /** Background bursts per host per hour (benign noise floor). */
    double background_bursts_per_hour = 0.5;
};

/** One recorded contention burst. */
struct BurstEvent
{
    sim::SimTime when;
    hw::HostId host;
    std::vector<faas::AccountId> accounts; //!< parties involved
    std::uint32_t events = 1;              //!< contention intervals
};

/**
 * Sliding-window burst detector over the whole fleet.
 */
class ContentionDetector
{
  public:
    explicit ContentionDetector(const DetectorConfig &cfg = {});

    /**
     * Record contention on @p host at @p when. @p events is the number
     * of distinct contention intervals observed (a covert-channel test
     * contends once per trial).
     */
    void recordBurst(sim::SimTime when, hw::HostId host,
                     const std::vector<faas::AccountId> &accounts,
                     std::uint32_t events = 1);

    /** Hosts currently over the threshold (as of @p now). */
    std::vector<hw::HostId> flaggedHosts(sim::SimTime now);

    /**
     * Accounts implicated on currently-flagged hosts — the provider's
     * abuse-team shortlist.
     */
    std::set<faas::AccountId> implicatedAccounts(sim::SimTime now);

    /** Total bursts ever recorded. */
    std::uint64_t totalBursts() const { return total_; }

    /** Configuration in force. */
    const DetectorConfig &config() const { return cfg_; }

  private:
    /** Drop events older than the window. */
    void expire(sim::SimTime now);

    DetectorConfig cfg_;
    std::deque<BurstEvent> events_;
    std::unordered_map<hw::HostId, std::uint32_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace eaao::defense

#endif // EAAO_DEFENSE_DETECTOR_HPP
