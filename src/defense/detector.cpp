/**
 * @file
 * Implementation of the contention-anomaly detector.
 */

#include "defense/detector.hpp"

#include <algorithm>

namespace eaao::defense {

ContentionDetector::ContentionDetector(const DetectorConfig &cfg)
    : cfg_(cfg)
{
}

void
ContentionDetector::recordBurst(sim::SimTime when, hw::HostId host,
                                const std::vector<faas::AccountId>
                                    &accounts,
                                std::uint32_t events)
{
    expire(when);
    events_.push_back(BurstEvent{when, host, accounts, events});
    counts_[host] += events;
    total_ += events;
}

void
ContentionDetector::expire(sim::SimTime now)
{
    const sim::SimTime cutoff = now - cfg_.window;
    while (!events_.empty() && events_.front().when < cutoff) {
        auto it = counts_.find(events_.front().host);
        if (it != counts_.end()) {
            it->second -= std::min(it->second, events_.front().events);
            if (it->second == 0)
                counts_.erase(it);
        }
        events_.pop_front();
    }
}

std::vector<hw::HostId>
ContentionDetector::flaggedHosts(sim::SimTime now)
{
    expire(now);
    std::vector<hw::HostId> flagged;
    for (const auto &[host, count] : counts_) {
        if (count >= cfg_.burst_threshold)
            flagged.push_back(host);
    }
    std::sort(flagged.begin(), flagged.end());
    return flagged;
}

std::set<faas::AccountId>
ContentionDetector::implicatedAccounts(sim::SimTime now)
{
    const auto flagged = flaggedHosts(now);
    std::set<hw::HostId> flagged_set(flagged.begin(), flagged.end());
    std::set<faas::AccountId> accounts;
    for (const auto &event : events_) {
        if (flagged_set.count(event.host) == 0)
            continue;
        accounts.insert(event.accounts.begin(), event.accounts.end());
    }
    return accounts;
}

} // namespace eaao::defense
