/**
 * @file
 * TSC-based mitigations (paper Section 6).
 *
 * Both fingerprints exploit the fact that the TSC value (Gen 1) or its
 * frequency (Gen 2) is shared between host and untrusted container.
 * The countermeasures mask one or both:
 *
 *  - Gen 1 trap-and-emulate: the host disables rdtsc/rdtscp in Ring 3
 *    (CR4.TSD); the kernel emulates them against a per-container
 *    virtual clock. Fingerprinting breaks (the derived "boot time" is
 *    the container's start), but every high-precision timer access now
 *    costs a kernel round-trip.
 *  - Gen 2 hardware TSC offsetting + scaling: the VM sees a counter
 *    that starts at VM boot AND ticks at exactly the advertised
 *    nominal rate; the kernel-refined frequency exported to the guest
 *    is the nominal value. No overhead, but requires hardware support.
 */

#ifndef EAAO_DEFENSE_TSC_DEFENSE_HPP
#define EAAO_DEFENSE_TSC_DEFENSE_HPP

#include "sim/time.hpp"

namespace eaao::defense {

/** Gen 1 (container) TSC policy. */
enum class Gen1TscPolicy {
    Native,      //!< rdtsc reads the host counter (default; exploitable)
    TrapEmulate, //!< CR4.TSD: kernel emulates a per-container clock
};

/** Gen 2 (VM) TSC policy. */
enum class Gen2TscPolicy {
    OffsetOnly,    //!< TSC offsetting (default; frequency leaks)
    OffsetAndScale //!< offsetting + scaling: frequency masked too
};

/** Platform-wide TSC defense configuration. */
struct TscDefenseConfig
{
    Gen1TscPolicy gen1 = Gen1TscPolicy::Native;
    Gen2TscPolicy gen2 = Gen2TscPolicy::OffsetOnly;

    /**
     * Also virtualize cpuid for Gen 1 containers (hide the host CPU
     * model). Independently useful: the model string both narrows
     * fingerprint search and feeds the reported-frequency method.
     */
    bool gen1_mask_cpuid = false;

    /** Native userspace rdtsc + clock_gettime (vDSO) cost. */
    sim::Duration native_timer_cost = sim::Duration::nanos(25);

    /** Cost of a trapped-and-emulated timer access (kernel entry). */
    sim::Duration emulated_timer_cost = sim::Duration::nanos(1200);

    /** Effective timer-access cost for a Gen 1 container. */
    sim::Duration
    gen1TimerCost() const
    {
        return gen1 == Gen1TscPolicy::TrapEmulate ? emulated_timer_cost
                                                  : native_timer_cost;
    }
};

/**
 * First-order workload-impact model for slower timer accesses.
 *
 * Applications differ wildly in timer intensity; the end-to-end
 * overhead of trap-and-emulate is (timer calls per op) x (extra cost
 * per call) relative to the op's service time. The profiles below
 * follow the application classes Section 6 calls out.
 */
struct WorkloadProfile
{
    const char *name;
    double timer_calls_per_op;
    sim::Duration base_op_latency;
};

/** Fractional latency increase for @p workload under @p cfg. */
double timerOverheadFraction(const TscDefenseConfig &cfg,
                             const WorkloadProfile &workload);

/** The four timer-sensitive application classes of Section 6. */
const WorkloadProfile *timerSensitiveWorkloads(std::size_t &count);

} // namespace eaao::defense

#endif // EAAO_DEFENSE_TSC_DEFENSE_HPP
