/**
 * @file
 * Implementation of the TSC-defense overhead model.
 */

#include "defense/tsc_defense.hpp"

namespace eaao::defense {

double
timerOverheadFraction(const TscDefenseConfig &cfg,
                      const WorkloadProfile &workload)
{
    const double extra_per_call_s =
        (cfg.gen1TimerCost() - cfg.native_timer_cost).secondsF();
    const double extra_s =
        workload.timer_calls_per_op * extra_per_call_s;
    return extra_s / workload.base_op_latency.secondsF();
}

const WorkloadProfile *
timerSensitiveWorkloads(std::size_t &count)
{
    // Profiles calibrated so the database row lands near the paper's
    // Cassandra example (~43% write-latency impact of slow clocks).
    static const WorkloadProfile kProfiles[] = {
        // real-time event processing: a timestamp per event, tiny ops
        {"real-time event stream", 2.0, sim::Duration::micros(8)},
        // databases: MVCC timestamps, latency histograms, commit logs
        {"database write path", 30.0, sim::Duration::micros(80)},
        // distributed systems: per-RPC clocks for sync / tracing
        {"distributed RPC layer", 12.0, sim::Duration::micros(120)},
        // logging/journaling-heavy services
        {"intensive logging", 50.0, sim::Duration::micros(400)},
        // control: a web app that rarely reads the clock
        {"typical web handler", 4.0, sim::Duration::millis(2)},
    };
    count = sizeof(kProfiles) / sizeof(kProfiles[0]);
    return kProfiles;
}

} // namespace eaao::defense
