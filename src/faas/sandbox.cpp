/**
 * @file
 * Implementation of the sandboxed host view.
 */

#include "faas/sandbox.hpp"

#include <cmath>

#include "faas/platform.hpp"
#include "support/logging.hpp"

namespace eaao::faas {

SandboxView::SandboxView(Platform &platform, InstanceId id)
    : platform_(&platform), id_(id)
{
}

ExecEnv
SandboxView::env() const
{
    return platform_->instanceInfo(id_).env;
}

std::string
SandboxView::cpuModelName() const
{
    const InstanceRecord &inst = platform_->instanceInfo(id_);
    if (inst.env == ExecEnv::Gen2) {
        // The hypervisor traps cpuid; the guest sees a virtualized stub
        // that reveals neither the host model nor its base frequency.
        return "Virtual CPU";
    }
    if (platform_->config().tsc_defense.gen1_mask_cpuid)
        return "Virtual CPU";
    return platform_->fleet().host(inst.host).modelName();
}

TimestampSample
SandboxView::readTimestamp()
{
    const InstanceRecord &inst = platform_->instanceInfo(id_);
    EAAO_ASSERT(inst.state != InstanceState::Terminated,
                "reading a terminated instance");
    const hw::HostMachine &host = platform_->fleet().host(inst.host);
    sim::Rng &rng = platform_->measurementRng();
    const sim::SimTime now = platform_->now();

    const auto &shield = platform_->config().tsc_defense;

    TimestampSample sample;
    const bool emulated =
        (inst.env == ExecEnv::Gen1 &&
         shield.gen1 == defense::Gen1TscPolicy::TrapEmulate) ||
        (inst.env == ExecEnv::Gen2 &&
         shield.gen2 == defense::Gen2TscPolicy::OffsetAndScale);
    if (emulated) {
        // Trap-and-emulate (Gen 1) or offset+scale (Gen 2): the
        // container observes a counter that started at its own launch
        // and ticks at exactly the advertised nominal rate — neither
        // the host boot time nor the true frequency leaks. The virtual
        // epoch is arbitrary per container (sandbox setup, queueing,
        // image pulls), modeled as a per-instance skew of up to an
        // hour, so co-located instances derive unrelated "boot times".
        const double skew_s =
            static_cast<double>(sim::mix64(inst.id) %
                                3600000000000ULL) *
            1e-9;
        const double guest_uptime_s =
            (now - inst.created_at).secondsF() + skew_s;
        const double rate = host.tsc().nominalHz();
        sample.tsc = static_cast<std::uint64_t>(
            std::llround(guest_uptime_s * rate));
    } else {
        sample.tsc = host.tsc().read(now, rng);
        if (inst.env == ExecEnv::Gen2) {
            // TSC offsetting: subtract the snapshot taken at VM boot.
            sample.tsc = sample.tsc >= inst.vm_tsc_offset
                             ? sample.tsc - inst.vm_tsc_offset
                             : 0;
        }
    }
    sample.wall = host.sampleWallClock(now, rng);
    return sample;
}

std::vector<double>
SandboxView::measureTscFrequency(sim::Duration interval,
                                 std::uint32_t reps)
{
    EAAO_ASSERT(interval.ns() > 0, "non-positive measurement interval");
    const InstanceRecord &inst = platform_->instanceInfo(id_);
    const hw::HostMachine &host = platform_->fleet().host(inst.host);
    sim::Rng &rng = platform_->measurementRng();

    // Each repetition derives f = delta_tsc / delta_Twall. On clean
    // hosts the wall clock is computed from the same TSC (vDSO), so the
    // pairing delays cancel and the estimate is tight; on noisy-timer
    // hosts NTP rate steering / a non-TSC clocksource scatters it by
    // 10 kHz - MHz (the paper's 58-of-586 problematic hosts).
    const auto &shield = platform_->config().tsc_defense;
    const bool emulated =
        (inst.env == ExecEnv::Gen1 &&
         shield.gen1 == defense::Gen1TscPolicy::TrapEmulate) ||
        (inst.env == ExecEnv::Gen2 &&
         shield.gen2 == defense::Gen2TscPolicy::OffsetAndScale);
    // An emulated/scaled counter ticks at exactly the nominal rate, so
    // the measurement converges on the (host-unspecific) nominal value.
    const double rate =
        emulated ? host.tsc().nominalHz() : host.tsc().trueHz();

    std::vector<double> samples;
    samples.reserve(reps);
    for (std::uint32_t r = 0; r < reps; ++r) {
        platform_->advance(interval);
        samples.push_back(rate +
                          rng.normal(0.0, host.freqMeasSigmaHz()));
    }
    return samples;
}

double
SandboxView::refinedTscFrequencyHz() const
{
    const InstanceRecord &inst = platform_->instanceInfo(id_);
    EAAO_ASSERT(inst.env == ExecEnv::Gen2,
                "refined TSC frequency is only readable inside a Gen 2 "
                "guest (needs in-guest kernel access)");
    const auto &shield = platform_->config().tsc_defense;
    if (shield.gen2 == defense::Gen2TscPolicy::OffsetAndScale) {
        // With hardware TSC scaling the guest counter ticks at exactly
        // the advertised rate; the guest kernel refines to nominal.
        return platform_->fleet().host(inst.host).tsc().nominalHz();
    }
    return platform_->fleet().host(inst.host).tsc().refinedHz();
}

sim::Duration
SandboxView::timerAccessCost() const
{
    const InstanceRecord &inst = platform_->instanceInfo(id_);
    const auto &shield = platform_->config().tsc_defense;
    if (inst.env == ExecEnv::Gen1)
        return shield.gen1TimerCost();
    // Gen 2: hardware-assisted virtualization keeps rdtsc unprivileged.
    return shield.native_timer_cost;
}

} // namespace eaao::faas
