/**
 * @file
 * Platform facade: one simulated FaaS data center.
 *
 * Bundles the event queue, the physical fleet, the orchestrator and the
 * RNG streams, and exposes both the attacker-visible surface (deploy,
 * connect, sandbox) and an explicitly-labeled oracle surface that tests
 * and benches use for ground truth.
 */

#ifndef EAAO_FAAS_PLATFORM_HPP
#define EAAO_FAAS_PLATFORM_HPP

#include <memory>
#include <optional>
#include <vector>

#include "defense/tsc_defense.hpp"
#include "faas/fleet.hpp"
#include "faas/orchestrator.hpp"
#include "faas/pricing.hpp"
#include "faas/sandbox.hpp"
#include "faas/types.hpp"
#include "obs/observer.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace eaao::faas {

/** Everything needed to stand up one data center. */
struct PlatformConfig
{
    DataCenterProfile profile = DataCenterProfile::usEast1();
    OrchestratorConfig orchestrator;
    hw::TscConfig tsc;
    hw::TimingNoiseConfig timing;
    PricingModel pricing;
    defense::TscDefenseConfig tsc_defense;
    std::uint64_t seed = 1;

    /** Simulation epoch ("now" when the platform comes up). */
    sim::SimTime epoch = sim::SimTime::fromNanos(0);

    /**
     * Observability handle (see src/obs/). Default-null: no tracing,
     * no metrics, near-zero overhead. In trial campaigns, wire
     * exp::TrialContext::obs through here so each trial records into
     * its own slot.
     */
    obs::Observer obs;
};

/**
 * One simulated data center running a Cloud Run-style FaaS platform.
 */
class Platform
{
  public:
    explicit Platform(const PlatformConfig &cfg);

    Platform(const Platform &) = delete;
    Platform &operator=(const Platform &) = delete;

    /** @name Attacker/tenant-visible surface
     *  @{ */

    /** Register an account. @p shard pins the home shard (tests only);
     *  @p quota_per_service models the new-account instance cap. */
    AccountId createAccount(std::optional<std::uint32_t> shard = {},
                            std::uint32_t quota_per_service = 1000);

    /** Provider-side quota promotion after sustained usage. */
    void setAccountQuota(AccountId account,
                         std::uint32_t quota_per_service);

    /** Deploy a service. */
    ServiceId deployService(AccountId account, ExecEnv env,
                            ContainerSize size = sizes::kSmall);

    /** Redeploy with a freshly built image. */
    void redeployService(ServiceId service);

    /**
     * Establish @p n concurrent connections: the platform autoscales
     * the service to n active instances (reusing idle ones first).
     * @return ids of the instances now holding the connections.
     */
    std::vector<InstanceId> connect(ServiceId service, std::uint32_t n);

    /** Drop all connections; instances go idle and will be reaped. */
    void disconnectAll(ServiceId service);

    /** Obtain the sandboxed view inside an instance. */
    SandboxView sandbox(InstanceId id);

    /** Current virtual time. */
    sim::SimTime now() const { return eq_.now(); }

    /** Advance virtual time, firing platform events (reaping etc.). */
    void advance(sim::Duration d);

    /** Total spend of an account so far, USD. */
    double accountSpendUsd(AccountId id) const;

    /** @} */

    /** @name Oracle surface (ground truth for validation only)
     *  @{ */

    /** Physical host an instance runs on. */
    hw::HostId oracleHostOf(InstanceId id) const;

    /** Instance record (state, billing, placement). */
    const InstanceRecord &instanceInfo(InstanceId id) const;

    /** When an instance received SIGTERM, if it has. */
    std::optional<sim::SimTime> terminatedAt(InstanceId id) const;

    /** Terminate-and-replace an instance (models platform churn). */
    InstanceId restartInstance(InstanceId id);

    /** @} */

    /** Physical fleet (covert-channel pressure bookkeeping needs it). */
    Fleet &fleet() { return *fleet_; }
    const Fleet &fleet() const { return *fleet_; }

    /** Data-center profile. */
    const DataCenterProfile &profile() const { return cfg_.profile; }

    /** Full platform configuration (sandboxes consult the defenses). */
    const PlatformConfig &config() const { return cfg_; }

    /** Orchestrator (experiment drivers inspect its records). */
    Orchestrator &orchestrator() { return *orch_; }
    const Orchestrator &orchestrator() const { return *orch_; }

    /** Event queue. */
    sim::EventQueue &clock() { return eq_; }

    /** Stream for measurement noise draws (sandbox operations). */
    sim::Rng &measurementRng() { return meas_rng_; }

    /** Observability handle (null members when recording is off). */
    obs::Observer obs() const { return cfg_.obs; }

  private:
    PlatformConfig cfg_;
    sim::EventQueue eq_;
    sim::Rng root_rng_;
    sim::Rng meas_rng_;
    std::unique_ptr<Fleet> fleet_;
    std::unique_ptr<Orchestrator> orch_;
};

} // namespace eaao::faas

#endif // EAAO_FAAS_PLATFORM_HPP
