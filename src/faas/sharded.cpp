/**
 * @file
 * Implementation of the sharded platform (see sharded.hpp and
 * docs/sharding.md for the protocol).
 */

#include "faas/sharded.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

#include "obs/metrics.hpp"
#include "support/logging.hpp"

namespace eaao::faas {

namespace {

std::string
fmtUsd(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

ArrivalSpec
openLoopSpec(const ShardOp &op)
{
    ArrivalSpec spec;
    spec.kind =
        static_cast<ArrivalKind>(op.a % 3); // Poisson/Diurnal/Pareto
    spec.rate_rps = op.rate;
    spec.burst_factor = std::max(1.0, op.burst);
    spec.mean_service_time = op.dur;
    spec.span = op.span;
    spec.churn_every = op.gap;
    return spec;
}

ShardedPlatform::ShardedPlatform(const ShardedConfig &cfg,
                                 obs::TrialSet *obs_set)
    : cfg_(cfg), obs_set_(obs_set), final_now_(cfg.epoch)
{
    EAAO_ASSERT(cfg_.window.ns() > 0, "window must be positive");
    sim::Rng root(cfg_.seed);
    sim::Rng fleet_rng = root.fork(0x464c4545ULL); // "FLEE"
    fleet_ = std::make_unique<Fleet>(cfg_.profile, cfg_.tsc, cfg_.timing,
                                     cfg_.epoch, fleet_rng);
    committed_.assign(fleet_->size());

    const std::uint32_t lanes = std::min<std::uint32_t>(
        std::max(1u, cfg_.max_lanes), fleet_->shardCount());
    if (obs_set != nullptr)
        obs_set->prepare(lanes);
    lanes_.reserve(lanes);
    for (std::uint32_t i = 0; i < lanes; ++i) {
        auto lane = std::make_unique<Lane>(cfg_.epoch);
        // Per-lane root stream, forked by the *fixed* lane index: the
        // draw sequence is a lane property, never a grouping property.
        lane->orch = std::make_unique<Orchestrator>(
            *fleet_, lane->eq, cfg_.orchestrator, cfg_.profile,
            cfg_.pricing, root.fork(0x53480000ULL + i), // "SH" + lane
            obs_set != nullptr ? obs_set->observer(i) : obs::Observer{});
        lane->orch->attachCommittedLoad(&committed_);
        lane->orch->attachTrace(&lane->trace);
        lanes_.push_back(std::move(lane));
    }
}

ShardedPlatform::~ShardedPlatform() = default;

AccountId
ShardedPlatform::createAccount(std::optional<std::uint32_t> shard,
                               std::uint32_t quota_per_service)
{
    const auto global = static_cast<AccountId>(acct_map_.size());
    // Default home shard: the standalone orchestrator's hash, keyed on
    // the GLOBAL id (lane-local creation order must not leak in).
    const std::uint32_t home =
        shard ? *shard
              : static_cast<std::uint32_t>(
                    sim::mix64(global * 0x9e3779b97f4a7c15ULL + 17) %
                    fleet_->shardCount());
    EAAO_ASSERT(home < fleet_->shardCount(), "bad shard ", home);
    const std::uint32_t lane = home % laneCount();
    const AccountId local =
        lanes_[lane]->orch->createAccount(home, quota_per_service);
    lanes_[lane]->accounts.push_back(local);
    acct_map_.emplace_back(lane, local);
    return global;
}

ServiceId
ShardedPlatform::deployService(AccountId account, ExecEnv env,
                               ContainerSize size)
{
    EAAO_ASSERT(account < acct_map_.size(), "bad account ", account);
    const auto [lane, local_acct] = acct_map_[account];
    const ServiceId local =
        lanes_[lane]->orch->deployService(local_acct, env, size);
    lanes_[lane]->services.push_back(local);
    svc_map_.emplace_back(lane, local);
    return static_cast<ServiceId>(svc_map_.size() - 1);
}

std::uint32_t
ShardedPlatform::laneOfAccount(AccountId account) const
{
    EAAO_ASSERT(account < acct_map_.size(), "bad account ", account);
    return acct_map_[account].first;
}

std::uint32_t
ShardedPlatform::laneOfService(ServiceId service) const
{
    EAAO_ASSERT(service < svc_map_.size(), "bad service ", service);
    return svc_map_[service].first;
}

std::uint32_t
ShardedPlatform::laneForOp(const ShardOp &op) const
{
    switch (op.kind) {
    case ShardOp::Kind::SetQuota:
    case ShardOp::Kind::Restart:
    case ShardOp::Kind::SpendProbe:
        return laneOfAccount(op.account);
    default:
        return laneOfService(op.service);
    }
}

const Orchestrator &
ShardedPlatform::laneOrchestrator(std::uint32_t lane) const
{
    EAAO_ASSERT(lane < lanes_.size(), "bad lane ", lane);
    return *lanes_[lane]->orch;
}

std::uint32_t
ShardedPlatform::groupCount() const
{
    return std::min<std::uint32_t>(std::max(1u, cfg_.shards), laneCount());
}

std::uint32_t
ShardedPlatform::groupLocalIndex(std::uint32_t lane) const
{
    // Contiguous partition: the first `rem` groups get `base + 1`
    // lanes, the rest `base`.
    const std::uint32_t groups = groupCount();
    const std::uint32_t base = laneCount() / groups;
    const std::uint32_t rem = laneCount() % groups;
    const std::uint32_t big = rem * (base + 1);
    if (lane < big)
        return lane % (base + 1);
    return (lane - big) % base;
}

bool
ShardedPlatform::allOpsConsumed() const
{
    for (const auto &lane : lanes_) {
        if (lane->next_op < lane->ops.size() || lane->storm != nullptr)
            return false;
    }
    return true;
}

void
ShardedPlatform::run(std::vector<ShardOp> ops, sim::SimTime horizon)
{
    beginRun(std::move(ops), horizon);
    while (running_) {
        advanceWindow();
        completeWindow();
    }
}

void
ShardedPlatform::beginRun(std::vector<ShardOp> ops, sim::SimTime horizon)
{
    EAAO_ASSERT(!running_, "beginRun during an active run");
    // Partition the script onto lanes, preserving the script order
    // (which must be time-sorted) per lane.
    for (const ShardOp &op : ops) {
        Lane &l = *lanes_[laneForOp(op)];
        EAAO_ASSERT(l.ops.empty() || l.ops.back().at <= op.at,
                    "ops not time-sorted on lane");
        l.ops.push_back(op);
    }

    run_horizon_ = horizon;
    // First run: final_now_ is the epoch. Later runs: the window
    // sequence continues from the last barrier, so phase-split runs
    // match a single combined run barrier for barrier.
    next_wend_ = final_now_ + cfg_.window;
    running_ = true;
    pending_fold_ = false;
}

void
ShardedPlatform::appendOps(std::vector<ShardOp> ops, sim::SimTime horizon)
{
    EAAO_ASSERT(running_, "appendOps without an in-flight run");
    // With a fold pending (the pre-fold capture point) the lanes have
    // already run to next_wend_; an op at or before that barrier
    // would land in a window whose exchange is already decided.
    const sim::SimTime barrier = pending_fold_ ? next_wend_ : final_now_;
    for (const ShardOp &op : ops) {
        EAAO_ASSERT(op.at > barrier,
                    "appended op not after the fork barrier");
        Lane &l = *lanes_[laneForOp(op)];
        EAAO_ASSERT(l.ops.empty() || l.ops.back().at <= op.at,
                    "appended ops not time-sorted on lane");
        // l.storm aliases l.ops; push_back may reallocate, so carry
        // it across as an index (the snapshotter does the same).
        const bool had_storm = l.storm != nullptr;
        const std::size_t storm_index =
            had_storm ? static_cast<std::size_t>(l.storm - l.ops.data())
                      : 0;
        l.ops.push_back(op);
        if (had_storm)
            l.storm = l.ops.data() + storm_index;
    }
    if (run_horizon_ < horizon)
        run_horizon_ = horizon;
    if (cfg_.orchestrator.fault_injection == 6) {
        for (auto &lane : lanes_)
            lane->orch->faultRearmDispatchTimers();
    }
}

void
ShardedPlatform::ensurePool()
{
    const std::uint32_t groups = groupCount();
    if (cfg_.threads > 1 && groups > 1 && pool_ == nullptr) {
        pool_ = std::make_unique<exp::ThreadPool>(
            std::min<unsigned>(cfg_.threads, groups));
    }
}

void
ShardedPlatform::advanceWindow()
{
    EAAO_ASSERT(running_ && !pending_fold_,
                "advanceWindow outside an active run");
    ensurePool();
    runWindow(next_wend_);
    pending_fold_ = true;
}

void
ShardedPlatform::completeWindow()
{
    EAAO_ASSERT(pending_fold_, "completeWindow without advanceWindow");
    foldBarrier(windows_run_);
    ++windows_run_;
    final_now_ = next_wend_;
    pending_fold_ = false;
    if (next_wend_ >= run_horizon_ && allOpsConsumed())
        running_ = false;
    else
        next_wend_ = next_wend_ + cfg_.window;
}

void
ShardedPlatform::resumeRun()
{
    EAAO_ASSERT(running_, "resumeRun without an in-flight run");
    if (pending_fold_)
        completeWindow();
    while (running_) {
        advanceWindow();
        completeWindow();
    }
}

void
ShardedPlatform::runWindow(sim::SimTime wend)
{
    const std::uint32_t groups = groupCount();
    const std::uint32_t base = laneCount() / groups;
    const std::uint32_t rem = laneCount() % groups;
    const bool fault3 = cfg_.orchestrator.fault_injection == 3;

    std::uint32_t start = 0;
    for (std::uint32_t g = 0; g < groups; ++g) {
        const std::uint32_t size = base + (g < rem ? 1u : 0u);
        const auto body = [this, start, size, wend, fault3] {
            for (std::uint32_t i = 0; i < size; ++i) {
                // Fault 3 (mutation self-test): every non-leading lane
                // of a group stops one millisecond short of the
                // barrier, so its boundary activity folds one window
                // late — a grouping-dependent bug the shard-equality
                // oracle must catch via the exchange digest.
                const sim::SimTime stop =
                    fault3 && i != 0 ? wend - sim::Duration::millis(1)
                                     : wend;
                laneRunWindow(*lanes_[start + i], stop);
            }
        };
        if (pool_ != nullptr)
            pool_->submit(body);
        else
            body();
        start += size;
    }
    if (pool_ != nullptr)
        pool_->wait();
}

void
ShardedPlatform::laneRunWindow(Lane &lane, sim::SimTime stop)
{
    // Materialize this window's open-loop arrivals up front: every
    // instant lands strictly before `stop`, so the events fire inside
    // this window and none are pending at the barrier capture point.
    lane.window_stop = stop;
    for (std::size_t i = 0; i < lane.open_loops.size(); ++i)
        pumpOpenLoop(lane, i, stop);
    while (true) {
        if (lane.storm != nullptr && !runStorm(lane, stop))
            return; // storm paused at the window boundary
        if (lane.next_op >= lane.ops.size())
            break;
        const ShardOp &op = lane.ops[lane.next_op];
        if (op.at > stop)
            break;
        lane.eq.runUntil(op.at);
        applyOp(lane, op);
        ++lane.next_op;
    }
    lane.eq.runUntil(stop);
}

bool
ShardedPlatform::runStorm(Lane &lane, sim::SimTime stop)
{
    const ShardOp &op = *lane.storm;
    const auto [svc_lane, local_svc] = svc_map_[op.service];
    const auto [acct_lane, local_acct] = acct_map_[op.account];
    while (lane.storm_done < op.n) {
        if (lane.storm_t > stop)
            return false;
        lane.eq.runUntil(lane.storm_t);
        const sim::Duration service_time =
            op.dur + op.dur_step * static_cast<std::int64_t>(
                         lane.storm_done % std::max(1u, op.dur_mod));
        lane.orch->routeRequest(local_svc, service_time);
        ++lane.routed_count;
        if (op.spend_every != 0 && lane.storm_done % op.spend_every == 0)
            lane.spend_checksum += lane.orch->accountSpendUsd(local_acct);
        ++lane.storm_done;
        if (op.gap_every != 0 && lane.storm_done % op.gap_every == 0)
            lane.storm_t = lane.storm_t + op.gap;
    }
    lane.storm = nullptr;
    lane.storm_done = 0;
    return true;
}

void
ShardedPlatform::pumpOpenLoop(Lane &lane, std::size_t idx,
                              sim::SimTime stop)
{
    Lane::OpenLoopStream &s = lane.open_loops[idx];
    const sim::SimTime until = std::min(stop, s.end);
    if (until <= s.gen_until)
        return;
    const ShardOp &op = lane.ops[s.op_index];
    const ServiceId local_svc = svc_map_[op.service].second;
    const double mean_service_s = op.dur.secondsF();

    std::vector<sim::SimTime> instants;
    s.cursor.generateUntil(until, instants);
    for (const sim::SimTime at : instants) {
        const sim::Duration service_time = sim::Duration::fromSecondsF(
            std::max(1e-4, s.service_rng.exponential(mean_service_s)));
        lane.eq.scheduleAt(at, [&lane, idx, local_svc, service_time] {
            ++lane.open_loops[idx].generated;
            lane.orch->admitRequest(local_svc, service_time);
        });
    }
    while (s.next_churn < until) {
        const sim::SimTime when = s.next_churn;
        lane.eq.scheduleAt(when, [&lane, local_svc] {
            lane.orch->disconnectAll(local_svc);
        });
        s.next_churn = when + op.gap;
    }
    s.gen_until = until;
}

void
ShardedPlatform::noteCreated(Lane &lane)
{
    const auto &events = lane.trace.events();
    for (; lane.trace_scanned < events.size(); ++lane.trace_scanned) {
        if (events[lane.trace_scanned].reason != PlacementReason::Reuse)
            lane.created.push_back(events[lane.trace_scanned].instance);
    }
}

void
ShardedPlatform::applyOp(Lane &lane, const ShardOp &op)
{
    const auto label = [&op] {
        std::ostringstream out;
        out << "step=" << op.step;
        if (op.sub != ~0u)
            out << "." << op.sub;
        return out.str();
    };

    switch (op.kind) {
    case ShardOp::Kind::Connect:
        lane.orch->scaleOut(svc_map_[op.service].second,
                            op.a == 0 ? 1 : op.a);
        break;
    case ShardOp::Kind::Disconnect:
        lane.orch->disconnectAll(svc_map_[op.service].second);
        break;
    case ShardOp::Kind::Route: {
        const InstanceId inst =
            lane.orch->routeRequest(svc_map_[op.service].second, op.dur);
        ++lane.routed_count;
        std::ostringstream line;
        line << label() << " inst=" << inst
             << " host=" << lane.orch->instance(inst).host;
        lane.routed.push_back(line.str());
        break;
    }
    case ShardOp::Kind::RouteStorm:
        lane.storm = &op;
        lane.storm_done = 0;
        lane.storm_t = op.at;
        break;
    case ShardOp::Kind::SetConcurrency:
        lane.orch->setMaxConcurrency(svc_map_[op.service].second,
                                     op.a == 0 ? 1 : op.a);
        break;
    case ShardOp::Kind::SetQuota:
        lane.orch->setAccountQuota(acct_map_[op.account].second,
                                   op.a == 0 ? 1 : op.a);
        break;
    case ShardOp::Kind::Redeploy:
        lane.orch->redeployService(svc_map_[op.service].second);
        break;
    case ShardOp::Kind::Restart: {
        noteCreated(lane);
        if (lane.created.empty())
            break;
        const InstanceId victim = lane.created[op.a % lane.created.size()];
        if (lane.orch->instance(victim).state ==
            InstanceState::Terminated)
            break;
        const InstanceId repl = lane.orch->restartInstance(victim);
        std::ostringstream line;
        line << label() << " old=" << victim << " new=" << repl;
        lane.restarted.push_back(line.str());
        break;
    }
    case ShardOp::Kind::SpendProbe: {
        std::ostringstream line;
        line << label() << " acct=" << op.account << " usd="
             << fmtUsd(lane.orch->accountSpendUsd(
                    acct_map_[op.account].second));
        lane.spend.push_back(line.str());
        break;
    }
    case ShardOp::Kind::OpenLoop: {
        EAAO_ASSERT(op.rate > 0.0, "open-loop op without a rate");
        EAAO_ASSERT(op.span.ns() > 0, "open-loop op without a span");
        const ArrivalSpec spec = openLoopSpec(op);

        Lane::OpenLoopStream s;
        s.op_index = static_cast<std::size_t>(&op - lane.ops.data());
        // Stream seed is a pure script property (trial seed + op label
        // + global service id), never a lane-grouping property.
        sim::Rng rng(sim::mix64(
            cfg_.seed ^ 0x0a1e00000000ULL ^
            (static_cast<std::uint64_t>(op.step) << 20) ^ op.service));
        s.cursor = ArrivalCursor(spec, rng.fork(0x0a1e0001), op.at);
        s.service_rng = rng.fork(0x0a1e0002);
        s.end = op.at + op.span;
        s.gen_until = op.at;
        s.next_churn =
            op.gap.ns() > 0
                ? op.at + op.gap
                : sim::SimTime::fromNanos(
                      std::numeric_limits<std::int64_t>::max());
        lane.open_loops.push_back(std::move(s));
        // Cover the remainder of the current window right away; later
        // windows pump every stream at their top.
        pumpOpenLoop(lane, lane.open_loops.size() - 1, lane.window_stop);
        break;
    }
    }
}

void
ShardedPlatform::foldBarrier(std::uint32_t window_index)
{
    const bool fault4 = cfg_.orchestrator.fault_injection == 4;
    support::HostLoadFold total;
    std::uint32_t folded_lanes = 0;
    for (std::uint32_t i = 0; i < laneCount(); ++i) {
        support::HostLoadSoA &delta = lanes_[i]->orch->localLoad();
        // Fault 4 (mutation self-test): non-leading lanes of a group
        // lose their exchange — the cross-lane capacity message is
        // dropped on the floor. Grouping-dependent by construction.
        if (fault4 && groupLocalIndex(i) != 0) {
            delta.drain(nullptr);
            continue;
        }
        const support::HostLoadFold fold = delta.drain(&committed_);
        if (fold.hosts != 0) {
            ++folded_lanes;
            total.hosts += fold.hosts;
            total.vcpus += fold.vcpus;
            total.mem_gb += fold.mem_gb;
        }
    }
    if (folded_lanes != 0) {
        std::ostringstream line;
        line << "window=" << window_index << " lanes=" << folded_lanes
             << " hosts=" << total.hosts << " vcpus=" << fmtUsd(total.vcpus)
             << " mem=" << fmtUsd(total.mem_gb);
        exchange_log_.push_back(line.str());
    }
}

std::string
ShardedPlatform::renderLog() const
{
    std::ostringstream out;
    out << "sharded lanes=" << laneCount()
        << " window_ns=" << cfg_.window.ns() << " windows=" << windows_run_
        << "\n";
    for (std::uint32_t i = 0; i < laneCount(); ++i) {
        const Lane &lane = *lanes_[i];
        out << "lane " << i << "\n";
        out << "trace " << lane.trace.events().size() << "\n";
        for (const PlacementEvent &e : lane.trace.events()) {
            out << "  t=" << e.when.ns() << " inst=" << e.instance
                << " svc=" << e.service << " acct=" << e.account
                << " host=" << e.host << " why=" << toString(e.reason)
                << "\n";
        }
        out << "routed " << lane.routed.size() << "\n";
        for (const std::string &line : lane.routed)
            out << "  " << line << "\n";
        out << "restarted " << lane.restarted.size() << "\n";
        for (const std::string &line : lane.restarted)
            out << "  " << line << "\n";
        out << "spend " << lane.spend.size() << "\n";
        for (const std::string &line : lane.spend)
            out << "  " << line << "\n";
        out << "final_spend";
        for (const AccountId local : lane.accounts)
            out << " " << fmtUsd(lane.orch->accountSpendUsd(local));
        out << "\n";
        out << "routed_count " << lane.routed_count << "\n";
        out << "spend_checksum " << fmtUsd(lane.spend_checksum) << "\n";
        // Open-loop sections are conditional so scripts without any
        // OpenLoop op render exactly as before this op existed.
        if (!lane.open_loops.empty()) {
            out << "open_loop " << lane.open_loops.size() << "\n";
            for (const Lane::OpenLoopStream &s : lane.open_loops) {
                const ShardOp &op = lane.ops[s.op_index];
                out << "  step=" << op.step << " svc=" << op.service
                    << " kind=" << (op.a % 3)
                    << " generated=" << s.generated << "\n";
            }
        }
        const SloStats &slo = lane.orch->sloStats();
        if (slo.admitted != 0) {
            out << "slo admitted=" << slo.admitted
                << " served_warm=" << slo.served_warm
                << " queued=" << slo.queued
                << " dispatched=" << slo.dispatched
                << " rejected=" << slo.rejected << " shed=" << slo.shed
                << "\n";
            const auto q = [](const obs::Histogram &h, double p) {
                return fmtUsd(obs::histogramQuantile(h, p));
            };
            out << "slo_latency_s p50=" << q(slo.latency_s, 0.50)
                << " p95=" << q(slo.latency_s, 0.95)
                << " p99=" << q(slo.latency_s, 0.99)
                << " p999=" << q(slo.latency_s, 0.999) << "\n";
            if (slo.cold_wait_s.count != 0) {
                out << "slo_cold_wait_s p50=" << q(slo.cold_wait_s, 0.50)
                    << " p95=" << q(slo.cold_wait_s, 0.95)
                    << " p99=" << q(slo.cold_wait_s, 0.99)
                    << " p999=" << q(slo.cold_wait_s, 0.999) << "\n";
            }
        }
        out << "instances " << lane.orch->instanceCount() << "\n";
        out << "events scheduled=" << lane.eq.scheduled()
            << " processed=" << lane.eq.processed()
            << " cancelled=" << lane.eq.cancelled()
            << " pending=" << lane.eq.pending() << "\n";
    }
    out << "exchange " << exchange_log_.size() << "\n";
    for (const std::string &line : exchange_log_)
        out << "  " << line << "\n";
    return out.str();
}

ShardedTotals
ShardedPlatform::totals() const
{
    ShardedTotals t;
    t.windows = windows_run_;
    for (const auto &lane : lanes_) {
        t.routed += lane->routed_count;
        for (const auto &s : lane->open_loops)
            t.open_loop += s.generated;
        t.instances += lane->orch->instanceCount();
        t.spend_checksum += lane->spend_checksum;
        t.events_scheduled += lane->eq.scheduled();
        t.events_processed += lane->eq.processed();
        t.events_cancelled += lane->eq.cancelled();
        t.events_pending += lane->eq.pending();
    }
    for (const auto &[lane, local] : acct_map_)
        t.final_spend_usd += lanes_[lane]->orch->accountSpendUsd(local);
    return t;
}

SloStats
ShardedPlatform::sloTotals() const
{
    SloStats total;
    bool first = true;
    for (const auto &lane : lanes_) {
        const SloStats &s = lane->orch->sloStats();
        // Every lane orchestrator builds its histograms from the same
        // bucket tables, so seeding from the first lane and merging
        // the rest keeps the bounds-equality contract of merge().
        if (first) {
            total.latency_s = s.latency_s;
            total.cold_wait_s = s.cold_wait_s;
            first = false;
        } else {
            total.latency_s.merge(s.latency_s);
            total.cold_wait_s.merge(s.cold_wait_s);
        }
        total.admitted += s.admitted;
        total.served_warm += s.served_warm;
        total.queued += s.queued;
        total.dispatched += s.dispatched;
        total.rejected += s.rejected;
        total.shed += s.shed;
    }
    return total;
}

} // namespace eaao::faas
