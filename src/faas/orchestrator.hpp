/**
 * @file
 * The FaaS orchestrator: container-instance lifecycle and placement.
 *
 * Implements the placement behaviours the paper reverse-engineered on
 * Cloud Run (Observations 1-6, Section 5.1):
 *
 *  - Obs 1: instances of a service spread near-uniformly over the hosts
 *    used (cold placement targets ~10.7 instances/host).
 *  - Obs 2: idle instances survive ~2 minutes untouched, then are reaped
 *    gradually; practically all are gone by ~12 minutes.
 *  - Obs 3/4: an account's instances prefer a stable set of *base hosts*
 *    in the account's home shard; different accounts get different base
 *    hosts (different shards, usually).
 *  - Obs 5: a service that saw high demand within the past ~30 minutes
 *    is "hot"; newly-created instances of a hot service are placed on
 *    *helper hosts* outside the base set, in growing chunks that
 *    saturate after ~3 hot launches.
 *  - Obs 6: helper lists are per-service, popularity-biased, and overlap
 *    across services.
 */

#ifndef EAAO_FAAS_ORCHESTRATOR_HPP
#define EAAO_FAAS_ORCHESTRATOR_HPP

#include <deque>
#include <optional>
#include <vector>

#include "faas/fleet.hpp"
#include "faas/placement_index.hpp"
#include "faas/routing_index.hpp"
#include "faas/trace.hpp"
#include "faas/pricing.hpp"
#include "faas/types.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "support/flat_map.hpp"
#include "support/soa.hpp"

namespace eaao::snap {
class Snapshotter;
} // namespace eaao::snap

namespace eaao::faas {

/**
 * Backpressure applied by admitRequest when a service's admission
 * queue is already at admission_depth. See docs/load-engine.md.
 */
enum class ShedPolicy : std::uint32_t
{
    Queue = 0,     //!< keep queueing (the depth is advisory)
    Reject = 1,    //!< drop the arriving request
    ShedOldest = 2 //!< drop the oldest queued request, admit the new one
};

/** Tunables of the orchestrator; defaults reproduce the paper's curves. */
struct OrchestratorConfig
{
    /** Target concurrent instances per host for cold spreading. */
    double spread_target = 10.7;

    /** Minimum burst size that counts toward service hotness. */
    std::uint32_t hot_burst_min = 100;

    /** Demand-window length for hotness (paper: ~30 minutes). */
    sim::Duration demand_window = sim::Duration::minutes(30);

    /** Hotness saturates after this many hot launches. */
    std::uint32_t hotness_cap = 3;

    /** Idle instances are never reaped before this age. */
    sim::Duration idle_hold = sim::Duration::minutes(2);

    /** Mean of the exponential reap delay after the hold, seconds. */
    double idle_reap_mean_s = 150.0;

    /** Hard upper bound on idle lifetime (paper: 15 minutes). */
    sim::Duration idle_max = sim::Duration::minutes(15);

    /** Fraction of a host's vcpus available to user containers. */
    double host_usable_fraction = 0.85;

    /** Fraction of a host's memory available to user containers. */
    double host_usable_memory_fraction = 0.85;

    /**
     * Creation slows as a service approaches the 1000-instance limit
     * (the paper's reason for launching 800): startup time scales by
     * 1 + slowdown_factor * excess/200 beyond this threshold.
     */
    std::uint32_t creation_slowdown_threshold = 800;
    double creation_slowdown_factor = 3.0;

    /** Billable startup seconds per created Gen 1 instance. */
    double startup_billable_s_gen1 = 1.5;

    /** Billable startup seconds per created Gen 2 instance (slower). */
    double startup_billable_s_gen2 = 4.0;

    /**
     * Open-loop admission control (admitRequest). A request that finds
     * no warm capacity waits out one cold start in a per-service FIFO
     * admission queue instead of materializing an instance instantly;
     * admission_depth bounds that queue and shed_policy picks what to
     * do with the overflow. routeRequest ignores both — the closed-loop
     * drivers keep their instant-scale-out semantics.
     */
    std::uint32_t admission_depth = 64;
    ShedPolicy shed_policy = ShedPolicy::Queue;

    /**
     * Co-location-resistant scheduling (Section 6, after Azar et al.):
     * confine each account — including its load-balancing helper
     * placements — to its home shard. Cross-account co-location
     * becomes impossible at the price of fleet fragmentation (a hot
     * service can no longer relieve pressure DC-wide).
     */
    bool isolate_accounts = false;

    /**
     * Keep the pre-index linear-scan decision paths (prefix re-scan
     * with a map lookup per placement candidate, full active-list scan
     * per routed request, full instance-table scan per spend query)
     * and skip index maintenance entirely. Decisions are byte-identical
     * either way; this mode exists as the property-test oracle and as
     * an honest same-machine baseline for `bench/macro_campaign`.
     */
    bool reference_scan = false;

    /**
     * Deliberate bug injection for the scenario fuzzer's mutation
     * self-test (`tools/fuzz_scenarios --inject-fault N`; see
     * docs/testing.md). The faults perturb only the *indexed* decision
     * paths, so the indexed-vs-reference oracle is the one that must
     * catch them. 0 = off; 1 = routing takes the most recently
     * activated spare instance instead of the least-loaded one;
     * 2 = cold placement's demand prefix is off by one.
     *
     * Modes 3 and 4 live in the *sharded* cross-lane exchange path
     * (faas::ShardedPlatform; see docs/sharding.md): 3 = window
     * barrier off by one at the boundary, 4 = dropped cross-lane
     * capacity exchange. The orchestrator itself ignores them — the
     * shard-equality oracle is the one that must catch them.
     *
     * Mode 5 lives in the checkpoint restore path
     * (snap::Snapshotter; see docs/checkpoint.md): the first restored
     * lane with a non-empty capacity-delta touch list loses its vcpus
     * delta column. The snapshot oracle is the one that must catch it.
     *
     * Mode 6 lives in the time-travel fork path
     * (ShardedPlatform::appendOps; see docs/testing.md): when a
     * forked suffix is appended to a restored run, every armed
     * admission dispatch timer is re-armed from its service's *stale
     * base* startup estimate — dropping the creation-slowdown term
     * and the wait the queue head has already accrued. Straight
     * replays of the same script never call appendOps, so only the
     * fork oracles (prefix-consistency / fork-determinism) can catch
     * it.
     */
    std::uint32_t fault_injection = 0;
};

/** One container instance's bookkeeping record. */
struct InstanceRecord
{
    InstanceId id = kNoInstance;
    ServiceId service = 0;
    AccountId account = 0;
    hw::HostId host = 0;
    ContainerSize size = sizes::kSmall;
    ExecEnv env = ExecEnv::Gen1;
    InstanceState state = InstanceState::Active;
    std::uint32_t in_flight = 0; //!< requests currently executing
    sim::SimTime created_at;
    sim::SimTime state_since;
    double active_seconds = 0.0;            //!< billed active time
    std::uint64_t vm_tsc_offset = 0;        //!< Gen 2 TSC offset
    std::optional<sim::SimTime> terminated_at;
    sim::EventId reap_event = 0;
    std::uint64_t route_seq = 0; //!< routing-index key while Active
};

/** A deployed service (function). */
struct ServiceRecord
{
    ServiceId id = 0;
    AccountId account = 0;
    ExecEnv env = ExecEnv::Gen1;
    ContainerSize size = sizes::kSmall;
    /** Requests one instance serves concurrently (Cloud Run default
     *  in the paper's setup: one connection per instance). */
    std::uint32_t max_concurrency = 1;
    std::vector<hw::HostId> helper_order;    //!< helper preference list
    std::vector<hw::HostId> spill_order;     //!< cold-leak destinations
    std::deque<std::pair<sim::SimTime, std::uint32_t>> bursts;
    /** Creation instants from the request path (burst aggregation). */
    std::deque<sim::SimTime> request_creations;
    std::vector<InstanceId> active;
    std::vector<InstanceId> idle;
    std::uint64_t helper_seed = 0;           //!< for dynamic regeneration
    std::uint64_t requests_served = 0;
};

/** What admitRequest did with one open-loop arrival. */
enum class AdmissionOutcome : std::uint8_t
{
    Served = 0,  //!< routed immediately to warm capacity
    Queued = 1,  //!< parked in the admission queue (cold-start wait)
    Rejected = 2,//!< dropped: queue full, ShedPolicy::Reject
    Shed = 3     //!< admitted by displacing the oldest queued request
};

/** Result of one admitRequest call. */
struct AdmissionResult
{
    AdmissionOutcome outcome = AdmissionOutcome::Served;
    /** Serving instance when outcome == Served, else kNoInstance. */
    InstanceId instance = kNoInstance;
};

/**
 * SLO accounting for the open-loop admission path. Plain values (not
 * EAAO_OBS-gated instrument sites), so campaign output derived from
 * them is byte-identical whether or not observability is compiled in.
 * Latency of a served request is queue wait plus service time; warm
 * hits wait zero and observe only into latency_s.
 */
struct SloStats
{
    obs::Histogram latency_s;   //!< end-to-end request latency, seconds
    obs::Histogram cold_wait_s; //!< admission-queue wait, seconds
    std::uint64_t admitted = 0;    //!< total admitRequest calls
    std::uint64_t served_warm = 0; //!< immediate warm routes
    std::uint64_t queued = 0;      //!< parked for a cold-start wait
    std::uint64_t dispatched = 0;  //!< left the queue onto an instance
    std::uint64_t rejected = 0;    //!< dropped arrivals (Reject policy)
    std::uint64_t shed = 0;        //!< displaced entries (ShedOldest)
};

/** One request parked in a service's admission queue. */
struct QueuedRequest
{
    sim::SimTime enqueued_at;
    sim::Duration service_time;
};

/**
 * Per-service admission queue. One dispatch timer is armed for the
 * head entry only (re-armed on every pop), so a queued request's
 * cold start begins when it reaches the head — and no entry can be
 * stranded by a timer that fired for a since-served neighbour.
 */
struct AdmissionQueue
{
    std::deque<QueuedRequest> q;
    sim::EventId dispatch_event = 0; //!< armed for q.front(), 0 if none
};

/** A tenant account. */
struct AccountRecord
{
    AccountId id = 0;
    std::uint32_t shard = 0;
    std::vector<hw::HostId> base_order;      //!< jittered popularity order
    std::uint32_t live_count = 0;            //!< active+idle instances
    double spend_usd = 0.0;

    /**
     * Per-service concurrent-instance quota. Established accounts get
     * the platform default (1000); freshly created accounts are capped
     * (e.g. 10) until they demonstrate sustained usage — the cost the
     * paper identifies for multi-account attack scaling (§5.2).
     */
    std::uint32_t quota_per_service = 1000;
};

/**
 * The orchestrator. Owns all accounts, services and instances of one
 * data center and implements scale-out/scale-in and idle reaping on the
 * shared event queue.
 */
class Orchestrator
{
  public:
    /**
     * @param fleet The physical fleet (not owned).
     * @param eq Event queue driving virtual time (not owned).
     * @param cfg Tunables.
     * @param profile The data-center profile (copied).
     * @param pricing Billing rates.
     * @param rng Root stream; children are forked per purpose.
     * @param obs Observability handle (optional; see src/obs/).
     */
    Orchestrator(Fleet &fleet, sim::EventQueue &eq,
                 const OrchestratorConfig &cfg,
                 const DataCenterProfile &profile,
                 const PricingModel &pricing, sim::Rng rng,
                 obs::Observer obs = {});

    /**
     * Register a new account.
     * @param shard Optional home shard; defaults to hashing the id.
     * @param quota_per_service Concurrent-instance cap per service.
     */
    AccountId createAccount(std::optional<std::uint32_t> shard = {},
                            std::uint32_t quota_per_service = 1000);

    /** Provider-side quota change (sustained-usage promotion). */
    void setAccountQuota(AccountId account,
                         std::uint32_t quota_per_service);

    /** Deploy a service under @p account. */
    ServiceId deployService(AccountId account, ExecEnv env,
                            ContainerSize size);

    /**
     * Redeploy a service with a freshly built container image (used by
     * the paper's Experiment 2 variant). Demand history is retained, as
     * observed on Cloud Run.
     */
    void redeployService(ServiceId service);

    /**
     * Scale the service to @p n concurrently-active instances: reuse all
     * idle instances first, then create the shortfall via placement.
     *
     * @return Ids of the n instances now serving connections.
     */
    std::vector<InstanceId> scaleOut(ServiceId service, std::uint32_t n);

    /** Disconnect everything: all active instances become idle. */
    void disconnectAll(ServiceId service);

    /**
     * Route one incoming request to the service (autoscaling,
     * Section 2.2): prefer an active instance with spare concurrency,
     * else wake an idle instance, else create one through the normal
     * placement path. The instance is occupied for @p service_time;
     * when its last in-flight request completes it goes idle and
     * releases its CPU.
     *
     * @return Id of the serving instance.
     */
    InstanceId routeRequest(ServiceId service,
                            sim::Duration service_time);

    /**
     * Open-loop admission (the ArrivalEngine's entry point): route to
     * warm capacity when any exists — exactly the instance
     * routeRequest would pick — otherwise park the request in the
     * service's FIFO admission queue for one cold-start time (or
     * until a completion frees capacity sooner). A full queue applies
     * cfg.shed_policy. Latency and queue-wait land in sloStats().
     */
    AdmissionResult admitRequest(ServiceId service,
                                 sim::Duration service_time);

    /** SLO accounting accumulated by the admitRequest path. */
    const SloStats &sloStats() const { return slo_; }

    /** Requests currently parked in a service's admission queue. */
    std::size_t admissionBacklog(ServiceId service) const;

    /** Set a service's per-instance concurrency limit. */
    void setMaxConcurrency(ServiceId service, std::uint32_t limit);

    /**
     * Terminate an instance and create a replacement through the normal
     * placement path (used to model instance churn of long-running
     * deployments). @return the replacement's id.
     */
    InstanceId restartInstance(InstanceId id);

    /** Look up an instance record. */
    const InstanceRecord &instance(InstanceId id) const;

    /** Look up a service record. */
    const ServiceRecord &service(ServiceId id) const;

    /** Look up an account record. */
    const AccountRecord &account(AccountId id) const;

    /** Number of instances ever created. */
    std::size_t instanceCount() const { return instances_.size(); }

    /** Total spend of an account so far, USD (includes running bill). */
    double accountSpendUsd(AccountId id) const;

    /** Pricing model in force. */
    const PricingModel &pricing() const { return pricing_; }

    /** Attach an optional placement-trace collector (nullptr detaches). */
    void attachTrace(PlacementTrace *trace) { trace_ = trace; }

    /** Configuration in force. */
    const OrchestratorConfig &config() const { return cfg_; }

    /**
     * Sharded-lane mode: capacity checks read @p committed (the
     * window-start snapshot shared by all lanes) *plus* this
     * orchestrator's local table, which from now on holds only the
     * lane's own not-yet-folded delta (touch tracking on). nullptr
     * restores standalone mode. See docs/sharding.md.
     */
    void attachCommittedLoad(const support::HostLoadSoA *committed);

    /** The local load table (the lane delta in sharded mode). */
    support::HostLoadSoA &localLoad() { return host_load_; }

    /**
     * EventTag kinds for the callback families the orchestrator
     * schedules; checkpoint restore rebinds a serialized event through
     * rebindEvent(kind, arg). The arg is an instance id for Complete
     * and Reap, a service id for Dispatch. See docs/checkpoint.md.
     */
    static constexpr std::uint32_t kEventTagComplete = 1;
    static constexpr std::uint32_t kEventTagReap = 2;
    static constexpr std::uint32_t kEventTagDispatch = 3;

    /**
     * Planted fault 6 (OrchestratorConfig::fault_injection): cancel
     * and re-arm every armed admission dispatch timer from its
     * service's stale *base* startup estimate — no creation-slowdown
     * term, no credit for the wait the queue head has already served.
     * Called by ShardedPlatform::appendOps when a time-travel fork
     * appends a suffix to a restored run; a no-op for services with
     * no timer armed. See docs/testing.md (mutation self-test).
     */
    void faultRearmDispatchTimers();

  private:
    friend class eaao::snap::Snapshotter;

    /**
     * Reconstruct the callback a serialized EventTag stood for
     * (checkpoint restore, after instances_ has been restored).
     */
    sim::EventQueue::Callback rebindEvent(std::uint32_t kind,
                                          std::uint64_t arg);

    /**
     * Rebuild every derived table (per-host account/service load maps,
     * routing-index entries, per-account active sets, dense per-service
     * host loads, placement min-views) from the restored primary
     * records. The routing index's next_seq must already be restored.
     */
    void rebuildDerivedState();

    /** Current hotness level of a service (0 = cold). */
    std::uint32_t hotness(const ServiceRecord &svc) const;

    /** Create one instance of @p svc; returns its id. */
    InstanceId createInstance(ServiceRecord &svc, std::uint32_t hotness);

    /** Pick a host for a new instance, reporting the path taken. */
    hw::HostId pickHost(const ServiceRecord &svc,
                        const AccountRecord &acct, std::uint32_t hotness,
                        PlacementReason &reason) const;

    /** Cold path: least-loaded base host within the demand prefix. */
    std::optional<hw::HostId> pickBaseHost(const ServiceRecord &svc,
                                           const AccountRecord &acct)
        const;

    /** Pre-index linear-scan body of pickBaseHost (reference mode). */
    std::optional<hw::HostId>
    pickBaseHostReference(const ServiceRecord &svc,
                          const AccountRecord &acct) const;

    /**
     * Hot path: least-loaded host among the demand-sized base prefix
     * plus the hotness-sized helper prefix (the load balancer relieves
     * the base hosts without abandoning them).
     */
    std::optional<hw::HostId> pickHelperHost(const ServiceRecord &svc,
                                             const AccountRecord &acct,
                                             std::uint32_t hotness) const;

    /** Dynamic-DC cold spill: a random host off the base set. */
    std::optional<hw::HostId> pickSpillHost(const ServiceRecord &svc)
        const;

    /** Schedule the idle-reap event for an instance. */
    void scheduleReap(InstanceRecord &inst);

    /** Reap callback: terminate if still idle. */
    void reap(InstanceId id);

    /** Request-completion callback. */
    void completeRequest(InstanceId id);

    /**
     * Steps 1-2 of routeRequest: an active instance with spare
     * concurrency (least-loaded, activation order breaking ties), else
     * a woken idle instance (most recently idled first). nullptr when
     * only a cold start can serve.
     */
    InstanceRecord *findWarmTarget(ServiceRecord &svc);

    /**
     * Occupy @p target with one request: bump in-flight, reindex,
     * count, and schedule the completion event after @p service_time.
     */
    InstanceId occupy(ServiceRecord &svc, InstanceRecord &target,
                      sim::Duration service_time);

    /** Cold-start seconds a creation for @p svc would bill right now. */
    double startupEstimateS(const ServiceRecord &svc) const;

    /** Arm the dispatch timer for the head of @p svc's admission queue. */
    void armDispatch(ServiceRecord &svc);

    /** Dispatch-timer callback: the head's cold start has completed. */
    void dispatchQueued(ServiceId service);

    /** Drain queued requests into capacity freed by completions. */
    void maybeDispatchQueued(ServiceRecord &svc);

    /**
     * Serve a dequeued request: onto @p target when non-null, else
     * through a cold creation. Observes wait and latency.
     */
    void serveQueued(ServiceRecord &svc, const QueuedRequest &qr,
                     InstanceRecord *target);

    /** Track request-path creations; aggregate surges into bursts. */
    void noteRequestCreation(ServiceRecord &svc);

    /** Terminate an instance (any non-terminated state). */
    void terminate(InstanceRecord &inst);

    /** Move an instance out of Active, crediting billing. */
    void settleActiveTime(InstanceRecord &inst);

    /**
     * Index bookkeeping for an instance entering the Active state (it
     * was just appended to its service's active list): registers it
     * with the routing index and the account's active-instance set.
     */
    void noteActivated(ServiceRecord &svc, InstanceRecord &inst);

    /** Rebuild an account's placement min-view after an order change. */
    void rebuildBaseIndex(const AccountRecord &acct);

    /** Capacity check for one more instance of @p size on @p host. */
    bool hasCapacity(hw::HostId host, const ContainerSize &size) const;

    /** Build/refresh the per-account base order. */
    std::vector<hw::HostId> buildBaseOrder(const AccountRecord &acct,
                                           double jitter,
                                           sim::Rng &rng) const;

    /** Build/refresh a per-service helper order. */
    std::vector<hw::HostId> buildHelperOrder(std::uint32_t home_shard,
                                             std::uint64_t seed) const;

    /** Build/refresh a per-service cold-spill order (uniform random). */
    std::vector<hw::HostId> buildSpillOrder(std::uint32_t home_shard,
                                            std::uint64_t seed) const;

    /** Apply per-launch dynamism (us-central1 style), if configured. */
    void refreshPreferences(ServiceRecord &svc, AccountRecord &acct);

    Fleet &fleet_;
    sim::EventQueue &eq_;
    OrchestratorConfig cfg_;
    DataCenterProfile profile_;
    PricingModel pricing_;
    mutable sim::Rng rng_;

    /**
     * Observability handle plus metric handles resolved once at
     * construction (null when no registry is attached), so each
     * instrument site is a branch-on-null in the disabled case.
     */
    obs::Observer obs_;
    obs::Counter *c_placements_[kPlacementReasonCount] = {};
    obs::Counter *c_reaps_ = nullptr;
    obs::Counter *c_requests_ = nullptr;
    obs::Histogram *h_cold_start_s_ = nullptr;
    obs::Histogram *h_instances_per_host_ = nullptr;
    obs::Histogram *h_helper_churn_ = nullptr;
    obs::Histogram *h_request_latency_s_ = nullptr;
    obs::Histogram *h_cold_wait_s_ = nullptr;

    PlacementTrace *trace_ = nullptr;
    std::vector<AccountRecord> accounts_;
    std::vector<ServiceRecord> services_;
    std::vector<InstanceRecord> instances_;

    /** Admission queues, indexed by service id (grown on deploy). */
    std::vector<AdmissionQueue> admission_;
    SloStats slo_;

    /**
     * Per-host capacity in use, SoA columns (support::HostLoadSoA).
     * Standalone: the whole truth. Sharded lane: the lane's delta
     * since the last window barrier, read against committed_load_.
     */
    support::HostLoadSoA host_load_;
    const support::HostLoadSoA *committed_load_ = nullptr;
    /**
     * Per-host instance count by account / by service (live
     * instances). Host-local cardinality is ~10 (Obs 1), so a sorted
     * vector beats a hash table on the placement hot path and iterates
     * deterministically.
     */
    std::vector<support::SmallFlatMap<AccountId, std::uint32_t>> acct_load_;
    std::vector<support::SmallFlatMap<ServiceId, std::uint32_t>> svc_load_;

    /**
     * Incremental decision indexes (empty shells when
     * cfg_.reference_scan — the maps above stay the source of truth
     * either way; see docs/performance.md for the invariants).
     */
    RoutingIndex routing_;                        //!< least-loaded routing
    std::vector<PlacementMinIndex> base_index_;   //!< per account
    /** Per account: Active instance ids, sorted ascending (so the
     *  incremental spend query sums in the same order the legacy full
     *  scan did — bit-identical doubles). */
    std::vector<std::vector<InstanceId>> acct_active_;
    /** Per service: dense per-host live-instance counts (replaces the
     *  SmallFlatMap lookup per helper/spill scan candidate). */
    std::vector<std::vector<std::uint32_t>> svc_host_load_;
};

} // namespace eaao::faas

#endif // EAAO_FAAS_ORCHESTRATOR_HPP
