/**
 * @file
 * Implementation of placement tracing.
 */

#include "faas/trace.hpp"

namespace eaao::faas {

const char *
toString(PlacementReason reason)
{
    switch (reason) {
      case PlacementReason::ColdBase:
        return "cold-base";
      case PlacementReason::HotHelper:
        return "hot-helper";
      case PlacementReason::ColdSpill:
        return "cold-spill";
      case PlacementReason::ColdOverflow:
        return "cold-overflow";
      case PlacementReason::Reuse:
        return "reuse";
    }
    return "?";
}

std::size_t
PlacementTrace::countByReason(PlacementReason reason) const
{
    std::size_t n = 0;
    for (const auto &event : events_)
        n += (event.reason == reason);
    return n;
}

} // namespace eaao::faas
