/**
 * @file
 * Data-center fleet: the pool of physical hosts plus the placement
 * metadata the orchestrator consults (shards, popularity ranks).
 *
 * The model follows the behaviours the paper reverse-engineered:
 *
 *  - Hosts are grouped into *shards*; an account's base hosts live in its
 *    home shard. This reproduces the naive-strategy outcomes of §5.2
 *    (zero co-location across accounts unless their shards collide).
 *  - Within a shard, hosts have a popularity order (bin-packing-style
 *    preference for warm hosts). Base-host prefixes and helper lists are
 *    both popularity-biased, which is what lets an attacker who holds
 *    the popular hosts of every shard cover nearly all victim instances.
 *  - Boot times mix an exponential spread with discrete "maintenance
 *    waves" (fleet-wide reboot campaigns); the waves create the boot-time
 *    collisions that erode fingerprint precision at large p_boot (Fig 4).
 */

#ifndef EAAO_FAAS_FLEET_HPP
#define EAAO_FAAS_FLEET_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "hw/cpu_sku.hpp"
#include "hw/host.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace eaao::faas {

/**
 * Static description of one simulated data center.
 *
 * The three presets mirror the paper's us-east1 / us-central1 / us-west1:
 * pool sizes slightly above the paper's observed lower bounds (474, 1702
 * and 199 apparent hosts, Fig. 12), so that a saturating exploration
 * discovers roughly those counts.
 */
struct DataCenterProfile
{
    std::string name = "us-east1";
    std::uint32_t host_count = 520;
    std::uint32_t shard_size = 110;

    /** Helper-list growth per hotness level (hosts per hot launch). */
    std::uint32_t helper_chunk = 65;

    /**
     * Std-dev of the per-service jitter applied to the popularity
     * order when building helper lists. Helper lists of different
     * services are therefore strongly overlapping (they share the
     * popular hosts of every shard) yet not identical — Observation 6.
     */
    double helper_order_jitter = 15.0;

    /** Std-dev of per-account jitter on the base popularity order. */
    double base_order_jitter = 3.0;

    /**
     * Placement dynamism: std-dev of *per-launch* re-jitter applied to
     * the account's base order (us-central1 is noticeably dynamic).
     * Zero means only the small baseline jitter below applies.
     */
    double per_launch_jitter = 0.0;

    /**
     * Baseline per-launch jitter present in every data center: a few
     * borderline hosts rotate in and out of the base prefix between
     * launches, producing the slight cumulative-footprint growth of
     * Fig. 7.
     */
    double base_launch_jitter = 0.7;

    /**
     * Fraction of cold placements that leak off the base hosts into
     * the helper layer. Zero in the static data centers; us-central1's
     * dynamic placement leaks noticeably, which is why even a naive
     * same-shard attack only reaches ~81% coverage there (§5.2).
     */
    double cold_spill_fraction = 0.0;

    /** Fraction of hosts booted in maintenance waves (vs spread out). */
    double wave_fraction = 0.35;

    /** Number of discrete maintenance waves in the recent past. */
    std::uint32_t wave_count = 8;

    /** Mean of the exponential uptime spread, days. */
    double uptime_mean_days = 15.0;

    /** Maximum age of a maintenance wave, days. */
    double wave_span_days = 30.0;

    /** Std-dev of boot times within one wave, seconds. */
    double wave_sigma_s = 600.0;

    /** Paper-calibrated preset for us-east1. */
    static DataCenterProfile usEast1();
    /** Paper-calibrated preset for us-central1 (large, dynamic). */
    static DataCenterProfile usCentral1();
    /** Paper-calibrated preset for us-west1 (small). */
    static DataCenterProfile usWest1();
};

/**
 * The physical fleet of one data center.
 */
class Fleet
{
  public:
    /**
     * Build the fleet: sample SKUs, boot times, label errors, shard and
     * popularity assignments.
     *
     * @param profile Data-center description.
     * @param tsc_cfg TSC noise knobs (shared across hosts).
     * @param timing_cfg Sandbox timing-noise knobs.
     * @param epoch "Now" at construction; hosts booted before this.
     * @param rng Stream for all construction draws.
     */
    Fleet(const DataCenterProfile &profile, const hw::TscConfig &tsc_cfg,
          const hw::TimingNoiseConfig &timing_cfg, sim::SimTime epoch,
          sim::Rng &rng);

    /** Number of hosts. */
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(hosts_.size());
    }

    /** Access a host (mutable: covert-channel pressure bookkeeping). */
    hw::HostMachine &host(hw::HostId id);

    /** Access a host read-only. */
    const hw::HostMachine &host(hw::HostId id) const;

    /** Shard index of a host. */
    std::uint32_t shardOf(hw::HostId id) const;

    /** Number of shards. */
    std::uint32_t shardCount() const { return shard_count_; }

    /** Hosts belonging to shard @p shard, in popularity order. */
    const std::vector<hw::HostId> &shardHosts(std::uint32_t shard) const;

    /**
     * Within-shard popularity rank of a host (0 = most popular).
     */
    std::uint32_t popularityRank(hw::HostId id) const;

    /** The SKU catalog used by this fleet. */
    const hw::SkuCatalog &catalog() const { return catalog_; }

  private:
    hw::SkuCatalog catalog_;
    std::vector<hw::HostMachine> hosts_;
    std::vector<std::uint32_t> shard_of_;
    std::vector<std::uint32_t> pop_rank_;
    std::vector<std::vector<hw::HostId>> shard_hosts_;
    std::uint32_t shard_count_ = 0;
};

} // namespace eaao::faas

#endif // EAAO_FAAS_FLEET_HPP
