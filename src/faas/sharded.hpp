/**
 * @file
 * Deterministic intra-trial parallelism: the sharded platform.
 *
 * One trial is partitioned into *lanes* at datacenter-shard
 * granularity: lane count is a fixed platform property
 * (min(max_lanes, fleet shard count)), every account lives on the
 * lane of its home shard (home-shard % lanes), and each lane owns a
 * private event queue, orchestrator, placement trace and log buffers.
 * The only coupling between lanes is host capacity, which is
 * exchanged through a conservative virtual-time window protocol:
 *
 *  1. All lanes advance independently to the next window barrier
 *     (window length defaults to a demand-window/reap-window
 *     divisor), reading host capacity as `committed + own delta`.
 *  2. At the barrier, every lane's capacity delta is folded into the
 *     shared committed table in canonical lane order, and a fold
 *     digest line is appended to the exchange log.
 *
 * The `shards` and `threads` knobs only choose how the *fixed* lanes
 * are grouped onto pool workers (contiguous lane ranges, serial
 * within a group, groups in parallel); no decision anywhere depends
 * on the grouping, so the canonical log — and any metrics or traces
 * recorded per lane — is byte-identical for every (shards, threads)
 * combination. testkit's shard-equality oracle enforces exactly this.
 *
 * See docs/sharding.md for the protocol, the SoA capacity ledger, and
 * the planted fault modes (OrchestratorConfig::fault_injection 3/4).
 */

#ifndef EAAO_FAAS_SHARDED_HPP
#define EAAO_FAAS_SHARDED_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exp/thread_pool.hpp"
#include "faas/fleet.hpp"
#include "faas/orchestrator.hpp"
#include "faas/trace.hpp"
#include "faas/workload.hpp"
#include "obs/export.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "support/soa.hpp"

namespace eaao::snap {
class Snapshotter;
} // namespace eaao::snap

namespace eaao::faas {

/**
 * One timestamped operation against the sharded platform. The driver
 * (testkit runner or bench) compiles its script into a flat op list;
 * ShardedPlatform::run() partitions the ops onto lanes and interleaves
 * them with event processing inside the window loop.
 */
struct ShardOp
{
    enum class Kind : std::uint8_t
    {
        Connect,        //!< scaleOut(service, a)
        Disconnect,     //!< disconnectAll(service)
        Route,          //!< one routed request (logged with its host)
        RouteStorm,     //!< n unlogged requests (counted + spend checksum)
        SetConcurrency, //!< setMaxConcurrency(service, a)
        SetQuota,       //!< setAccountQuota(account, a)
        Redeploy,       //!< redeployService(service)
        Restart,        //!< restart pick a of the lane's created list
        SpendProbe,     //!< log account spend
        OpenLoop,       //!< start an open-loop arrival stream (see below)
    };

    Kind kind = Kind::Connect;
    sim::SimTime at;

    std::uint32_t step = 0; //!< canonical log label
    std::uint32_t sub = ~0u; //!< sub-label (burst index); ~0u = none

    ServiceId service = 0;  //!< global service id (service-directed kinds)
    AccountId account = 0;  //!< global account id (SetQuota/SpendProbe/Restart)
    std::uint32_t a = 0;    //!< payload: connect n / concurrency / quota / pick
    sim::Duration dur;      //!< route service time; storm base service time

    // RouteStorm shape: request r runs for dur + dur_step * (r % dur_mod),
    // arrivals advance by `gap` after every `gap_every` requests, and the
    // account's spend is folded into the lane checksum every `spend_every`.
    std::uint64_t n = 0;
    std::uint32_t gap_every = 0;
    sim::Duration gap;
    sim::Duration dur_step;
    std::uint32_t dur_mod = 1;
    std::uint32_t spend_every = 0;

    // OpenLoop shape: an arrival stream for `service` lasting `span`
    // from `at`. Family is `a` (an ArrivalKind), mean offered load is
    // `rate` rps with burstiness `burst`, service times exponential
    // around `dur`, connection churn every `gap` (0 = never). Arrivals
    // are materialized one window at a time inside the lane loop and
    // land on Orchestrator::admitRequest, so admission backpressure
    // and cold-start queueing apply; outcomes accumulate in the lane's
    // sloStats() and render as conditional log lines.
    double rate = 0.0;
    double burst = 2.0;
    sim::Duration span;
};

/** The ArrivalSpec an OpenLoop op describes (shared with restore). */
ArrivalSpec openLoopSpec(const ShardOp &op);

/** Configuration of a sharded trial. */
struct ShardedConfig
{
    DataCenterProfile profile = DataCenterProfile::usEast1();
    OrchestratorConfig orchestrator;
    hw::TscConfig tsc;
    hw::TimingNoiseConfig timing;
    PricingModel pricing;
    std::uint64_t seed = 1;
    sim::SimTime epoch;

    /** Window barrier period (a demand/reap-window divisor). */
    sim::Duration window = sim::Duration::seconds(30);

    /** Lane cap; lanes = min(max_lanes, fleet shard count). */
    std::uint32_t max_lanes = 16;

    /** Worker groups the fixed lanes are folded onto (the knob under
     *  test: output must not depend on it). */
    std::uint32_t shards = 1;

    /** Pool threads driving the groups (also output-invariant). */
    unsigned threads = 1;
};

/** Aggregates for bench output (all derived in lane order). */
struct ShardedTotals
{
    std::uint64_t routed = 0;       //!< requests routed (Route + storms)
    std::uint64_t open_loop = 0;    //!< open-loop arrivals admitted
    std::uint64_t instances = 0;    //!< instances ever created
    double spend_checksum = 0.0;    //!< storm spend-poll checksum
    double final_spend_usd = 0.0;   //!< all accounts, at the final barrier
    std::uint64_t events_scheduled = 0;
    std::uint64_t events_processed = 0;
    std::uint64_t events_cancelled = 0;
    std::uint64_t events_pending = 0;
    std::uint32_t windows = 0;      //!< barriers executed
};

/**
 * The sharded platform: a fixed lane partition of one datacenter
 * trial with window-barrier capacity exchange. Create accounts and
 * services up front, then run() one op script to completion.
 */
class ShardedPlatform
{
  public:
    explicit ShardedPlatform(const ShardedConfig &cfg,
                             obs::TrialSet *obs_set = nullptr);
    ~ShardedPlatform();

    ShardedPlatform(const ShardedPlatform &) = delete;
    ShardedPlatform &operator=(const ShardedPlatform &) = delete;

    /** Fixed lane count (independent of shards/threads). */
    std::uint32_t laneCount() const
    {
        return static_cast<std::uint32_t>(lanes_.size());
    }

    const Fleet &fleet() const { return *fleet_; }

    /**
     * Register an account. The home shard defaults to the same hash
     * of the (global) account id the standalone orchestrator uses, so
     * unpinned accounts land on partition-invariant lanes.
     */
    AccountId createAccount(std::optional<std::uint32_t> shard = {},
                            std::uint32_t quota_per_service = 1000);

    ServiceId deployService(AccountId account, ExecEnv env,
                            ContainerSize size = sizes::kSmall);

    std::uint32_t laneOfAccount(AccountId account) const;
    std::uint32_t laneOfService(ServiceId service) const;

    /** Lane an op partitions onto (account lane for account-keyed ops). */
    std::uint32_t laneForOp(const ShardOp &op) const;

    /**
     * Execute @p ops (timestamps non-decreasing per lane) through the
     * window loop, running barriers until at least @p horizon and
     * every op has been applied. Events scheduled beyond the last
     * barrier stay pending (they are counted, not lost). May be called
     * again with more ops: the window sequence continues from the last
     * barrier, so a run split into phases is byte-identical to the
     * same script run in one call.
     */
    void run(std::vector<ShardOp> ops, sim::SimTime horizon);

    /**
     * Stepping API underneath run(), exposed so a driver can pause at
     * a window barrier — the checkpoint capture point (docs/
     * checkpoint.md). beginRun() partitions the ops and arms the run;
     * each window is then advanceWindow() (lanes run to the barrier;
     * their capacity deltas are still unfolded — the pre-fold capture
     * point) followed by completeWindow() (deltas fold, the window
     * commits). running() turns false once the horizon is reached with
     * every op consumed.
     */
    void beginRun(std::vector<ShardOp> ops, sim::SimTime horizon);
    void advanceWindow();
    void completeWindow();
    bool running() const { return running_; }

    /**
     * Finish an in-flight run to completion — the restore path: a
     * snapshot captured pre-fold restores with pending_fold set, so
     * the first step folds the captured deltas, then the window loop
     * continues exactly where the captured run stood.
     */
    void resumeRun();

    /**
     * Append more script to an in-flight run — the time-travel fork
     * path (docs/testing.md): a restored run gets a divergent suffix
     * before resumeRun(). Ops partition onto lanes after the script
     * already loaded, so each op must not precede its lane's current
     * tail, and every op must land strictly after the barrier the
     * image was captured at (appending at-or-before the pending fold
     * would change which window folds it). @p horizon extends the run
     * horizon when later than the captured one. Under planted fault 6
     * every lane re-arms its admission dispatch timers from the stale
     * base startup estimate (Orchestrator::faultRearmDispatchTimers).
     */
    void appendOps(std::vector<ShardOp> ops, sim::SimTime horizon);

    /**
     * Canonical text log: per-lane traces, routed/restart/spend lines,
     * final spends and event counters in lane order, then the window
     * exchange digest. Byte-identical across (shards, threads) — the
     * unit the shard-equality oracle compares.
     */
    std::string renderLog() const;

    ShardedTotals totals() const;

    /**
     * Lane-order merge of every lane orchestrator's sloStats(): the
     * fleet-wide admission picture of the open-loop streams. Campaign
     * programs publish it as trigger counters (slo.p99_s and friends,
     * docs/load-engine.md) and quantiles come from
     * obs::histogramQuantile over the merged histograms.
     */
    SloStats sloTotals() const;

    /** The shared committed capacity table (tests: conservation). */
    const support::HostLoadSoA &committedLoad() const { return committed_; }

    /** A lane's orchestrator (tests: account/instance inspection). */
    const Orchestrator &laneOrchestrator(std::uint32_t lane) const;

  private:
    friend class eaao::snap::Snapshotter;

    /** One lane: a private event queue + orchestrator + log buffers. */
    struct Lane
    {
        explicit Lane(sim::SimTime epoch) : eq(epoch) {}

        sim::EventQueue eq;
        std::unique_ptr<Orchestrator> orch;
        PlacementTrace trace;

        std::vector<ShardOp> ops;
        std::size_t next_op = 0;

        // In-progress RouteStorm (may span several windows).
        const ShardOp *storm = nullptr;
        std::uint64_t storm_done = 0;
        sim::SimTime storm_t;

        /**
         * One active open-loop arrival stream. Generation is clamped
         * to the current window barrier, so no plain-closure arrival
         * event is ever pending at a capture point — the stream's
         * forward state is exactly the cursor (rng, origin, pending
         * instant), which the checkpointer serializes.
         */
        struct OpenLoopStream
        {
            std::size_t op_index = 0; //!< defining op in `ops`
            ArrivalCursor cursor;
            sim::Rng service_rng;
            sim::SimTime end;
            sim::SimTime gen_until;   //!< arrivals materialized so far
            sim::SimTime next_churn;
            std::uint64_t generated = 0;
        };
        std::vector<OpenLoopStream> open_loops;
        sim::SimTime window_stop; //!< current lane-window stop (not
                                  //!< serialized; set per window)

        std::vector<AccountId> accounts; //!< local ids, creation order
        std::vector<ServiceId> services;
        std::vector<InstanceId> created; //!< local ids, creation order
        std::size_t trace_scanned = 0;   //!< created-list scan cursor

        std::vector<std::string> routed;
        std::vector<std::string> restarted;
        std::vector<std::string> spend;
        std::uint64_t routed_count = 0;
        double spend_checksum = 0.0;
    };

    std::uint32_t groupCount() const;
    std::uint32_t groupLocalIndex(std::uint32_t lane) const;
    void ensurePool();
    void runWindow(sim::SimTime wend);
    void laneRunWindow(Lane &lane, sim::SimTime stop);
    bool runStorm(Lane &lane, sim::SimTime stop);
    void pumpOpenLoop(Lane &lane, std::size_t idx, sim::SimTime stop);
    void applyOp(Lane &lane, const ShardOp &op);
    void foldBarrier(std::uint32_t window_index);
    void noteCreated(Lane &lane);
    bool allOpsConsumed() const;

    ShardedConfig cfg_;
    std::unique_ptr<Fleet> fleet_;
    support::HostLoadSoA committed_; //!< window-start capacity snapshot
    std::vector<std::unique_ptr<Lane>> lanes_;
    std::unique_ptr<exp::ThreadPool> pool_;
    obs::TrialSet *obs_set_ = nullptr; //!< not owned; may be null

    /** Global id -> (lane, lane-local id). */
    std::vector<std::pair<std::uint32_t, AccountId>> acct_map_;
    std::vector<std::pair<std::uint32_t, ServiceId>> svc_map_;

    std::vector<std::string> exchange_log_; //!< window fold digests
    std::uint32_t windows_run_ = 0;
    sim::SimTime final_now_;

    // Window-loop state (live between beginRun and the end of a run;
    // serialized by the checkpointer so a restored run resumes).
    sim::SimTime run_horizon_;
    sim::SimTime next_wend_;
    bool running_ = false;
    bool pending_fold_ = false; //!< advanceWindow ran, fold outstanding
};

} // namespace eaao::faas

#endif // EAAO_FAAS_SHARDED_HPP
