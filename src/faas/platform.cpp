/**
 * @file
 * Implementation of the platform facade.
 */

#include "faas/platform.hpp"

#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "support/logging.hpp"

namespace eaao::faas {

Platform::Platform(const PlatformConfig &cfg)
    : cfg_(cfg), eq_(cfg.epoch), root_rng_(cfg.seed),
      meas_rng_(root_rng_.fork(0x4d454153ULL)) // "MEAS"
{
    sim::Rng fleet_rng = root_rng_.fork(0x464c4545ULL); // "FLEE"
    fleet_ = std::make_unique<Fleet>(cfg.profile, cfg.tsc, cfg.timing,
                                     cfg.epoch, fleet_rng);
    orch_ = std::make_unique<Orchestrator>(
        *fleet_, eq_, cfg.orchestrator, cfg.profile, cfg.pricing,
        root_rng_.fork(0x4f524348ULL), cfg.obs); // "ORCH"

    EAAO_OBS_INSTANT(cfg_.obs, "platform.up", "platform", cfg.epoch,
                     {obs::TraceArg::u64("hosts", fleet_->size()),
                      obs::TraceArg::u64("shards", fleet_->shardCount())});
#if EAAO_OBS_ENABLED
    if (cfg_.obs.metrics != nullptr) {
        obs::Histogram *uptime = cfg_.obs.metrics->histogram(
            "fleet.host_uptime_days", obs::uptimeDaysBuckets());
        for (hw::HostId hid = 0; hid < fleet_->size(); ++hid) {
            uptime->observe(
                (cfg.epoch - fleet_->host(hid).tsc().bootTime()).daysF());
        }
    }
#endif
}

AccountId
Platform::createAccount(std::optional<std::uint32_t> shard,
                        std::uint32_t quota_per_service)
{
    return orch_->createAccount(shard, quota_per_service);
}

void
Platform::setAccountQuota(AccountId account,
                          std::uint32_t quota_per_service)
{
    orch_->setAccountQuota(account, quota_per_service);
}

ServiceId
Platform::deployService(AccountId account, ExecEnv env,
                        ContainerSize size)
{
    return orch_->deployService(account, env, size);
}

void
Platform::redeployService(ServiceId service)
{
    orch_->redeployService(service);
}

std::vector<InstanceId>
Platform::connect(ServiceId service, std::uint32_t n)
{
    return orch_->scaleOut(service, n);
}

void
Platform::disconnectAll(ServiceId service)
{
    orch_->disconnectAll(service);
}

SandboxView
Platform::sandbox(InstanceId id)
{
    EAAO_ASSERT(instanceInfo(id).state != InstanceState::Terminated,
                "sandbox of a terminated instance");
    return SandboxView(*this, id);
}

void
Platform::advance(sim::Duration d)
{
    eq_.advance(d);
}

double
Platform::accountSpendUsd(AccountId id) const
{
    return orch_->accountSpendUsd(id);
}

hw::HostId
Platform::oracleHostOf(InstanceId id) const
{
    return orch_->instance(id).host;
}

const InstanceRecord &
Platform::instanceInfo(InstanceId id) const
{
    return orch_->instance(id);
}

std::optional<sim::SimTime>
Platform::terminatedAt(InstanceId id) const
{
    return orch_->instance(id).terminated_at;
}

InstanceId
Platform::restartInstance(InstanceId id)
{
    return orch_->restartInstance(id);
}

} // namespace eaao::faas
