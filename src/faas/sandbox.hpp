/**
 * @file
 * Sandboxed view of the host: what an attacker program running inside a
 * container instance can actually observe.
 *
 * Gen 1 (gVisor-style): system calls are emulated and host metadata is
 * hidden, but unprivileged instructions hit real hardware — cpuid shows
 * the host CPU model and rdtsc reads the host's invariant TSC.
 *
 * Gen 2 (lightweight VM): cpuid is trapped (no host model), the TSC is
 * offset so it appears to start at VM boot, but the counter still ticks
 * at the host's true rate and the kernel-refined host TSC frequency is
 * exported to the guest for timekeeping (readable with in-guest root).
 */

#ifndef EAAO_FAAS_SANDBOX_HPP
#define EAAO_FAAS_SANDBOX_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "faas/types.hpp"
#include "sim/time.hpp"

namespace eaao::faas {

class Platform;

/** An rdtsc read paired with a clock_gettime sample. */
struct TimestampSample
{
    std::uint64_t tsc = 0;    //!< counter value the guest observed
    sim::SimTime wall;        //!< wall-clock value returned by the OS
};

/**
 * Handle through which attacker code interacts with one instance's
 * sandboxed environment.
 */
class SandboxView
{
  public:
    SandboxView(Platform &platform, InstanceId id);

    /** The instance this view belongs to. */
    InstanceId instanceId() const { return id_; }

    /** Execution environment generation. */
    ExecEnv env() const;

    /**
     * CPU model string via cpuid. Gen 1 reveals the host model (with
     * its labeled base frequency); Gen 2 returns a virtualized stub.
     */
    std::string cpuModelName() const;

    /**
     * Read rdtsc and clock_gettime back-to-back.
     *
     * The wall value carries the sandbox's pairing-delay noise; in
     * Gen 2 the tsc value is offset to the VM's boot.
     */
    TimestampSample readTimestamp();

    /**
     * Method-2 frequency measurement (Section 4.2): read the TSC twice
     * @p interval apart, @p reps times, deriving one frequency sample
     * per repetition. Advances virtual time by reps * interval.
     *
     * On ~10% of hosts ("noisy timers") the samples scatter by
     * 10 kHz - MHz; elsewhere they are tight (<~100 Hz).
     */
    std::vector<double> measureTscFrequency(sim::Duration interval,
                                            std::uint32_t reps);

    /**
     * The kernel-refined host TSC frequency (1 kHz granularity).
     * Only accessible in Gen 2, where the guest kernel exposes it;
     * asserts on Gen 1 (the sandboxed container cannot reach it).
     * Under hardware TSC scaling this returns the (useless) nominal
     * rate instead of the host's true refined frequency.
     */
    double refinedTscFrequencyHz() const;

    /**
     * Cost of one high-precision timer access in this sandbox. Native
     * rdtsc is ~25 ns; under the Gen 1 trap-and-emulate mitigation the
     * kernel round-trip raises it by ~50x (Section 6).
     */
    sim::Duration timerAccessCost() const;

  private:
    Platform *platform_;
    InstanceId id_;
};

} // namespace eaao::faas

#endif // EAAO_FAAS_SANDBOX_HPP
