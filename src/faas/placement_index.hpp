/**
 * @file
 * Incremental per-account placement index.
 *
 * Wraps a support::MinLoadTree over one account's base-host preference
 * order so that the orchestrator's cold placement (`pickBaseHost`) can
 * find the least-loaded host of a demand-sized prefix without
 * re-scanning the prefix and re-querying the per-host load tables per
 * candidate. Loads are folded in incrementally on every instance
 * create/terminate; the tree is rebuilt whenever the preference order
 * itself is re-jittered (at most once per launch — the same cadence at
 * which the order was already being rebuilt).
 *
 * Selection semantics are identical to the legacy scan: first position
 * in order carrying the minimal load of this account, skipping hosts
 * without capacity (see min_load_tree.hpp for why the tree's argmin
 * reproduces the first-strict-improvement tie-break).
 */

#ifndef EAAO_FAAS_PLACEMENT_INDEX_HPP
#define EAAO_FAAS_PLACEMENT_INDEX_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/host.hpp"
#include "support/min_load_tree.hpp"

namespace eaao::faas {

/** Min-load view over one account's base-host order. */
class PlacementMinIndex
{
  public:
    /**
     * Rebuild for a (possibly re-jittered) preference @p order.
     * @p load_of returns the account's current live-instance count on
     * a host. @p fleet_size bounds host ids.
     */
    template <typename LoadOf>
    void
    rebuild(const std::vector<hw::HostId> &order, std::size_t fleet_size,
            LoadOf &&load_of)
    {
        if (pos_of_host_.size() != fleet_size)
            pos_of_host_.assign(fleet_size, -1);
        // Preference orders are permutations of a fixed membership (the
        // account's home shard), so overwriting the members' slots
        // leaves no stale positions behind.
        loads_.resize(order.size());
        for (std::size_t i = 0; i < order.size(); ++i) {
            pos_of_host_[order[i]] = static_cast<std::int32_t>(i);
            loads_[i] = load_of(order[i]);
        }
        tree_.assign(loads_);
    }

    /** Fold in @p host's new load (no-op for hosts off the order). */
    void
    noteLoad(hw::HostId host, std::uint32_t load)
    {
        if (host >= pos_of_host_.size())
            return;
        const std::int32_t pos = pos_of_host_[host];
        if (pos >= 0)
            tree_.update(static_cast<std::size_t>(pos), load);
    }

    /**
     * First host of order[0..prefix) with minimal load that @p accept
     * allows, or nullopt when every prefix host is rejected.
     */
    template <typename Accept>
    std::optional<hw::HostId>
    pickMin(const std::vector<hw::HostId> &order, std::size_t prefix,
            Accept &&accept) const
    {
        const auto pos = tree_.minInPrefix(
            prefix, [&](std::size_t p) { return accept(order[p]); });
        if (!pos)
            return std::nullopt;
        return order[*pos];
    }

  private:
    std::vector<std::int32_t> pos_of_host_;
    std::vector<std::uint32_t> loads_; //!< rebuild scratch
    support::MinLoadTree tree_;
};

} // namespace eaao::faas

#endif // EAAO_FAAS_PLACEMENT_INDEX_HPP
