/**
 * @file
 * Cloud Run-style pricing model (paper Section 4.3).
 *
 * Cost of a standard instance: N * t * (Rcpu * vcpus + Rmem * memory_gb),
 * where t is the *active* time in seconds — idle instances are free.
 * Rates default to the paper's published us-east1/us-central1/us-west1
 * values: Rcpu = 0.0024 cents per vCPU-second, Rmem = 0.00025 cents per
 * GB-second.
 */

#ifndef EAAO_FAAS_PRICING_HPP
#define EAAO_FAAS_PRICING_HPP

#include "faas/types.hpp"

namespace eaao::faas {

/** Billing rates in USD per resource-second. */
struct PricingModel
{
    double cpu_usd_per_vcpu_s = 0.0024 / 100.0;  //!< ¢0.0024/vCPU-s
    double mem_usd_per_gb_s = 0.00025 / 100.0;   //!< ¢0.00025/GB-s

    /** USD per active second for one instance of @p size. */
    double
    usdPerActiveSecond(const ContainerSize &size) const
    {
        return cpu_usd_per_vcpu_s * size.vcpus +
               mem_usd_per_gb_s * size.memory_gb;
    }

    /** Total cost for @p n instances active for @p seconds each. */
    double
    usdFor(const ContainerSize &size, double n, double seconds) const
    {
        return n * seconds * usdPerActiveSecond(size);
    }
};

} // namespace eaao::faas

#endif // EAAO_FAAS_PRICING_HPP
