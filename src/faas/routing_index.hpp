/**
 * @file
 * Incremental request-routing index.
 *
 * `routeRequest` used to scan a service's whole active list per
 * request to find the least-loaded instance with spare concurrency —
 * O(active instances) per request, the dominant cost of request-heavy
 * campaigns. This index keeps every active instance in one ordered set
 * keyed by `(service, in_flight, activation seq)`, so the least-loaded
 * routable instance of a service is a single lower_bound away.
 *
 * Determinism: the legacy scan picks the *first* instance in
 * active-list order among those with the minimal `in_flight`. An
 * instance's position in the active list is fixed at activation
 * (entries are only appended and erased, never reordered), so a
 * monotonically increasing activation sequence number reproduces the
 * list order exactly — the set's `(in_flight, seq)` minimum is the
 * same instance the scan finds, byte for byte.
 */

#ifndef EAAO_FAAS_ROUTING_INDEX_HPP
#define EAAO_FAAS_ROUTING_INDEX_HPP

#include <cstdint>
#include <set>
#include <tuple>

#include "faas/types.hpp"

namespace eaao::faas {

/** Ordered view of active instances for O(log) least-loaded routing. */
class RoutingIndex
{
  public:
    struct Entry
    {
        ServiceId service = 0;
        std::uint32_t in_flight = 0;
        std::uint64_t seq = 0;
        InstanceId id = kNoInstance; //!< payload, not part of the key
    };

    struct Less
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return std::tie(a.service, a.in_flight, a.seq) <
                   std::tie(b.service, b.in_flight, b.seq);
        }
    };

    /** Register a newly activated instance; returns its sequence key. */
    std::uint64_t
    add(ServiceId service, InstanceId id, std::uint32_t in_flight)
    {
        const std::uint64_t seq = next_seq_++;
        set_.insert(Entry{service, in_flight, seq, id});
        return seq;
    }

    /** Re-key an instance after its in_flight count changed. */
    void
    reindex(ServiceId service, InstanceId id, std::uint64_t seq,
            std::uint32_t old_in_flight, std::uint32_t new_in_flight)
    {
        set_.erase(Entry{service, old_in_flight, seq, id});
        set_.insert(Entry{service, new_in_flight, seq, id});
    }

    /** Drop a deactivating instance. */
    void
    remove(ServiceId service, std::uint32_t in_flight, std::uint64_t seq)
    {
        set_.erase(Entry{service, in_flight, seq, kNoInstance});
    }

    /**
     * Least-loaded active instance of @p service with spare
     * concurrency under @p max_concurrency, or kNoInstance.
     */
    InstanceId
    leastLoaded(ServiceId service, std::uint32_t max_concurrency) const
    {
        const auto it = set_.lower_bound(Entry{service, 0, 0, 0});
        if (it == set_.end() || it->service != service ||
            it->in_flight >= max_concurrency)
            return kNoInstance;
        return it->id;
    }

    std::size_t size() const { return set_.size(); }

    /** Next activation sequence key (checkpoint capture). */
    std::uint64_t nextSeq() const { return next_seq_; }

    /**
     * Reset to an empty set with @p next_seq as the next activation
     * key; entries are re-inserted from restored instance records via
     * insertRestored() (checkpoint restore).
     */
    void
    resetForRestore(std::uint64_t next_seq)
    {
        set_.clear();
        next_seq_ = next_seq;
    }

    /** Re-insert an entry with its original sequence key. */
    void
    insertRestored(ServiceId service, InstanceId id, std::uint32_t in_flight,
                   std::uint64_t seq)
    {
        set_.insert(Entry{service, in_flight, seq, id});
    }

  private:
    std::uint64_t next_seq_ = 1;
    std::set<Entry, Less> set_;
};

} // namespace eaao::faas

#endif // EAAO_FAAS_ROUTING_INDEX_HPP
