/**
 * @file
 * Implementation of the request workload generators.
 */

#include "faas/workload.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/logging.hpp"

namespace eaao::faas {

namespace {

/** Shared mutable run state captured by the event closures. */
struct RunState
{
    WorkloadStats stats;
    std::uint32_t in_flight = 0;
};

/** Issue one request and track statistics. */
void
issue(Platform &platform, ServiceId service, sim::Duration service_time,
      const std::shared_ptr<RunState> &state)
{
    const InstanceId id =
        platform.orchestrator().routeRequest(service, service_time);
    ++state->stats.requests;
    state->stats.instances_used.insert(id);
    ++state->in_flight;
    state->stats.peak_concurrent =
        std::max(state->stats.peak_concurrent, state->in_flight);
    platform.clock().scheduleAfter(service_time, [state] {
        --state->in_flight;
    });
}

} // namespace

WorkloadStats
driveLoad(Platform &platform, ServiceId service, const LoadSpec &spec,
          sim::Rng &rng)
{
    EAAO_ASSERT(spec.rps > 0.0, "non-positive arrival rate");
    EAAO_ASSERT(spec.span.ns() > 0, "empty load span");

    auto state = std::make_shared<RunState>();
    const sim::SimTime start = platform.now();
    const sim::SimTime end = start + spec.span;
    const double span_s = spec.span.secondsF();

    // Pre-roll the arrival instants (thinning for the ramp), then
    // schedule them; service times are drawn per arrival.
    const double max_rate =
        spec.peak_rps > spec.rps ? spec.peak_rps : spec.rps;
    double t = 0.0;
    while (true) {
        t += rng.exponential(1.0 / max_rate);
        if (t >= span_s)
            break;
        if (spec.peak_rps > spec.rps) {
            const double rate_at =
                spec.rps + (spec.peak_rps - spec.rps) * (t / span_s);
            if (!rng.bernoulli(rate_at / max_rate))
                continue; // thinned out
        }
        const sim::Duration service_time = sim::Duration::fromSecondsF(
            std::max(1e-4, rng.exponential(
                               spec.mean_service_time.secondsF())));
        platform.clock().scheduleAt(
            start + sim::Duration::fromSecondsF(t),
            [&platform, service, service_time, state] {
                issue(platform, service, service_time, state);
            });
    }

    platform.clock().runUntil(end);
    return state->stats;
}

WorkloadStats
floodRequests(Platform &platform, ServiceId service, std::uint32_t count,
              sim::Duration service_time, sim::Duration spacing,
              sim::Rng &rng)
{
    (void)rng; // kept for interface symmetry / future jitter
    auto state = std::make_shared<RunState>();
    const sim::SimTime start = platform.now();
    for (std::uint32_t i = 0; i < count; ++i) {
        platform.clock().scheduleAt(
            start + spacing * static_cast<std::int64_t>(i),
            [&platform, service, service_time, state] {
                issue(platform, service, service_time, state);
            });
    }
    platform.clock().runUntil(
        start + spacing * static_cast<std::int64_t>(count));
    return state->stats;
}

// ------------------------------------------------------- ArrivalCursor

namespace {

/** Bounded-Pareto shape; 1 < alpha < 2 gives the classic heavy tail
 *  with a finite mean. */
constexpr double kParetoAlpha = 1.5;

/** Mean of min(X, cap) for X ~ Pareto(x_m = 1, alpha). */
double
boundedParetoMean(double cap, double alpha)
{
    return alpha / (alpha - 1.0) *
               (1.0 - std::pow(cap, 1.0 - alpha)) +
           std::pow(cap, -alpha) * cap;
}

} // namespace

ArrivalCursor::ArrivalCursor(const ArrivalSpec &spec, sim::Rng rng,
                             sim::SimTime origin)
    : spec_(spec), rng_(rng), origin_(origin), next_(origin)
{
    EAAO_ASSERT(spec_.rate_rps > 0.0, "non-positive arrival rate");
    EAAO_ASSERT(spec_.burst_factor >= 1.0, "burst factor below 1");
    advance(); // pre-draw the first instant
}

void
ArrivalCursor::advance()
{
    const double mean_gap_s = 1.0 / spec_.rate_rps;
    switch (spec_.kind) {
    case ArrivalKind::Poisson:
        next_ = next_ + sim::Duration::fromSecondsF(
                            std::max(1e-9, rng_.exponential(mean_gap_s)));
        return;
    case ArrivalKind::Diurnal: {
        // Non-homogeneous Poisson by thinning: candidates at the peak
        // rate, accepted with probability lambda(t)/lambda_peak.
        // lambda(t) = r * 2/(1+b) * (1 + (b-1) * s(t)) with
        // s(t) = (1 - cos(2*pi*t/span)) / 2, so the rate swings between
        // 2r/(1+b) and 2rb/(1+b) over one span-long cycle, mean r.
        const double b = spec_.burst_factor;
        const double peak_rate = spec_.rate_rps * 2.0 * b / (1.0 + b);
        const double span_s = spec_.span.secondsF();
        while (true) {
            next_ = next_ +
                    sim::Duration::fromSecondsF(std::max(
                        1e-9, rng_.exponential(1.0 / peak_rate)));
            const double t = (next_ - origin_).secondsF();
            const double s =
                0.5 * (1.0 - std::cos(2.0 * M_PI * t / span_s));
            const double rate = spec_.rate_rps * 2.0 / (1.0 + b) *
                                (1.0 + (b - 1.0) * s);
            if (rng_.bernoulli(rate / peak_rate))
                return;
        }
    }
    case ArrivalKind::Pareto: {
        // Bounded Pareto normalized to the configured mean: gaps are
        // mean_gap * min(u^(-1/alpha), cap) / E[min(X, cap)], so bursts
        // of short gaps alternate with rare cap-length lulls while the
        // long-run rate stays exactly rate_rps.
        const double cap = 100.0 * spec_.burst_factor;
        const double norm = boundedParetoMean(cap, kParetoAlpha);
        const double u = std::max(rng_.uniform(), 1e-12);
        const double raw =
            std::min(std::pow(u, -1.0 / kParetoAlpha), cap);
        next_ = next_ + sim::Duration::fromSecondsF(
                            std::max(1e-9, mean_gap_s * raw / norm));
        return;
    }
    }
    EAAO_FATAL("unknown arrival kind ",
               static_cast<std::uint32_t>(spec_.kind));
}

void
ArrivalCursor::generateUntil(sim::SimTime until,
                             std::vector<sim::SimTime> &out)
{
    while (next_ < until) {
        out.push_back(next_);
        advance();
    }
}

void
ArrivalCursor::restore(const sim::RngState &rng, sim::SimTime origin,
                       sim::SimTime next)
{
    rng_.restoreState(rng);
    origin_ = origin;
    next_ = next;
}

// ------------------------------------------------------- ArrivalEngine

struct ArrivalEngine::EngineState
{
    Platform *platform = nullptr;
    ServiceId service = 0;
    ArrivalSpec spec;
    ArrivalCursor cursor;
    sim::Rng service_rng;      //!< independent service-time stream
    sim::SimTime start;
    sim::SimTime end;
    sim::SimTime window_end;   //!< generated up to here
    sim::SimTime next_churn;
    std::uint64_t generated = 0;
    std::vector<sim::SimTime> scratch;
};

ArrivalEngine::ArrivalEngine(Platform &platform, ServiceId service,
                             const ArrivalSpec &spec, sim::Rng rng)
    : state_(std::make_shared<EngineState>())
{
    EAAO_ASSERT(spec.span.ns() > 0, "empty arrival span");
    EAAO_ASSERT(spec.window.ns() > 0, "empty generation window");
    state_->platform = &platform;
    state_->service = service;
    state_->spec = spec;
    state_->start = platform.now();
    state_->end = state_->start + spec.span;
    state_->window_end = state_->start;
    state_->cursor =
        ArrivalCursor(spec, rng.fork(0x0a1e0001), state_->start);
    state_->service_rng = rng.fork(0x0a1e0002);
    state_->next_churn = spec.churn_every.ns() > 0
                             ? state_->start + spec.churn_every
                             : sim::SimTime::fromNanos(
                                   std::numeric_limits<std::int64_t>::max());
}

void
ArrivalEngine::start()
{
    pump(state_);
}

sim::SimTime
ArrivalEngine::end() const
{
    return state_->end;
}

std::uint64_t
ArrivalEngine::generated() const
{
    return state_->generated;
}

void
ArrivalEngine::pump(const std::shared_ptr<EngineState> &st)
{
    Platform &platform = *st->platform;
    const sim::SimTime wend =
        std::min(st->window_end + st->spec.window, st->end);

    st->scratch.clear();
    st->cursor.generateUntil(wend, st->scratch);
    const double mean_service_s = st->spec.mean_service_time.secondsF();
    for (const sim::SimTime at : st->scratch) {
        const sim::Duration service_time = sim::Duration::fromSecondsF(
            std::max(1e-4, st->service_rng.exponential(mean_service_s)));
        platform.clock().scheduleAt(at, [st, service_time] {
            ++st->generated;
            st->platform->orchestrator().admitRequest(st->service,
                                                      service_time);
        });
    }

    // Connection churn boundaries falling inside this window.
    while (st->next_churn < wend) {
        const sim::SimTime when = st->next_churn;
        platform.clock().scheduleAt(when, [st] {
            st->platform->orchestrator().disconnectAll(st->service);
        });
        st->next_churn = when + st->spec.churn_every;
    }

    st->window_end = wend;
    if (wend < st->end)
        platform.clock().scheduleAt(wend, [st] { pump(st); });
}

} // namespace eaao::faas
