/**
 * @file
 * Implementation of the request workload generators.
 */

#include "faas/workload.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace eaao::faas {

namespace {

/** Shared mutable run state captured by the event closures. */
struct RunState
{
    WorkloadStats stats;
    std::uint32_t in_flight = 0;
};

/** Issue one request and track statistics. */
void
issue(Platform &platform, ServiceId service, sim::Duration service_time,
      const std::shared_ptr<RunState> &state)
{
    const InstanceId id =
        platform.orchestrator().routeRequest(service, service_time);
    ++state->stats.requests;
    state->stats.instances_used.insert(id);
    ++state->in_flight;
    state->stats.peak_concurrent =
        std::max(state->stats.peak_concurrent, state->in_flight);
    platform.clock().scheduleAfter(service_time, [state] {
        --state->in_flight;
    });
}

} // namespace

WorkloadStats
driveLoad(Platform &platform, ServiceId service, const LoadSpec &spec,
          sim::Rng &rng)
{
    EAAO_ASSERT(spec.rps > 0.0, "non-positive arrival rate");
    EAAO_ASSERT(spec.span.ns() > 0, "empty load span");

    auto state = std::make_shared<RunState>();
    const sim::SimTime start = platform.now();
    const sim::SimTime end = start + spec.span;
    const double span_s = spec.span.secondsF();

    // Pre-roll the arrival instants (thinning for the ramp), then
    // schedule them; service times are drawn per arrival.
    const double max_rate =
        spec.peak_rps > spec.rps ? spec.peak_rps : spec.rps;
    double t = 0.0;
    while (true) {
        t += rng.exponential(1.0 / max_rate);
        if (t >= span_s)
            break;
        if (spec.peak_rps > spec.rps) {
            const double rate_at =
                spec.rps + (spec.peak_rps - spec.rps) * (t / span_s);
            if (!rng.bernoulli(rate_at / max_rate))
                continue; // thinned out
        }
        const sim::Duration service_time = sim::Duration::fromSecondsF(
            std::max(1e-4, rng.exponential(
                               spec.mean_service_time.secondsF())));
        platform.clock().scheduleAt(
            start + sim::Duration::fromSecondsF(t),
            [&platform, service, service_time, state] {
                issue(platform, service, service_time, state);
            });
    }

    platform.clock().runUntil(end);
    return state->stats;
}

WorkloadStats
floodRequests(Platform &platform, ServiceId service, std::uint32_t count,
              sim::Duration service_time, sim::Duration spacing,
              sim::Rng &rng)
{
    (void)rng; // kept for interface symmetry / future jitter
    auto state = std::make_shared<RunState>();
    const sim::SimTime start = platform.now();
    for (std::uint32_t i = 0; i < count; ++i) {
        platform.clock().scheduleAt(
            start + spacing * static_cast<std::int64_t>(i),
            [&platform, service, service_time, state] {
                issue(platform, service, service_time, state);
            });
    }
    platform.clock().runUntil(
        start + spacing * static_cast<std::int64_t>(count));
    return state->stats;
}

} // namespace eaao::faas
