/**
 * @file
 * Shared identifiers and configuration value types for the FaaS platform.
 */

#ifndef EAAO_FAAS_TYPES_HPP
#define EAAO_FAAS_TYPES_HPP

#include <cstdint>
#include <string>

namespace eaao::faas {

/** Identifier of a platform account (tenant). */
using AccountId = std::uint32_t;

/** Identifier of a deployed service (function). */
using ServiceId = std::uint32_t;

/** Identifier of a container instance. */
using InstanceId = std::uint64_t;

/** Sentinel for "no instance". */
inline constexpr InstanceId kNoInstance = ~0ULL;

/**
 * Execution environment generation (paper Section 2.3).
 */
enum class ExecEnv {
    Gen1, //!< gVisor-style Linux container, no hardware virtualization
    Gen2, //!< lightweight VM with TSC offsetting
};

/** Render an ExecEnv for reports. */
const char *toString(ExecEnv env);

/**
 * Container resource specification (paper Table 1).
 */
struct ContainerSize
{
    const char *name;  //!< human-readable label
    double vcpus;      //!< CPU request
    double memory_gb;  //!< memory request
};

/** The four evaluation sizes of Table 1. */
namespace sizes {

inline constexpr ContainerSize kPico{"Pico", 0.25, 0.25};
inline constexpr ContainerSize kSmall{"Small", 1.0, 0.5};
inline constexpr ContainerSize kMedium{"Medium", 2.0, 1.0};
inline constexpr ContainerSize kLarge{"Large", 4.0, 4.0};

} // namespace sizes

/** Lifecycle state of a container instance. */
enum class InstanceState {
    Active,     //!< serving at least one connection/request
    Idle,       //!< no connections; minimally billed; reapable
    Terminated, //!< destroyed by the orchestrator
};

/** Render an InstanceState for reports. */
const char *toString(InstanceState state);

} // namespace eaao::faas

#endif // EAAO_FAAS_TYPES_HPP
