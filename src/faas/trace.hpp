/**
 * @file
 * Placement tracing: an optional observer recording every placement
 * decision the orchestrator takes, with its reason.
 *
 * Used by experiments that validate the placement model (which path
 * produced a host: base, helper, spill, overflow, reuse) and handy for
 * debugging new data-center profiles.
 */

#ifndef EAAO_FAAS_TRACE_HPP
#define EAAO_FAAS_TRACE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "faas/types.hpp"
#include "hw/host.hpp"
#include "sim/time.hpp"

namespace eaao::faas {

/** Which placement path produced an instance's host. */
enum class PlacementReason {
    ColdBase,     //!< base-host prefix (cold service)
    HotHelper,    //!< base+helper spread (hot service)
    ColdSpill,    //!< dynamic-DC cold leak
    ColdOverflow, //!< home shard full, spilled to helpers while cold
    Reuse,        //!< an idle instance was reconnected/rewoken
};

/** Number of PlacementReason values (for per-reason tables). */
inline constexpr std::size_t kPlacementReasonCount = 5;

/** Render a PlacementReason for reports. */
const char *toString(PlacementReason reason);

/** One recorded placement decision. */
struct PlacementEvent
{
    sim::SimTime when;
    InstanceId instance = kNoInstance;
    ServiceId service = 0;
    AccountId account = 0;
    hw::HostId host = 0;
    PlacementReason reason = PlacementReason::ColdBase;
};

/**
 * Collector of placement events.
 */
class PlacementTrace
{
  public:
    /** Record one event. */
    void
    record(const PlacementEvent &event)
    {
        events_.push_back(event);
    }

    /** All events, in order. */
    const std::vector<PlacementEvent> &events() const { return events_; }

    /** Number of events with the given reason. */
    std::size_t countByReason(PlacementReason reason) const;

    /** Drop all recorded events. */
    void clear() { events_.clear(); }

  private:
    std::vector<PlacementEvent> events_;
};

} // namespace eaao::faas

#endif // EAAO_FAAS_TRACE_HPP
