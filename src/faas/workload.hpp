/**
 * @file
 * Request workload generation (paper Section 2.2 background).
 *
 * FaaS functions are web services invoked through public interfaces;
 * demand drives autoscaling. The generators here schedule open-loop
 * Poisson request arrivals on the platform's event queue — used both
 * for realistic victim services and for the threat-model capability
 * that the attacker can invoke the victim's public interface.
 */

#ifndef EAAO_FAAS_WORKLOAD_HPP
#define EAAO_FAAS_WORKLOAD_HPP

#include <cstdint>
#include <memory>
#include <set>

#include "faas/platform.hpp"
#include "faas/types.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace eaao::faas {

/** Outcome of one load-generation run. */
struct WorkloadStats
{
    std::uint64_t requests = 0;           //!< arrivals issued
    std::set<InstanceId> instances_used;  //!< distinct serving instances
    std::uint32_t peak_concurrent = 0;    //!< max simultaneous requests
};

/** An open-loop request source. */
struct LoadSpec
{
    double rps = 10.0;                       //!< mean arrival rate
    sim::Duration mean_service_time = sim::Duration::millis(200);
    sim::Duration span = sim::Duration::minutes(5);

    /**
     * Optional peak: the rate ramps linearly from rps to peak_rps over
     * the span (peak_rps <= 0 keeps the rate constant).
     */
    double peak_rps = 0.0;
};

/**
 * Schedule Poisson arrivals for @p service per @p spec and run the
 * platform through the whole span.
 *
 * Service times are exponential around the configured mean. Arrival
 * scheduling and the platform's own events interleave on the shared
 * queue, so autoscaling, idle reaping and billing all behave exactly
 * as they would under the connection-based drivers.
 *
 * @param rng Stream for arrival/service-time draws.
 * @return Aggregate statistics of the run.
 */
WorkloadStats driveLoad(Platform &platform, ServiceId service,
                        const LoadSpec &spec, sim::Rng &rng);

/**
 * Fire a fixed number of near-simultaneous requests (a flood), e.g.
 * the attacker hammering a victim's public endpoint to force it to
 * scale out. Requests are spaced @p spacing apart; the call returns
 * after the last arrival has been issued (in-flight requests keep
 * running on the queue).
 */
WorkloadStats floodRequests(Platform &platform, ServiceId service,
                            std::uint32_t count,
                            sim::Duration service_time,
                            sim::Duration spacing, sim::Rng &rng);

} // namespace eaao::faas

#endif // EAAO_FAAS_WORKLOAD_HPP
