/**
 * @file
 * Request workload generation (paper Section 2.2 background).
 *
 * FaaS functions are web services invoked through public interfaces;
 * demand drives autoscaling. The generators here schedule open-loop
 * Poisson request arrivals on the platform's event queue — used both
 * for realistic victim services and for the threat-model capability
 * that the attacker can invoke the victim's public interface.
 */

#ifndef EAAO_FAAS_WORKLOAD_HPP
#define EAAO_FAAS_WORKLOAD_HPP

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "faas/platform.hpp"
#include "faas/types.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace eaao::faas {

/** Outcome of one load-generation run. */
struct WorkloadStats
{
    std::uint64_t requests = 0;           //!< arrivals issued
    std::set<InstanceId> instances_used;  //!< distinct serving instances
    std::uint32_t peak_concurrent = 0;    //!< max simultaneous requests
};

/** An open-loop request source. */
struct LoadSpec
{
    double rps = 10.0;                       //!< mean arrival rate
    sim::Duration mean_service_time = sim::Duration::millis(200);
    sim::Duration span = sim::Duration::minutes(5);

    /**
     * Optional peak: the rate ramps linearly from rps to peak_rps over
     * the span (peak_rps <= 0 keeps the rate constant).
     */
    double peak_rps = 0.0;
};

/**
 * Schedule Poisson arrivals for @p service per @p spec and run the
 * platform through the whole span.
 *
 * Service times are exponential around the configured mean. Arrival
 * scheduling and the platform's own events interleave on the shared
 * queue, so autoscaling, idle reaping and billing all behave exactly
 * as they would under the connection-based drivers.
 *
 * @param rng Stream for arrival/service-time draws.
 * @return Aggregate statistics of the run.
 */
WorkloadStats driveLoad(Platform &platform, ServiceId service,
                        const LoadSpec &spec, sim::Rng &rng);

/**
 * Fire a fixed number of near-simultaneous requests (a flood), e.g.
 * the attacker hammering a victim's public endpoint to force it to
 * scale out. Requests are spaced @p spacing apart; the call returns
 * after the last arrival has been issued (in-flight requests keep
 * running on the queue).
 */
WorkloadStats floodRequests(Platform &platform, ServiceId service,
                            std::uint32_t count,
                            sim::Duration service_time,
                            sim::Duration spacing, sim::Rng &rng);

/** Arrival-process families of the open-loop engine. */
enum class ArrivalKind : std::uint8_t
{
    Poisson = 0, //!< homogeneous: exponential inter-arrival gaps
    Diurnal = 1, //!< sinusoidal rate over one span-long cycle (thinning)
    Pareto = 2   //!< bounded-Pareto gaps: bursts with a heavy tail
};

/**
 * One tenant's open-loop arrival stream. Unlike LoadSpec (whose
 * driver pre-rolls every instant up front and routes through the
 * instant-scale-out path), an ArrivalSpec is consumed window by
 * window and lands on Orchestrator::admitRequest, so backpressure
 * and cold-start queueing apply. See docs/load-engine.md.
 */
struct ArrivalSpec
{
    ArrivalKind kind = ArrivalKind::Poisson;

    /** Mean offered load; exact for all three families. */
    double rate_rps = 100.0;

    /**
     * Diurnal: rate swings between 2r/(1+b) and 2rb/(1+b) (mean r).
     * Pareto: scales the gap cap (heavier usable tail); >= 1.
     * Poisson: ignored.
     */
    double burst_factor = 2.0;

    sim::Duration mean_service_time = sim::Duration::millis(200);
    sim::Duration span = sim::Duration::minutes(10);

    /** Arrivals are materialized one generation window at a time. */
    sim::Duration window = sim::Duration::seconds(30);

    /** Connection churn: disconnectAll() this often (0 = never). */
    sim::Duration churn_every = sim::Duration::nanos(0);
};

/**
 * Deterministic arrival-instant stream for one ArrivalSpec: the next
 * instant is always pre-drawn, so the stream can be cut at any window
 * boundary and resumed — including across checkpoint restore (the
 * sharded lanes serialize rng state, origin and the pending instant).
 */
class ArrivalCursor
{
  public:
    ArrivalCursor() = default;

    /** @p origin is t=0 of the stream (and of the diurnal phase). */
    ArrivalCursor(const ArrivalSpec &spec, sim::Rng rng,
                  sim::SimTime origin);

    /** Append every arrival instant < @p until to @p out. */
    void generateUntil(sim::SimTime until,
                       std::vector<sim::SimTime> &out);

    /** The pre-drawn next arrival instant. */
    sim::SimTime next() const { return next_; }

    /** @name Checkpoint plumbing (see snap::Snapshotter) @{ */
    sim::RngState rngState() const { return rng_.saveState(); }
    sim::SimTime origin() const { return origin_; }
    void restore(const sim::RngState &rng, sim::SimTime origin,
                 sim::SimTime next);
    /** @} */

  private:
    /** Draw the gap to the arrival after next_ and advance. */
    void advance();

    ArrivalSpec spec_;
    sim::Rng rng_;
    sim::SimTime origin_;
    sim::SimTime next_;
};

/**
 * Open-loop arrival engine: batched-window generation of admitRequest
 * arrivals for one service. start() parks one cursor event on the
 * queue; each firing materializes the next window's arrivals (instants
 * from the arrival stream, service times from an independent forked
 * stream) and re-arms itself — so memory stays O(window), not O(span),
 * and the near-future arrivals sit in the timing wheel's fast path.
 *
 * The engine only schedules; drive the platform with clock().run() or
 * runUntil() as usual. Outcome accounting accumulates in the
 * orchestrator's sloStats().
 */
class ArrivalEngine
{
  public:
    ArrivalEngine(Platform &platform, ServiceId service,
                  const ArrivalSpec &spec, sim::Rng rng);

    /** Schedule the first generation window. */
    void start();

    /** First instant with no generation or arrival left to run. */
    sim::SimTime end() const;

    /** Arrivals handed to admitRequest so far. */
    std::uint64_t generated() const;

  private:
    struct EngineState;
    static void pump(const std::shared_ptr<EngineState> &st);

    std::shared_ptr<EngineState> state_;
};

} // namespace eaao::faas

#endif // EAAO_FAAS_WORKLOAD_HPP
