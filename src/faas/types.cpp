/**
 * @file
 * String renderings for FaaS value types.
 */

#include "faas/types.hpp"

namespace eaao::faas {

const char *
toString(ExecEnv env)
{
    switch (env) {
      case ExecEnv::Gen1:
        return "Gen1";
      case ExecEnv::Gen2:
        return "Gen2";
    }
    return "?";
}

const char *
toString(InstanceState state)
{
    switch (state) {
      case InstanceState::Active:
        return "Active";
      case InstanceState::Idle:
        return "Idle";
      case InstanceState::Terminated:
        return "Terminated";
    }
    return "?";
}

} // namespace eaao::faas
