/**
 * @file
 * Implementation of the data-center fleet.
 */

#include "faas/fleet.hpp"

#include <algorithm>
#include <cmath>

#include "sim/distributions.hpp"
#include "support/logging.hpp"

namespace eaao::faas {

DataCenterProfile
DataCenterProfile::usEast1()
{
    DataCenterProfile p;
    p.name = "us-east1";
    p.host_count = 520;
    p.shard_size = 110;
    p.helper_chunk = 55;
    p.per_launch_jitter = 0.0;
    return p;
}

DataCenterProfile
DataCenterProfile::usCentral1()
{
    DataCenterProfile p;
    p.name = "us-central1";
    p.host_count = 1850;
    p.shard_size = 110;
    p.helper_chunk = 280;
    p.per_launch_jitter = 70.0; // noticeably dynamic placement (§5.1)
    p.cold_spill_fraction = 0.15;
    return p;
}

DataCenterProfile
DataCenterProfile::usWest1()
{
    DataCenterProfile p;
    p.name = "us-west1";
    p.host_count = 210;
    p.shard_size = 105;
    p.helper_chunk = 20;
    p.per_launch_jitter = 0.0;
    return p;
}

Fleet::Fleet(const DataCenterProfile &profile, const hw::TscConfig &tsc_cfg,
             const hw::TimingNoiseConfig &timing_cfg, sim::SimTime epoch,
             sim::Rng &rng)
{
    const std::uint32_t n = profile.host_count;
    EAAO_ASSERT(n > 0, "empty fleet");
    EAAO_ASSERT(profile.shard_size > 0, "zero shard size");

    shard_count_ = (n + profile.shard_size - 1) / profile.shard_size;
    shard_hosts_.resize(shard_count_);
    hosts_.reserve(n);
    shard_of_.resize(n);
    pop_rank_.resize(n);

    // Maintenance-wave instants in the recent past.
    std::vector<double> wave_ages_s;
    for (std::uint32_t w = 0; w < profile.wave_count; ++w) {
        wave_ages_s.push_back(
            rng.uniform(0.5, profile.wave_span_days) * 86400.0);
    }

    const sim::SignedLogNormalMixture label_error{
        tsc_cfg.label_tail_fraction, tsc_cfg.label_core_median_hz,
        tsc_cfg.label_core_sigma, tsc_cfg.label_tail_median_hz,
        tsc_cfg.label_tail_sigma};

    for (std::uint32_t i = 0; i < n; ++i) {
        // SKU: pick per shard so a shard is moderately homogeneous, with
        // some mixing — affects the CPU-model component of fingerprints.
        const std::uint32_t shard = i / profile.shard_size;
        const std::uint64_t shard_seed = sim::mix64(shard * 2654435761ULL);
        hw::SkuId sku_id;
        if (rng.bernoulli(0.75)) {
            sku_id = static_cast<hw::SkuId>(shard_seed % catalog_.size());
        } else {
            sku_id = static_cast<hw::SkuId>(
                rng.uniformInt(static_cast<std::uint64_t>(
                    catalog_.size())));
        }

        // Boot time: maintenance wave vs exponential spread.
        double age_s;
        if (rng.bernoulli(profile.wave_fraction)) {
            const auto w = static_cast<std::size_t>(
                rng.uniformInt(static_cast<std::uint64_t>(
                    wave_ages_s.size())));
            age_s = wave_ages_s[w] + rng.normal(0.0, profile.wave_sigma_s);
            age_s = std::max(age_s, 3600.0);
        } else {
            age_s = 3600.0 + rng.exponential(
                                 profile.uptime_mean_days * 86400.0);
        }
        const sim::SimTime boot =
            epoch - sim::Duration::fromSecondsF(age_s);

        hosts_.emplace_back(static_cast<hw::HostId>(i), sku_id,
                            catalog_.get(sku_id), boot,
                            label_error.sample(rng), tsc_cfg, timing_cfg,
                            rng);
        shard_of_[i] = shard;
        shard_hosts_[shard].push_back(static_cast<hw::HostId>(i));
    }

    // Popularity: a random permutation within each shard defines the
    // rank order the orchestrator's bin-packing preference follows.
    for (auto &members : shard_hosts_) {
        std::vector<std::size_t> order(members.size());
        for (std::size_t k = 0; k < members.size(); ++k)
            order[k] = k;
        sim::shuffle(rng, order);
        std::vector<hw::HostId> reordered(members.size());
        for (std::size_t k = 0; k < members.size(); ++k)
            reordered[k] = members[order[k]];
        members = std::move(reordered);
        for (std::size_t k = 0; k < members.size(); ++k)
            pop_rank_[members[k]] = static_cast<std::uint32_t>(k);
    }
}

hw::HostMachine &
Fleet::host(hw::HostId id)
{
    EAAO_ASSERT(id < hosts_.size(), "bad host id ", id);
    return hosts_[id];
}

const hw::HostMachine &
Fleet::host(hw::HostId id) const
{
    EAAO_ASSERT(id < hosts_.size(), "bad host id ", id);
    return hosts_[id];
}

std::uint32_t
Fleet::shardOf(hw::HostId id) const
{
    EAAO_ASSERT(id < shard_of_.size(), "bad host id ", id);
    return shard_of_[id];
}

const std::vector<hw::HostId> &
Fleet::shardHosts(std::uint32_t shard) const
{
    EAAO_ASSERT(shard < shard_hosts_.size(), "bad shard ", shard);
    return shard_hosts_[shard];
}

std::uint32_t
Fleet::popularityRank(hw::HostId id) const
{
    EAAO_ASSERT(id < pop_rank_.size(), "bad host id ", id);
    return pop_rank_[id];
}

} // namespace eaao::faas
