/**
 * @file
 * Implementation of the orchestrator.
 */

#include "faas/orchestrator.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "sim/distributions.hpp"
#include "support/logging.hpp"

namespace eaao::faas {

Orchestrator::Orchestrator(Fleet &fleet, sim::EventQueue &eq,
                           const OrchestratorConfig &cfg,
                           const DataCenterProfile &profile,
                           const PricingModel &pricing, sim::Rng rng,
                           obs::Observer obs)
    : fleet_(fleet), eq_(eq), cfg_(cfg), profile_(profile),
      pricing_(pricing), rng_(rng), obs_(obs)
{
    host_load_.assign(fleet_.size());
    acct_load_.resize(fleet_.size());
    svc_load_.resize(fleet_.size());

    slo_.latency_s.bounds = obs::requestLatencyBucketsS();
    slo_.latency_s.counts.assign(slo_.latency_s.bounds.size() + 1, 0);
    slo_.cold_wait_s.bounds = obs::coldWaitBucketsS();
    slo_.cold_wait_s.counts.assign(slo_.cold_wait_s.bounds.size() + 1, 0);

#if EAAO_OBS_ENABLED
    if (obs_.metrics != nullptr) {
        // Resolve handles once; record sites only null-check.
        static const char *const kReasonCounters[kPlacementReasonCount] = {
            "faas.placements.cold_base",    "faas.placements.hot_helper",
            "faas.placements.cold_spill",   "faas.placements.cold_overflow",
            "faas.placements.reuse",
        };
        for (std::size_t i = 0; i < kPlacementReasonCount; ++i)
            c_placements_[i] = obs_.metrics->counter(kReasonCounters[i]);
        c_reaps_ = obs_.metrics->counter("faas.reaps");
        c_requests_ = obs_.metrics->counter("faas.requests");
        h_cold_start_s_ = obs_.metrics->histogram(
            "faas.cold_start_s", obs::coldStartBucketsS());
        h_instances_per_host_ = obs_.metrics->histogram(
            "faas.instances_per_host", obs::instancesPerHostBuckets());
        h_helper_churn_ = obs_.metrics->histogram(
            "faas.helper_churn", obs::churnFractionBuckets());
        h_request_latency_s_ = obs_.metrics->histogram(
            "faas.request_latency_s", obs::requestLatencyBucketsS());
        h_cold_wait_s_ = obs_.metrics->histogram(
            "faas.cold_wait_s", obs::coldWaitBucketsS());
    }
#endif
}

AccountId
Orchestrator::createAccount(std::optional<std::uint32_t> shard,
                            std::uint32_t quota_per_service)
{
    AccountRecord acct;
    acct.id = static_cast<AccountId>(accounts_.size());
    acct.quota_per_service = quota_per_service;
    if (shard) {
        EAAO_ASSERT(*shard < fleet_.shardCount(), "bad shard ", *shard);
        acct.shard = *shard;
    } else {
        acct.shard = static_cast<std::uint32_t>(
            sim::mix64(acct.id * 0x9e3779b97f4a7c15ULL + 17) %
            fleet_.shardCount());
    }
    sim::Rng stream = rng_.fork(0x8a5e000000000000ULL + acct.id);
    acct.base_order =
        buildBaseOrder(acct, profile_.base_order_jitter, stream);
    accounts_.push_back(std::move(acct));
    base_index_.emplace_back();
    acct_active_.emplace_back();
    if (!cfg_.reference_scan)
        rebuildBaseIndex(accounts_.back());
    return accounts_.back().id;
}

ServiceId
Orchestrator::deployService(AccountId account, ExecEnv env,
                            ContainerSize size)
{
    EAAO_ASSERT(account < accounts_.size(), "bad account ", account);
    ServiceRecord svc;
    svc.id = static_cast<ServiceId>(services_.size());
    svc.account = account;
    svc.env = env;
    svc.size = size;
    svc.helper_seed =
        sim::mix64(0x5e1fbeef00000000ULL + svc.id * 2654435761ULL);
    svc.helper_order =
        buildHelperOrder(accounts_[account].shard, svc.helper_seed);
    svc.spill_order = buildSpillOrder(accounts_[account].shard,
                                      sim::mix64(svc.helper_seed));
    services_.push_back(std::move(svc));
    admission_.emplace_back();
    if (cfg_.reference_scan)
        svc_host_load_.emplace_back();
    else
        svc_host_load_.emplace_back(fleet_.size(), 0u);
    return services_.back().id;
}

void
Orchestrator::redeployService(ServiceId service)
{
    EAAO_ASSERT(service < services_.size(), "bad service ", service);
    // A fresh container image does not change the account-affine
    // placement behaviour the paper observed (Experiment 2 variant), so
    // preferences and demand history are retained.
}

std::uint32_t
Orchestrator::hotness(const ServiceRecord &svc) const
{
    const sim::SimTime cutoff = eq_.now() - cfg_.demand_window;
    std::uint32_t h = 0;
    for (const auto &[when, n] : svc.bursts) {
        if (when >= cutoff && n >= cfg_.hot_burst_min)
            ++h;
    }
    return std::min(h, cfg_.hotness_cap);
}

void
Orchestrator::setAccountQuota(AccountId account,
                              std::uint32_t quota_per_service)
{
    EAAO_ASSERT(account < accounts_.size(), "bad account ", account);
    accounts_[account].quota_per_service = quota_per_service;
}

std::vector<InstanceId>
Orchestrator::scaleOut(ServiceId service, std::uint32_t n)
{
    EAAO_ASSERT(service < services_.size(), "bad service ", service);
    ServiceRecord &svc = services_[service];
    AccountRecord &acct = accounts_[svc.account];

    // Per-service concurrency quota: the platform refuses to scale a
    // service beyond the account's cap.
    if (n > acct.quota_per_service) {
        warn("service ", service, " clamped to quota ",
             acct.quota_per_service, " (requested ", n, ")");
        n = acct.quota_per_service;
    }

    // Hotness is judged from *prior* demand within the window; the
    // current burst does not count toward its own placement.
    const std::uint32_t h = hotness(svc);
    refreshPreferences(svc, acct);

    // Prune expired bursts and record this one.
    const sim::SimTime cutoff = eq_.now() - cfg_.demand_window;
    while (!svc.bursts.empty() && svc.bursts.front().first < cutoff)
        svc.bursts.pop_front();
    svc.bursts.emplace_back(eq_.now(), n);

    EAAO_OBS_INSTANT(obs_, "orch.scale_out", "placement", eq_.now(),
                     {obs::TraceArg::u64("service", svc.id),
                      obs::TraceArg::u64("requested", n),
                      obs::TraceArg::u64("hotness", h)});

    // Reuse idle instances first (most-recently idled first).
    while (svc.active.size() < n && !svc.idle.empty()) {
        const InstanceId id = svc.idle.back();
        svc.idle.pop_back();
        InstanceRecord &inst = instances_[id];
        EAAO_ASSERT(inst.state == InstanceState::Idle,
                    "non-idle instance on idle list");
        if (inst.reap_event != 0) {
            eq_.cancel(inst.reap_event);
            inst.reap_event = 0;
        }
        inst.state = InstanceState::Active;
        inst.state_since = eq_.now();
        svc.active.push_back(id);
        noteActivated(svc, inst);
        if (trace_ != nullptr) {
            trace_->record(PlacementEvent{eq_.now(), id, svc.id,
                                          inst.account, inst.host,
                                          PlacementReason::Reuse});
        }
        EAAO_OBS_COUNT(
            c_placements_[static_cast<std::size_t>(PlacementReason::Reuse)],
            1);
        EAAO_OBS_INSTANT(obs_, "instance.reuse", "placement", eq_.now(),
                         {obs::TraceArg::u64("instance", id),
                          obs::TraceArg::u64("service", svc.id),
                          obs::TraceArg::u64("host", inst.host)});
    }

    // Create the shortfall.
    while (svc.active.size() < n)
        createInstance(svc, h);

    return svc.active;
}

void
Orchestrator::disconnectAll(ServiceId service)
{
    EAAO_ASSERT(service < services_.size(), "bad service ", service);
    ServiceRecord &svc = services_[service];
    std::vector<InstanceId> still_busy;
    for (const InstanceId id : svc.active) {
        InstanceRecord &inst = instances_[id];
        if (inst.in_flight > 0) {
            // A request is mid-flight; the instance idles when its
            // last request completes.
            still_busy.push_back(id);
            continue;
        }
        if (!cfg_.reference_scan)
            routing_.remove(svc.id, inst.in_flight, inst.route_seq);
        settleActiveTime(inst);
        inst.state = InstanceState::Idle;
        inst.state_since = eq_.now();
        svc.idle.push_back(id);
        scheduleReap(inst);
    }
    svc.active = std::move(still_busy);
}

void
Orchestrator::setMaxConcurrency(ServiceId service, std::uint32_t limit)
{
    EAAO_ASSERT(service < services_.size(), "bad service ", service);
    EAAO_ASSERT(limit >= 1, "concurrency limit must be positive");
    services_[service].max_concurrency = limit;
}

InstanceId
Orchestrator::routeRequest(ServiceId service, sim::Duration service_time)
{
    EAAO_ASSERT(service < services_.size(), "bad service ", service);
    EAAO_ASSERT(service_time.ns() > 0, "non-positive service time");
    ServiceRecord &svc = services_[service];

    InstanceRecord *target = findWarmTarget(svc);

    // 3. Scale out by one instance.
    if (target == nullptr) {
        const std::uint32_t h = hotness(svc);
        noteRequestCreation(svc);
        const InstanceId id = createInstance(svc, h);
        target = &instances_[id];
    }

    return occupy(svc, *target, service_time);
}

InstanceRecord *
Orchestrator::findWarmTarget(ServiceRecord &svc)
{
    // 1. An active instance with spare concurrency. The routing index
    // yields the same instance the legacy scan found: lowest in_flight,
    // active-list order (== activation sequence) breaking ties.
    InstanceRecord *target = nullptr;
    if (cfg_.reference_scan) {
        for (const InstanceId id : svc.active) {
            InstanceRecord &inst = instances_[id];
            if (inst.in_flight < svc.max_concurrency &&
                (target == nullptr ||
                 inst.in_flight < target->in_flight)) {
                target = &inst;
            }
        }
    } else {
        InstanceId best =
            routing_.leastLoaded(svc.id, svc.max_concurrency);
        if (cfg_.fault_injection == 1) {
            // Injected bug (mutation self-test): drop the
            // lowest-in-flight rule and grab the most recently
            // activated instance that still has spare concurrency.
            best = kNoInstance;
            for (const InstanceId id : svc.active) {
                if (instances_[id].in_flight < svc.max_concurrency)
                    best = id;
            }
        }
        if (best != kNoInstance)
            target = &instances_[best];
    }

    // 2. Wake an idle instance (most recently idled first).
    if (target == nullptr && !svc.idle.empty()) {
        const InstanceId id = svc.idle.back();
        svc.idle.pop_back();
        InstanceRecord &inst = instances_[id];
        if (inst.reap_event != 0) {
            eq_.cancel(inst.reap_event);
            inst.reap_event = 0;
        }
        inst.state = InstanceState::Active;
        inst.state_since = eq_.now();
        svc.active.push_back(id);
        noteActivated(svc, inst);
        target = &inst;
    }

    return target;
}

InstanceId
Orchestrator::occupy(ServiceRecord &svc, InstanceRecord &target,
                     sim::Duration service_time)
{
    const std::uint32_t old_in_flight = target.in_flight;
    ++target.in_flight;
    if (!cfg_.reference_scan) {
        routing_.reindex(svc.id, target.id, target.route_seq,
                         old_in_flight, target.in_flight);
    }
    ++svc.requests_served;
    EAAO_OBS_COUNT(c_requests_, 1);
    const InstanceId id = target.id;
    eq_.scheduleAfter(service_time, sim::EventTag{kEventTagComplete, id},
                      [this, id] { completeRequest(id); });
    return id;
}

AdmissionResult
Orchestrator::admitRequest(ServiceId service, sim::Duration service_time)
{
    EAAO_ASSERT(service < services_.size(), "bad service ", service);
    EAAO_ASSERT(service_time.ns() > 0, "non-positive service time");
    ServiceRecord &svc = services_[service];
    ++slo_.admitted;

    if (InstanceRecord *target = findWarmTarget(svc)) {
        ++slo_.served_warm;
        slo_.latency_s.observe(service_time.secondsF());
        EAAO_OBS_OBSERVE(h_request_latency_s_, service_time.secondsF());
        const InstanceId id = occupy(svc, *target, service_time);
        return {AdmissionOutcome::Served, id};
    }

    // Cold path: instead of materializing an instance instantly (the
    // closed-loop routeRequest semantics), the request waits out a
    // cold start in the service's admission queue.
    AdmissionQueue &aq = admission_[service];
    AdmissionOutcome outcome = AdmissionOutcome::Queued;
    if (aq.q.size() >= cfg_.admission_depth &&
        cfg_.shed_policy != ShedPolicy::Queue) {
        if (cfg_.shed_policy == ShedPolicy::Reject) {
            ++slo_.rejected;
            return {AdmissionOutcome::Rejected, kNoInstance};
        }
        // ShedOldest: the head's cold start is abandoned with it.
        aq.q.pop_front();
        if (aq.dispatch_event != 0) {
            eq_.cancel(aq.dispatch_event);
            aq.dispatch_event = 0;
        }
        ++slo_.shed;
        outcome = AdmissionOutcome::Shed;
    }
    aq.q.push_back(QueuedRequest{eq_.now(), service_time});
    ++slo_.queued;
    if (aq.dispatch_event == 0)
        armDispatch(svc);
    return {outcome, kNoInstance};
}

std::size_t
Orchestrator::admissionBacklog(ServiceId service) const
{
    EAAO_ASSERT(service < services_.size(), "bad service ", service);
    return admission_[service].q.size();
}

double
Orchestrator::startupEstimateS(const ServiceRecord &svc) const
{
    double startup = svc.env == ExecEnv::Gen1
                         ? cfg_.startup_billable_s_gen1
                         : cfg_.startup_billable_s_gen2;
    // Creation slows as the service nears the 1000-instance limit
    // (the paper launched 800 per burst to dodge exactly this).
    const std::size_t svc_live = svc.active.size() + svc.idle.size();
    if (svc_live > cfg_.creation_slowdown_threshold) {
        const double excess = static_cast<double>(
            svc_live - cfg_.creation_slowdown_threshold);
        startup *= 1.0 + cfg_.creation_slowdown_factor * excess / 200.0;
    }
    return startup;
}

void
Orchestrator::armDispatch(ServiceRecord &svc)
{
    AdmissionQueue &aq = admission_[svc.id];
    EAAO_ASSERT(!aq.q.empty(), "arming dispatch on an empty queue");
    const ServiceId sid = svc.id;
    aq.dispatch_event = eq_.scheduleAfter(
        sim::Duration::fromSecondsF(startupEstimateS(svc)),
        sim::EventTag{kEventTagDispatch, sid},
        [this, sid] { dispatchQueued(sid); });
}

void
Orchestrator::faultRearmDispatchTimers()
{
    // Planted fault 6: the "restored" dispatch timers are re-armed
    // from the base startup estimate as if their cold starts began
    // right now — the creation-slowdown term and the wait already
    // served both evaporate. Only ShardedPlatform::appendOps (the
    // time-travel fork path) calls this, so straight replays of the
    // same script are unperturbed and only the fork oracles can see
    // the divergence. See docs/testing.md.
    for (ServiceRecord &svc : services_) {
        AdmissionQueue &aq = admission_[svc.id];
        if (aq.dispatch_event == 0)
            continue;
        eq_.cancel(aq.dispatch_event);
        const double base = svc.env == ExecEnv::Gen1
                                ? cfg_.startup_billable_s_gen1
                                : cfg_.startup_billable_s_gen2;
        const ServiceId sid = svc.id;
        aq.dispatch_event = eq_.scheduleAfter(
            sim::Duration::fromSecondsF(base),
            sim::EventTag{kEventTagDispatch, sid},
            [this, sid] { dispatchQueued(sid); });
    }
}

void
Orchestrator::dispatchQueued(ServiceId service)
{
    AdmissionQueue &aq = admission_[service];
    aq.dispatch_event = 0; // this timer just fired
    if (aq.q.empty())
        return;
    ServiceRecord &svc = services_[service];
    const QueuedRequest qr = aq.q.front();
    aq.q.pop_front();
    // Prefer warm capacity that appeared while the head waited; fall
    // back to materializing the instance whose cold start just ended.
    serveQueued(svc, qr, findWarmTarget(svc));
    if (!aq.q.empty())
        armDispatch(svc);
}

void
Orchestrator::maybeDispatchQueued(ServiceRecord &svc)
{
    AdmissionQueue &aq = admission_[svc.id];
    while (!aq.q.empty()) {
        InstanceRecord *target = findWarmTarget(svc);
        if (target == nullptr)
            break;
        const QueuedRequest qr = aq.q.front();
        aq.q.pop_front();
        if (aq.dispatch_event != 0) {
            eq_.cancel(aq.dispatch_event);
            aq.dispatch_event = 0;
        }
        serveQueued(svc, qr, target);
    }
    // The new head (if any) starts its own cold-start clock.
    if (!aq.q.empty() && aq.dispatch_event == 0)
        armDispatch(svc);
}

void
Orchestrator::serveQueued(ServiceRecord &svc, const QueuedRequest &qr,
                          InstanceRecord *target)
{
    if (target == nullptr) {
        const std::uint32_t h = hotness(svc);
        noteRequestCreation(svc);
        target = &instances_[createInstance(svc, h)];
    }
    const double wait_s = (eq_.now() - qr.enqueued_at).secondsF();
    const double latency_s = wait_s + qr.service_time.secondsF();
    ++slo_.dispatched;
    slo_.cold_wait_s.observe(wait_s);
    slo_.latency_s.observe(latency_s);
    EAAO_OBS_OBSERVE(h_cold_wait_s_, wait_s);
    EAAO_OBS_OBSERVE(h_request_latency_s_, latency_s);
    occupy(svc, *target, qr.service_time);
}

void
Orchestrator::completeRequest(InstanceId id)
{
    InstanceRecord &inst = instances_[id];
    if (inst.state == InstanceState::Terminated)
        return; // instance died with the request in flight
    EAAO_ASSERT(inst.in_flight > 0, "completion without request");
    const std::uint32_t old_in_flight = inst.in_flight;
    --inst.in_flight;
    if (inst.in_flight > 0 || inst.state != InstanceState::Active) {
        if (!cfg_.reference_scan &&
            inst.state == InstanceState::Active) {
            routing_.reindex(inst.service, id, inst.route_seq,
                             old_in_flight, inst.in_flight);
        }
        if (!admission_[inst.service].q.empty())
            maybeDispatchQueued(services_[inst.service]);
        return;
    }
    // Last request done: the instance releases its CPU and idles.
    ServiceRecord &svc = services_[inst.service];
    auto &act = svc.active;
    const auto it = std::find(act.begin(), act.end(), id);
    EAAO_ASSERT(it != act.end(), "active instance missing from list");
    act.erase(it);
    if (!cfg_.reference_scan)
        routing_.remove(inst.service, old_in_flight, inst.route_seq);
    settleActiveTime(inst);
    inst.state = InstanceState::Idle;
    inst.state_since = eq_.now();
    svc.idle.push_back(id);
    scheduleReap(inst);
    if (!admission_[svc.id].q.empty())
        maybeDispatchQueued(svc);
}

void
Orchestrator::noteRequestCreation(ServiceRecord &svc)
{
    // Aggregate request-driven scale-out into the same demand signal
    // launches produce: >= hot_burst_min creations within 5 minutes
    // count as one high-demand burst.
    const sim::SimTime now = eq_.now();
    svc.request_creations.push_back(now);
    const sim::SimTime cutoff = now - sim::Duration::minutes(5);
    while (!svc.request_creations.empty() &&
           svc.request_creations.front() < cutoff) {
        svc.request_creations.pop_front();
    }
    if (svc.request_creations.size() >= cfg_.hot_burst_min) {
        svc.bursts.emplace_back(
            now, static_cast<std::uint32_t>(
                     svc.request_creations.size()));
        svc.request_creations.clear();
    }
}

InstanceId
Orchestrator::restartInstance(InstanceId id)
{
    EAAO_ASSERT(id < instances_.size(), "bad instance ", id);
    InstanceRecord &old_inst = instances_[id];
    EAAO_ASSERT(old_inst.state != InstanceState::Terminated,
                "restarting a terminated instance");
    ServiceRecord &svc = services_[old_inst.service];
    const bool was_active = old_inst.state == InstanceState::Active;
    if (!was_active) {
        auto &idle = svc.idle;
        idle.erase(std::find(idle.begin(), idle.end(), id));
    }
    terminate(old_inst);
    const std::uint32_t h = hotness(svc);
    const InstanceId fresh = createInstance(svc, h);
    if (!was_active) {
        // createInstance places the replacement on the active list; an
        // idle predecessor yields an idle replacement.
        InstanceRecord &inst = instances_[fresh];
        auto &act = svc.active;
        act.erase(std::find(act.begin(), act.end(), fresh));
        if (!cfg_.reference_scan)
            routing_.remove(svc.id, inst.in_flight, inst.route_seq);
        settleActiveTime(inst);
        inst.state = InstanceState::Idle;
        inst.state_since = eq_.now();
        svc.idle.push_back(fresh);
        scheduleReap(inst);
    }
    return fresh;
}

const InstanceRecord &
Orchestrator::instance(InstanceId id) const
{
    EAAO_ASSERT(id < instances_.size(), "bad instance ", id);
    return instances_[id];
}

const ServiceRecord &
Orchestrator::service(ServiceId id) const
{
    EAAO_ASSERT(id < services_.size(), "bad service ", id);
    return services_[id];
}

const AccountRecord &
Orchestrator::account(AccountId id) const
{
    EAAO_ASSERT(id < accounts_.size(), "bad account ", id);
    return accounts_[id];
}

double
Orchestrator::accountSpendUsd(AccountId id) const
{
    EAAO_ASSERT(id < accounts_.size(), "bad account ", id);
    double usd = accounts_[id].spend_usd;
    // Add the bill still running on currently-active instances. The
    // account's active set is kept sorted by instance id, so the
    // indexed sum visits the same instances in the same order as the
    // full table scan — identical floating-point result.
    if (cfg_.reference_scan) {
        for (const auto &inst : instances_) {
            if (inst.account == id &&
                inst.state == InstanceState::Active) {
                const double s =
                    (eq_.now() - inst.state_since).secondsF();
                usd += s * pricing_.usdPerActiveSecond(inst.size);
            }
        }
    } else {
        for (const InstanceId iid : acct_active_[id]) {
            const InstanceRecord &inst = instances_[iid];
            const double s = (eq_.now() - inst.state_since).secondsF();
            usd += s * pricing_.usdPerActiveSecond(inst.size);
        }
    }
    return usd;
}

InstanceId
Orchestrator::createInstance(ServiceRecord &svc, std::uint32_t h)
{
    AccountRecord &acct = accounts_[svc.account];
    PlacementReason reason = PlacementReason::ColdBase;
    const hw::HostId host = pickHost(svc, acct, h, reason);

    InstanceRecord inst;
    inst.id = static_cast<InstanceId>(instances_.size());
    inst.service = svc.id;
    inst.account = svc.account;
    inst.host = host;
    inst.size = svc.size;
    inst.env = svc.env;
    inst.state = InstanceState::Active;
    inst.created_at = eq_.now();
    inst.state_since = eq_.now();
    if (svc.env == ExecEnv::Gen2) {
        // TSC offsetting: the hypervisor snapshots the host TSC at VM
        // boot so the guest sees a counter that starts near zero.
        inst.vm_tsc_offset = fleet_.host(host).tsc().idealRead(eq_.now());
    }

    // Startup time is billable (creations dominate the attack cost).
    const double startup = startupEstimateS(svc);
    inst.active_seconds += startup;
    acct.spend_usd += startup * pricing_.usdPerActiveSecond(inst.size);

    host_load_.add(host, inst.size.vcpus, inst.size.memory_gb);
    const std::uint32_t acct_on_host = ++acct_load_[host][inst.account];
    ++svc_load_[host][inst.service];
    ++acct.live_count;
    if (!cfg_.reference_scan) {
        base_index_[inst.account].noteLoad(host, acct_on_host);
        ++svc_host_load_[inst.service][host];
    }

    svc.active.push_back(inst.id);
    noteActivated(svc, inst);
    instances_.push_back(inst);
    if (trace_ != nullptr) {
        trace_->record(PlacementEvent{eq_.now(), inst.id, svc.id,
                                      inst.account, host, reason});
    }
    EAAO_OBS_COUNT(c_placements_[static_cast<std::size_t>(reason)], 1);
    EAAO_OBS_OBSERVE(h_cold_start_s_, startup);
    EAAO_OBS_OBSERVE(h_instances_per_host_,
                     static_cast<double>(acct_on_host));
    EAAO_OBS_INSTANT(obs_, "instance.create", "placement", eq_.now(),
                     {obs::TraceArg::u64("instance", inst.id),
                      obs::TraceArg::u64("service", svc.id),
                      obs::TraceArg::u64("account", svc.account),
                      obs::TraceArg::u64("host", host),
                      obs::TraceArg::str("reason", toString(reason)),
                      obs::TraceArg::f64("cold_start_s", startup)});
    return inst.id;
}

hw::HostId
Orchestrator::pickHost(const ServiceRecord &svc, const AccountRecord &acct,
                       std::uint32_t h, PlacementReason &reason) const
{
    if (h > 0) {
        // Hot service: the load balancer relieves the base hosts by
        // spreading new instances over helper hosts as well (Obs 5).
        if (auto host = pickHelperHost(svc, acct, h)) {
            reason = PlacementReason::HotHelper;
            return *host;
        }
        if (auto host = pickBaseHost(svc, acct)) {
            reason = PlacementReason::ColdBase;
            return *host;
        }
    } else {
        // Dynamic data centers leak a fraction of cold placements off
        // the base hosts (us-central1, §5.1/§5.2).
        if (profile_.cold_spill_fraction > 0.0 &&
            rng_.bernoulli(profile_.cold_spill_fraction)) {
            if (auto host = pickSpillHost(svc)) {
                reason = PlacementReason::ColdSpill;
                return *host;
            }
        }
        if (auto host = pickBaseHost(svc, acct)) {
            reason = PlacementReason::ColdBase;
            return *host;
        }
        // Cold overflow: demand beyond the home shard's capacity spills
        // into the helper layer.
        if (auto host = pickHelperHost(svc, acct, 1)) {
            reason = PlacementReason::ColdOverflow;
            return *host;
        }
    }
    EAAO_FATAL("data center out of capacity for service ", svc.id);
}

std::optional<hw::HostId>
Orchestrator::pickBaseHost(const ServiceRecord &svc,
                           const AccountRecord &acct) const
{
    if (cfg_.reference_scan)
        return pickBaseHostReference(svc, acct);

    const auto &order = acct.base_order;
    if (order.empty())
        return std::nullopt;

    // Demand-sized prefix: spread the account's live instances over
    // ceil(demand / spread_target) base hosts (Obs 1: ~10.7 per host).
    auto prefix = static_cast<std::size_t>(std::ceil(
        static_cast<double>(acct.live_count + 1) / cfg_.spread_target));
    prefix = std::clamp<std::size_t>(prefix, 1, order.size());
    if (cfg_.fault_injection == 2 && prefix > 1)
        --prefix; // injected bug (mutation self-test): prefix short by 1

    // The min-view's (load, position) key makes its argmin the first
    // prefix host carrying the minimal load — the host the reference
    // scan's first-strict-improvement rule selects.
    const PlacementMinIndex &index = base_index_[acct.id];
    while (true) {
        const auto host = index.pickMin(
            order, prefix,
            [&](hw::HostId hid) { return hasCapacity(hid, svc.size); });
        if (host)
            return host;
        if (prefix == order.size())
            return std::nullopt; // home shard is full
        prefix = std::min(prefix * 2, order.size());
    }
}

std::optional<hw::HostId>
Orchestrator::pickBaseHostReference(const ServiceRecord &svc,
                                    const AccountRecord &acct) const
{
    const auto &order = acct.base_order;
    if (order.empty())
        return std::nullopt;

    auto prefix = static_cast<std::size_t>(std::ceil(
        static_cast<double>(acct.live_count + 1) / cfg_.spread_target));
    prefix = std::clamp<std::size_t>(prefix, 1, order.size());

    while (true) {
        const hw::HostId *best = nullptr;
        std::uint32_t best_load = 0;
        for (std::size_t i = 0; i < prefix; ++i) {
            const hw::HostId hid = order[i];
            if (!hasCapacity(hid, svc.size))
                continue;
            const auto &loads = acct_load_[hid];
            const auto it = loads.find(acct.id);
            const std::uint32_t load = it == loads.end() ? 0 : it->second;
            if (best == nullptr || load < best_load) {
                best = &order[i];
                best_load = load;
            }
        }
        if (best != nullptr)
            return *best;
        if (prefix == order.size())
            return std::nullopt; // home shard is full
        prefix = std::min(prefix * 2, order.size());
    }
}

std::optional<hw::HostId>
Orchestrator::pickHelperHost(const ServiceRecord &svc,
                             const AccountRecord &acct,
                             std::uint32_t h) const
{
    const auto &helpers = svc.helper_order;
    if (helpers.empty())
        return std::nullopt;

    // Demand-sized base prefix (the load balancer relieves these hosts
    // but keeps using them)...
    auto base_prefix = static_cast<std::size_t>(std::ceil(
        static_cast<double>(acct.live_count + 1) / cfg_.spread_target));
    base_prefix =
        std::clamp<std::size_t>(base_prefix, 1, acct.base_order.size());
    // ...plus a helper prefix that grows with hotness and saturates.
    auto helper_prefix = static_cast<std::size_t>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(h) *
                                    profile_.helper_chunk,
                                helpers.size()));

    // Hoisted dense per-host loads of this service (indexed mode): one
    // array read per candidate instead of a SmallFlatMap lookup. The
    // scan itself is unchanged, so the selection is identical.
    const std::uint32_t *dense =
        cfg_.reference_scan ? nullptr : svc_host_load_[svc.id].data();

    while (true) {
        const hw::HostId *best = nullptr;
        std::uint32_t best_load = 0;
        auto consider = [&](const hw::HostId &hid) {
            if (!hasCapacity(hid, svc.size))
                return;
            std::uint32_t load;
            if (dense != nullptr) {
                load = dense[hid];
            } else {
                const auto &loads = svc_load_[hid];
                const auto it = loads.find(svc.id);
                load = it == loads.end() ? 0 : it->second;
            }
            if (best == nullptr || load < best_load) {
                best = &hid;
                best_load = load;
            }
        };
        for (std::size_t i = 0; i < base_prefix; ++i)
            consider(acct.base_order[i]);
        for (std::size_t i = 0; i < helper_prefix; ++i)
            consider(helpers[i]);
        if (best != nullptr)
            return *best;
        if (helper_prefix == helpers.size())
            return std::nullopt;
        helper_prefix = std::min(helper_prefix * 2, helpers.size());
    }
}

std::optional<hw::HostId>
Orchestrator::pickSpillHost(const ServiceRecord &svc) const
{
    // Leaked cold placements go to a small, service-specific random
    // set of hosts (NOT the popular helper layer): leaks of different
    // accounts therefore almost never collide, matching the paper's 0%
    // naive cross-account result in us-central1 — while a victim's own
    // leaks escape a same-shard attacker (the 81% case).
    const auto &order = svc.spill_order;
    if (order.empty())
        return std::nullopt;

    const double live =
        static_cast<double>(svc.active.size() + svc.idle.size());
    auto prefix = static_cast<std::size_t>(std::ceil(
        (live * profile_.cold_spill_fraction + 1.0) /
        cfg_.spread_target));
    prefix = std::clamp<std::size_t>(prefix, 1, order.size());

    const std::uint32_t *dense =
        cfg_.reference_scan ? nullptr : svc_host_load_[svc.id].data();

    while (true) {
        const hw::HostId *best = nullptr;
        std::uint32_t best_load = 0;
        for (std::size_t i = 0; i < prefix; ++i) {
            const hw::HostId hid = order[i];
            if (!hasCapacity(hid, svc.size))
                continue;
            std::uint32_t load;
            if (dense != nullptr) {
                load = dense[hid];
            } else {
                const auto &loads = svc_load_[hid];
                const auto it = loads.find(svc.id);
                load = it == loads.end() ? 0 : it->second;
            }
            if (best == nullptr || load < best_load) {
                best = &order[i];
                best_load = load;
            }
        }
        if (best != nullptr)
            return *best;
        if (prefix == order.size())
            return std::nullopt;
        prefix = std::min(prefix * 2, order.size());
    }
}

void
Orchestrator::scheduleReap(InstanceRecord &inst)
{
    // Idle lifetime: a ~2-minute hold, then an exponential tail, capped
    // at the documented 15-minute maximum (Fig. 6 / Obs 2).
    double tail_s = rng_.exponential(cfg_.idle_reap_mean_s);
    const double max_tail_s =
        (cfg_.idle_max - cfg_.idle_hold).secondsF();
    tail_s = std::min(tail_s, max_tail_s);
    const sim::Duration delay =
        cfg_.idle_hold + sim::Duration::fromSecondsF(tail_s);
    const InstanceId id = inst.id;
    inst.reap_event = eq_.scheduleAfter(
        delay, sim::EventTag{kEventTagReap, id}, [this, id] { reap(id); });
}

void
Orchestrator::reap(InstanceId id)
{
    InstanceRecord &inst = instances_[id];
    inst.reap_event = 0;
    if (inst.state != InstanceState::Idle)
        return;
    ServiceRecord &svc = services_[inst.service];
    auto &idle = svc.idle;
    idle.erase(std::find(idle.begin(), idle.end(), id));
    EAAO_OBS_COUNT(c_reaps_, 1);
    EAAO_OBS_INSTANT(
        obs_, "instance.reap", "lifecycle", eq_.now(),
        {obs::TraceArg::u64("instance", id),
         obs::TraceArg::f64("idle_s",
                            (eq_.now() - inst.state_since).secondsF())});
    terminate(inst);
}

void
Orchestrator::terminate(InstanceRecord &inst)
{
    EAAO_ASSERT(inst.state != InstanceState::Terminated,
                "double termination");
    settleActiveTime(inst);
    if (inst.reap_event != 0) {
        eq_.cancel(inst.reap_event);
        inst.reap_event = 0;
    }
    ServiceRecord &svc = services_[inst.service];
    if (inst.state == InstanceState::Active) {
        auto &act = svc.active;
        const auto it = std::find(act.begin(), act.end(), inst.id);
        if (it != act.end()) {
            act.erase(it);
            if (!cfg_.reference_scan)
                routing_.remove(svc.id, inst.in_flight, inst.route_seq);
        }
    }
    // Callers handling Idle instances remove them from svc.idle.

    AccountRecord &acct = accounts_[inst.account];
    host_load_.sub(inst.host, inst.size.vcpus, inst.size.memory_gb);
    auto &acct_loads = acct_load_[inst.host];
    const std::uint32_t acct_on_host = --acct_loads[inst.account];
    if (acct_on_host == 0)
        acct_loads.erase(inst.account);
    auto &svc_loads = svc_load_[inst.host];
    if (--svc_loads[inst.service] == 0)
        svc_loads.erase(inst.service);
    if (!cfg_.reference_scan) {
        base_index_[inst.account].noteLoad(inst.host, acct_on_host);
        --svc_host_load_[inst.service][inst.host];
    }
    EAAO_ASSERT(acct.live_count > 0, "live-count underflow");
    --acct.live_count;

    inst.state = InstanceState::Terminated;
    inst.state_since = eq_.now();
    inst.terminated_at = eq_.now();
    inst.in_flight = 0; // in-flight requests die with the instance

    EAAO_OBS_SPAN(obs_, "instance", "lifecycle", inst.created_at, eq_.now(),
                  {obs::TraceArg::u64("instance", inst.id),
                   obs::TraceArg::u64("service", inst.service),
                   obs::TraceArg::u64("account", inst.account),
                   obs::TraceArg::u64("host", inst.host)});
}

void
Orchestrator::settleActiveTime(InstanceRecord &inst)
{
    if (inst.state != InstanceState::Active)
        return;
    const double s = (eq_.now() - inst.state_since).secondsF();
    inst.active_seconds += s;
    accounts_[inst.account].spend_usd +=
        s * pricing_.usdPerActiveSecond(inst.size);
    // Every transition out of Active settles here, so this is the one
    // place the account's active set needs maintenance on exit.
    if (!cfg_.reference_scan) {
        auto &act = acct_active_[inst.account];
        const auto it =
            std::lower_bound(act.begin(), act.end(), inst.id);
        EAAO_ASSERT(it != act.end() && *it == inst.id,
                    "active set out of sync for instance ", inst.id);
        act.erase(it);
    }
}

void
Orchestrator::noteActivated(ServiceRecord &svc, InstanceRecord &inst)
{
    if (cfg_.reference_scan)
        return;
    inst.route_seq = routing_.add(svc.id, inst.id, inst.in_flight);
    auto &act = acct_active_[inst.account];
    act.insert(std::lower_bound(act.begin(), act.end(), inst.id),
               inst.id);
}

void
Orchestrator::rebuildBaseIndex(const AccountRecord &acct)
{
    base_index_[acct.id].rebuild(
        acct.base_order, fleet_.size(), [&](hw::HostId hid) {
            const auto &loads = acct_load_[hid];
            const auto it = loads.find(acct.id);
            return it == loads.end() ? 0u : it->second;
        });
}

bool
Orchestrator::hasCapacity(hw::HostId host, const ContainerSize &size) const
{
    const hw::HostMachine &machine = fleet_.host(host);
    const double usable_vcpus = static_cast<double>(machine.vcpus()) *
                                cfg_.host_usable_fraction;
    const double usable_mem_gb =
        machine.memoryGb() * cfg_.host_usable_memory_fraction;
    double used_vcpus = host_load_.vcpus(host);
    double used_mem_gb = host_load_.memGb(host);
    if (committed_load_ != nullptr) {
        used_vcpus += committed_load_->vcpus(host);
        used_mem_gb += committed_load_->memGb(host);
    }
    return used_vcpus + size.vcpus <= usable_vcpus &&
           used_mem_gb + size.memory_gb <= usable_mem_gb;
}

void
Orchestrator::attachCommittedLoad(const support::HostLoadSoA *committed)
{
    committed_load_ = committed;
    // Switching modes resets the local table: in sharded mode it holds
    // only the lane's not-yet-folded delta, with touch tracking on so
    // the barrier can drain it.
    host_load_.assign(fleet_.size(), committed != nullptr);
}

std::vector<hw::HostId>
Orchestrator::buildBaseOrder(const AccountRecord &acct, double jitter,
                             sim::Rng &rng) const
{
    const auto &members = fleet_.shardHosts(acct.shard);
    struct Keyed
    {
        double key;
        hw::HostId host;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(members.size());
    for (const hw::HostId hid : members) {
        const double key = static_cast<double>(fleet_.popularityRank(hid)) +
                           (jitter > 0.0 ? rng.normal(0.0, jitter) : 0.0);
        keyed.push_back({key, hid});
    }
    std::sort(keyed.begin(), keyed.end(),
              [](const Keyed &a, const Keyed &b) {
                  if (a.key != b.key)
                      return a.key < b.key;
                  return a.host < b.host;
              });
    std::vector<hw::HostId> order;
    order.reserve(keyed.size());
    for (const auto &k : keyed)
        order.push_back(k.host);
    return order;
}

std::vector<hw::HostId>
Orchestrator::buildHelperOrder(std::uint32_t home_shard,
                               std::uint64_t seed) const
{
    // Helper candidates: every host outside the home shard, ordered by
    // within-shard popularity with per-service jitter. The front of
    // every helper list thus interleaves the popular hosts of all
    // shards (which is what makes the optimized strategy cover victim
    // base hosts so well), while the jitter keeps helper sets of
    // different services overlapping-but-distinct (Observation 6).
    sim::Rng stream(seed);
    struct Keyed
    {
        double key;
        hw::HostId host;
    };
    std::vector<Keyed> keyed;
    for (hw::HostId hid = 0; hid < fleet_.size(); ++hid) {
        // Co-location-resistant scheduling flips the candidate set:
        // helpers may only come from the account's own shard.
        if (cfg_.isolate_accounts
                ? fleet_.shardOf(hid) != home_shard
                : fleet_.shardOf(hid) == home_shard)
            continue;
        const double key =
            static_cast<double>(fleet_.popularityRank(hid)) +
            stream.normal(0.0, profile_.helper_order_jitter);
        keyed.push_back({key, hid});
    }
    std::sort(keyed.begin(), keyed.end(),
              [](const Keyed &a, const Keyed &b) {
                  if (a.key != b.key)
                      return a.key < b.key;
                  return a.host < b.host;
              });
    std::vector<hw::HostId> out;
    out.reserve(keyed.size());
    for (const auto &k : keyed)
        out.push_back(k.host);
    return out;
}

std::vector<hw::HostId>
Orchestrator::buildSpillOrder(std::uint32_t home_shard,
                              std::uint64_t seed) const
{
    std::vector<hw::HostId> out;
    for (hw::HostId hid = 0; hid < fleet_.size(); ++hid) {
        const bool home = fleet_.shardOf(hid) == home_shard;
        if (cfg_.isolate_accounts ? home : !home)
            out.push_back(hid);
    }
    sim::Rng stream(seed);
    for (std::size_t i = out.size(); i > 1; --i) {
        const std::size_t j =
            stream.uniformInt(static_cast<std::uint64_t>(i));
        std::swap(out[i - 1], out[j]);
    }
    return out;
}

sim::EventQueue::Callback
Orchestrator::rebindEvent(std::uint32_t kind, std::uint64_t arg)
{
    const InstanceId id = arg;
    switch (kind) {
    case kEventTagComplete:
        return sim::EventQueue::Callback(
            [this, id] { completeRequest(id); });
    case kEventTagReap:
        return sim::EventQueue::Callback([this, id] { reap(id); });
    case kEventTagDispatch: {
        const ServiceId sid = static_cast<ServiceId>(arg);
        return sim::EventQueue::Callback(
            [this, sid] { dispatchQueued(sid); });
    }
    default:
        EAAO_FATAL("unknown event tag kind ", kind);
    }
}

void
Orchestrator::rebuildDerivedState()
{
    // Restores bypass deployService; queue contents (if any) are
    // restored separately by the snapshotter after this runs.
    admission_.resize(services_.size());
    acct_load_.assign(fleet_.size(),
                      support::SmallFlatMap<AccountId, std::uint32_t>{});
    svc_load_.assign(fleet_.size(),
                     support::SmallFlatMap<ServiceId, std::uint32_t>{});
    svc_host_load_.clear();
    svc_host_load_.reserve(services_.size());
    for (std::size_t i = 0; i < services_.size(); ++i) {
        if (cfg_.reference_scan)
            svc_host_load_.emplace_back();
        else
            svc_host_load_.emplace_back(fleet_.size(), 0u);
    }
    acct_active_.assign(accounts_.size(), {});
    // Keep the restored activation counter; re-key every Active
    // instance with its original route_seq.
    routing_.resetForRestore(routing_.nextSeq());
    for (const InstanceRecord &inst : instances_) {
        if (inst.state == InstanceState::Terminated)
            continue;
        ++acct_load_[inst.host][inst.account];
        ++svc_load_[inst.host][inst.service];
        if (!cfg_.reference_scan) {
            ++svc_host_load_[inst.service][inst.host];
            if (inst.state == InstanceState::Active) {
                routing_.insertRestored(inst.service, inst.id,
                                        inst.in_flight, inst.route_seq);
                // instances_ is id-ordered, so pushes arrive sorted.
                acct_active_[inst.account].push_back(inst.id);
            }
        }
    }
    base_index_.clear();
    base_index_.resize(accounts_.size());
    if (!cfg_.reference_scan) {
        for (const AccountRecord &acct : accounts_)
            rebuildBaseIndex(acct);
    }
}

void
Orchestrator::refreshPreferences(ServiceRecord &svc, AccountRecord &acct)
{
    sim::Rng stream = rng_.fork(sim::mix64(eq_.now().ns()) ^
                                (svc.id * 0x9e3779b97f4a7c15ULL));
    if (profile_.per_launch_jitter > 0.0) {
        // Dynamic placement (us-central1): re-jitter the base order and
        // regenerate the helper permutation each launch.
        acct.base_order =
            buildBaseOrder(acct, profile_.per_launch_jitter, stream);
        if (!cfg_.reference_scan)
            rebuildBaseIndex(acct);
#if EAAO_OBS_ENABLED
        // Helper-set churn: fraction of the previous helper prefix (the
        // ~50 hosts a hot service actually reaches) absent from the new
        // one. Pure observation — computed only when a registry is on.
        const std::vector<hw::HostId> prev_helpers =
            h_helper_churn_ != nullptr ? svc.helper_order
                                       : std::vector<hw::HostId>{};
#endif
        svc.helper_seed = stream();
        svc.helper_order = buildHelperOrder(acct.shard, svc.helper_seed);
        svc.spill_order =
            buildSpillOrder(acct.shard, sim::mix64(svc.helper_seed));
#if EAAO_OBS_ENABLED
        if (h_helper_churn_ != nullptr && !prev_helpers.empty()) {
            const std::size_t prefix = std::min<std::size_t>(
                {50, prev_helpers.size(), svc.helper_order.size()});
            if (prefix > 0) {
                std::size_t kept = 0;
                const auto new_end = svc.helper_order.begin() +
                                     static_cast<std::ptrdiff_t>(prefix);
                for (std::size_t i = 0; i < prefix; ++i) {
                    kept += std::find(svc.helper_order.begin(), new_end,
                                      prev_helpers[i]) != new_end;
                }
                h_helper_churn_->observe(
                    1.0 - static_cast<double>(kept) /
                              static_cast<double>(prefix));
            }
        }
#endif
    } else if (profile_.base_launch_jitter > 0.0) {
        // Static data centers still rotate a few borderline hosts in
        // and out of the base prefix between launches (Fig. 7).
        acct.base_order =
            buildBaseOrder(acct, profile_.base_launch_jitter, stream);
        if (!cfg_.reference_scan)
            rebuildBaseIndex(acct);
    }
}

} // namespace eaao::faas
