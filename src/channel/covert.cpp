/**
 * @file
 * Implementation of the covert channels.
 */

#include "channel/covert.hpp"

#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "support/flat_map.hpp"
#include "support/logging.hpp"

namespace eaao::channel {

RngChannel::RngChannel(faas::Platform &platform,
                       const RngChannelConfig &cfg)
    : platform_(&platform), cfg_(cfg)
{
    EAAO_ASSERT(cfg_.detect_min <= cfg_.trials,
                "detection threshold exceeds trial count");
#if EAAO_OBS_ENABLED
    if (obs::MetricsRegistry *metrics = platform.obs().metrics) {
        c_group_tests_ = metrics->counter("channel.group_tests");
        h_error_rate_ = metrics->histogram("channel.error_rate",
                                           obs::errorRateBuckets());
    }
#endif
}

sim::Duration
RngChannel::testDuration() const
{
    return sim::Duration::nanos(cfg_.trial_duration.ns() *
                                static_cast<std::int64_t>(cfg_.trials));
}

std::vector<GroupTestResult>
RngChannel::runConcurrent(
    const std::vector<std::vector<faas::InstanceId>> &groups,
    std::uint32_t m)
{
    EAAO_ASSERT(m >= 2, "contention threshold must be at least 2");

    // Pressure map: how many instances (across all concurrent groups)
    // hammer the RNG of each host.
    std::unordered_map<hw::HostId, std::uint32_t> pressure;
    for (const auto &group : groups) {
        for (const faas::InstanceId id : group) {
            EAAO_ASSERT(platform_->instanceInfo(id).state ==
                            faas::InstanceState::Active,
                        "covert-channel test needs a live connection");
            ++pressure[platform_->oracleHostOf(id)];
        }
    }

    // Provider-side detection: hosts with >= 2 simultaneous
    // pressurers show a contention burst.
    if (detector_ != nullptr) {
        // Sorted-vector map: the detector's burst log must not inherit
        // hash-table iteration order (it is observable state).
        support::SmallFlatMap<hw::HostId, std::vector<faas::AccountId>>
            parties;
        for (const auto &group : groups) {
            for (const faas::InstanceId id : group) {
                parties[platform_->oracleHostOf(id)].push_back(
                    platform_->instanceInfo(id).account);
            }
        }
        for (const auto &[host, accounts] : parties) {
            if (accounts.size() >= 2) {
                detector_->recordBurst(platform_->now(), host, accounts,
                                       cfg_.trials);
            }
        }
    }

    sim::Rng &rng = platform_->measurementRng();
    std::vector<GroupTestResult> results(groups.size());
    EAAO_OBS_ONLY(const sim::SimTime obs_start = platform_->now();
                  std::size_t obs_instances = 0;)

    for (std::size_t g = 0; g < groups.size(); ++g) {
        results[g].positive.assign(groups[g].size(), false);
        for (std::size_t i = 0; i < groups[g].size(); ++i) {
            const hw::HostId host =
                platform_->oracleHostOf(groups[g][i]);
            const std::uint32_t co_units = pressure[host];
            std::uint32_t hits = 0;
            for (std::uint32_t t = 0; t < cfg_.trials; ++t) {
                // The instance's own unit is always visible; each other
                // unit is observed with high probability; background
                // activity occasionally injects spurious units.
                std::uint32_t units = 1;
                for (std::uint32_t u = 1; u < co_units; ++u) {
                    if (rng.bernoulli(cfg_.unit_detect_prob))
                        ++units;
                }
                if (rng.bernoulli(cfg_.background_prob))
                    units += 1 + static_cast<std::uint32_t>(
                                     rng.uniformInt(2ULL));
                if (units >= m)
                    ++hits;
            }
            results[g].positive[i] = hits >= cfg_.detect_min;
        }
        ++tests_run_;

#if EAAO_OBS_ENABLED
        obs_instances += groups[g].size();
        if (h_error_rate_ != nullptr && !groups[g].empty()) {
            // Error rate against the simulator's own ground truth: an
            // instance should read positive iff its host carries >= m
            // pressure units.
            std::size_t wrong = 0;
            for (std::size_t i = 0; i < groups[g].size(); ++i) {
                const bool truth =
                    pressure[platform_->oracleHostOf(groups[g][i])] >= m;
                wrong += results[g].positive[i] != truth;
            }
            h_error_rate_->observe(
                static_cast<double>(wrong) /
                static_cast<double>(groups[g].size()));
        }
#endif
    }
    EAAO_OBS_COUNT(c_group_tests_, groups.size());

    platform_->advance(testDuration());
    EAAO_OBS_SPAN(platform_->obs(), "channel.ctest", "channel", obs_start,
                  platform_->now(),
                  {obs::TraceArg::u64("groups", groups.size()),
                   obs::TraceArg::u64("instances", obs_instances),
                   obs::TraceArg::u64("m", m)});
    return results;
}

GroupTestResult
RngChannel::run(const std::vector<faas::InstanceId> &group,
                std::uint32_t m)
{
    return runConcurrent({group}, m).front();
}

MemBusChannel::MemBusChannel(faas::Platform &platform,
                             const MemBusChannelConfig &cfg)
    : platform_(&platform), cfg_(cfg)
{
#if EAAO_OBS_ENABLED
    if (obs::MetricsRegistry *metrics = platform.obs().metrics) {
        c_pair_tests_ = metrics->counter("channel.pair_tests");
        h_error_rate_ = metrics->histogram("channel.membus_error_rate",
                                           obs::errorRateBuckets());
    }
#endif
}

bool
MemBusChannel::testPair(faas::InstanceId a, faas::InstanceId b)
{
    sim::Rng &rng = platform_->measurementRng();
    const bool same =
        platform_->oracleHostOf(a) == platform_->oracleHostOf(b);
    EAAO_OBS_ONLY(const sim::SimTime obs_start = platform_->now();)
    platform_->advance(cfg_.test_duration);
    ++tests_run_;
    const bool measured = same ? rng.bernoulli(cfg_.true_positive_prob)
                               : rng.bernoulli(cfg_.false_positive_prob);
    EAAO_OBS_COUNT(c_pair_tests_, 1);
    EAAO_OBS_OBSERVE(h_error_rate_, measured != same ? 1.0 : 0.0);
    EAAO_OBS_SPAN(platform_->obs(), "channel.membus_test", "channel",
                  obs_start, platform_->now(),
                  {obs::TraceArg::u64("a", a), obs::TraceArg::u64("b", b),
                   obs::TraceArg::u64("same_host", same ? 1 : 0)});
    return measured;
}

} // namespace eaao::channel
