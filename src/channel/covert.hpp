/**
 * @file
 * Covert channels for co-location testing.
 *
 * The primary channel contends on the host's hardware random number
 * generator (after Evtyushkin & Ponomarev): each participating instance
 * hammers rdrand, contributing one unit of contention; every instance
 * simultaneously measures the contention level it observes. Because the
 * RNG is otherwise rarely used, background false positives are below 1%
 * per trial, and a 30-of-60 trial majority rule makes group decisions
 * essentially noise-free.
 *
 * A slower memory-bus pairwise channel (after Wu et al. / Varadarajan
 * et al.) is provided as the conventional baseline of Section 4.3.
 */

#ifndef EAAO_CHANNEL_COVERT_HPP
#define EAAO_CHANNEL_COVERT_HPP

#include <cstdint>
#include <vector>

#include "defense/detector.hpp"
#include "faas/platform.hpp"
#include "faas/types.hpp"
#include "sim/time.hpp"

namespace eaao::channel {

/** Tuning of the RNG-contention channel. */
struct RngChannelConfig
{
    std::uint32_t trials = 60;          //!< measurements per test
    std::uint32_t detect_min = 30;      //!< positive trials to confirm
    sim::Duration trial_duration = sim::Duration::millis(16);
    double background_prob = 0.008;     //!< spurious contention / trial
    double unit_detect_prob = 0.97;     //!< per-unit observation prob.
};

/** Outcome of one group test. */
struct GroupTestResult
{
    /** Per input instance: did it observe contention >= threshold? */
    std::vector<bool> positive;
};

/**
 * The n-instance covert-channel test primitive CTest of Section 4.3.
 */
class RngChannel
{
  public:
    explicit RngChannel(faas::Platform &platform,
                        const RngChannelConfig &cfg = {});

    /**
     * Run several group tests *concurrently*: the instances of all
     * groups pressure the shared RNG at the same time, so instances in
     * different groups that share a host contaminate each other — this
     * is exactly why Step 2 of the verification methodology serializes
     * tests that could share hosts.
     *
     * Advances virtual time by testDuration() once for the whole batch.
     *
     * @param groups Instance-id lists, one per test.
     * @param m Contention threshold in units (paper: m = 2).
     * @return One result per group, parallel to @p groups.
     */
    std::vector<GroupTestResult>
    runConcurrent(const std::vector<std::vector<faas::InstanceId>> &groups,
                  std::uint32_t m);

    /** Convenience: run a single group test. */
    GroupTestResult run(const std::vector<faas::InstanceId> &group,
                        std::uint32_t m);

    /** Wall time one test (or concurrent batch) occupies. */
    sim::Duration testDuration() const;

    /** Number of group tests executed so far. */
    std::uint64_t testsRun() const { return tests_run_; }

    /** Configuration in force. */
    const RngChannelConfig &config() const { return cfg_; }

    /**
     * Attach a provider-side contention detector: every host that sees
     * simultaneous pressure from >= 2 parties during a test batch is
     * reported as a burst (Section 6 detection mitigation).
     */
    void attachDetector(defense::ContentionDetector *detector)
    {
        detector_ = detector;
    }

  private:
    faas::Platform *platform_;
    RngChannelConfig cfg_;
    std::uint64_t tests_run_ = 0;
    defense::ContentionDetector *detector_ = nullptr;

    /** Metric handles resolved from the platform's observer (or null). */
    obs::Counter *c_group_tests_ = nullptr;
    obs::Histogram *h_error_rate_ = nullptr;
};

/** Tuning of the conventional pairwise memory-bus channel. */
struct MemBusChannelConfig
{
    sim::Duration test_duration = sim::Duration::seconds(3);
    double true_positive_prob = 0.98;
    double false_positive_prob = 0.02;
};

/**
 * Pairwise memory-bus contention tester (the conventional baseline).
 */
class MemBusChannel
{
  public:
    explicit MemBusChannel(faas::Platform &platform,
                           const MemBusChannelConfig &cfg = {});

    /**
     * Test whether two instances are co-located. Advances virtual time
     * by the per-test duration (tests must be serialized).
     */
    bool testPair(faas::InstanceId a, faas::InstanceId b);

    /** Number of pairwise tests executed so far. */
    std::uint64_t testsRun() const { return tests_run_; }

    /** Wall time one pairwise test occupies. */
    sim::Duration testDuration() const { return cfg_.test_duration; }

  private:
    faas::Platform *platform_;
    MemBusChannelConfig cfg_;
    std::uint64_t tests_run_ = 0;

    /** Metric handles resolved from the platform's observer (or null). */
    obs::Counter *c_pair_tests_ = nullptr;
    obs::Histogram *h_error_rate_ = nullptr;
};

} // namespace eaao::channel

#endif // EAAO_CHANNEL_COVERT_HPP
