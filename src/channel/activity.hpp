/**
 * @file
 * Activity observation from a co-located foothold.
 *
 * The threat model's final capability (paper Section 3): "once
 * co-located with the victim, the attacker can detect when the victim
 * program is running". A foothold instance repeatedly measures
 * contention on its host's shared resources; execution of any other
 * tenant's requests on the same host raises the observed level.
 *
 * This models detection of *activity*, not extraction of secrets —
 * extraction is delegated to the prior side-channel work the paper
 * cites.
 */

#ifndef EAAO_CHANNEL_ACTIVITY_HPP
#define EAAO_CHANNEL_ACTIVITY_HPP

#include <cstdint>
#include <vector>

#include "faas/platform.hpp"
#include "faas/types.hpp"
#include "sim/time.hpp"

namespace eaao::channel {

/** Tuning of the activity probe. */
struct ActivityProbeConfig
{
    /** Probability of sensing each concurrently-executing request. */
    double per_request_detect_prob = 0.9;

    /** Mean spurious activity events per sample (background). */
    double background_rate = 0.05;

    /** Decision threshold: samples at/above this level read "busy". */
    std::uint32_t busy_threshold = 1;
};

/** One activity sample. */
struct ActivitySample
{
    sim::SimTime when;
    std::uint32_t level = 0; //!< contention units observed
    bool busy = false;       //!< level >= threshold
};

/**
 * Contention probe run from one attacker foothold instance.
 */
class ActivityProbe
{
  public:
    ActivityProbe(faas::Platform &platform, faas::InstanceId foothold,
                  const ActivityProbeConfig &cfg = {});

    /**
     * Take one sample now: the observed level reflects the in-flight
     * requests of co-located instances other than the foothold itself
     * (plus noise). Does not advance time.
     */
    ActivitySample sample();

    /**
     * Sample every @p interval for @p span (advancing virtual time);
     * returns the trace.
     */
    std::vector<ActivitySample> watch(sim::Duration interval,
                                      sim::Duration span);

  private:
    faas::Platform *platform_;
    faas::InstanceId foothold_;
    ActivityProbeConfig cfg_;

    /** Metric handles resolved from the platform's observer (or null). */
    obs::Counter *c_samples_ = nullptr;
    obs::Counter *c_busy_ = nullptr;
};

} // namespace eaao::channel

#endif // EAAO_CHANNEL_ACTIVITY_HPP
