/**
 * @file
 * Implementation of the activity probe.
 */

#include "channel/activity.hpp"

#include "support/logging.hpp"

namespace eaao::channel {

ActivityProbe::ActivityProbe(faas::Platform &platform,
                             faas::InstanceId foothold,
                             const ActivityProbeConfig &cfg)
    : platform_(&platform), foothold_(foothold), cfg_(cfg)
{
    EAAO_ASSERT(platform.instanceInfo(foothold).state !=
                    faas::InstanceState::Terminated,
                "foothold instance is gone");
}

ActivitySample
ActivityProbe::sample()
{
    const hw::HostId host = platform_->oracleHostOf(foothold_);
    sim::Rng &rng = platform_->measurementRng();

    // Ground truth: requests executing right now on this host, outside
    // the foothold itself.
    std::uint32_t executing = 0;
    const auto &orch = platform_->orchestrator();
    for (std::size_t i = 0; i < orch.instanceCount(); ++i) {
        const auto &inst = orch.instance(i);
        if (inst.host != host || inst.id == foothold_ ||
            inst.state == faas::InstanceState::Terminated) {
            continue;
        }
        executing += inst.in_flight;
    }

    ActivitySample s;
    s.when = platform_->now();
    for (std::uint32_t r = 0; r < executing; ++r) {
        if (rng.bernoulli(cfg_.per_request_detect_prob))
            ++s.level;
    }
    if (rng.bernoulli(cfg_.background_rate))
        ++s.level;
    s.busy = s.level >= cfg_.busy_threshold;
    return s;
}

std::vector<ActivitySample>
ActivityProbe::watch(sim::Duration interval, sim::Duration span)
{
    EAAO_ASSERT(interval.ns() > 0, "non-positive sampling interval");
    std::vector<ActivitySample> trace;
    const sim::SimTime end = platform_->now() + span;
    while (platform_->now() < end) {
        trace.push_back(sample());
        platform_->advance(interval);
    }
    return trace;
}

} // namespace eaao::channel
