/**
 * @file
 * Implementation of the activity probe.
 */

#include "channel/activity.hpp"

#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "support/logging.hpp"

namespace eaao::channel {

ActivityProbe::ActivityProbe(faas::Platform &platform,
                             faas::InstanceId foothold,
                             const ActivityProbeConfig &cfg)
    : platform_(&platform), foothold_(foothold), cfg_(cfg)
{
    EAAO_ASSERT(platform.instanceInfo(foothold).state !=
                    faas::InstanceState::Terminated,
                "foothold instance is gone");
#if EAAO_OBS_ENABLED
    if (obs::MetricsRegistry *metrics = platform.obs().metrics) {
        c_samples_ = metrics->counter("channel.activity_samples");
        c_busy_ = metrics->counter("channel.activity_busy");
    }
#endif
}

ActivitySample
ActivityProbe::sample()
{
    const hw::HostId host = platform_->oracleHostOf(foothold_);
    sim::Rng &rng = platform_->measurementRng();

    // Ground truth: requests executing right now on this host, outside
    // the foothold itself.
    std::uint32_t executing = 0;
    const auto &orch = platform_->orchestrator();
    for (std::size_t i = 0; i < orch.instanceCount(); ++i) {
        const auto &inst = orch.instance(i);
        if (inst.host != host || inst.id == foothold_ ||
            inst.state == faas::InstanceState::Terminated) {
            continue;
        }
        executing += inst.in_flight;
    }

    ActivitySample s;
    s.when = platform_->now();
    for (std::uint32_t r = 0; r < executing; ++r) {
        if (rng.bernoulli(cfg_.per_request_detect_prob))
            ++s.level;
    }
    if (rng.bernoulli(cfg_.background_rate))
        ++s.level;
    s.busy = s.level >= cfg_.busy_threshold;
    EAAO_OBS_COUNT(c_samples_, 1);
    if (s.busy)
        EAAO_OBS_COUNT(c_busy_, 1);
    return s;
}

std::vector<ActivitySample>
ActivityProbe::watch(sim::Duration interval, sim::Duration span)
{
    EAAO_ASSERT(interval.ns() > 0, "non-positive sampling interval");
    std::vector<ActivitySample> trace;
    EAAO_OBS_ONLY(const sim::SimTime obs_start = platform_->now();)
    const sim::SimTime end = platform_->now() + span;
    while (platform_->now() < end) {
        trace.push_back(sample());
        platform_->advance(interval);
    }
    EAAO_OBS_SPAN(platform_->obs(), "channel.activity_watch", "channel",
                  obs_start, platform_->now(),
                  {obs::TraceArg::u64("foothold", foothold_),
                   obs::TraceArg::u64("samples", trace.size())});
    return trace;
}

} // namespace eaao::channel
