/**
 * @file
 * The invariant oracles the scenario fuzzer checks on every scenario.
 *
 * Each oracle compares two executions that the codebase promises are
 * equivalent, or checks an internal conservation law:
 *
 *  - reference: the incremental placement/routing/spend indexes must
 *    reproduce the pre-index linear scans byte-for-byte
 *    (OrchestratorConfig::reference_scan).
 *  - threads: an exp::runTrials campaign over the scenario must render
 *    identical logs, merged metrics JSON, and Chrome trace JSON for
 *    1 worker and N workers.
 *  - obs: attaching a trace sink + metrics registry must not perturb
 *    any simulation decision (log equality with the unobserved run).
 *  - events: the kernel conserves events (scheduled = processed +
 *    cancelled + pending) and generation-tagged EventIds refuse stale
 *    handles after slot reuse.
 *  - verify: core::verifyScalable's clustering is invariant under a
 *    permutation of the participating instances.
 *  - shards: the sharded platform (faas::ShardedPlatform) must render
 *    byte-identical canonical logs, merged metrics JSON, and Chrome
 *    trace JSON for every (shards, threads) grouping of its fixed
 *    lanes — shards in {1, 2, shard_arm} crossed with threads in
 *    {1, N}. This is the oracle that catches the cross-lane window
 *    protocol's planted faults (fault_injection 3/4).
 *  - snapshot: checkpointing the sharded run at a window barrier
 *    (snap::Snapshotter) and restoring into a fresh platform — at the
 *    same lane grouping and at a different one — must finish with a
 *    canonical log, merged metrics JSON, and Chrome trace JSON
 *    byte-identical to the uninterrupted run. This is the oracle that
 *    catches the checkpoint path's planted fault (fault_injection 5).
 *  - prefix (time-travel scenarios): restoring the primed barrier
 *    image into a fresh platform at any (shards, threads) grouping
 *    and rendering it *without resuming* must reproduce the capture
 *    platform's log, merged metrics JSON, and Chrome trace JSON byte
 *    for byte — every fork agrees on everything up to the barrier.
 *  - fork (time-travel scenarios): replaying the same suffix from the
 *    image twice must be byte-identical (fork-determinism), at every
 *    grouping, and must equal a straight run of the composed scenario
 *    (the differential that catches the fork-path planted fault,
 *    fault_injection 6).
 */

#ifndef EAAO_TESTKIT_INVARIANTS_HPP
#define EAAO_TESTKIT_INVARIANTS_HPP

#include <string>
#include <vector>

#include "testkit/runner.hpp"
#include "testkit/scenario.hpp"

namespace eaao::testkit {

/** One oracle failure. */
struct Violation
{
    std::string oracle; //!< "reference", "threads", "obs", "events",
                        //!< "verify", "shards", "snapshot", "prefix",
                        //!< "fork"
    std::string detail; //!< first point of divergence
};

/** Which oracles to run, and how hard. */
struct InvariantOptions
{
    unsigned threads = 4;       //!< worker count of the N-thread arm
    std::size_t thread_trials = 3; //!< trials per runTrials campaign

    bool check_reference = true;
    bool check_threads = true;
    bool check_obs = true;
    bool check_events = true;
    bool check_shards = true;
    bool check_snapshot = true;

    /** Fork oracles; engaged only on `[timetravel]` scenarios. */
    bool check_timetravel = true;

    /** Largest shard count of the shard-equality arms ({1, 2, this}).
     *  tools/fuzz_scenarios --shards overrides it. */
    std::uint32_t shard_arm = 5;

    /**
     * The verify-permutation oracle costs a covert-channel campaign per
     * scenario; the fuzz driver samples it (--verify-every) instead of
     * paying it everywhere.
     */
    bool check_verify = false;
};

/**
 * Run the selected oracles on @p scenario.
 * @return All violations found (empty = scenario holds).
 */
std::vector<Violation> checkInvariants(const Scenario &scenario,
                                       const InvariantOptions &opts = {});

/**
 * A primed time-travel prefix plus its barrier-state observability
 * renders — the reusable half of the fork oracles. The fuzz driver
 * primes once per explored image and shares it across every fork
 * (and the suffix-only shrinker shares it across every candidate,
 * since suffix edits never touch the prefix the image hashes).
 */
struct TimeTravelPrime
{
    BarrierPrime prime;
    std::string metrics; //!< merged metrics JSON at the barrier
    std::string trace;   //!< Chrome trace JSON at the barrier
};

/**
 * Run @p scenario's prefix to its barrier once and capture image +
 * barrier renders. False (with a one-line reason) when the scenario
 * has no `[timetravel]` metadata or the barrier is unreachable.
 */
bool primeTimeTravel(const Scenario &scenario, const InvariantOptions &opts,
                     TimeTravelPrime &out, std::string &error);

/**
 * The time-travel fork oracles (prefix-consistency, fork-determinism,
 * and the fork-vs-straight differential) on a `[timetravel]`
 * scenario. Pass @p primed to reuse a prime across forks or shrink
 * candidates; null primes internally. checkInvariants runs this
 * automatically for time-travel scenarios.
 */
std::vector<Violation>
checkTimeTravelForks(const Scenario &scenario, const InvariantOptions &opts,
                     const TimeTravelPrime *primed = nullptr);

} // namespace eaao::testkit

#endif // EAAO_TESTKIT_INVARIANTS_HPP
