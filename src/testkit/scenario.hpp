/**
 * @file
 * Deterministic scenario model for the fuzzing testkit.
 *
 * A Scenario is a fully self-contained description of one simulated
 * run: the platform shape (data-center profile, fleet size, scheduler
 * knobs), the tenant topology (accounts with shards and quotas,
 * services with environments and sizes), and a flat step script
 * (connection bursts, request routing, idle gaps straddling the reap
 * window, mid-run scale and quota events). Scenarios are drawn from a
 * single seeded Rng::fork stream, so scenario i of a fuzz campaign is
 * a pure function of (base seed, i) — independent of thread count,
 * time budget, or which scenarios ran before it — and every scenario
 * round-trips through a plain-text replay file that the shrinker and
 * the committed regression corpus (tests/corpus/) use.
 */

#ifndef EAAO_TESTKIT_SCENARIO_HPP
#define EAAO_TESTKIT_SCENARIO_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace eaao::testkit {

/** One tenant account of a scenario. */
struct ScenarioAccount
{
    std::int32_t shard = -1;     //!< home shard; -1 = platform default
    std::uint32_t quota = 1000;  //!< per-service concurrent-instance cap
};

/** One deployed service of a scenario. */
struct ScenarioService
{
    std::uint32_t account = 0;  //!< index into Scenario::accounts
    std::uint8_t env = 0;       //!< 0 = Gen1, 1 = Gen2
    std::uint8_t size = 1;      //!< 0 Pico, 1 Small, 2 Medium, 3 Large
};

/**
 * One scripted operation. Steps carry raw payloads; the runner
 * (runner.hpp) interprets them against the live platform, clamping
 * where the platform API demands it (e.g. concurrency >= 1).
 */
struct ScenarioStep
{
    enum class Kind : std::uint8_t {
        Connect,        //!< scale service `target` to `a` connections
        Disconnect,     //!< drop all connections of service `target`
        Route,          //!< one request to `target`, service time `a` ms
        Burst,          //!< `a` requests to `target`, `b` ms each
        Advance,        //!< advance virtual time by `a` ms
        Restart,        //!< restart created-instance pick `a`
        SetConcurrency, //!< per-instance concurrency of `target` := `a`
        SetQuota,       //!< quota of account `target` := `a`
        Redeploy,       //!< redeploy service `target`
        SpendProbe,     //!< record every account's spend
        OpenLoop,       //!< open-loop arrival stream at `target` (the
                        //!< runner derives the whole ArrivalSpec —
                        //!< family, rate, burstiness, span, churn —
                        //!< from the raw `a`/`b` payloads, so every
                        //!< u32 pair is valid and shrinker-halvable)
    };

    Kind kind = Kind::Advance;
    std::uint32_t target = 0; //!< service index (account for SetQuota)
    std::uint32_t a = 0;      //!< main payload
    std::uint32_t b = 0;      //!< auxiliary payload
};

/** Number of ScenarioStep kinds (parse/render tables). */
inline constexpr std::size_t kStepKindCount = 11;

/** Render a step kind as its replay-file token. */
const char *toString(ScenarioStep::Kind kind);

/** A complete, replayable scenario. */
struct Scenario
{
    std::uint64_t seed = 1;
    std::uint8_t profile = 0;       //!< 0 us-east1, 1 us-central1, 2 us-west1
    std::uint32_t host_count = 0;   //!< fleet override; 0 = profile default
    bool isolate_accounts = false;  //!< Section 6 scheduling mitigation
    std::uint32_t hot_burst_min = 0;   //!< orchestrator override; 0 = default
    std::uint32_t fault = 0;           //!< OrchestratorConfig::fault_injection

    std::vector<ScenarioAccount> accounts;
    std::vector<ScenarioService> services;
    std::vector<ScenarioStep> steps;

    /**
     * @name Time-travel fork metadata (`[timetravel]` replay section)
     *
     * When set, steps [0, tt_prefix_steps) are the *prefix*: the part
     * of the script the fork fuzzer primed once and captured as an
     * `eaao-snap` image at window barrier tt_barrier. The remaining
     * steps are the *suffix*, compiled strictly after the barrier and
     * replayable straight from the image (docs/testing.md). The digest
     * pins the prefix: parse() recomputes it and rejects a replay
     * whose prefix no longer matches the image the repro came from.
     * @{
     */
    bool has_timetravel = false;
    std::uint32_t tt_barrier = 0;       //!< capture window index
    std::uint32_t tt_prefix_steps = 0;  //!< steps [0, K) form the prefix
    std::uint64_t tt_prefix_digest = 0; //!< FNV-1a 64 of the prefix replay
    /** @} */

    /** Serialize to the replay-file text format (see docs/testing.md). */
    std::string serialize() const;

    /**
     * Parse a replay file produced by serialize(). On failure returns
     * false and leaves @p error describing the offending line.
     */
    static bool parse(const std::string &text, Scenario &out,
                      std::string &error);
};

/** Tuning of the scenario generator. */
struct GeneratorOptions
{
    std::uint32_t max_accounts = 3;
    std::uint32_t max_services = 4;
    std::uint32_t min_steps = 6;
    std::uint32_t max_steps = 48;
    std::uint32_t max_connect = 120;      //!< largest connection burst
    std::uint32_t max_burst = 60;         //!< largest request burst
    std::uint32_t max_advance_ms = 240'000; //!< longest idle gap (4 min)
    bool allow_gen2 = true;
    bool allow_dynamic_profile = true;    //!< include us-central1 shapes
};

/**
 * Draw scenario @p index of the campaign seeded by @p base_seed.
 *
 * The stream is Rng(base_seed).fork(index), so generation is
 * insensitive to how many scenarios ran before and to the worker that
 * draws it. The generator is biased toward the states the paper shows
 * placement conclusions are sensitive to: bursty arrivals that flip
 * services hot, idle gaps that straddle the ~2-minute reap hold and
 * the 15-minute maximum, helper-set churn through repeated
 * connect/disconnect cycles, and mid-run scale events (quota
 * promotions, concurrency changes, redeploys, instance restarts).
 */
Scenario generateScenario(std::uint64_t base_seed, std::uint64_t index,
                          const GeneratorOptions &opts = {});

/**
 * The digest parse() checks a `[timetravel]` section against: FNV-1a
 * 64 of the canonical serialization of @p sc restricted to its first
 * tt_prefix_steps steps, with the `[timetravel]` section itself
 * stripped — i.e. the replay file of the prefix the image was
 * captured from.
 */
std::uint64_t timeTravelPrefixDigest(const Scenario &sc);

/**
 * Compose @p prefix and @p suffix into one time-travel scenario:
 * steps = prefix.steps + suffix, with the `[timetravel]` metadata
 * (barrier, prefix length, prefix digest) filled in. The prefix's
 * platform shape and tenant topology carry over unchanged — a fork
 * restores the primed image, so it cannot differ in anything the
 * snapshot config fingerprint covers.
 */
Scenario composeTimeTravel(const Scenario &prefix,
                           std::vector<ScenarioStep> suffix,
                           std::uint32_t barrier);

/**
 * Draw divergent-suffix script @p fork for scenario @p index of the
 * campaign seeded by @p base_seed. Like generateScenario, a pure
 * function of its arguments: the stream is
 * Rng(base_seed).fork(index).fork(kSuffixForkSalt + fork), so every
 * fork of one primed image explores an independent branch and any
 * fork can be re-drawn for replay without re-running the campaign.
 * Draws 1..max(1, @p max_steps) steps against @p prefix's topology.
 */
std::vector<ScenarioStep> generateSuffixSteps(std::uint64_t base_seed,
                                              std::uint64_t index,
                                              std::uint64_t fork,
                                              const Scenario &prefix,
                                              std::uint32_t max_steps = 8,
                                              const GeneratorOptions &opts = {});

} // namespace eaao::testkit

#endif // EAAO_TESTKIT_SCENARIO_HPP
