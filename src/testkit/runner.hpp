/**
 * @file
 * Scenario runner: executes a Scenario against a live faas::Platform
 * and folds everything observable into a canonical text log.
 *
 * The log (ScenarioLog::render) is the unit the invariant oracles
 * compare: it captures every placement decision with its reason, every
 * routed request's serving instance, every restart mapping, spend
 * probes, final per-account spend, and the event-kernel conservation
 * counters. Two runs whose logs are byte-identical made the same
 * decisions at the same virtual times.
 */

#ifndef EAAO_TESTKIT_RUNNER_HPP
#define EAAO_TESTKIT_RUNNER_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "faas/trace.hpp"
#include "obs/export.hpp"
#include "obs/observer.hpp"
#include "sim/time.hpp"
#include "snap/format.hpp"
#include "testkit/scenario.hpp"

namespace eaao::testkit {

/** Knobs of one scenario execution. */
struct RunOptions
{
    /** Run the orchestrator's pre-index linear-scan oracle paths. */
    bool reference_scan = false;

    /** Force this fault_injection value; ~0u keeps the scenario's. */
    std::uint32_t fault_override = ~0u;

    /** Observability handle wired into PlatformConfig. */
    obs::Observer obs;

    /** Replace Scenario::seed; 0 keeps it. */
    std::uint64_t seed_override = 0;

    /**
     * Cumulative orchestrator counters sampled after one executed
     * step — the data the campaign trigger engine's expressions
     * (`rate(orch.placements, 60)` etc.) aggregate over.
     */
    struct StepSample
    {
        std::uint32_t step = 0;       //!< step index just executed
        double t_s = 0.0;             //!< virtual time, seconds
        std::uint64_t instances = 0;  //!< live instance count
        std::uint64_t placements = 0; //!< placement-trace events so far
        std::uint64_t routed = 0;     //!< requests routed so far
    };

    /** Called after every step when set; null for normal runs. */
    std::function<void(const StepSample &)> step_hook;
};

/** Everything a scenario run exposes for comparison. */
struct ScenarioLog
{
    std::vector<faas::PlacementEvent> trace;

    /** "step=<i> inst=<id> host=<h>" per routed request. */
    std::vector<std::string> routed;

    /** "step=<i> old=<id> new=<id>" per restart. */
    std::vector<std::string> restarted;

    /** "step=<i> acct=<a> usd=<x>" per SpendProbe line. */
    std::vector<std::string> spend;

    std::vector<double> final_spend_usd; //!< per account, after drain
    std::uint64_t instance_count = 0;

    /**
     * Open-loop SLO accounting (Orchestrator::sloStats), rendered only
     * when at least one request went through admitRequest so scenarios
     * without OpenLoop steps keep their historical log bytes.
     */
    std::string slo;

    std::uint64_t events_scheduled = 0;
    std::uint64_t events_processed = 0;
    std::uint64_t events_cancelled = 0;
    std::uint64_t events_pending = 0;

    /** Canonical text form; doubles rendered with %.17g. */
    std::string render() const;
};

/**
 * Execute @p scenario. Steps that reference terminated instances or
 * hit platform clamps are made total deterministically (documented per
 * step in the implementation), so every generated scenario is
 * runnable. Ends with a 20-minute drain so all reaps settle.
 */
ScenarioLog runScenario(const Scenario &scenario, const RunOptions &opts = {});

/** Knobs of one sharded scenario execution (faas::ShardedPlatform). */
struct ShardedRunOptions
{
    std::uint32_t shards = 1;  //!< worker groups over the fixed lanes
    unsigned threads = 1;      //!< pool threads driving the groups

    /** Force this fault_injection value; ~0u keeps the scenario's. */
    std::uint32_t fault_override = ~0u;

    /** Per-lane recording slots; prepared to lane count when set. */
    obs::TrialSet *obs = nullptr;

    /** Replace Scenario::seed; 0 keeps it. */
    std::uint64_t seed_override = 0;

    /**
     * When snapshot_out is non-null, capture an eaao-snap image at the
     * first window barrier with index >= snapshot_at_window (pre-fold
     * state; see docs/checkpoint.md) and keep running to completion.
     * If the run finishes earlier, snapshot_out is left empty.
     */
    std::uint32_t snapshot_at_window = ~0u;
    std::vector<std::uint8_t> *snapshot_out = nullptr;
};

/**
 * Execute @p scenario on the sharded platform: the step script is
 * compiled into a timestamped op list (Burst pre-expanded at the
 * serial runner's 2 ms spacing, Advance folded into timestamps) and
 * run through the window loop with a 20-minute drain horizon.
 *
 * @return The platform's canonical log (ShardedPlatform::renderLog).
 *         Byte-identical across every (shards, threads) — the
 *         shard-equality oracle's comparison unit. NOT comparable to
 *         runScenario's log: lanes draw reap delays from per-lane
 *         streams, so the sharded engine is a distinct deterministic
 *         universe, self-consistent across partitionings.
 */
std::string runScenarioSharded(const Scenario &scenario,
                               const ShardedRunOptions &opts = {});

/**
 * Resume a sharded scenario run from @p image (captured by
 * runScenarioSharded with snapshot_out set, under the same scenario
 * and fault/seed overrides; shards/threads may differ). On success
 * @p log receives the completed run's canonical log — byte-identical
 * to the uninterrupted run's. On restore failure returns false with a
 * one-line reason in @p error.
 */
bool resumeScenarioSharded(const Scenario &scenario,
                           const ShardedRunOptions &opts,
                           const std::vector<std::uint8_t> &image,
                           std::string &log, std::string &error);

/**
 * One primed time-travel prefix: everything a fork needs to branch
 * from the captured barrier without re-running the prefix. The image
 * is parsed once into `reader` (the `--forked-storms` fast path —
 * SectionViews point into `image`, so don't copy or mutate the
 * struct after priming) and the compile cursor/step label pick up
 * exactly where a straight run of the composed scenario would stand.
 */
struct BarrierPrime
{
    std::vector<std::uint8_t> image;  //!< eaao-snap bytes, pre-fold
    snap::SnapshotReader reader;      //!< parsed view of `image`
    std::string prefix_log;           //!< renderLog() at the barrier
    sim::SimTime fork_origin;         //!< suffix compile start time
    std::uint32_t suffix_label = 0;   //!< first suffix step label
};

/**
 * Execute @p scenario's time-travel *prefix* (steps [0,
 * tt_prefix_steps)) up to window barrier tt_barrier and capture the
 * pre-fold image — the expensive prime done once per explored image.
 * The scenario must carry `[timetravel]` metadata. Returns false
 * (with a one-line reason) when the prefix run ends before the
 * barrier is reached; the platform is abandoned either way.
 */
bool runScenarioToBarrier(const Scenario &scenario,
                          const ShardedRunOptions &opts, BarrierPrime &out,
                          std::string &error);

/**
 * Restore @p prime's image into a fresh platform at @p opts's
 * grouping and render its log *without resuming* — the
 * prefix-consistency oracle's probe: the result must be
 * byte-identical to prime.prefix_log at every (shards, threads).
 */
bool restoreScenarioBarrier(const Scenario &scenario,
                            const ShardedRunOptions &opts,
                            const BarrierPrime &prime, std::string &log,
                            std::string &error);

/**
 * The fork arm: restore @p prime's image, append @p scenario's
 * suffix (steps [tt_prefix_steps, end) compiled from
 * prime.fork_origin) via ShardedPlatform::appendOps, and resume to
 * completion. On success @p log is the completed run's canonical log
 * — byte-identical to runScenarioSharded of the same composed
 * scenario unless a restore-path fault (e.g. planted fault 6)
 * perturbs the forked run.
 */
bool runScenarioForked(const Scenario &scenario,
                       const ShardedRunOptions &opts,
                       const BarrierPrime &prime, std::string &log,
                       std::string &error);

} // namespace eaao::testkit

#endif // EAAO_TESTKIT_RUNNER_HPP
