/**
 * @file
 * Scenario runner: executes a Scenario against a live faas::Platform
 * and folds everything observable into a canonical text log.
 *
 * The log (ScenarioLog::render) is the unit the invariant oracles
 * compare: it captures every placement decision with its reason, every
 * routed request's serving instance, every restart mapping, spend
 * probes, final per-account spend, and the event-kernel conservation
 * counters. Two runs whose logs are byte-identical made the same
 * decisions at the same virtual times.
 */

#ifndef EAAO_TESTKIT_RUNNER_HPP
#define EAAO_TESTKIT_RUNNER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "faas/trace.hpp"
#include "obs/observer.hpp"
#include "testkit/scenario.hpp"

namespace eaao::testkit {

/** Knobs of one scenario execution. */
struct RunOptions
{
    /** Run the orchestrator's pre-index linear-scan oracle paths. */
    bool reference_scan = false;

    /** Force this fault_injection value; ~0u keeps the scenario's. */
    std::uint32_t fault_override = ~0u;

    /** Observability handle wired into PlatformConfig. */
    obs::Observer obs;

    /** Replace Scenario::seed; 0 keeps it. */
    std::uint64_t seed_override = 0;
};

/** Everything a scenario run exposes for comparison. */
struct ScenarioLog
{
    std::vector<faas::PlacementEvent> trace;

    /** "step=<i> inst=<id> host=<h>" per routed request. */
    std::vector<std::string> routed;

    /** "step=<i> old=<id> new=<id>" per restart. */
    std::vector<std::string> restarted;

    /** "step=<i> acct=<a> usd=<x>" per SpendProbe line. */
    std::vector<std::string> spend;

    std::vector<double> final_spend_usd; //!< per account, after drain
    std::uint64_t instance_count = 0;

    std::uint64_t events_scheduled = 0;
    std::uint64_t events_processed = 0;
    std::uint64_t events_cancelled = 0;
    std::uint64_t events_pending = 0;

    /** Canonical text form; doubles rendered with %.17g. */
    std::string render() const;
};

/**
 * Execute @p scenario. Steps that reference terminated instances or
 * hit platform clamps are made total deterministically (documented per
 * step in the implementation), so every generated scenario is
 * runnable. Ends with a 20-minute drain so all reaps settle.
 */
ScenarioLog runScenario(const Scenario &scenario, const RunOptions &opts = {});

} // namespace eaao::testkit

#endif // EAAO_TESTKIT_RUNNER_HPP
