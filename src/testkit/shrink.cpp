/**
 * @file
 * Greedy fixpoint shrinking over scenario structure.
 */

#include "testkit/shrink.hpp"

#include <algorithm>

namespace eaao::testkit {

namespace {

/** Budgeted predicate wrapper shared by all passes. */
struct Budget
{
    const FailurePredicate &pred;
    std::uint32_t attempts = 0;
    std::uint32_t successes = 0;
    std::uint32_t max_attempts;

    bool
    exhausted() const
    {
        return attempts >= max_attempts;
    }

    /** Try a candidate; on success adopt it into @p current. */
    bool
    accept(Scenario &current, const Scenario &candidate)
    {
        if (exhausted())
            return false;
        ++attempts;
        if (!pred(candidate))
            return false;
        ++successes;
        current = candidate;
        return true;
    }
};

/**
 * ddmin-style chunked step removal: halves first, single steps last.
 * Steps below @p first are pinned (the time-travel prefix a barrier
 * image was primed from) and never removed.
 */
bool
shrinkSteps(Scenario &sc, Budget &budget, std::size_t first)
{
    if (sc.steps.size() <= first)
        return false;
    bool progressed = false;
    std::size_t chunk =
        std::max<std::size_t>(1, (sc.steps.size() - first) / 2);
    while (chunk >= 1 && !budget.exhausted()) {
        bool removed_any = false;
        for (std::size_t start = first;
             start < sc.steps.size() && !budget.exhausted();) {
            Scenario candidate = sc;
            const std::size_t end =
                std::min(start + chunk, candidate.steps.size());
            candidate.steps.erase(candidate.steps.begin() +
                                      static_cast<std::ptrdiff_t>(start),
                                  candidate.steps.begin() +
                                      static_cast<std::ptrdiff_t>(end));
            if (budget.accept(sc, candidate)) {
                removed_any = true;
                progressed = true;
                // sc shrank in place; retry the same offset.
            } else {
                start += chunk;
            }
        }
        if (!removed_any && chunk == 1)
            break;
        if (!removed_any)
            chunk /= 2;
    }
    return progressed;
}

/** Drop a whole service, remapping step targets past it. */
bool
shrinkServices(Scenario &sc, Budget &budget)
{
    bool progressed = false;
    for (std::size_t victim = 0;
         sc.services.size() > 1 && victim < sc.services.size() &&
         !budget.exhausted();) {
        Scenario candidate = sc;
        candidate.services.erase(candidate.services.begin() +
                                 static_cast<std::ptrdiff_t>(victim));
        for (ScenarioStep &st : candidate.steps) {
            // SetQuota targets accounts; everything else with a service
            // target gets remapped around the hole. Raw modulo in the
            // runner keeps out-of-range targets total either way.
            if (st.kind == ScenarioStep::Kind::SetQuota ||
                st.kind == ScenarioStep::Kind::Restart ||
                st.kind == ScenarioStep::Kind::SpendProbe)
                continue;
            if (st.target > victim)
                --st.target;
            else if (st.target == victim)
                st.target = 0;
        }
        if (budget.accept(sc, candidate))
            progressed = true; // same index now names the next service
        else
            ++victim;
    }
    return progressed;
}

/** Drop accounts no remaining service references. */
bool
shrinkAccounts(Scenario &sc, Budget &budget)
{
    bool progressed = false;
    for (std::size_t victim = 0;
         sc.accounts.size() > 1 && victim < sc.accounts.size() &&
         !budget.exhausted();) {
        const bool used = std::any_of(
            sc.services.begin(), sc.services.end(),
            [&](const ScenarioService &s) { return s.account == victim; });
        if (used) {
            ++victim;
            continue;
        }
        Scenario candidate = sc;
        candidate.accounts.erase(candidate.accounts.begin() +
                                 static_cast<std::ptrdiff_t>(victim));
        for (ScenarioService &s : candidate.services) {
            if (s.account > victim)
                --s.account;
        }
        for (ScenarioStep &st : candidate.steps) {
            if (st.kind == ScenarioStep::Kind::SetQuota && st.target > victim)
                --st.target;
        }
        if (budget.accept(sc, candidate))
            progressed = true;
        else
            ++victim;
    }
    return progressed;
}

/**
 * Halve step payloads toward 1 (smaller bursts, shorter gaps). Steps
 * below @p first are pinned, like shrinkSteps.
 */
bool
shrinkPayloads(Scenario &sc, Budget &budget, std::size_t first)
{
    bool progressed = false;
    for (std::size_t i = first; i < sc.steps.size() && !budget.exhausted();
         ++i) {
        for (const bool field_a : {true, false}) {
            const std::uint32_t v = field_a ? sc.steps[i].a : sc.steps[i].b;
            if (v <= 1)
                continue;
            Scenario candidate = sc;
            if (field_a)
                candidate.steps[i].a = v / 2;
            else
                candidate.steps[i].b = v / 2;
            if (budget.accept(sc, candidate))
                progressed = true;
        }
    }
    return progressed;
}

/** Halve the fleet (clamped so shard structure survives). */
bool
shrinkHosts(Scenario &sc, Budget &budget)
{
    bool progressed = false;
    while (sc.host_count > 120 && !budget.exhausted()) {
        Scenario candidate = sc;
        candidate.host_count = std::max(120u, sc.host_count / 2);
        if (!budget.accept(sc, candidate))
            break;
        progressed = true;
    }
    return progressed;
}

} // namespace

ShrinkResult
shrink(const Scenario &failing, const FailurePredicate &still_fails,
       std::uint32_t max_attempts)
{
    Budget budget{still_fails, 0, 0, max_attempts};
    Scenario current = failing;

    // Time-travel scenarios shrink suffix-only: the prefix is the
    // snapshot reference a barrier image hashes, so it is pinned and
    // the topology passes are off the table (see shrink.hpp).
    const bool suffix_only = failing.has_timetravel;
    const std::size_t first =
        suffix_only ? std::min<std::size_t>(failing.tt_prefix_steps,
                                            failing.steps.size())
                    : 0;

    // Fixpoint over all passes: structure removal first (biggest wins),
    // payload and fleet reduction after.
    bool progressed = true;
    while (progressed && !budget.exhausted()) {
        progressed = false;
        progressed |= shrinkSteps(current, budget, first);
        if (!suffix_only) {
            progressed |= shrinkServices(current, budget);
            progressed |= shrinkAccounts(current, budget);
        }
        progressed |= shrinkPayloads(current, budget, first);
        if (!suffix_only)
            progressed |= shrinkHosts(current, budget);
    }
    return ShrinkResult{current, budget.attempts, budget.successes};
}

} // namespace eaao::testkit
