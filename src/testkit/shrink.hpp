/**
 * @file
 * Greedy structural scenario shrinker.
 *
 * Given a failing scenario and a predicate that re-checks the failure,
 * shrink() repeatedly tries structure-removing edits — delta-debugging
 * style step-chunk removal, service and unused-account removal, payload
 * halving, fleet halving — keeping any edit under which the failure
 * persists, until a full pass over all edits makes no progress. The
 * result is a minimal-ish scenario whose replay file is small enough to
 * read, commit to tests/corpus/, and attach to a bug report.
 *
 * Time-travel scenarios (`[timetravel]` metadata) shrink suffix-only:
 * the prefix steps are the snapshot reference the barrier image was
 * primed from, so the ddmin and payload passes only touch steps at or
 * past tt_prefix_steps, and the topology passes (services, accounts,
 * hosts) are skipped entirely — any of them would invalidate the image
 * binding and the committed prefix digest. A cached BarrierPrime
 * therefore stays valid across every candidate the shrinker tries.
 */

#ifndef EAAO_TESTKIT_SHRINK_HPP
#define EAAO_TESTKIT_SHRINK_HPP

#include <cstdint>
#include <functional>

#include "testkit/scenario.hpp"

namespace eaao::testkit {

/** Re-check the failure on a candidate; true = still fails. */
using FailurePredicate = std::function<bool(const Scenario &)>;

/** Outcome of a shrink run. */
struct ShrinkResult
{
    Scenario scenario;         //!< smallest still-failing scenario found
    std::uint32_t attempts = 0;  //!< predicate evaluations
    std::uint32_t successes = 0; //!< edits that kept the failure
};

/**
 * Shrink @p failing under @p still_fails. The input must satisfy the
 * predicate; the result always does. At most @p max_attempts predicate
 * evaluations are spent (each one replays the scenario, so this bounds
 * shrink time).
 */
ShrinkResult shrink(const Scenario &failing,
                    const FailurePredicate &still_fails,
                    std::uint32_t max_attempts = 2000);

} // namespace eaao::testkit

#endif // EAAO_TESTKIT_SHRINK_HPP
