/**
 * @file
 * Scenario execution against a live platform.
 */

#include "testkit/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "faas/platform.hpp"
#include "faas/sharded.hpp"
#include "faas/workload.hpp"
#include "obs/metrics.hpp"
#include "snap/snapshotter.hpp"

namespace eaao::testkit {

namespace {

faas::ContainerSize
sizeOf(std::uint8_t idx)
{
    switch (idx) {
    case 0:
        return faas::sizes::kPico;
    case 2:
        return faas::sizes::kMedium;
    case 3:
        return faas::sizes::kLarge;
    default:
        return faas::sizes::kSmall;
    }
}

faas::DataCenterProfile
profileOf(std::uint8_t idx)
{
    switch (idx) {
    case 1:
        return faas::DataCenterProfile::usCentral1();
    case 2:
        return faas::DataCenterProfile::usWest1();
    default:
        return faas::DataCenterProfile::usEast1();
    }
}

std::string
fmtUsd(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/**
 * Decode an OpenLoop step's raw payloads into an ArrivalSpec. Every
 * (a, b) pair maps to a valid spec, so shrinker payload halving stays
 * total: family and service-time come from `a`, span/burst/churn from
 * `b`. Spans are kept short (30..180 s) so fuzz scenarios stay fast.
 */
faas::ArrivalSpec
openLoopSpecOf(const ScenarioStep &st)
{
    faas::ArrivalSpec spec;
    spec.kind = static_cast<faas::ArrivalKind>(st.a % 3);
    spec.rate_rps = 20.0 + st.a % 181;
    spec.mean_service_time = sim::Duration::millis(50 + st.a % 250);
    spec.span = sim::Duration::seconds(30 + st.b % 151);
    spec.burst_factor = 1.5 + st.b % 4;
    spec.churn_every = st.b % 7 == 0 ? sim::Duration::seconds(15)
                                     : sim::Duration();
    return spec;
}

/**
 * Virtual time of a time-travel scenario's fork point: just past the
 * captured window barrier (the sharded platform's 30 s exchange
 * window). Suffix steps are compiled strictly after it — an op landing
 * exactly on the barrier would fold into the captured window on the
 * straight path but run post-restore on the forked path, and the two
 * arms must stay byte-identical.
 */
sim::SimTime
forkWallOf(const Scenario &sc)
{
    return sim::SimTime() + faas::ShardedConfig{}.window * (sc.tt_barrier + 1) +
           sim::Duration::millis(1);
}

/** First suffix step of a time-travel scenario (= step count otherwise). */
std::size_t
prefixSplitOf(const Scenario &sc)
{
    return sc.has_timetravel
               ? std::min<std::size_t>(sc.tt_prefix_steps, sc.steps.size())
               : sc.steps.size();
}

/**
 * Create the scenario's accounts and services on @p platform (serial
 * or sharded — identical API and identical dense-id assignment).
 */
template <typename PlatformT>
void
setupTenants(PlatformT &platform, const Scenario &scenario,
             std::vector<faas::AccountId> &accounts,
             std::vector<faas::ServiceId> &services)
{
    accounts.reserve(scenario.accounts.size());
    for (const ScenarioAccount &a : scenario.accounts) {
        std::optional<std::uint32_t> shard;
        if (a.shard >= 0) // pins survive fleet shrinking via modulo
            shard = static_cast<std::uint32_t>(a.shard) %
                    platform.fleet().shardCount();
        accounts.push_back(platform.createAccount(shard, a.quota));
    }
    services.reserve(scenario.services.size());
    for (const ScenarioService &s : scenario.services) {
        services.push_back(platform.deployService(
            accounts[s.account % accounts.size()], // parse() validates; the
                                                   // shrinker may not
            s.env == 1 ? faas::ExecEnv::Gen2 : faas::ExecEnv::Gen1,
            sizeOf(s.size)));
    }
}

/** Conditional SLO log section (empty when nothing was admitted). */
std::string
renderSlo(const faas::SloStats &slo)
{
    if (slo.admitted == 0)
        return {};
    std::ostringstream out;
    out << "slo admitted=" << slo.admitted
        << " served_warm=" << slo.served_warm << " queued=" << slo.queued
        << " dispatched=" << slo.dispatched << " rejected=" << slo.rejected
        << " shed=" << slo.shed << "\n";
    out << "slo_latency_s p50=" << fmtUsd(obs::histogramQuantile(
                                        slo.latency_s, 0.50))
        << " p99=" << fmtUsd(obs::histogramQuantile(slo.latency_s, 0.99))
        << "\n";
    return out.str();
}

} // namespace

std::string
ScenarioLog::render() const
{
    std::ostringstream out;
    out << "trace " << trace.size() << "\n";
    for (const faas::PlacementEvent &e : trace) {
        out << "  t=" << e.when.ns() << " inst=" << e.instance
            << " svc=" << e.service << " acct=" << e.account
            << " host=" << e.host << " why=" << faas::toString(e.reason)
            << "\n";
    }
    out << "routed " << routed.size() << "\n";
    for (const std::string &line : routed)
        out << "  " << line << "\n";
    out << "restarted " << restarted.size() << "\n";
    for (const std::string &line : restarted)
        out << "  " << line << "\n";
    out << "spend " << spend.size() << "\n";
    for (const std::string &line : spend)
        out << "  " << line << "\n";
    out << "final_spend";
    for (const double v : final_spend_usd)
        out << " " << fmtUsd(v);
    out << "\n";
    out << slo; // empty unless an OpenLoop step admitted traffic
    out << "instances " << instance_count << "\n";
    out << "events scheduled=" << events_scheduled
        << " processed=" << events_processed
        << " cancelled=" << events_cancelled << " pending=" << events_pending
        << "\n";
    return out.str();
}

ScenarioLog
runScenario(const Scenario &scenario, const RunOptions &opts)
{
    faas::PlatformConfig cfg;
    cfg.profile = profileOf(scenario.profile);
    if (scenario.host_count != 0)
        cfg.profile.host_count = scenario.host_count;
    cfg.orchestrator.reference_scan = opts.reference_scan;
    cfg.orchestrator.isolate_accounts = scenario.isolate_accounts;
    if (scenario.hot_burst_min != 0)
        cfg.orchestrator.hot_burst_min = scenario.hot_burst_min;
    cfg.orchestrator.fault_injection =
        opts.fault_override != ~0u ? opts.fault_override : scenario.fault;
    cfg.seed = opts.seed_override != 0 ? opts.seed_override : scenario.seed;
    cfg.obs = opts.obs;

    faas::Platform platform(cfg);
    faas::PlacementTrace trace;
    platform.orchestrator().attachTrace(&trace);

    std::vector<faas::AccountId> accounts;
    std::vector<faas::ServiceId> services;
    setupTenants(platform, scenario, accounts, services);

    ScenarioLog log;
    // Instances ever created through any path, in creation order; the
    // Restart step indexes into this so a raw payload always resolves.
    std::vector<faas::InstanceId> created;
    const auto noteCreated = [&](std::size_t trace_from) {
        for (std::size_t i = trace_from; i < trace.events().size(); ++i) {
            if (trace.events()[i].reason != faas::PlacementReason::Reuse)
                created.push_back(trace.events()[i].instance);
        }
    };

    // Time-travel scenarios advance to the fork wall between prefix
    // and suffix, mirroring the sharded compile's cursor jump, so the
    // serial oracles see one deterministic composed run.
    const auto barrierAdvance = [&](std::uint32_t step_no) {
        if (!scenario.has_timetravel ||
            step_no != scenario.tt_prefix_steps) {
            return;
        }
        const sim::SimTime wall = forkWallOf(scenario);
        if (platform.clock().now() < wall)
            platform.advance(wall - platform.clock().now());
    };

    std::uint32_t step_no = 0;
    for (const ScenarioStep &st : scenario.steps) {
        barrierAdvance(step_no);
        const std::size_t trace_mark = trace.events().size();
        const faas::ServiceId svc =
            services[st.target % services.size()];
        switch (st.kind) {
        case ScenarioStep::Kind::Connect:
            platform.connect(svc, st.a == 0 ? 1 : st.a);
            break;
        case ScenarioStep::Kind::Disconnect:
            platform.disconnectAll(svc);
            break;
        case ScenarioStep::Kind::Route: {
            const faas::InstanceId inst = platform.orchestrator().routeRequest(
                svc, sim::Duration::millis(st.a == 0 ? 1 : st.a));
            std::ostringstream line;
            line << "step=" << step_no << " inst=" << inst
                 << " host=" << platform.oracleHostOf(inst);
            log.routed.push_back(line.str());
            break;
        }
        case ScenarioStep::Kind::Burst: {
            const std::uint32_t n = st.a == 0 ? 1 : st.a;
            const sim::Duration svc_time =
                sim::Duration::millis(st.b == 0 ? 1 : st.b);
            for (std::uint32_t i = 0; i < n; ++i) {
                const faas::InstanceId inst =
                    platform.orchestrator().routeRequest(svc, svc_time);
                std::ostringstream line;
                line << "step=" << step_no << "." << i << " inst=" << inst
                     << " host=" << platform.oracleHostOf(inst);
                log.routed.push_back(line.str());
                // Small inter-arrival gap: keeps the burst inside one
                // demand window while letting completions interleave.
                platform.advance(sim::Duration::millis(2));
            }
            break;
        }
        case ScenarioStep::Kind::Advance:
            platform.advance(sim::Duration::millis(st.a == 0 ? 1 : st.a));
            break;
        case ScenarioStep::Kind::Restart: {
            if (created.empty())
                break;
            const faas::InstanceId victim = created[st.a % created.size()];
            if (platform.instanceInfo(victim).state ==
                faas::InstanceState::Terminated)
                break;
            const faas::InstanceId repl = platform.restartInstance(victim);
            std::ostringstream line;
            line << "step=" << step_no << " old=" << victim
                 << " new=" << repl;
            log.restarted.push_back(line.str());
            break;
        }
        case ScenarioStep::Kind::SetConcurrency:
            platform.orchestrator().setMaxConcurrency(svc,
                                                      st.a == 0 ? 1 : st.a);
            break;
        case ScenarioStep::Kind::SetQuota:
            platform.setAccountQuota(
                accounts[st.target % accounts.size()],
                st.a == 0 ? 1 : st.a);
            break;
        case ScenarioStep::Kind::Redeploy:
            platform.redeployService(svc);
            break;
        case ScenarioStep::Kind::SpendProbe:
            for (std::size_t a = 0; a < accounts.size(); ++a) {
                std::ostringstream line;
                line << "step=" << step_no << " acct=" << a
                     << " usd=" << fmtUsd(platform.accountSpendUsd(
                            accounts[a]));
                log.spend.push_back(line.str());
            }
            break;
        case ScenarioStep::Kind::OpenLoop: {
            const faas::ArrivalSpec spec = openLoopSpecOf(st);
            // Engine streams fork from the scenario seed + step label,
            // so the draw sequence is a scenario property shared by
            // every oracle arm (reference / threads / obs).
            faas::ArrivalEngine engine(
                platform, svc, spec,
                sim::Rng(cfg.seed).fork(0x4f4c0000ULL + step_no));
            engine.start();
            // The step blocks through the whole span plus a short
            // tail so in-window cold-start dispatches settle.
            platform.advance(spec.span + sim::Duration::seconds(5));
            break;
        }
        }
        noteCreated(trace_mark);
        if (opts.step_hook) {
            RunOptions::StepSample sample;
            sample.step = step_no;
            sample.t_s = platform.clock().now().secondsF();
            sample.instances = platform.orchestrator().instanceCount();
            sample.placements = trace.events().size();
            sample.routed = log.routed.size();
            opts.step_hook(sample);
        }
        ++step_no;
    }
    barrierAdvance(step_no); // all-prefix scenarios still reach the wall

    // Drain: everything idle passes idle_max (15 min), so all reaps
    // fire or are cancelled and billing settles.
    platform.advance(sim::Duration::minutes(20));

    for (const faas::AccountId id : accounts)
        log.final_spend_usd.push_back(platform.accountSpendUsd(id));
    log.slo = renderSlo(platform.orchestrator().sloStats());
    log.trace = trace.events();
    log.instance_count = platform.orchestrator().instanceCount();
    log.events_scheduled = platform.clock().scheduled();
    log.events_processed = platform.clock().processed();
    log.events_cancelled = platform.clock().cancelled();
    log.events_pending = platform.clock().pending();
    return log;
}

namespace {

faas::ShardedConfig
shardedConfigOf(const Scenario &scenario, const ShardedRunOptions &opts)
{
    faas::ShardedConfig cfg;
    cfg.profile = profileOf(scenario.profile);
    if (scenario.host_count != 0)
        cfg.profile.host_count = scenario.host_count;
    cfg.orchestrator.isolate_accounts = scenario.isolate_accounts;
    if (scenario.hot_burst_min != 0)
        cfg.orchestrator.hot_burst_min = scenario.hot_burst_min;
    cfg.orchestrator.fault_injection =
        opts.fault_override != ~0u ? opts.fault_override : scenario.fault;
    cfg.seed = opts.seed_override != 0 ? opts.seed_override : scenario.seed;
    cfg.shards = opts.shards;
    cfg.threads = opts.threads;
    return cfg;
}

/**
 * Compile steps [first, last) of @p scenario into timestamped ops,
 * advancing the virtual-time cursor @p t and mirroring the serial
 * runner's shape: Advance moves the cursor, Burst expands into routes
 * 2 ms apart (advancing the cursor with them), everything else
 * happens at the cursor. Step labels are absolute step indices — the
 * per-service open-loop streams seed from the label, so a suffix
 * compiled on its own (the fork path) draws exactly the streams the
 * same steps draw in one straight pass.
 */
void
compileOps(const Scenario &scenario, std::size_t first, std::size_t last,
           const std::vector<faas::AccountId> &accounts,
           const std::vector<faas::ServiceId> &services, sim::SimTime &t,
           std::vector<faas::ShardOp> &ops)
{
    for (std::size_t i = first; i < last; ++i) {
        const ScenarioStep &st = scenario.steps[i];
        faas::ShardOp op;
        op.at = t;
        op.step = static_cast<std::uint32_t>(i);
        op.service = services[st.target % services.size()];
        switch (st.kind) {
        case ScenarioStep::Kind::Connect:
            op.kind = faas::ShardOp::Kind::Connect;
            op.a = st.a;
            ops.push_back(op);
            break;
        case ScenarioStep::Kind::Disconnect:
            op.kind = faas::ShardOp::Kind::Disconnect;
            ops.push_back(op);
            break;
        case ScenarioStep::Kind::Route:
            op.kind = faas::ShardOp::Kind::Route;
            op.dur = sim::Duration::millis(st.a == 0 ? 1 : st.a);
            ops.push_back(op);
            break;
        case ScenarioStep::Kind::Burst: {
            const std::uint32_t n = st.a == 0 ? 1 : st.a;
            for (std::uint32_t j = 0; j < n; ++j) {
                op.at = t;
                op.sub = j;
                op.kind = faas::ShardOp::Kind::Route;
                op.dur = sim::Duration::millis(st.b == 0 ? 1 : st.b);
                ops.push_back(op);
                t += sim::Duration::millis(2);
            }
            break;
        }
        case ScenarioStep::Kind::Advance:
            t += sim::Duration::millis(st.a == 0 ? 1 : st.a);
            break;
        case ScenarioStep::Kind::Restart:
            op.kind = faas::ShardOp::Kind::Restart;
            // The pick both chooses the lane (via its account) and
            // indexes that lane's created list — total and
            // partition-invariant, like the serial global-list pick.
            op.account = accounts[st.a % accounts.size()];
            op.a = st.a;
            ops.push_back(op);
            break;
        case ScenarioStep::Kind::SetConcurrency:
            op.kind = faas::ShardOp::Kind::SetConcurrency;
            op.a = st.a;
            ops.push_back(op);
            break;
        case ScenarioStep::Kind::SetQuota:
            op.kind = faas::ShardOp::Kind::SetQuota;
            op.account = accounts[st.target % accounts.size()];
            op.a = st.a;
            ops.push_back(op);
            break;
        case ScenarioStep::Kind::Redeploy:
            op.kind = faas::ShardOp::Kind::Redeploy;
            ops.push_back(op);
            break;
        case ScenarioStep::Kind::SpendProbe:
            for (std::size_t a = 0; a < accounts.size(); ++a) {
                op.kind = faas::ShardOp::Kind::SpendProbe;
                op.sub = static_cast<std::uint32_t>(a);
                op.account = accounts[a];
                ops.push_back(op);
            }
            break;
        case ScenarioStep::Kind::OpenLoop: {
            const faas::ArrivalSpec spec = openLoopSpecOf(st);
            op.kind = faas::ShardOp::Kind::OpenLoop;
            op.a = st.a % 3; // ArrivalKind, mirroring openLoopSpecOf
            op.rate = spec.rate_rps;
            op.burst = spec.burst_factor;
            op.dur = spec.mean_service_time;
            op.span = spec.span;
            op.gap = spec.churn_every;
            ops.push_back(op);
            // Mirror the serial runner's blocking shape: later steps
            // start after the stream span and its settling tail.
            t += spec.span + sim::Duration::seconds(5);
            break;
        }
        }
    }
}

/**
 * Compile the whole composed script: prefix from the epoch, then —
 * for a time-travel scenario — the cursor jumps to the fork wall and
 * the suffix compiles after it. One rule for both the straight arm
 * and the fork arm, so their op lists agree byte for byte.
 */
sim::SimTime
compileScript(const Scenario &scenario,
              const std::vector<faas::AccountId> &accounts,
              const std::vector<faas::ServiceId> &services,
              std::vector<faas::ShardOp> &ops)
{
    sim::SimTime t;
    const std::size_t split = prefixSplitOf(scenario);
    compileOps(scenario, 0, split, accounts, services, t, ops);
    if (scenario.has_timetravel) {
        t = std::max(t, forkWallOf(scenario));
        compileOps(scenario, split, scenario.steps.size(), accounts,
                   services, t, ops);
    }
    return t;
}

} // namespace

std::string
runScenarioSharded(const Scenario &scenario, const ShardedRunOptions &opts)
{
    const faas::ShardedConfig cfg = shardedConfigOf(scenario, opts);
    faas::ShardedPlatform platform(cfg, opts.obs);

    std::vector<faas::AccountId> accounts;
    std::vector<faas::ServiceId> services;
    setupTenants(platform, scenario, accounts, services);

    std::vector<faas::ShardOp> ops;
    const sim::SimTime t = compileScript(scenario, accounts, services, ops);

    const sim::SimTime horizon = t + sim::Duration::minutes(20);
    if (opts.snapshot_out == nullptr) {
        platform.run(std::move(ops), horizon);
        return platform.renderLog();
    }

    // Checkpoint-capture mode: step the window loop by hand so the
    // requested barrier can be captured in its pre-fold state.
    opts.snapshot_out->clear();
    platform.beginRun(std::move(ops), horizon);
    std::uint32_t window = 0;
    while (platform.running()) {
        platform.advanceWindow();
        if (opts.snapshot_out->empty() && window >= opts.snapshot_at_window)
            *opts.snapshot_out = snap::Snapshotter::capture(platform);
        platform.completeWindow();
        ++window;
    }
    return platform.renderLog();
}

bool
resumeScenarioSharded(const Scenario &scenario, const ShardedRunOptions &opts,
                      const std::vector<std::uint8_t> &image,
                      std::string &log, std::string &error)
{
    const faas::ShardedConfig cfg = shardedConfigOf(scenario, opts);
    // No accounts/services/ops setup: restore() replaces the platform
    // state wholesale, including the id maps and lane scripts.
    faas::ShardedPlatform platform(cfg, opts.obs);
    if (!snap::Snapshotter::restore(image, platform, error))
        return false;
    platform.resumeRun();
    log = platform.renderLog();
    return true;
}

bool
runScenarioToBarrier(const Scenario &scenario, const ShardedRunOptions &opts,
                     BarrierPrime &out, std::string &error)
{
    if (!scenario.has_timetravel) {
        error = "scenario carries no [timetravel] metadata";
        return false;
    }
    const faas::ShardedConfig cfg = shardedConfigOf(scenario, opts);
    faas::ShardedPlatform platform(cfg, opts.obs);

    std::vector<faas::AccountId> accounts;
    std::vector<faas::ServiceId> services;
    setupTenants(platform, scenario, accounts, services);

    // Prefix only: the suffix never exists on the primed platform —
    // forks append their own. The prefix horizon still carries the
    // 20-minute drain, so every barrier a fuzz driver picks (well
    // under 40 windows) is reachable even for an empty prefix.
    std::vector<faas::ShardOp> ops;
    sim::SimTime t;
    const std::size_t split = prefixSplitOf(scenario);
    compileOps(scenario, 0, split, accounts, services, t, ops);
    out.fork_origin = std::max(t, forkWallOf(scenario));
    out.suffix_label = static_cast<std::uint32_t>(split);

    platform.beginRun(std::move(ops), t + sim::Duration::minutes(20));
    std::uint32_t window = 0;
    while (platform.running()) {
        platform.advanceWindow();
        if (window >= scenario.tt_barrier) {
            // Pre-fold capture, exactly like the snapshot oracle; the
            // half-run platform is abandoned — forks restore from the
            // image, parsed once here for the restore fast path.
            out.image = snap::Snapshotter::capture(platform);
            out.prefix_log = platform.renderLog();
            return out.reader.parse(out.image, error, opts.threads);
        }
        platform.completeWindow();
        ++window;
    }
    std::ostringstream msg;
    msg << "barrier window " << scenario.tt_barrier
        << " not reached: the prefix run ended after " << window
        << " windows";
    error = msg.str();
    return false;
}

bool
restoreScenarioBarrier(const Scenario &scenario,
                       const ShardedRunOptions &opts,
                       const BarrierPrime &prime, std::string &log,
                       std::string &error)
{
    const faas::ShardedConfig cfg = shardedConfigOf(scenario, opts);
    faas::ShardedPlatform platform(cfg, opts.obs);
    if (!snap::Snapshotter::restore(prime.reader, platform, error))
        return false;
    log = platform.renderLog();
    return true;
}

bool
runScenarioForked(const Scenario &scenario, const ShardedRunOptions &opts,
                  const BarrierPrime &prime, std::string &log,
                  std::string &error)
{
    const faas::ShardedConfig cfg = shardedConfigOf(scenario, opts);
    faas::ShardedPlatform platform(cfg, opts.obs);
    if (!snap::Snapshotter::restore(prime.reader, platform, error))
        return false;

    // The image restored the tenant maps, and both createAccount and
    // deployService hand out dense ids in creation order — so the
    // global ids are the indices and the suffix can be compiled
    // without touching the platform.
    std::vector<faas::AccountId> accounts(scenario.accounts.size());
    std::iota(accounts.begin(), accounts.end(), faas::AccountId{0});
    std::vector<faas::ServiceId> services(scenario.services.size());
    std::iota(services.begin(), services.end(), faas::ServiceId{0});

    std::vector<faas::ShardOp> ops;
    sim::SimTime t = prime.fork_origin;
    compileOps(scenario, prime.suffix_label, scenario.steps.size(), accounts,
               services, t, ops);
    platform.appendOps(std::move(ops), t + sim::Duration::minutes(20));
    platform.resumeRun();
    log = platform.renderLog();
    return true;
}

} // namespace eaao::testkit
