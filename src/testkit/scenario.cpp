/**
 * @file
 * Scenario serialization and the seeded scenario generator.
 */

#include "testkit/scenario.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "campaign/specfile.hpp"
#include "snap/format.hpp"
#include "support/logging.hpp"

namespace eaao::testkit {

namespace {

/** Replay-file tokens, indexed by ScenarioStep::Kind. */
constexpr const char *kKindTokens[kStepKindCount] = {
    "connect",   "disconnect",  "route",           "burst",
    "advance",   "restart",     "set_concurrency", "set_quota",
    "redeploy",  "spend_probe", "open_loop",
};

/** Profile names, indexed by Scenario::profile. */
constexpr const char *kProfileNames[3] = {"us-east1", "us-central1",
                                          "us-west1"};

bool
parseProfileName(const std::string &token, std::uint8_t &out)
{
    for (std::uint8_t i = 0; i < 3; ++i) {
        if (token == kProfileNames[i]) {
            out = i;
            return true;
        }
    }
    return false;
}

bool
parseKind(const std::string &token, ScenarioStep::Kind &out)
{
    for (std::size_t i = 0; i < kStepKindCount; ++i) {
        if (token == kKindTokens[i]) {
            out = static_cast<ScenarioStep::Kind>(i);
            return true;
        }
    }
    return false;
}

void drawSteps(sim::Rng &rng, std::uint32_t n_accounts,
               std::uint32_t n_services, std::uint32_t n_steps,
               const GeneratorOptions &opts, std::vector<ScenarioStep> &out);

} // namespace

const char *
toString(ScenarioStep::Kind kind)
{
    const auto i = static_cast<std::size_t>(kind);
    EAAO_ASSERT(i < kStepKindCount, "bad step kind");
    return kKindTokens[i];
}

std::string
Scenario::serialize() const
{
    // v2, the sectioned campaign format (docs/scenario-dsl.md): the
    // shrinker's replays and the fuzzer's generated scenarios share
    // one schema with the bench campaign files, and `run_campaign`
    // executes them directly. parse() still reads committed v1 files.
    std::ostringstream out;
    out << "eaao-scenario v2\n";
    out << "\n[campaign]\n";
    out << "name = replay\n";
    out << "program = replay\n";
    out << "\n[platform]\n";
    out << "seed = " << seed << "\n";
    out << "profile = "
        << kProfileNames[profile < 3 ? profile : 0] << "\n";
    out << "hosts = " << host_count << "\n";
    out << "isolate = " << (isolate_accounts ? 1 : 0) << "\n";
    out << "hot_burst_min = " << hot_burst_min << "\n";
    out << "fault = " << fault << "\n";
    out << "\n[tenants]\n";
    for (const ScenarioAccount &a : accounts)
        out << "account " << a.shard << " " << a.quota << "\n";
    for (const ScenarioService &s : services) {
        out << "service " << s.account << " " << static_cast<unsigned>(s.env)
            << " " << static_cast<unsigned>(s.size) << "\n";
    }
    out << "\n[script]\n";
    for (const ScenarioStep &s : steps) {
        out << toString(s.kind) << " " << s.target << " " << s.a
            << " " << s.b << "\n";
    }
    if (has_timetravel) {
        char digest[32];
        std::snprintf(digest, sizeof digest, "%016llx",
                      static_cast<unsigned long long>(tt_prefix_digest));
        out << "\n[timetravel]\n";
        out << "barrier = " << tt_barrier << "\n";
        out << "prefix_steps = " << tt_prefix_steps << "\n";
        out << "prefix_digest = " << digest << "\n";
    }
    return out.str();
}

namespace {

/** Shared validation of the parsed topology (both versions). */
bool
validateScenario(const Scenario &out, std::string &error)
{
    if (out.accounts.empty()) {
        error = "scenario has no accounts";
        return false;
    }
    if (out.services.empty()) {
        error = "scenario has no services";
        return false;
    }
    for (std::size_t i = 0; i < out.services.size(); ++i) {
        if (out.services[i].account >= out.accounts.size()) {
            std::ostringstream msg;
            msg << "service " << i << " references account "
                << out.services[i].account << " of " << out.accounts.size();
            error = msg.str();
            return false;
        }
    }
    return true;
}

/**
 * The v2 path: the sectioned campaign format. The replay parser reads
 * [platform], [tenants], and [script]; other sections ([campaign],
 * [outputs], ...) belong to the campaign layer and are ignored here.
 */
bool
parseV2(const std::string &text, Scenario &out, std::string &error)
{
    campaign::SpecFile file;
    if (!campaign::SpecFile::parse(text, "replay", file, error))
        return false;

    std::size_t line_no = 0;
    const auto fail = [&](const std::string &why) {
        std::ostringstream msg;
        msg << "line " << line_no << ": " << why;
        error = msg.str();
        return false;
    };

    if (const campaign::SpecSection *platform = file.section("platform")) {
        for (const campaign::SpecLine &l : platform->lines) {
            line_no = l.line_no;
            if (!l.isKeyValue())
                return fail("expected key = value in [platform]");
            std::istringstream ls(l.value);
            if (l.key == "seed") {
                if (!(ls >> out.seed))
                    return fail("bad seed");
            } else if (l.key == "profile") {
                if (l.tokens.size() != 1 ||
                    !parseProfileName(l.tokens[0], out.profile)) {
                    return fail("bad profile (want us-east1 / "
                                "us-central1 / us-west1)");
                }
            } else if (l.key == "hosts") {
                if (!(ls >> out.host_count))
                    return fail("bad hosts");
            } else if (l.key == "isolate") {
                unsigned v = 0;
                if (!(ls >> v) || v > 1)
                    return fail("bad isolate (want 0/1)");
                out.isolate_accounts = v != 0;
            } else if (l.key == "hot_burst_min") {
                if (!(ls >> out.hot_burst_min))
                    return fail("bad hot_burst_min");
            } else if (l.key == "fault") {
                if (!(ls >> out.fault))
                    return fail("bad fault");
            } else {
                return fail("unknown [platform] key '" + l.key + "'");
            }
        }
    }

    if (const campaign::SpecSection *tenants = file.section("tenants")) {
        for (const campaign::SpecLine &l : tenants->lines) {
            line_no = l.line_no;
            if (l.isKeyValue() || l.tokens.empty())
                return fail("expected 'account ...' or 'service ...' "
                            "in [tenants]");
            std::istringstream ls(l.raw);
            std::string head;
            ls >> head;
            if (head == "account") {
                ScenarioAccount a;
                if (!(ls >> a.shard >> a.quota))
                    return fail(
                        "bad account line (want: account <shard> <quota>)");
                out.accounts.push_back(a);
            } else if (head == "service") {
                ScenarioService s;
                unsigned env = 0, size = 0;
                if (!(ls >> s.account >> env >> size) || env > 1 ||
                    size > 3) {
                    return fail("bad service line (want: service "
                                "<account> <env 0/1> <size 0..3>)");
                }
                s.env = static_cast<std::uint8_t>(env);
                s.size = static_cast<std::uint8_t>(size);
                out.services.push_back(s);
            } else {
                return fail("unknown [tenants] directive '" + head + "'");
            }
        }
    }

    if (const campaign::SpecSection *script = file.section("script")) {
        for (const campaign::SpecLine &l : script->lines) {
            line_no = l.line_no;
            if (l.isKeyValue() || l.tokens.empty())
                return fail("expected '<kind> <target> <a> <b>' "
                            "in [script]");
            std::istringstream ls(l.raw);
            std::string token;
            ScenarioStep s;
            if (!(ls >> token >> s.target >> s.a >> s.b))
                return fail(
                    "bad step line (want: <kind> <target> <a> <b>)");
            if (!parseKind(token, s.kind))
                return fail("unknown step kind '" + token + "'");
            out.steps.push_back(s);
        }
    }

    if (const campaign::SpecSection *tt = file.section("timetravel")) {
        std::size_t digest_line = 0;
        bool saw_barrier = false, saw_steps = false, saw_digest = false;
        for (const campaign::SpecLine &l : tt->lines) {
            line_no = l.line_no;
            if (!l.isKeyValue())
                return fail("expected key = value in [timetravel]");
            std::istringstream ls(l.value);
            if (l.key == "barrier") {
                if (!(ls >> out.tt_barrier))
                    return fail("bad barrier");
                saw_barrier = true;
            } else if (l.key == "prefix_steps") {
                if (!(ls >> out.tt_prefix_steps))
                    return fail("bad prefix_steps");
                saw_steps = true;
            } else if (l.key == "prefix_digest") {
                if (!(ls >> std::hex >> out.tt_prefix_digest))
                    return fail("bad prefix_digest (want 16 hex digits)");
                digest_line = l.line_no;
                saw_digest = true;
            } else {
                return fail("unknown [timetravel] key '" + l.key + "'");
            }
        }
        line_no = tt->lines.empty() ? 0 : tt->lines.front().line_no;
        if (!saw_barrier || !saw_steps || !saw_digest)
            return fail("[timetravel] needs barrier, prefix_steps "
                        "and prefix_digest");
        out.has_timetravel = true;
        if (out.tt_prefix_steps > out.steps.size()) {
            std::ostringstream msg;
            msg << "prefix_steps " << out.tt_prefix_steps
                << " exceeds the " << out.steps.size()
                << "-step script";
            return fail(msg.str());
        }
        // The digest pins the snapshot image this suffix was shrunk
        // against. A replay whose prefix drifted (hand edit, stale
        // file) would silently prime a different image — reject it.
        const std::uint64_t want = timeTravelPrefixDigest(out);
        if (want != out.tt_prefix_digest) {
            line_no = digest_line;
            std::ostringstream msg;
            char a[32], b[32];
            std::snprintf(a, sizeof a, "%016llx",
                          static_cast<unsigned long long>(
                              out.tt_prefix_digest));
            std::snprintf(b, sizeof b, "%016llx",
                          static_cast<unsigned long long>(want));
            msg << "prefix digest mismatch: file says " << a
                << " but the replayed prefix hashes to " << b
                << " (the [timetravel] snapshot reference does not "
                   "cover this prefix)";
            return fail(msg.str());
        }
    }

    if (!validateScenario(out, error))
        return false;
    error.clear();
    return true;
}

} // namespace

bool
Scenario::parse(const std::string &text, Scenario &out, std::string &error)
{
    out = Scenario{};
    out.accounts.clear();
    out.services.clear();
    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;

    const auto fail = [&](const std::string &why) {
        std::ostringstream msg;
        msg << "line " << line_no << ": " << why;
        error = msg.str();
        return false;
    };

    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        if (!saw_header) {
            if (line != "eaao-scenario v1") {
                // A well-formed header with a higher version means the
                // file comes from a newer build: say so instead of a
                // generic mismatch, so `fuzz_scenarios --replay` fails
                // with an actionable message (and exits non-zero).
                unsigned version = 0;
                if (std::sscanf(line.c_str(), "eaao-scenario v%u",
                                &version) == 1 &&
                    version >= 2) {
                    if (version == campaign::kSpecVersion)
                        return parseV2(text, out, error);
                    std::ostringstream msg;
                    msg << "scenario version v" << version
                        << " is newer than this binary supports (max v"
                        << campaign::kSpecVersion
                        << "); rebuild or regenerate the replay";
                    return fail(msg.str());
                }
                return fail("expected header 'eaao-scenario v1' or "
                            "'eaao-scenario v2'");
            }
            saw_header = true;
            continue;
        }
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "seed") {
            if (!(ls >> out.seed))
                return fail("bad seed");
        } else if (key == "profile") {
            unsigned v = 0;
            if (!(ls >> v) || v > 2)
                return fail("bad profile (want 0..2)");
            out.profile = static_cast<std::uint8_t>(v);
        } else if (key == "hosts") {
            if (!(ls >> out.host_count))
                return fail("bad hosts");
        } else if (key == "isolate") {
            unsigned v = 0;
            if (!(ls >> v) || v > 1)
                return fail("bad isolate (want 0/1)");
            out.isolate_accounts = v != 0;
        } else if (key == "hot_burst_min") {
            if (!(ls >> out.hot_burst_min))
                return fail("bad hot_burst_min");
        } else if (key == "fault") {
            if (!(ls >> out.fault))
                return fail("bad fault");
        } else if (key == "account") {
            ScenarioAccount a;
            if (!(ls >> a.shard >> a.quota))
                return fail("bad account line (want: account <shard> <quota>)");
            out.accounts.push_back(a);
        } else if (key == "service") {
            ScenarioService s;
            unsigned env = 0, size = 0;
            if (!(ls >> s.account >> env >> size) || env > 1 || size > 3)
                return fail("bad service line "
                            "(want: service <account> <env 0/1> <size 0..3>)");
            s.env = static_cast<std::uint8_t>(env);
            s.size = static_cast<std::uint8_t>(size);
            out.services.push_back(s);
        } else if (key == "step") {
            std::string token;
            ScenarioStep s;
            if (!(ls >> token >> s.target >> s.a >> s.b))
                return fail("bad step line "
                            "(want: step <kind> <target> <a> <b>)");
            if (!parseKind(token, s.kind))
                return fail("unknown step kind '" + token + "'");
            out.steps.push_back(s);
        } else {
            return fail("unknown key '" + key + "'");
        }
    }
    if (!saw_header) {
        error = "empty file (no header)";
        return false;
    }
    if (!validateScenario(out, error))
        return false;
    error.clear();
    return true;
}

Scenario
generateScenario(std::uint64_t base_seed, std::uint64_t index,
                 const GeneratorOptions &opts)
{
    sim::Rng rng = sim::Rng(base_seed).fork(index);

    Scenario sc;
    sc.seed = rng();
    if (sc.seed == 0)
        sc.seed = 1;

    // Platform shape. us-central1's preset is ~3500 hosts; every
    // profile gets a small-fleet override so a fuzz campaign clears
    // thousands of scenarios per minute. The shard structure survives:
    // 550 hosts is at least 5 shards on every profile, so shard pins
    // 0..4 are always valid and the sharded platform gets 5 lanes —
    // enough for the shard-equality oracle's {1, 2, 5} grouping arms
    // to partition differently.
    sc.profile = opts.allow_dynamic_profile
                     ? static_cast<std::uint8_t>(rng.uniformInt(3))
                     : static_cast<std::uint8_t>(rng.uniformInt(2) == 0 ? 0
                                                                        : 2);
    sc.host_count = 550;
    sc.isolate_accounts = rng.bernoulli(0.15);
    // Occasionally lower the hotness threshold so small bursts flip
    // services hot and exercise the helper-placement path.
    sc.hot_burst_min = rng.bernoulli(0.4)
                           ? static_cast<std::uint32_t>(rng.uniformInt(5, 40))
                           : 0;

    const auto n_accounts =
        static_cast<std::uint32_t>(rng.uniformInt(1, opts.max_accounts));
    for (std::uint32_t i = 0; i < n_accounts; ++i) {
        ScenarioAccount a;
        // Shard-pinned accounts dominate: pins spread the accounts
        // over distinct lanes, which is what makes the cross-lane
        // exchange (and its planted faults) observable.
        a.shard = rng.bernoulli(0.6)
                      ? static_cast<std::int32_t>(rng.uniformInt(5))
                      : -1;
        // Mix fresh capped accounts with established ones (§5.2 quota).
        const std::uint32_t quotas[4] = {4, 10, 60, 1000};
        a.quota = quotas[rng.uniformInt(4)];
        sc.accounts.push_back(a);
    }

    const auto n_services =
        static_cast<std::uint32_t>(rng.uniformInt(1, opts.max_services));
    for (std::uint32_t i = 0; i < n_services; ++i) {
        ScenarioService s;
        s.account = static_cast<std::uint32_t>(rng.uniformInt(n_accounts));
        s.env = opts.allow_gen2 && rng.bernoulli(0.35) ? 1 : 0;
        s.size = static_cast<std::uint8_t>(rng.uniformInt(4));
        sc.services.push_back(s);
    }

    const auto n_steps = static_cast<std::uint32_t>(
        rng.uniformInt(opts.min_steps, opts.max_steps));
    drawSteps(rng, n_accounts, n_services, n_steps, opts, sc.steps);
    return sc;
}

namespace {

/**
 * The weighted step-kind draw shared by generateScenario and
 * generateSuffixSteps: @p n_steps steps against a topology of
 * @p n_accounts x @p n_services, appended to @p out.
 */
void
drawSteps(sim::Rng &rng, std::uint32_t n_accounts, std::uint32_t n_services,
          std::uint32_t n_steps, const GeneratorOptions &opts,
          std::vector<ScenarioStep> &out)
{
    const auto svc = [&] {
        return static_cast<std::uint32_t>(rng.uniformInt(n_services));
    };
    for (std::uint32_t i = 0; i < n_steps; ++i) {
        ScenarioStep st;
        // Weighted kinds. Connect/advance/burst dominate because the
        // paper's placement behaviours (hotness, helper growth, reap)
        // are driven by launch surges and idle gaps.
        const std::uint64_t w = rng.uniformInt(100);
        if (w < 24) {
            st.kind = ScenarioStep::Kind::Connect;
            st.target = svc();
            st.a = static_cast<std::uint32_t>(
                rng.uniformInt(1, opts.max_connect));
        } else if (w < 32) {
            st.kind = ScenarioStep::Kind::Disconnect;
            st.target = svc();
        } else if (w < 44) {
            st.kind = ScenarioStep::Kind::Route;
            st.target = svc();
            st.a = static_cast<std::uint32_t>(rng.uniformInt(1, 2000)); // ms
        } else if (w < 56) {
            st.kind = ScenarioStep::Kind::Burst;
            st.target = svc();
            st.a = static_cast<std::uint32_t>(
                rng.uniformInt(2, opts.max_burst));
            st.b = static_cast<std::uint32_t>(rng.uniformInt(1, 500)); // ms
            // Cross-shard burst pair: sometimes fire a second burst at
            // another service back-to-back, so services of accounts on
            // different shards (lanes) are active in the same exchange
            // window.
            if (n_services > 1 && rng.bernoulli(0.3)) {
                out.push_back(st);
                st.target = svc();
                st.a = static_cast<std::uint32_t>(
                    rng.uniformInt(2, opts.max_burst));
                st.b = static_cast<std::uint32_t>(
                    rng.uniformInt(1, 500)); // ms
            }
        } else if (w < 76) {
            st.kind = ScenarioStep::Kind::Advance;
            // Idle-gap buckets chosen to straddle the reap window:
            // short gaps (< idle_hold = 2 min), gaps just around the
            // hold boundary, long gaps past idle_max = 15 min, and
            // exact multiples of the sharded platform's 30 s exchange
            // window, so subsequent steps land exactly on a barrier
            // (the window-boundary fault's bite point).
            const std::uint64_t bucket = rng.uniformInt(5);
            if (bucket == 0)
                st.a = static_cast<std::uint32_t>(rng.uniformInt(1, 5'000));
            else if (bucket == 1)
                st.a = static_cast<std::uint32_t>(
                    rng.uniformInt(100'000, 140'000));
            else if (bucket == 2)
                st.a = static_cast<std::uint32_t>(
                    rng.uniformInt(5'000, opts.max_advance_ms));
            else if (bucket == 3)
                st.a = static_cast<std::uint32_t>(
                    rng.uniformInt(900'000, 1'100'000));
            else
                st.a = 30'000 * static_cast<std::uint32_t>(
                                    rng.uniformInt(1, 4));
        } else if (w < 80) {
            // Open-loop arrival stream: raw payloads, decoded by the
            // runner into the full ArrivalSpec (family, rate, span,
            // burstiness, churn) so admission backpressure and the
            // cold-start queue see fuzzed traffic in every oracle.
            st.kind = ScenarioStep::Kind::OpenLoop;
            st.target = svc();
            st.a = static_cast<std::uint32_t>(rng.uniformInt(1u << 30));
            st.b = static_cast<std::uint32_t>(rng.uniformInt(1u << 30));
        } else if (w < 85) {
            st.kind = ScenarioStep::Kind::Restart;
            st.a = static_cast<std::uint32_t>(rng.uniformInt(1u << 16));
        } else if (w < 89) {
            st.kind = ScenarioStep::Kind::SetConcurrency;
            st.target = svc();
            st.a = static_cast<std::uint32_t>(rng.uniformInt(1, 8));
        } else if (w < 93) {
            st.kind = ScenarioStep::Kind::SetQuota;
            st.target = static_cast<std::uint32_t>(rng.uniformInt(n_accounts));
            const std::uint32_t quotas[3] = {10, 120, 1000};
            st.a = quotas[rng.uniformInt(3)];
        } else if (w < 96) {
            st.kind = ScenarioStep::Kind::Redeploy;
            st.target = svc();
        } else {
            st.kind = ScenarioStep::Kind::SpendProbe;
        }
        out.push_back(st);
    }
}

/** Salt of the per-fork suffix stream (see generateSuffixSteps). */
constexpr std::uint64_t kSuffixForkSalt = 0x5F0BB000ULL;

} // namespace

std::uint64_t
timeTravelPrefixDigest(const Scenario &sc)
{
    Scenario prefix = sc;
    prefix.has_timetravel = false;
    prefix.tt_barrier = 0;
    prefix.tt_prefix_steps = 0;
    prefix.tt_prefix_digest = 0;
    if (prefix.steps.size() > sc.tt_prefix_steps)
        prefix.steps.resize(sc.tt_prefix_steps);
    const std::string text = prefix.serialize();
    return snap::fnv1a(reinterpret_cast<const std::uint8_t *>(text.data()),
                       text.size());
}

Scenario
composeTimeTravel(const Scenario &prefix, std::vector<ScenarioStep> suffix,
                  std::uint32_t barrier)
{
    Scenario sc = prefix;
    sc.has_timetravel = true;
    sc.tt_barrier = barrier;
    sc.tt_prefix_steps = static_cast<std::uint32_t>(prefix.steps.size());
    sc.steps.insert(sc.steps.end(), suffix.begin(), suffix.end());
    sc.tt_prefix_digest = timeTravelPrefixDigest(sc);
    return sc;
}

std::vector<ScenarioStep>
generateSuffixSteps(std::uint64_t base_seed, std::uint64_t index,
                    std::uint64_t fork, const Scenario &prefix,
                    std::uint32_t max_steps, const GeneratorOptions &opts)
{
    sim::Rng rng =
        sim::Rng(base_seed).fork(index).fork(kSuffixForkSalt + fork);
    std::vector<ScenarioStep> out;
    const auto n = static_cast<std::uint32_t>(
        rng.uniformInt(1, max_steps > 0 ? max_steps : 1));
    drawSteps(rng, static_cast<std::uint32_t>(prefix.accounts.size()),
              static_cast<std::uint32_t>(prefix.services.size()), n, opts,
              out);
    return out;
}

} // namespace eaao::testkit
