/**
 * @file
 * Implementation of the invariant oracles.
 */

#include "testkit/invariants.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "exp/trial_runner.hpp"
#include "obs/export.hpp"
#include "sim/event_queue.hpp"
#include "stats/clustering.hpp"
#include "testkit/runner.hpp"

namespace eaao::testkit {

namespace {

/** First line where @p a and @p b diverge, quoted for the report. */
std::string
firstDiff(const std::string &a, const std::string &b)
{
    std::istringstream sa(a);
    std::istringstream sb(b);
    std::string la;
    std::string lb;
    std::size_t line = 0;
    while (true) {
        ++line;
        const bool ga = static_cast<bool>(std::getline(sa, la));
        const bool gb = static_cast<bool>(std::getline(sb, lb));
        if (!ga && !gb)
            return "identical"; // only sizes differed upstream
        if (!ga || !gb || la != lb) {
            std::ostringstream out;
            out << "line " << line << ": '" << (ga ? la : "<eof>") << "' vs '"
                << (gb ? lb : "<eof>") << "'";
            return out.str();
        }
    }
}

void
checkReference(const Scenario &sc, const std::string &indexed,
               std::vector<Violation> &out)
{
    RunOptions ro;
    ro.reference_scan = true;
    const std::string reference = runScenario(sc, ro).render();
    if (reference != indexed)
        out.push_back({"reference", firstDiff(indexed, reference)});
}

void
checkObs(const Scenario &sc, const std::string &plain,
         std::vector<Violation> &out)
{
    obs::TrialObs slot;
    RunOptions ro;
    ro.obs = slot.observer();
    const std::string observed = runScenario(sc, ro).render();
    if (observed != plain)
        out.push_back({"obs", firstDiff(plain, observed)});
}

void
checkThreads(const Scenario &sc, const InvariantOptions &opts,
             std::vector<Violation> &out)
{
    const auto body = [&sc](exp::TrialContext &ctx) -> std::string {
        RunOptions ro;
        ro.obs = ctx.obs;
        ro.seed_override = ctx.trialSeed();
        return runScenario(sc, ro).render();
    };

    const auto campaign = [&](unsigned threads, obs::TrialSet &set) {
        return exp::runTrials(opts.thread_trials, sc.seed, body, threads,
                              &set);
    };

    obs::TrialSet set1(true);
    obs::TrialSet setN(true);
    const std::vector<std::string> logs1 = campaign(1, set1);
    const std::vector<std::string> logsN = campaign(opts.threads, setN);

    for (std::size_t i = 0; i < logs1.size(); ++i) {
        if (logs1[i] != logsN[i]) {
            std::ostringstream detail;
            detail << "trial " << i << " log: "
                   << firstDiff(logs1[i], logsN[i]);
            out.push_back({"threads", detail.str()});
            return;
        }
    }

    const auto mergedMetrics = [](obs::TrialSet &set) {
        std::vector<obs::MetricsRegistry> parts;
        parts.reserve(set.slots().size());
        for (obs::TrialObs &slot : set.slots())
            parts.push_back(slot.metrics);
        return obs::mergeRegistries(parts).toJson();
    };
    const std::string m1 = mergedMetrics(set1);
    const std::string mN = mergedMetrics(setN);
    if (m1 != mN) {
        out.push_back({"threads", "merged metrics: " + firstDiff(m1, mN)});
        return;
    }

    const auto traceJson = [](const obs::TrialSet &set) {
        std::vector<const obs::TraceSink *> sinks;
        sinks.reserve(set.slots().size());
        for (const obs::TrialObs &slot : set.slots())
            sinks.push_back(&slot.trace);
        return obs::toChromeTraceJson(sinks);
    };
    const std::string t1 = traceJson(set1);
    const std::string tN = traceJson(setN);
    if (t1 != tN)
        out.push_back({"threads", "chrome trace: " + firstDiff(t1, tN)});
}

void
checkEvents(const ScenarioLog &log, std::vector<Violation> &out)
{
    if (log.events_scheduled !=
        log.events_processed + log.events_cancelled + log.events_pending) {
        std::ostringstream detail;
        detail << "conservation: scheduled=" << log.events_scheduled
               << " != processed=" << log.events_processed
               << " + cancelled=" << log.events_cancelled
               << " + pending=" << log.events_pending;
        out.push_back({"events", detail.str()});
    }

    // Generation-tag probes on a standalone queue: stale handles must
    // be refused in every slot-reuse order.
    sim::EventQueue eq;
    int fired_a = 0;
    int fired_b = 0;
    const sim::EventId a =
        eq.scheduleAfter(sim::Duration::millis(1), [&] { ++fired_a; });
    const sim::EventId b =
        eq.scheduleAfter(sim::Duration::millis(2), [&] { ++fired_b; });
    if (!eq.cancel(a))
        out.push_back({"events", "cancel of a pending event refused"});
    if (eq.cancel(a))
        out.push_back({"events", "double-cancel accepted"});
    // a's slot is free again; c reuses it with a bumped generation.
    int fired_c = 0;
    const sim::EventId c =
        eq.scheduleAfter(sim::Duration::millis(3), [&] { ++fired_c; });
    if (eq.cancel(a))
        out.push_back({"events", "stale handle accepted after slot reuse"});
    eq.advance(sim::Duration::millis(10));
    if (fired_a != 0)
        out.push_back({"events", "cancelled event fired"});
    if (fired_b != 1 || fired_c != 1)
        out.push_back({"events", "live event lost after cancellations"});
    if (eq.cancel(b))
        out.push_back({"events", "cancel-after-fire accepted"});
    if (eq.cancel(c))
        out.push_back({"events", "cancel-after-fire accepted (reused slot)"});
    if (eq.pending() != 0)
        out.push_back({"events", "probe queue did not drain"});
}

/** Merged metrics JSON of a TrialSet, slot order (shared helper). */
std::string
mergedSetMetrics(const obs::TrialSet &set)
{
    std::vector<obs::MetricsRegistry> parts;
    parts.reserve(set.slots().size());
    for (const obs::TrialObs &slot : set.slots())
        parts.push_back(slot.metrics);
    return obs::mergeRegistries(parts).toJson();
}

/** Chrome trace JSON of a TrialSet, slot order (shared helper). */
std::string
setTraceJson(const obs::TrialSet &set)
{
    std::vector<const obs::TraceSink *> sinks;
    sinks.reserve(set.slots().size());
    for (const obs::TrialObs &slot : set.slots())
        sinks.push_back(&slot.trace);
    return obs::toChromeTraceJson(sinks);
}

/**
 * Shard-count byte-equality: one sharded execution per (shards,
 * threads) arm, all compared — log, merged metrics, Chrome trace —
 * against the (1, 1) baseline. Lane count is a fixed platform
 * property, so every arm runs the same lanes; only the grouping onto
 * workers differs, and nothing may depend on it.
 */
void
checkShards(const Scenario &sc, const InvariantOptions &opts,
            std::vector<Violation> &out)
{
    struct Arm
    {
        std::uint32_t shards;
        unsigned threads;
    };
    const Arm arms[] = {
        {1, 1},
        {2, 1},
        {opts.shard_arm, 1},
        {2, opts.threads},
        {opts.shard_arm, opts.threads},
    };

    const auto mergedMetrics = [](obs::TrialSet &set) {
        return mergedSetMetrics(set);
    };
    const auto traceJson = [](const obs::TrialSet &set) {
        return setTraceJson(set);
    };

    std::string base_log;
    std::string base_metrics;
    std::string base_trace;
    for (std::size_t i = 0; i < std::size(arms); ++i) {
        obs::TrialSet set(true);
        ShardedRunOptions ro;
        ro.shards = arms[i].shards;
        ro.threads = arms[i].threads;
        ro.obs = &set;
        const std::string log = runScenarioSharded(sc, ro);
        const std::string metrics = mergedMetrics(set);
        const std::string trace = traceJson(set);
        if (i == 0) {
            base_log = log;
            base_metrics = metrics;
            base_trace = trace;
            continue;
        }
        const auto report = [&](const char *what, const std::string &a,
                                const std::string &b) {
            std::ostringstream detail;
            detail << "shards=" << arms[i].shards
                   << " threads=" << arms[i].threads << " " << what << ": "
                   << firstDiff(a, b);
            out.push_back({"shards", detail.str()});
        };
        if (log != base_log) {
            report("log", base_log, log);
            return;
        }
        if (metrics != base_metrics) {
            report("merged metrics", base_metrics, metrics);
            return;
        }
        if (trace != base_trace) {
            report("chrome trace", base_trace, trace);
            return;
        }
    }
}

/**
 * Checkpoint/restore byte-equality: run the sharded scenario straight
 * through at (1, 1) for the baseline, then re-run it capturing a
 * snapshot at a window barrier (the first barrier, and a mid-run one
 * when the run is long enough) and finish each captured run from the
 * snapshot — once at the same (1, 1) grouping and once at (2, N),
 * since lane grouping is excluded from the snapshot's config
 * fingerprint. Log, merged metrics JSON, and Chrome trace JSON must
 * all match the baseline byte-for-byte. Catches planted fault 5 (the
 * restore path drops one lane's vcpus delta column).
 */
void
checkSnapshot(const Scenario &sc, const InvariantOptions &opts,
              std::vector<Violation> &out)
{
    obs::TrialSet base_set(true);
    ShardedRunOptions base_ro;
    base_ro.obs = &base_set;
    const std::string base_log = runScenarioSharded(sc, base_ro);
    const std::string base_metrics = mergedSetMetrics(base_set);
    const std::string base_trace = setTraceJson(base_set);

    unsigned lanes = 0, windows = 0;
    long long window_ns = 0;
    if (std::sscanf(base_log.c_str(),
                    "sharded lanes=%u window_ns=%lld windows=%u", &lanes,
                    &window_ns, &windows) != 3) {
        out.push_back({"snapshot", "cannot parse window count from the "
                                   "sharded log header"});
        return;
    }

    std::vector<std::uint32_t> capture_points = {0};
    if (windows / 2 != 0)
        capture_points.push_back(windows / 2);

    for (const std::uint32_t at : capture_points) {
        std::vector<std::uint8_t> image;
        obs::TrialSet cap_set(true);
        ShardedRunOptions cap_ro;
        cap_ro.obs = &cap_set;
        cap_ro.snapshot_at_window = at;
        cap_ro.snapshot_out = &image;
        const std::string cap_log = runScenarioSharded(sc, cap_ro);
        if (cap_log != base_log) {
            out.push_back({"snapshot",
                           "capture stepping perturbed the run: " +
                               firstDiff(base_log, cap_log)});
            return;
        }
        if (image.empty()) {
            std::ostringstream detail;
            detail << "no snapshot captured at window " << at << " (of "
                   << windows << ")";
            out.push_back({"snapshot", detail.str()});
            return;
        }

        struct Arm
        {
            std::uint32_t shards;
            unsigned threads;
        };
        const Arm arms[] = {{1, 1}, {2, opts.threads}};
        for (const Arm &arm : arms) {
            obs::TrialSet res_set(true);
            ShardedRunOptions res_ro;
            res_ro.shards = arm.shards;
            res_ro.threads = arm.threads;
            res_ro.obs = &res_set;
            std::string log, error;
            const auto report = [&](const char *what,
                                    const std::string &a,
                                    const std::string &b) {
                std::ostringstream detail;
                detail << "window " << at << " restore (shards="
                       << arm.shards << " threads=" << arm.threads << ") "
                       << what << ": " << firstDiff(a, b);
                out.push_back({"snapshot", detail.str()});
            };
            if (!resumeScenarioSharded(sc, res_ro, image, log, error)) {
                std::ostringstream detail;
                detail << "window " << at << " restore failed: " << error;
                out.push_back({"snapshot", detail.str()});
                return;
            }
            if (log != base_log) {
                report("log", base_log, log);
                return;
            }
            const std::string metrics = mergedSetMetrics(res_set);
            if (metrics != base_metrics) {
                report("merged metrics", base_metrics, metrics);
                return;
            }
            const std::string trace = setTraceJson(res_set);
            if (trace != base_trace) {
                report("chrome trace", base_trace, trace);
                return;
            }
        }
    }
}

/** Platform config oracle E uses: scenario shape, fresh tenant. */
faas::PlatformConfig
verifyPlatformConfig(const Scenario &sc)
{
    faas::PlatformConfig cfg;
    if (sc.profile == 1)
        cfg.profile = faas::DataCenterProfile::usCentral1();
    else if (sc.profile == 2)
        cfg.profile = faas::DataCenterProfile::usWest1();
    if (sc.host_count != 0)
        cfg.profile.host_count = sc.host_count;
    cfg.orchestrator.isolate_accounts = sc.isolate_accounts;
    cfg.seed = sc.seed;
    return cfg;
}

void
checkVerify(const Scenario &sc, std::vector<Violation> &out)
{
    constexpr std::uint32_t kInstances = 64;

    const auto launchLabels =
        [&](const std::vector<std::size_t> &order) -> std::vector<std::uint64_t> {
        faas::Platform platform(verifyPlatformConfig(sc));
        const faas::AccountId acct = platform.createAccount({}, 1000);
        const faas::ServiceId svc =
            platform.deployService(acct, faas::ExecEnv::Gen1);
        core::LaunchOptions lo;
        lo.instances = kInstances;
        lo.hold = sim::Duration::seconds(5);
        lo.disconnect_after = false;
        const core::LaunchObservation obs =
            core::launchAndObserve(platform, svc, lo);

        std::vector<faas::InstanceId> ids;
        std::vector<std::uint64_t> fp;
        std::vector<std::uint64_t> cls;
        ids.reserve(order.size());
        for (const std::size_t i : order) {
            ids.push_back(obs.ids[i]);
            fp.push_back(obs.fp_keys[i]);
            cls.push_back(obs.class_keys[i]);
        }
        channel::RngChannel chan(platform);
        const core::VerifyResult res =
            core::verifyScalable(platform, chan, ids, fp, cls);

        // Undo the permutation so labels are comparable slot-by-slot.
        std::vector<std::uint64_t> labels(order.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            labels[order[i]] = res.cluster_of[i];
        return labels;
    };

    std::vector<std::size_t> identity(kInstances);
    for (std::size_t i = 0; i < identity.size(); ++i)
        identity[i] = i;
    std::vector<std::size_t> permuted = identity;
    sim::Rng perm_rng = sim::Rng(sc.seed).fork(0xE5);
    for (std::size_t i = permuted.size(); i > 1; --i)
        std::swap(permuted[i - 1], permuted[perm_rng.uniformInt(i)]);

    const std::vector<std::uint64_t> base = launchLabels(identity);
    const std::vector<std::uint64_t> shuffled = launchLabels(permuted);

    const stats::PairConfusion cmp = stats::comparePairs(shuffled, base);
    if (cmp.fp != 0 || cmp.fn != 0) {
        std::ostringstream detail;
        detail << "clustering changed under party permutation: fp=" << cmp.fp
               << " fn=" << cmp.fn << " (of "
               << (cmp.tp + cmp.fp + cmp.tn + cmp.fn) << " pairs)";
        out.push_back({"verify", detail.str()});
    }
}

} // namespace

std::vector<Violation>
checkInvariants(const Scenario &scenario, const InvariantOptions &opts)
{
    std::vector<Violation> out;

    const ScenarioLog indexed = runScenario(scenario, {});
    const std::string indexed_log = indexed.render();

    if (opts.check_events)
        checkEvents(indexed, out);
    if (opts.check_reference)
        checkReference(scenario, indexed_log, out);
    if (opts.check_obs)
        checkObs(scenario, indexed_log, out);
    if (opts.check_threads)
        checkThreads(scenario, opts, out);
    if (opts.check_shards)
        checkShards(scenario, opts, out);
    if (opts.check_snapshot)
        checkSnapshot(scenario, opts, out);
    if (opts.check_timetravel && scenario.has_timetravel) {
        const std::vector<Violation> tt = checkTimeTravelForks(scenario, opts);
        out.insert(out.end(), tt.begin(), tt.end());
    }
    if (opts.check_verify)
        checkVerify(scenario, out);
    return out;
}

bool
primeTimeTravel(const Scenario &scenario,
                const InvariantOptions & /*opts*/, TimeTravelPrime &out,
                std::string &error)
{
    // The prime is the (1, 1) canonical universe: its barrier renders
    // are what every prefix arm must reproduce, whatever its grouping.
    obs::TrialSet set(true);
    ShardedRunOptions ro;
    ro.obs = &set;
    if (!runScenarioToBarrier(scenario, ro, out.prime, error))
        return false;
    out.metrics = mergedSetMetrics(set);
    out.trace = setTraceJson(set);
    return true;
}

std::vector<Violation>
checkTimeTravelForks(const Scenario &scenario, const InvariantOptions &opts,
                     const TimeTravelPrime *primed)
{
    std::vector<Violation> out;

    TimeTravelPrime local;
    if (primed == nullptr) {
        std::string error;
        if (!primeTimeTravel(scenario, opts, local, error)) {
            out.push_back({"prefix", "prime failed: " + error});
            return out;
        }
        primed = &local;
    }

    struct Arm
    {
        std::uint32_t shards;
        unsigned threads;
    };

    // Prefix-consistency: restoring the image *without resuming* must
    // reproduce the capture platform's barrier log, merged metrics
    // JSON, and Chrome trace JSON at every (shards, threads).
    const Arm prefix_arms[] = {
        {1, 1},
        {2, 1},
        {opts.shard_arm, opts.threads},
    };
    for (const Arm &arm : prefix_arms) {
        obs::TrialSet set(true);
        ShardedRunOptions ro;
        ro.shards = arm.shards;
        ro.threads = arm.threads;
        ro.obs = &set;
        std::string log;
        std::string error;
        if (!restoreScenarioBarrier(scenario, ro, primed->prime, log,
                                    error)) {
            std::ostringstream detail;
            detail << "restore (shards=" << arm.shards
                   << " threads=" << arm.threads << ") failed: " << error;
            out.push_back({"prefix", detail.str()});
            return out;
        }
        const auto report = [&](const char *what, const std::string &a,
                                const std::string &b) {
            std::ostringstream detail;
            detail << "shards=" << arm.shards << " threads=" << arm.threads
                   << " " << what << ": " << firstDiff(a, b);
            out.push_back({"prefix", detail.str()});
        };
        if (log != primed->prime.prefix_log) {
            report("log", primed->prime.prefix_log, log);
            return out;
        }
        const std::string metrics = mergedSetMetrics(set);
        if (metrics != primed->metrics) {
            report("merged metrics", primed->metrics, metrics);
            return out;
        }
        const std::string trace = setTraceJson(set);
        if (trace != primed->trace) {
            report("chrome trace", primed->trace, trace);
            return out;
        }
    }

    // The differential baseline: a straight run of the composed
    // scenario, which never goes near the fork path (compileScript
    // places the suffix at the same fork wall the fork arm uses, so
    // both arms execute the same op list from the same virtual times).
    obs::TrialSet straight_set(true);
    ShardedRunOptions straight_ro;
    straight_ro.obs = &straight_set;
    const std::string straight_log =
        runScenarioSharded(scenario, straight_ro);
    const std::string straight_metrics = mergedSetMetrics(straight_set);
    const std::string straight_trace = setTraceJson(straight_set);

    // Fork arms: (1, 1) twice — fork-determinism — plus the big
    // grouping; every arm must equal the straight run byte for byte.
    // This is the only oracle that executes ShardedPlatform::appendOps,
    // so it alone can catch planted fault 6.
    const Arm fork_arms[] = {
        {1, 1},
        {1, 1},
        {opts.shard_arm, opts.threads},
    };
    std::string first_fork_log;
    for (std::size_t i = 0; i < std::size(fork_arms); ++i) {
        const Arm &arm = fork_arms[i];
        obs::TrialSet set(true);
        ShardedRunOptions ro;
        ro.shards = arm.shards;
        ro.threads = arm.threads;
        ro.obs = &set;
        std::string log;
        std::string error;
        if (!runScenarioForked(scenario, ro, primed->prime, log, error)) {
            std::ostringstream detail;
            detail << "fork (shards=" << arm.shards
                   << " threads=" << arm.threads << ") failed: " << error;
            out.push_back({"fork", detail.str()});
            return out;
        }
        if (i == 0) {
            first_fork_log = log;
        } else if (i == 1 && log != first_fork_log) {
            out.push_back(
                {"fork", "fork-determinism: the same suffix replayed "
                         "twice from the image diverged: " +
                             firstDiff(first_fork_log, log)});
            return out;
        }
        const auto report = [&](const char *what, const std::string &a,
                                const std::string &b) {
            std::ostringstream detail;
            detail << "shards=" << arm.shards << " threads=" << arm.threads
                   << " forked vs straight " << what << ": "
                   << firstDiff(a, b);
            out.push_back({"fork", detail.str()});
        };
        if (log != straight_log) {
            report("log", straight_log, log);
            return out;
        }
        const std::string metrics = mergedSetMetrics(set);
        if (metrics != straight_metrics) {
            report("merged metrics", straight_metrics, metrics);
            return out;
        }
        const std::string trace = setTraceJson(set);
        if (trace != straight_trace) {
            report("chrome trace", straight_trace, trace);
            return out;
        }
    }
    return out;
}

} // namespace eaao::testkit
