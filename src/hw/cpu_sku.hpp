/**
 * @file
 * CPU SKU catalog.
 *
 * A SKU is what `cpuid` would reveal to a Gen 1 container: the model
 * string (with its labeled base frequency) and nothing else. The labeled
 * frequency doubles as the "reported TSC frequency" the paper's first
 * frequency-derivation method relies on (Section 4.2, method 1).
 */

#ifndef EAAO_HW_CPU_SKU_HPP
#define EAAO_HW_CPU_SKU_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace eaao::hw {

/** Identifier into the SKU catalog. */
using SkuId = std::uint32_t;

/** A processor model as visible through cpuid. */
struct CpuSku
{
    std::string model_name;   //!< e.g. "Intel Xeon CPU @ 2.00GHz"
    double nominal_hz = 0.0;  //!< labeled base frequency (== reported TSC)
    std::uint32_t vcpus = 0;  //!< logical CPUs per host of this SKU
    double memory_gb = 0.0;   //!< installed memory per host
};

/**
 * The catalog of host SKUs used by the simulated fleet.
 *
 * Modeled after the handful of Xeon generations observable on Cloud Run;
 * the exact strings are synthetic but follow the paper's example format
 * ("Intel Xeon CPU @ 2.00GHz" carries the 2.00 GHz reported frequency).
 */
class SkuCatalog
{
  public:
    /** Build the default catalog. */
    SkuCatalog();

    /** Look up a SKU by id. */
    const CpuSku &get(SkuId id) const;

    /** Number of SKUs. */
    std::size_t size() const { return skus_.size(); }

    /**
     * Parse the labeled base frequency out of a model string, as the
     * attacker does when cpuid does not report the TSC frequency.
     * @return frequency in Hz, or 0 if no "@ x.xxGHz" suffix is present.
     */
    static double labeledFrequencyHz(const std::string &model_name);

  private:
    std::vector<CpuSku> skus_;
};

} // namespace eaao::hw

#endif // EAAO_HW_CPU_SKU_HPP
