/**
 * @file
 * Physical host model.
 *
 * A HostMachine bundles the hardware the attack interacts with: the CPU
 * SKU (cpuid), the TSC domain (rdtsc / rdtscp), the wall-clock sampling
 * noise of the sandboxed environment, the quality of method-2 frequency
 * measurement on this host, and the shared hardware RNG that the covert
 * channel contends on.
 */

#ifndef EAAO_HW_HOST_HPP
#define EAAO_HW_HOST_HPP

#include <cstdint>
#include <optional>

#include "hw/cpu_sku.hpp"
#include "hw/tsc.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace eaao::hw {

/** Identifier of a physical host within a data center. */
using HostId = std::uint32_t;

/** Noise knobs for sandboxed timing operations; defaults per DESIGN.md. */
struct TimingNoiseConfig
{
    /**
     * Probability that a wall-clock sample is "clean" (only vDSO-scale
     * pairing delay between rdtsc and the timestamp acquisition).
     */
    double clean_fraction = 0.80;
    /** Median clean pairing delay, seconds. */
    double clean_median_s = 8e-6;
    /** Log-sigma of the clean delay. */
    double clean_sigma = 1.0;
    /** Median dirty delay (sentry scheduling / preemption), seconds. */
    double dirty_median_s = 2e-3;
    /** Log-sigma of the dirty delay. */
    double dirty_sigma = 1.2;

    /** Fraction of hosts with unstable method-2 frequency measurement. */
    double noisy_timer_fraction = 0.10;
    /** Method-2 per-measurement sigma on clean hosts, Hz. */
    double freq_meas_clean_sigma_hz = 30.0;
    /** Median method-2 sigma on noisy hosts, Hz. */
    double freq_meas_noisy_median_hz = 60e3;
    /** Log-sigma of the noisy-host method-2 sigma. */
    double freq_meas_noisy_sigma = 1.3;
};

/**
 * One physical machine in the fleet.
 */
class HostMachine
{
  public:
    /**
     * Construct a host.
     *
     * @param id Host identifier.
     * @param sku_id SKU index into the shared catalog.
     * @param sku The SKU record (for nominal frequency / vcpus).
     * @param boot_time When the host (last) booted.
     * @param label_error_hz Per-host true-vs-labeled frequency error.
     * @param tsc_cfg TSC refinement noise knobs.
     * @param timing_cfg Sandbox timing-noise knobs.
     * @param rng Stream used for per-boot draws (refinement, noisy flag).
     */
    HostMachine(HostId id, SkuId sku_id, const CpuSku &sku,
                sim::SimTime boot_time, double label_error_hz,
                const TscConfig &tsc_cfg,
                const TimingNoiseConfig &timing_cfg, sim::Rng &rng);

    /** Host identifier. */
    HostId id() const { return id_; }

    /** SKU index. */
    SkuId skuId() const { return sku_id_; }

    /** Model string as cpuid reveals it. */
    const std::string &modelName() const { return model_name_; }

    /** Logical CPU count of the machine. */
    std::uint32_t vcpus() const { return vcpus_; }

    /** Installed memory, GB. */
    double memoryGb() const { return memory_gb_; }

    /** The TSC domain (current boot epoch). */
    const TscDomain &tsc() const { return tsc_; }

    /** Whether method-2 frequency measurement is unstable here. */
    bool noisyTimer() const { return noisy_timer_; }

    /** Per-measurement sigma of method-2 frequency estimation, Hz. */
    double freqMeasSigmaHz() const { return freq_meas_sigma_hz_; }

    /**
     * Sample the sandbox wall clock, paired with an rdtsc at @p now.
     *
     * Returns the timestamp the attacker's clock_gettime would deliver:
     * the true instant plus a non-negative pairing delay drawn from the
     * clean/dirty mixture. This delay is the dominant noise source in the
     * derived T_boot and shapes the Fig. 4 recall curve.
     */
    sim::SimTime sampleWallClock(sim::SimTime now, sim::Rng &rng) const;

    /**
     * Reboot the host at @p when: resets the TSC to zero and re-runs the
     * kernel frequency refinement. The label error is a property of the
     * physical clock crystal and persists across reboots.
     */
    void reboot(sim::SimTime when, const TscConfig &tsc_cfg,
                sim::Rng &rng);

    /**
     * @name Shared hardware RNG (covert-channel substrate)
     * Each pressuring party contributes one unit of contention; readers
     * observe the total count. Bookkeeping only — semantics live in
     * eaao::channel.
     * @{
     */
    void addRngPressure() { ++rng_pressure_; }
    void removeRngPressure();
    std::uint32_t rngPressure() const { return rng_pressure_; }
    /** @} */

  private:
    HostId id_;
    SkuId sku_id_;
    std::string model_name_;
    std::uint32_t vcpus_;
    double memory_gb_;
    double label_error_hz_;
    TscDomain tsc_;
    TimingNoiseConfig timing_cfg_;
    bool noisy_timer_;
    double freq_meas_sigma_hz_;
    std::uint32_t rng_pressure_ = 0;
};

} // namespace eaao::hw

#endif // EAAO_HW_HOST_HPP
