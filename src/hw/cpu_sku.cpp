/**
 * @file
 * Implementation of the CPU SKU catalog.
 */

#include "hw/cpu_sku.hpp"

#include <cstdio>

#include "support/logging.hpp"

namespace eaao::hw {

SkuCatalog::SkuCatalog()
{
    skus_ = {
        {"Intel Xeon CPU @ 2.00GHz", 2.00e9, 96, 384.0},
        {"Intel Xeon CPU @ 2.20GHz", 2.20e9, 64, 256.0},
        {"Intel Xeon CPU @ 2.25GHz", 2.25e9, 128, 512.0},
        {"Intel Xeon CPU @ 2.30GHz", 2.30e9, 64, 256.0},
        {"Intel Xeon CPU @ 2.60GHz", 2.60e9, 96, 384.0},
        {"Intel Xeon CPU @ 2.80GHz", 2.80e9, 112, 448.0},
    };
}

const CpuSku &
SkuCatalog::get(SkuId id) const
{
    EAAO_ASSERT(id < skus_.size(), "unknown SKU id ", id);
    return skus_[id];
}

double
SkuCatalog::labeledFrequencyHz(const std::string &model_name)
{
    // Look for the "@ <num>GHz" suffix.
    const auto at = model_name.rfind('@');
    if (at == std::string::npos)
        return 0.0;
    double ghz = 0.0;
    if (std::sscanf(model_name.c_str() + at, "@ %lfGHz", &ghz) != 1)
        return 0.0;
    return ghz * 1e9;
}

} // namespace eaao::hw
