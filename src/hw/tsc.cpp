/**
 * @file
 * Implementation of the TSC domain.
 */

#include "hw/tsc.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace eaao::hw {

TscDomain::TscDomain(sim::SimTime boot_time, double nominal_hz,
                     double label_error_hz, const TscConfig &cfg,
                     sim::Rng &rng)
    : boot_time_(boot_time), nominal_hz_(nominal_hz),
      true_hz_(nominal_hz + label_error_hz)
{
    EAAO_ASSERT(nominal_hz > 0.0, "non-positive nominal frequency");
    EAAO_ASSERT(true_hz_ > 0.0, "label error swallowed the frequency");
    // Per-boot kernel calibration: measure true_hz with noise, then snap
    // to the refinement granularity (Linux refines to 1 kHz).
    const double w = cfg.refine_noise_half_width_hz;
    const double measured = true_hz_ + rng.uniform(-w, w);
    const double g = cfg.refine_granularity_hz;
    refined_hz_ = std::round(measured / g) * g;
}

std::uint64_t
TscDomain::idealRead(sim::SimTime now) const
{
    EAAO_ASSERT(now >= boot_time_, "reading TSC before boot");
    const double uptime_s = (now - boot_time_).secondsF();
    return static_cast<std::uint64_t>(std::llround(uptime_s * true_hz_));
}

std::uint64_t
TscDomain::read(sim::SimTime now, sim::Rng &rng) const
{
    // rdtsc itself is cheap; jitter is a few hundred cycles of pipeline /
    // serialization wiggle, i.e. sub-microsecond. The expensive noise is
    // in pairing this value with a wall-clock sample, modeled elsewhere.
    const double jitter_cycles = rng.normal(0.0, 200.0);
    const auto base = static_cast<double>(idealRead(now));
    const double v = base + jitter_cycles;
    return v <= 0.0 ? 0ULL
                    : static_cast<std::uint64_t>(std::llround(v));
}

} // namespace eaao::hw
