/**
 * @file
 * Implementation of the physical host model.
 */

#include "hw/host.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace eaao::hw {

HostMachine::HostMachine(HostId id, SkuId sku_id, const CpuSku &sku,
                         sim::SimTime boot_time, double label_error_hz,
                         const TscConfig &tsc_cfg,
                         const TimingNoiseConfig &timing_cfg,
                         sim::Rng &rng)
    : id_(id), sku_id_(sku_id), model_name_(sku.model_name),
      vcpus_(sku.vcpus), memory_gb_(sku.memory_gb),
      label_error_hz_(label_error_hz),
      tsc_(boot_time, sku.nominal_hz, label_error_hz, tsc_cfg, rng),
      timing_cfg_(timing_cfg)
{
    noisy_timer_ = rng.bernoulli(timing_cfg.noisy_timer_fraction);
    if (noisy_timer_) {
        // The paper's problematic hosts scatter by 10 kHz to a few MHz;
        // clamp the lognormal draw to that observed floor.
        freq_meas_sigma_hz_ = std::max(
            10e3,
            rng.lognormal(std::log(timing_cfg.freq_meas_noisy_median_hz),
                          timing_cfg.freq_meas_noisy_sigma));
    } else {
        freq_meas_sigma_hz_ = timing_cfg.freq_meas_clean_sigma_hz;
    }
}

sim::SimTime
HostMachine::sampleWallClock(sim::SimTime now, sim::Rng &rng) const
{
    const bool clean = rng.bernoulli(timing_cfg_.clean_fraction);
    const double median =
        clean ? timing_cfg_.clean_median_s : timing_cfg_.dirty_median_s;
    const double sigma =
        clean ? timing_cfg_.clean_sigma : timing_cfg_.dirty_sigma;
    const double delay_s = rng.lognormal(std::log(median), sigma);
    return now + sim::Duration::fromSecondsF(delay_s);
}

void
HostMachine::reboot(sim::SimTime when, const TscConfig &tsc_cfg,
                    sim::Rng &rng)
{
    tsc_ = TscDomain(when, tsc_.nominalHz(), label_error_hz_, tsc_cfg,
                     rng);
}

void
HostMachine::removeRngPressure()
{
    EAAO_ASSERT(rng_pressure_ > 0, "RNG pressure underflow");
    --rng_pressure_;
}

} // namespace eaao::hw
