/**
 * @file
 * Timestamp-counter model.
 *
 * Each physical host owns one TSC domain (the paper notes TSC values are
 * synchronized across cores/sockets on the Intel platforms it observed,
 * so one counter per host suffices). The domain captures the three
 * frequency views the attack cares about:
 *
 *  - nominal_hz:  the labeled base frequency from the model string; this
 *                 is the "reported TSC frequency" of Section 4.2 method 1.
 *  - true_hz:     the physical increment rate; deviates from nominal by a
 *                 per-host label error (sub-kHz for most hosts, heavy
 *                 tail to MHz), which drives the T_boot drift of Eq. 4.2.
 *  - refined_hz:  the kernel's boot-time calibration of true_hz, rounded
 *                 to 1 kHz; per-boot calibration noise dominates the
 *                 label error, so distinct hosts rarely collide while
 *                 co-located readers always agree (Section 4.5).
 */

#ifndef EAAO_HW_TSC_HPP
#define EAAO_HW_TSC_HPP

#include <cstdint>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace eaao::hw {

/** Knobs for TSC-related randomness; defaults match DESIGN.md. */
struct TscConfig
{
    /** Fraction of hosts whose label error is in the heavy tail. */
    double label_tail_fraction = 0.05;
    /** Median |label error| of the core population, Hz. */
    double label_core_median_hz = 1200.0;
    /** Log-sigma of the core label error. */
    double label_core_sigma = 1.0;
    /** Median |label error| of the tail population, Hz. */
    double label_tail_median_hz = 30e3;
    /** Log-sigma of the tail label error (tail reaches a few MHz). */
    double label_tail_sigma = 1.6;
    /**
     * Half-width of the per-boot kernel calibration noise, Hz. The
     * calibration error is modeled uniform in [-w, +w]: spreading
     * hosts evenly over refined-frequency buckets reproduces the
     * paper's observation that on average ~2 hosts share a refined
     * value (Section 4.5).
     */
    double refine_noise_half_width_hz = 14e3;
    /** Kernel refinement granularity, Hz (Linux: 1 kHz). */
    double refine_granularity_hz = 1e3;
};

/**
 * One invariant-TSC clock domain.
 *
 * The counter resets to zero at host boot and increments at true_hz
 * irrespective of power state. Reads carry only sub-microsecond jitter;
 * the interesting noise lives in pairing the read with a wall-clock
 * sample (see Host::sampleWallClock).
 */
class TscDomain
{
  public:
    /**
     * Create a domain for a host booted at @p boot_time.
     *
     * @param nominal_hz Labeled base frequency of the host's SKU.
     * @param label_error_hz true_hz - nominal_hz for this host.
     * @param cfg Refinement noise parameters.
     * @param rng Stream for the per-boot calibration draw.
     */
    TscDomain(sim::SimTime boot_time, double nominal_hz,
              double label_error_hz, const TscConfig &cfg, sim::Rng &rng);

    /** Host boot instant (ground truth; invisible to the attacker). */
    sim::SimTime bootTime() const { return boot_time_; }

    /** Physical counting rate in Hz. */
    double trueHz() const { return true_hz_; }

    /** Labeled/reported frequency in Hz. */
    double nominalHz() const { return nominal_hz_; }

    /** Kernel-refined frequency in Hz (1 kHz granularity). */
    double refinedHz() const { return refined_hz_; }

    /**
     * Read the counter at virtual instant @p now.
     *
     * @param rng Stream for read jitter (a few hundred cycles).
     * @return Counter value (cycles since boot).
     */
    std::uint64_t read(sim::SimTime now, sim::Rng &rng) const;

    /**
     * Ideal counter value at @p now without jitter (for tests).
     */
    std::uint64_t idealRead(sim::SimTime now) const;

  private:
    sim::SimTime boot_time_;
    double nominal_hz_;
    double true_hz_;
    double refined_hz_;
};

} // namespace eaao::hw

#endif // EAAO_HW_TSC_HPP
