/**
 * @file
 * Implementation of the discrete-event kernel.
 */

#include "sim/event_queue.hpp"

#include <limits>
#include <utility>

#include "support/bench_timer.hpp"
#include "support/logging.hpp"

namespace eaao::sim {

EventQueue::EventQueue(SimTime start, bool use_wheel)
    : now_(start), use_wheel_(use_wheel)
{
    wheel_.reset(TimingWheel::tickOf(start));
}

EventQueue::~EventQueue()
{
    // Feed the process-wide event counter the bench timing pipeline
    // reads (support::totalEventsProcessed).
    support::noteEventsProcessed(processed_);
}

// The ready queue is a 4-ary min-heap: versus a binary heap it halves
// the number of levels a sift traverses (the cache-miss-bound cost on
// large heaps) while keeping the four children of a node contiguous —
// one or two cache lines of 24-byte entries.

void
EventQueue::heapPush(HeapEntry entry)
{
    // Hole-based sift-up: one copy per level instead of a swap.
    std::size_t i = heap_.size();
    heap_.push_back(entry);
    while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!earlier(entry, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = entry;
}

EventQueue::HeapEntry
EventQueue::heapPop()
{
    const HeapEntry top = heap_.front();
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n > 0) {
        // Hole-based sift-down of the former last element.
        std::size_t i = 0;
        while (true) {
            const std::size_t first = 4 * i + 1;
            if (first >= n)
                break;
            const std::size_t end = first + 4 < n ? first + 4 : n;
            std::size_t best = first;
            for (std::size_t c = first + 1; c < end; ++c) {
                if (earlier(heap_[c], heap_[best]))
                    best = c;
            }
            if (!earlier(heap_[best], last))
                break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = last;
    }
    return top;
}

void
EventQueue::retire(std::uint32_t idx)
{
    Slot &slot = slots_[idx];
    slot.cb.reset();
    slot.live = false;
    if (++slot.gen == 0) // keep handles non-zero across wrap-around
        slot.gen = 1;
    free_.push_back(idx);
    EAAO_ASSERT(live_ > 0, "live-event underflow");
    --live_;
}

void
EventQueue::flushStaging()
{
    for (const HeapEntry &e : staging_) {
        if (!entryLive(e))
            continue;
        // Near-future entries park in the wheel; due or far-future
        // ones go straight to the heap (insert() refuses both).
        if (use_wheel_
            && wheel_.insert(WheelEntry{e.when, e.seq, e.slot, e.gen}))
            continue;
        heapPush(e);
    }
    staging_.clear();
}

void
EventQueue::syncWheel(std::int64_t bound_tick)
{
    const auto sink = [this](const WheelEntry &e) {
        const HeapEntry entry{e.when, e.seq, e.slot, e.gen};
        if (entryLive(entry))
            heapPush(entry);
    };
    while (!wheel_.empty()) {
        if (!heap_.empty()) {
            // One pass suffices: after dumping every bucket at or
            // before the front's tick, all parked entries are in
            // strictly later ticks than any heap entry.
            std::int64_t limit = TimingWheel::tickOf(heap_.front().when);
            if (limit > bound_tick)
                limit = bound_tick;
            wheel_.advanceTo(limit, sink);
            return;
        }
        if (!wheel_.advanceOne(bound_tick, sink))
            return; // nothing due at or before the bound
    }
}

void
EventQueue::compactTop()
{
    while (!heap_.empty() && !entryLive(heap_.front()))
        heapPop();
}

EventId
EventQueue::scheduleAt(SimTime when, Callback cb)
{
    return scheduleAt(when, EventTag{}, std::move(cb));
}

EventId
EventQueue::scheduleAfter(Duration delay, Callback cb)
{
    return scheduleAt(now_ + delay, EventTag{}, std::move(cb));
}

EventId
EventQueue::scheduleAt(SimTime when, EventTag tag, Callback cb)
{
    EAAO_ASSERT(when >= now_, "scheduling into the past: ", when.str(),
                " < ", now_.str());
    std::uint32_t idx;
    if (!free_.empty()) {
        idx = free_.back();
        free_.pop_back();
    } else {
        idx = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    Slot &slot = slots_[idx];
    slot.live = true;
    slot.tag = tag;
    slot.cb = std::move(cb);
    staging_.push_back(HeapEntry{when, next_seq_++, idx, slot.gen});
    ++live_;
    ++scheduled_;
    return packId(idx, slot.gen);
}

EventId
EventQueue::scheduleAfter(Duration delay, EventTag tag, Callback cb)
{
    return scheduleAt(now_ + delay, tag, std::move(cb));
}

bool
EventQueue::exportImage(EventQueueImage &out) const
{
    out = EventQueueImage{};
    out.now_ns = now_.ns();
    out.next_seq = next_seq_;
    out.processed = processed_;
    out.scheduled = scheduled_;
    out.cancelled = cancelled_;
    out.slots.reserve(slots_.size());
    for (const Slot &slot : slots_) {
        if (slot.live && slot.tag.kind == 0)
            return false; // untagged callback: not rebindable
        out.slots.push_back(EventQueueImage::SlotImage{
            slot.gen, static_cast<std::uint8_t>(slot.live ? 1 : 0),
            slot.tag.kind, slot.tag.arg});
    }
    const auto entry = [](const HeapEntry &e) {
        return EventQueueImage::EntryImage{e.when.ns(), e.seq, e.slot, e.gen};
    };
    out.heap.reserve(heap_.size());
    for (const HeapEntry &e : heap_)
        out.heap.push_back(entry(e));
    out.staging.reserve(staging_.size());
    for (const HeapEntry &e : staging_)
        out.staging.push_back(entry(e));
    out.free_list = free_;
    out.wheel_frontier = wheel_.frontier();
    out.wheel.reserve(wheel_.size());
    wheel_.forEach([&out](const WheelEntry &e, std::uint8_t level,
                          std::uint8_t wslot) {
        out.wheel.push_back(EventQueueImage::WheelEntryImage{
            e.when.ns(), e.seq, e.slot, e.gen, level, wslot});
    });
    return true;
}

bool
EventQueue::cancel(EventId id)
{
    const std::uint32_t idx = slotOf(id);
    if (idx >= slots_.size())
        return false;
    Slot &slot = slots_[idx];
    if (!slot.live || slot.gen != genOf(id))
        return false;
    // O(1) invalidation: the callback dies and the slot is recycled
    // now; the heap entry goes stale (generation mismatch) and is
    // dropped when it surfaces.
    retire(idx);
    ++cancelled_;
    // Eager compaction: cancelling the front event pops it (and any
    // dead run behind it) immediately instead of letting it linger
    // until the clock reaches its timestamp.
    if (!heap_.empty() && heap_.front().slot == idx)
        compactTop();
    return true;
}

std::size_t
EventQueue::pending() const
{
    // live_ counts exactly the live slots: cancel() and fire() retire
    // a slot the moment it dies, so dead slots are never counted no
    // matter how many stale heap entries still await compaction.
    EAAO_ASSERT(live_ <= heap_.size() + staging_.size() + wheel_.size(),
                "more live events than queued entries");
    return live_;
}

void
EventQueue::reserve(std::size_t n)
{
    slots_.reserve(n);
    heap_.reserve(n);
    staging_.reserve(n);
    free_.reserve(n);
}

void
EventQueue::fire(const HeapEntry &top)
{
    now_ = top.when;
    Callback cb = std::move(slots_[top.slot].cb);
    retire(top.slot);
    ++processed_;
    // The slot is recycled *before* the callback runs: a callback that
    // schedules may legally reuse it (the generation differs), and the
    // callback may grow the slab, so no slot reference survives here.
    cb();
}

void
EventQueue::run()
{
    // A tick index no event time can reach (SimTime is ns in int64),
    // used as the drain bound when running to quiescence.
    constexpr std::int64_t kNoBound =
        std::numeric_limits<std::int64_t>::max() >> TimingWheel::kTickBits;
    // Staging is re-checked every iteration: a fired callback may have
    // scheduled events that sort before the current heap top.
    while (true) {
        if (!staging_.empty())
            flushStaging();
        if (!wheel_.empty())
            syncWheel(kNoBound);
        if (heap_.empty())
            break;
        const HeapEntry top = heapPop();
        if (!entryLive(top))
            continue; // stale entry of a cancelled event
        fire(top);
    }
}

void
EventQueue::runUntil(SimTime horizon)
{
    EAAO_ASSERT(horizon >= now_, "horizon in the past");
    const std::int64_t bound = TimingWheel::tickOf(horizon);
    while (true) {
        if (!staging_.empty())
            flushStaging();
        if (!wheel_.empty())
            syncWheel(bound);
        if (heap_.empty() || heap_.front().when > horizon)
            break;
        const HeapEntry top = heapPop();
        if (!entryLive(top))
            continue;
        fire(top);
    }
    now_ = horizon;
}

void
EventQueue::advance(Duration d)
{
    runUntil(now_ + d);
}

} // namespace eaao::sim
