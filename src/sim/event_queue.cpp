/**
 * @file
 * Implementation of the discrete-event kernel.
 */

#include "sim/event_queue.hpp"

#include "support/logging.hpp"

namespace eaao::sim {

EventQueue::EventQueue(SimTime start) : now_(start) {}

EventId
EventQueue::scheduleAt(SimTime when, Callback cb)
{
    EAAO_ASSERT(when >= now_, "scheduling into the past: ", when.str(),
                " < ", now_.str());
    const EventId id = next_id_++;
    heap_.push(Entry{when, next_seq_++, id});
    callbacks_.emplace(id, std::move(cb));
    return id;
}

EventId
EventQueue::scheduleAfter(Duration delay, Callback cb)
{
    return scheduleAt(now_ + delay, std::move(cb));
}

bool
EventQueue::cancel(EventId id)
{
    auto it = callbacks_.find(id);
    if (it == callbacks_.end())
        return false;
    callbacks_.erase(it);
    cancelled_.insert(id);
    return true;
}

std::size_t
EventQueue::pending() const
{
    return callbacks_.size();
}

void
EventQueue::step()
{
    const Entry e = heap_.top();
    heap_.pop();
    if (cancelled_.erase(e.id))
        return; // tombstone
    auto it = callbacks_.find(e.id);
    EAAO_ASSERT(it != callbacks_.end(), "dangling event id");
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = e.when;
    cb();
}

void
EventQueue::run()
{
    while (!heap_.empty())
        step();
}

void
EventQueue::runUntil(SimTime horizon)
{
    EAAO_ASSERT(horizon >= now_, "horizon in the past");
    while (!heap_.empty() && heap_.top().when <= horizon)
        step();
    now_ = horizon;
}

void
EventQueue::advance(Duration d)
{
    runUntil(now_ + d);
}

} // namespace eaao::sim
