/**
 * @file
 * Implementation of the structured samplers.
 */

#include "sim/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/logging.hpp"

namespace eaao::sim {

std::vector<double>
zipfWeights(std::size_t n, double s)
{
    std::vector<double> w(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
        sum += w[i];
    }
    for (auto &x : w)
        x /= sum;
    return w;
}

AliasSampler::AliasSampler(const std::vector<double> &weights)
{
    const std::size_t n = weights.size();
    EAAO_ASSERT(n > 0, "AliasSampler needs at least one weight");
    double sum = 0.0;
    for (double w : weights) {
        EAAO_ASSERT(w >= 0.0, "negative weight");
        sum += w;
    }
    EAAO_ASSERT(sum > 0.0, "all weights are zero");

    prob_.assign(n, 0.0);
    alias_.assign(n, 0);

    // Scaled probabilities; Vose's stable alias construction.
    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i)
        scaled[i] = weights[i] * static_cast<double>(n) / sum;

    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (scaled[i] < 1.0)
            small.push_back(static_cast<std::uint32_t>(i));
        else
            large.push_back(static_cast<std::uint32_t>(i));
    }

    while (!small.empty() && !large.empty()) {
        const std::uint32_t s_idx = small.back();
        small.pop_back();
        const std::uint32_t l_idx = large.back();
        prob_[s_idx] = scaled[s_idx];
        alias_[s_idx] = l_idx;
        scaled[l_idx] = (scaled[l_idx] + scaled[s_idx]) - 1.0;
        if (scaled[l_idx] < 1.0) {
            large.pop_back();
            small.push_back(l_idx);
        }
    }
    for (std::uint32_t i : large)
        prob_[i] = 1.0;
    for (std::uint32_t i : small)
        prob_[i] = 1.0; // numerical leftovers
}

std::size_t
AliasSampler::sample(Rng &rng) const
{
    const std::size_t i = rng.uniformInt(prob_.size());
    return rng.uniform() < prob_[i] ? i : alias_[i];
}

std::vector<std::size_t>
weightedSampleWithoutReplacement(Rng &rng,
                                 const std::vector<double> &weights,
                                 std::size_t k)
{
    // Efraimidis-Spirakis: key_i = u^(1/w_i); take the k largest keys.
    // Equivalent (and numerically safer): key_i = -Exp(1)/w_i, take the
    // k largest.
    struct Keyed
    {
        double key;
        std::size_t idx;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (weights[i] <= 0.0)
            continue;
        const double e = rng.exponential(1.0);
        keyed.push_back({-e / weights[i], i});
    }
    const std::size_t take = std::min(k, keyed.size());
    std::partial_sort(keyed.begin(), keyed.begin() + take, keyed.end(),
                      [](const Keyed &a, const Keyed &b) {
                          return a.key > b.key;
                      });
    std::vector<std::size_t> out;
    out.reserve(take);
    for (std::size_t i = 0; i < take; ++i)
        out.push_back(keyed[i].idx);
    return out;
}

void
shuffle(Rng &rng, std::vector<std::size_t> &items)
{
    for (std::size_t i = items.size(); i > 1; --i) {
        const std::size_t j = rng.uniformInt(i);
        std::swap(items[i - 1], items[j]);
    }
}

double
SignedLogNormalMixture::sample(Rng &rng) const
{
    const bool tail = rng.bernoulli(tail_fraction);
    const double median = tail ? tail_median : core_median;
    const double sigma = tail ? tail_sigma : core_sigma;
    const double magnitude = rng.lognormal(std::log(median), sigma);
    return rng.bernoulli(0.5) ? magnitude : -magnitude;
}

} // namespace eaao::sim
