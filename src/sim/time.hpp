/**
 * @file
 * Virtual time for the discrete-event simulation.
 *
 * SimTime is a strongly-typed nanosecond tick count since the simulation
 * epoch. The epoch is an arbitrary "real-world" reference (think of it as
 * a UTC instant); host boot times, launches, and measurements are all
 * expressed on this single axis, mirroring the paper's use of real-world
 * time T_w in Eq. 4.1.
 */

#ifndef EAAO_SIM_TIME_HPP
#define EAAO_SIM_TIME_HPP

#include <compare>
#include <cstdint>
#include <string>

namespace eaao::sim {

/** A signed duration in nanoseconds. */
class Duration
{
  public:
    constexpr Duration() = default;

    /** Construct from a raw nanosecond count. */
    static constexpr Duration
    nanos(std::int64_t ns)
    {
        return Duration(ns);
    }

    /** Construct from microseconds. */
    static constexpr Duration
    micros(std::int64_t us)
    {
        return Duration(us * 1000);
    }

    /** Construct from milliseconds. */
    static constexpr Duration
    millis(std::int64_t ms)
    {
        return Duration(ms * 1'000'000);
    }

    /** Construct from whole seconds. */
    static constexpr Duration
    seconds(std::int64_t s)
    {
        return Duration(s * 1'000'000'000);
    }

    /** Construct from whole minutes. */
    static constexpr Duration
    minutes(std::int64_t m)
    {
        return seconds(m * 60);
    }

    /** Construct from whole hours. */
    static constexpr Duration
    hours(std::int64_t h)
    {
        return seconds(h * 3600);
    }

    /** Construct from whole days. */
    static constexpr Duration
    days(std::int64_t d)
    {
        return seconds(d * 86400);
    }

    /** Construct from fractional seconds (rounded to nearest ns). */
    static Duration fromSecondsF(double s);

    /** Raw nanosecond count. */
    constexpr std::int64_t ns() const { return ns_; }

    /** Value in fractional seconds. */
    constexpr double
    secondsF() const
    {
        return static_cast<double>(ns_) * 1e-9;
    }

    /** Value in fractional minutes. */
    constexpr double minutesF() const { return secondsF() / 60.0; }

    /** Value in fractional hours. */
    constexpr double hoursF() const { return secondsF() / 3600.0; }

    /** Value in fractional days. */
    constexpr double daysF() const { return secondsF() / 86400.0; }

    constexpr auto operator<=>(const Duration &) const = default;

    constexpr Duration operator+(Duration o) const
    {
        return Duration(ns_ + o.ns_);
    }
    constexpr Duration operator-(Duration o) const
    {
        return Duration(ns_ - o.ns_);
    }
    constexpr Duration operator-() const { return Duration(-ns_); }
    constexpr Duration operator*(std::int64_t k) const
    {
        return Duration(ns_ * k);
    }
    constexpr Duration operator/(std::int64_t k) const
    {
        return Duration(ns_ / k);
    }
    Duration &operator+=(Duration o)
    {
        ns_ += o.ns_;
        return *this;
    }
    Duration &operator-=(Duration o)
    {
        ns_ -= o.ns_;
        return *this;
    }

    /** Absolute value. */
    constexpr Duration
    abs() const
    {
        return Duration(ns_ < 0 ? -ns_ : ns_);
    }

    /** Human-readable rendering, e.g. "12.3 min". */
    std::string str() const;

  private:
    explicit constexpr Duration(std::int64_t ns) : ns_(ns) {}

    std::int64_t ns_ = 0;
};

/** An absolute instant on the simulated real-world time axis. */
class SimTime
{
  public:
    constexpr SimTime() = default;

    /** Construct from raw nanoseconds since the simulation epoch. */
    static constexpr SimTime
    fromNanos(std::int64_t ns)
    {
        return SimTime(ns);
    }

    /** Construct from fractional seconds since the epoch. */
    static SimTime fromSecondsF(double s);

    /** Raw nanoseconds since the epoch. */
    constexpr std::int64_t ns() const { return ns_; }

    /** Fractional seconds since the epoch. */
    constexpr double
    secondsF() const
    {
        return static_cast<double>(ns_) * 1e-9;
    }

    constexpr auto operator<=>(const SimTime &) const = default;

    constexpr SimTime operator+(Duration d) const
    {
        return SimTime(ns_ + d.ns());
    }
    constexpr SimTime operator-(Duration d) const
    {
        return SimTime(ns_ - d.ns());
    }
    constexpr Duration operator-(SimTime o) const
    {
        return Duration::nanos(ns_ - o.ns_);
    }
    SimTime &operator+=(Duration d)
    {
        ns_ += d.ns();
        return *this;
    }

    /** Human-readable rendering as fractional days since the epoch. */
    std::string str() const;

  private:
    explicit constexpr SimTime(std::int64_t ns) : ns_(ns) {}

    std::int64_t ns_ = 0;
};

} // namespace eaao::sim

#endif // EAAO_SIM_TIME_HPP
