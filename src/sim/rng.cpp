/**
 * @file
 * Implementation of the deterministic RNG.
 */

#include "sim/rng.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace eaao::sim {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
mix64(std::uint64_t x)
{
    std::uint64_t state = x;
    return splitmix64(state);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

Rng::Rng(const std::uint64_t st[4])
{
    for (int i = 0; i < 4; ++i)
        s_[i] = st[i];
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    // Derive a child seed from the current state and the stream id; the
    // parent stream is not advanced, so forks are order-independent.
    std::uint64_t seed = mix64(s_[0] ^ rotl(s_[2], 17) ^
                               mix64(stream_id + 0x6a09e667f3bcc909ULL));
    return Rng(seed);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    EAAO_ASSERT(n > 0, "uniformInt(0) is undefined");
    // Lemire-style rejection-free-ish bounded draw with rejection to kill
    // modulo bias.
    const std::uint64_t threshold = (~n + 1) % n; // (2^64 - n) mod n
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % n;
    }
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    EAAO_ASSERT(lo <= hi, "empty integer range");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1ULL;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>((*this)());
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller: generates two deviates; cache the second.
    double u1 = uniform();
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    while (u <= 0.0)
        u = uniform();
    return -mean * std::log(u);
}

RngState
Rng::saveState() const
{
    RngState state;
    for (int i = 0; i < 4; ++i)
        state.s[i] = s_[i];
    state.cached_normal = cached_normal_;
    state.has_cached_normal = has_cached_normal_;
    return state;
}

void
Rng::restoreState(const RngState &state)
{
    for (int i = 0; i < 4; ++i)
        s_[i] = state.s[i];
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
}

} // namespace eaao::sim
