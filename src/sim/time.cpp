/**
 * @file
 * Implementation of virtual-time helpers.
 */

#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace eaao::sim {

Duration
Duration::fromSecondsF(double s)
{
    return Duration(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

std::string
Duration::str() const
{
    char buf[64];
    const double s = secondsF();
    const double as = std::fabs(s);
    if (as < 1e-6) {
        std::snprintf(buf, sizeof(buf), "%.0f ns", s * 1e9);
    } else if (as < 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.2f us", s * 1e6);
    } else if (as < 1.0) {
        std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
    } else if (as < 120.0) {
        std::snprintf(buf, sizeof(buf), "%.2f s", s);
    } else if (as < 7200.0) {
        std::snprintf(buf, sizeof(buf), "%.1f min", s / 60.0);
    } else if (as < 172800.0) {
        std::snprintf(buf, sizeof(buf), "%.1f h", s / 3600.0);
    } else {
        std::snprintf(buf, sizeof(buf), "%.1f d", s / 86400.0);
    }
    return buf;
}

SimTime
SimTime::fromSecondsF(double s)
{
    return SimTime(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

std::string
SimTime::str() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "t+%.3f d", secondsF() / 86400.0);
    return buf;
}

} // namespace eaao::sim
