/**
 * @file
 * Timing-wheel level assignment and idle-skip scheduling (see
 * timing_wheel.hpp for the protocol).
 */

#include "sim/timing_wheel.hpp"

#include <cassert>
#include <limits>

namespace eaao::sim {

namespace {

/** Portable count-trailing-zeros for a non-zero mask. */
unsigned
ctz64(std::uint64_t v)
{
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<unsigned>(__builtin_ctzll(v));
#else
    unsigned n = 0;
    while (!(v & 1)) {
        v >>= 1;
        ++n;
    }
    return n;
#endif
}

} // namespace

bool
TimingWheel::insert(const WheelEntry &e)
{
    const std::int64_t tick = tickOf(e.when);
    const std::int64_t delta = tick - frontier_;
    if (delta <= 0)
        return false; // due (or overdue): caller's heap owns it
    unsigned level = 0;
    while (level < kLevels
           && delta >= (std::int64_t(1) << (kSlotBits * (level + 1))))
        ++level;
    if (level >= kLevels)
        return false; // beyond level 3's span: far-future heap overflow
    const std::uint32_t s =
        static_cast<std::uint32_t>(tick >> (kSlotBits * level)) & kSlotMask;
    buckets_[level][s].push_back(e);
    occ_[level] |= std::uint64_t(1) << s;
    ++count_;
    return true;
}

std::int64_t
TimingWheel::nextActionTick() const
{
    assert(count_ > 0);
    std::int64_t best = std::numeric_limits<std::int64_t>::max();

    // Level 0 buckets hold entries of the current 64-tick span
    // [frontier, frontier + 63]; the slot's distance ahead of the
    // frontier's own slot recovers the absolute due tick.
    {
        const std::uint32_t base = frontier_ & kSlotMask;
        std::uint64_t m = occ_[0];
        while (m) {
            const std::uint32_t s = ctz64(m);
            m &= m - 1;
            const std::int64_t t =
                frontier_
                + static_cast<std::int64_t>((s - base) & kSlotMask);
            if (t < best)
                best = t;
        }
    }

    // A level >= 1 bucket flushes when the frontier reaches the start
    // of the 64^level-tick window its slot addresses: the first
    // window index >= frontier's that is congruent to the slot.
    for (unsigned level = 1; level < kLevels; ++level) {
        std::uint64_t m = occ_[level];
        if (!m)
            continue;
        const unsigned shift = kSlotBits * level;
        const std::int64_t base = frontier_ >> shift;
        while (m) {
            const std::uint32_t s = ctz64(m);
            m &= m - 1;
            std::int64_t widx =
                base + static_cast<std::int64_t>((s - base) & kSlotMask);
            std::int64_t t = widx << shift;
            if (t < frontier_) // this window already began: next lap
                t = (widx + kSlots) << shift;
            if (t < best)
                best = t;
        }
    }
    return best;
}

void
TimingWheel::reset(std::int64_t frontier)
{
    for (unsigned level = 0; level < kLevels; ++level) {
        for (std::uint32_t s = 0; s < kSlots; ++s)
            buckets_[level][s].clear();
        occ_[level] = 0;
    }
    count_ = 0;
    frontier_ = frontier;
}

void
TimingWheel::restoreEntry(const WheelEntry &e, std::uint8_t level,
                          std::uint8_t wslot)
{
    assert(level < kLevels && wslot < kSlots);
    buckets_[level][wslot].push_back(e);
    occ_[level] |= std::uint64_t(1) << wslot;
    ++count_;
}

} // namespace eaao::sim
