/**
 * @file
 * Reusable samplers built on top of the base RNG.
 *
 * These cover the structured randomness the platform model needs: Zipf
 * popularity weights for hosts, weighted sampling without replacement for
 * base/helper host selection, and the mixture distribution used for
 * per-host TSC label errors.
 */

#ifndef EAAO_SIM_DISTRIBUTIONS_HPP
#define EAAO_SIM_DISTRIBUTIONS_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace eaao::sim {

/**
 * Zipf-like popularity weights: weight(i) = 1 / (i + 1)^s, normalized.
 *
 * @param n Number of items.
 * @param s Skew exponent; 0 yields uniform weights.
 * @return Normalized weight vector of length n.
 */
std::vector<double> zipfWeights(std::size_t n, double s);

/**
 * Alias-method sampler for repeated weighted draws (with replacement).
 *
 * Construction is O(n); each draw is O(1).
 */
class AliasSampler
{
  public:
    /** Build from (unnormalized) non-negative weights; at least one > 0. */
    explicit AliasSampler(const std::vector<double> &weights);

    /** Draw one index according to the weights. */
    std::size_t sample(Rng &rng) const;

    /** Number of items. */
    std::size_t size() const { return prob_.size(); }

  private:
    std::vector<double> prob_;
    std::vector<std::uint32_t> alias_;
};

/**
 * Weighted sampling of k distinct indices out of [0, weights.size()).
 *
 * Uses the Efraimidis-Spirakis exponential-keys method: O(n log n) but
 * exact. Items with zero weight are never selected.
 */
std::vector<std::size_t> weightedSampleWithoutReplacement(
    Rng &rng, const std::vector<double> &weights, std::size_t k);

/** Fisher-Yates shuffle of an index vector. */
void shuffle(Rng &rng, std::vector<std::size_t> &items);

/**
 * Signed two-component log-normal mixture.
 *
 * Used for per-host TSC label error: most hosts have a sub-kHz |error|,
 * a minority live in a heavy tail out to MHz (Section 4.2 of the paper /
 * DESIGN.md calibration notes).
 */
struct SignedLogNormalMixture
{
    double tail_fraction = 0.12;  //!< probability of the tail component
    double core_median = 800.0;   //!< median |value| of the core (units)
    double core_sigma = 1.0;      //!< log-sigma of the core
    double tail_median = 40e3;    //!< median |value| of the tail
    double tail_sigma = 1.4;      //!< log-sigma of the tail

    /** Sample a signed value; sign is a fair coin. */
    double sample(Rng &rng) const;
};

} // namespace eaao::sim

#endif // EAAO_SIM_DISTRIBUTIONS_HPP
