/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal but complete event queue: schedule callables at absolute
 * virtual times, run until quiescence or a horizon, cancel events.
 * Ties are broken by insertion order (FIFO among same-time events) so
 * runs are deterministic.
 */

#ifndef EAAO_SIM_EVENT_QUEUE_HPP
#define EAAO_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace eaao::sim {

/** Handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/**
 * Priority-queue based discrete event scheduler over SimTime.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Create a queue whose clock starts at @p start. */
    explicit EventQueue(SimTime start = SimTime());

    /** Current virtual time. */
    SimTime now() const { return now_; }

    /**
     * Schedule @p cb at absolute time @p when (must be >= now()).
     * @return Handle usable with cancel().
     */
    EventId scheduleAt(SimTime when, Callback cb);

    /** Schedule @p cb after a relative delay. */
    EventId scheduleAfter(Duration delay, Callback cb);

    /**
     * Cancel a pending event.
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const;

    /** Run all events until the queue drains. */
    void run();

    /**
     * Run events with timestamp <= @p horizon, then set the clock to
     * @p horizon (even if no events fired).
     */
    void runUntil(SimTime horizon);

    /** Advance the clock by @p d, firing everything due in between. */
    void advance(Duration d);

  private:
    struct Entry
    {
        SimTime when;
        std::uint64_t seq;
        EventId id;
    };

    struct EntryLater
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Pop and execute the next runnable event. Precondition: non-empty. */
    void step();

    SimTime now_;
    std::uint64_t next_seq_ = 0;
    EventId next_id_ = 1;
    std::priority_queue<Entry, std::vector<Entry>, EntryLater> heap_;
    std::unordered_set<EventId> cancelled_;
    std::unordered_map<EventId, Callback> callbacks_;
};

} // namespace eaao::sim

#endif // EAAO_SIM_EVENT_QUEUE_HPP
