/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal but complete event queue: schedule callables at absolute
 * virtual times, run until quiescence or a horizon, cancel events.
 * Ties are broken by insertion order (FIFO among same-time events) so
 * runs are deterministic.
 *
 * Events live in a slab: a recycled slot vector with a free-list. An
 * EventId is a generation-tagged {slot, gen} handle packed into one
 * 64-bit word, so cancel() is O(1) slot invalidation — no hash-map of
 * callbacks, no tombstone set — and a stale handle (slot since reused)
 * is rejected by its generation mismatch. The ready queue is a 4-ary
 * min-heap of 24-byte {when, seq, slot, gen} entries kept in one
 * contiguous vector, fed through an unsorted staging buffer that is
 * flushed only when the queue needs to pop — so a schedule+cancel
 * pair (the dominant reap pattern) usually never sifts at all. A
 * cancelled event's entry is dropped at flush time or lazily when it
 * surfaces (its generation no longer matches the slot's), while its
 * slot and callback are reclaimed immediately. Callbacks are
 * small-buffer-optimized (see inplace_callback.hpp) so the common
 * simulator lambdas never touch the allocator. See
 * docs/event-kernel.md.
 *
 * Near-future entries take a hierarchical timing-wheel fast path
 * (timing_wheel.hpp, docs/load-engine.md): the flush routes them into
 * ~1 ms tick buckets instead of the heap, and buckets are dumped back
 * into the heap only when their tick is reached — so under open-loop
 * arrival storms the heap stays one tick deep and schedule/pop is
 * O(1) amortized. The heap still totally orders everything it holds
 * by (when, seq), so the pop sequence is byte-identical to the
 * pure-heap kernel (constructible with use_wheel = false).
 */

#ifndef EAAO_SIM_EVENT_QUEUE_HPP
#define EAAO_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <vector>

#include "sim/inplace_callback.hpp"
#include "sim/time.hpp"
#include "sim/timing_wheel.hpp"

namespace eaao::sim {

/**
 * Handle identifying a scheduled event (for cancellation).
 *
 * Packed {slot, gen}: the low 32 bits index the event slab, the high
 * 32 bits carry the slot's generation at scheduling time. Generations
 * start at 1, so a valid handle is never 0 and `EventId id = 0` keeps
 * working as a null handle.
 */
using EventId = std::uint64_t;

/**
 * Domain tag attached to a scheduled event so checkpoint/restore can
 * rebuild its callback: `kind` names the callback family (0 =
 * untagged, not snapshot-safe) and `arg` carries its captured state
 * (typically an instance id). See docs/checkpoint.md.
 */
struct EventTag
{
    std::uint32_t kind = 0;
    std::uint64_t arg = 0;
};

/**
 * Plain-data image of a queue's complete state (slab, heap, staging
 * buffer, free-list, counters, clock) produced by exportImage() and
 * consumed by importImage(). Callbacks are represented by their
 * EventTags; the importer rebinds them through a caller-supplied
 * factory.
 */
struct EventQueueImage
{
    struct SlotImage
    {
        std::uint32_t gen = 1;
        std::uint8_t live = 0;
        std::uint32_t kind = 0;
        std::uint64_t arg = 0;
    };

    struct EntryImage
    {
        std::int64_t when_ns = 0;
        std::uint64_t seq = 0;
        std::uint32_t slot = 0;
        std::uint32_t gen = 0;
    };

    /** A wheel-parked entry with its explicit bucket placement. */
    struct WheelEntryImage
    {
        std::int64_t when_ns = 0;
        std::uint64_t seq = 0;
        std::uint32_t slot = 0;
        std::uint32_t gen = 0;
        std::uint8_t level = 0;
        std::uint8_t wslot = 0;
    };

    std::int64_t now_ns = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t processed = 0;
    std::uint64_t scheduled = 0;
    std::uint64_t cancelled = 0;
    std::vector<SlotImage> slots;
    std::vector<EntryImage> heap;
    std::vector<EntryImage> staging;
    std::vector<std::uint32_t> free_list;
    std::int64_t wheel_frontier = 0;
    std::vector<WheelEntryImage> wheel;
};

/**
 * Priority-queue based discrete event scheduler over SimTime.
 */
class EventQueue
{
  public:
    using Callback = InplaceCallback;

    /**
     * Create a queue whose clock starts at @p start. Pass
     * use_wheel = false for the pure-heap kernel — the reference the
     * timing-wheel property tests compare against.
     */
    explicit EventQueue(SimTime start = SimTime(), bool use_wheel = true);

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue();

    /** Current virtual time. */
    SimTime now() const { return now_; }

    /**
     * Schedule @p cb at absolute time @p when (must be >= now()).
     * @return Handle usable with cancel().
     */
    EventId scheduleAt(SimTime when, Callback cb);

    /** Schedule @p cb after a relative delay. */
    EventId scheduleAfter(Duration delay, Callback cb);

    /**
     * Schedule @p cb at @p when carrying a rebind tag so the event
     * survives checkpoint/restore (see exportImage/importImage).
     * @p tag.kind must be non-zero.
     */
    EventId scheduleAt(SimTime when, EventTag tag, Callback cb);

    /** Tagged variant of scheduleAfter. */
    EventId scheduleAfter(Duration delay, EventTag tag, Callback cb);

    /**
     * Cancel a pending event: O(1) slot invalidation (the callback is
     * destroyed and the slot recycled immediately). A handle that
     * already fired, was already cancelled, or whose slot has been
     * reused (stale generation) is refused.
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const;

    /** Pre-size the slab and heap for @p n concurrent events. */
    void reserve(std::size_t n);

    /** Events executed by this queue so far (cancelled ones excluded). */
    std::uint64_t processed() const { return processed_; }

    /** Events ever accepted by scheduleAt/scheduleAfter. */
    std::uint64_t scheduled() const { return scheduled_; }

    /** Events successfully cancelled before firing. */
    std::uint64_t cancelled() const { return cancelled_; }

    /** Run all events until the queue drains. */
    void run();

    /**
     * Run events with timestamp <= @p horizon, then set the clock to
     * @p horizon (even if no events fired).
     */
    void runUntil(SimTime horizon);

    /** Advance the clock by @p d, firing everything due in between. */
    void advance(Duration d);

    /**
     * Export the queue's complete state as plain data. Fails (returns
     * false) when a live event carries no EventTag — an untagged
     * callback cannot be rebound on restore.
     */
    bool exportImage(EventQueueImage &out) const;

    /**
     * Replace this queue's entire state with @p img, rebinding each
     * live slot's callback through @p rebind(kind, arg) -> Callback.
     * The slab, heap, staging buffer, free-list, counters, sequence
     * numbers and clock are restored verbatim, so EventIds handed out
     * before the capture stay valid afterwards.
     */
    template <typename Rebind>
    void
    importImage(const EventQueueImage &img, Rebind &&rebind)
    {
        now_ = SimTime::fromNanos(img.now_ns);
        next_seq_ = img.next_seq;
        processed_ = img.processed;
        scheduled_ = img.scheduled;
        cancelled_ = img.cancelled;
        slots_.clear();
        slots_.resize(img.slots.size());
        live_ = 0;
        for (std::size_t i = 0; i < img.slots.size(); ++i) {
            const EventQueueImage::SlotImage &s = img.slots[i];
            Slot &slot = slots_[i];
            slot.gen = s.gen;
            slot.live = s.live != 0;
            slot.tag = EventTag{s.kind, s.arg};
            if (slot.live) {
                slot.cb = rebind(s.kind, s.arg);
                ++live_;
            }
        }
        const auto entry = [](const EventQueueImage::EntryImage &e) {
            return HeapEntry{SimTime::fromNanos(e.when_ns), e.seq, e.slot,
                             e.gen};
        };
        heap_.clear();
        heap_.reserve(img.heap.size());
        for (const EventQueueImage::EntryImage &e : img.heap)
            heap_.push_back(entry(e));
        staging_.clear();
        staging_.reserve(img.staging.size());
        for (const EventQueueImage::EntryImage &e : img.staging)
            staging_.push_back(entry(e));
        free_ = img.free_list;
        wheel_.reset(img.wheel_frontier);
        for (const EventQueueImage::WheelEntryImage &w : img.wheel) {
            if (use_wheel_) {
                wheel_.restoreEntry(
                    WheelEntry{SimTime::fromNanos(w.when_ns), w.seq, w.slot,
                               w.gen},
                    w.level, w.wslot);
            } else {
                // Pure-heap target: a wheel-bearing image stays
                // runnable, the parked entries just live in the heap.
                heapPush(HeapEntry{SimTime::fromNanos(w.when_ns), w.seq,
                                   w.slot, w.gen});
            }
        }
    }

  private:
    /**
     * One ready-queue entry. when/seq are duplicated out of the slot
     * so heap comparisons stay inside the contiguous heap vector
     * instead of chasing slab pointers.
     */
    struct HeapEntry
    {
        SimTime when;
        std::uint64_t seq; //!< FIFO tie-break
        std::uint32_t slot;
        std::uint32_t gen; //!< slot generation at scheduling time
    };

    /** One slab slot; recycled through the free-list. */
    struct Slot
    {
        std::uint32_t gen = 1; //!< bumped on fire/cancel; never 0
        bool live = false;
        EventTag tag; //!< rebind tag; kind 0 = untagged
        Callback cb;
    };

    static EventId
    packId(std::uint32_t slot, std::uint32_t gen)
    {
        return (static_cast<EventId>(gen) << 32) | slot;
    }

    static std::uint32_t slotOf(EventId id)
    {
        return static_cast<std::uint32_t>(id);
    }

    static std::uint32_t genOf(EventId id)
    {
        return static_cast<std::uint32_t>(id >> 32);
    }

    /** True when entry @p a fires strictly before @p b. */
    static bool
    earlier(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /** True when @p e still refers to a pending event. */
    bool
    entryLive(const HeapEntry &e) const
    {
        const Slot &slot = slots_[e.slot];
        return slot.live && slot.gen == e.gen;
    }

    void heapPush(HeapEntry entry);

    /** Pop the heap top. Precondition: non-empty. */
    HeapEntry heapPop();

    /**
     * Move still-live staged entries into the heap. Entries whose
     * event was cancelled while staged are dropped here without ever
     * being sifted — in the reap pattern (schedule a timeout, almost
     * always cancel it before it fires) most entries die in staging
     * and the heap only ever sees the survivors.
     */
    void flushStaging();

    /** Kill @p slot: destroy the callback, retag, recycle. */
    void retire(std::uint32_t idx);

    /** Pop dead (cancelled) tops so the heap front is live or empty. */
    void compactTop();

    /** Execute a live popped entry. */
    void fire(const HeapEntry &top);

    /**
     * Surface wheel entries so the heap front is the global minimum:
     * every bucket due at or before min(@p bound_tick, the heap
     * front's tick) is dumped into the heap (stale entries die on the
     * way). With an empty heap the wheel advances action by action
     * until a live entry lands or nothing is due within the bound.
     */
    void syncWheel(std::int64_t bound_tick);

    SimTime now_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t processed_ = 0;
    std::uint64_t scheduled_ = 0;
    std::uint64_t cancelled_ = 0;
    std::size_t live_ = 0;
    std::vector<Slot> slots_;
    std::vector<HeapEntry> heap_;      //!< 4-ary min-heap
    std::vector<HeapEntry> staging_;   //!< scheduled, not yet in heap_
    std::vector<std::uint32_t> free_;  //!< recycled slot indices
    TimingWheel wheel_;                //!< near-future parking lot
    bool use_wheel_ = true;
};

} // namespace eaao::sim

#endif // EAAO_SIM_EVENT_QUEUE_HPP
