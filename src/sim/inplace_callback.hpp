/**
 * @file
 * Small-buffer-optimized move-only callable for the event kernel.
 *
 * The orchestrator schedules millions of tiny `[this, id]` lambdas per
 * campaign; wrapping each in a `std::function` costs a heap allocation
 * and an indirect copyable-wrapper vtable. InplaceCallback stores any
 * callable up to kInlineSize bytes directly inside the event slot and
 * falls back to the heap only for oversized captures, so the common
 * simulator callbacks never allocate.
 */

#ifndef EAAO_SIM_INPLACE_CALLBACK_HPP
#define EAAO_SIM_INPLACE_CALLBACK_HPP

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace eaao::sim {

/**
 * A move-only `void()` callable with inline storage.
 *
 * Callables that fit in kInlineSize bytes, satisfy the storage
 * alignment, and are nothrow-move-constructible live inline; anything
 * else is heap-allocated behind a pointer. Invocation, move, and
 * destruction dispatch through a per-type static ops table (one
 * pointer per callback, no virtual functions).
 */
class InplaceCallback
{
  public:
    /** Inline capture budget; fits `std::function` and a few words. */
    static constexpr std::size_t kInlineSize = 48;

    InplaceCallback() noexcept = default;

    /** Wrap any `void()` callable (implicit, like std::function). */
    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InplaceCallback> &&
                  std::is_invocable_r_v<void, D &>>>
    InplaceCallback(F &&fn) // NOLINT(google-explicit-constructor)
    {
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void *>(storage_)) D(std::forward<F>(fn));
            ops_ = &inlineOps<D>();
        } else {
            *reinterpret_cast<D **>(storage_) = new D(std::forward<F>(fn));
            ops_ = &heapOps<D>();
        }
    }

    InplaceCallback(InplaceCallback &&other) noexcept
    {
        moveFrom(std::move(other));
    }

    InplaceCallback &
    operator=(InplaceCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(std::move(other));
        }
        return *this;
    }

    InplaceCallback(const InplaceCallback &) = delete;
    InplaceCallback &operator=(const InplaceCallback &) = delete;

    ~InplaceCallback() { reset(); }

    /** Invoke the callable. Precondition: non-empty. */
    void
    operator()()
    {
        ops_->invoke(storage_);
    }

    /** True when a callable is stored. */
    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** Destroy the stored callable (if any); leaves *this empty. */
    void
    reset() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    /** True when the stored callable lives in the inline buffer. */
    bool
    isInline() const noexcept
    {
        return ops_ != nullptr && ops_->is_inline;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *storage);
        /** Move-construct into @p dst from @p src, then destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *storage) noexcept;
        bool is_inline;
    };

    template <typename D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= kInlineSize &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    static const Ops &
    inlineOps()
    {
        static constexpr Ops ops = {
            [](void *s) { (*std::launder(reinterpret_cast<D *>(s)))(); },
            [](void *dst, void *src) noexcept {
                D *from = std::launder(reinterpret_cast<D *>(src));
                ::new (dst) D(std::move(*from));
                from->~D();
            },
            [](void *s) noexcept {
                std::launder(reinterpret_cast<D *>(s))->~D();
            },
            /*is_inline=*/true,
        };
        return ops;
    }

    template <typename D>
    static const Ops &
    heapOps()
    {
        static constexpr Ops ops = {
            [](void *s) { (**reinterpret_cast<D **>(s))(); },
            [](void *dst, void *src) noexcept {
                *reinterpret_cast<D **>(dst) =
                    *reinterpret_cast<D **>(src);
            },
            [](void *s) noexcept { delete *reinterpret_cast<D **>(s); },
            /*is_inline=*/false,
        };
        return ops;
    }

    void
    moveFrom(InplaceCallback &&other) noexcept
    {
        if (other.ops_ != nullptr) {
            ops_ = other.ops_;
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineSize];
    const Ops *ops_ = nullptr;
};

} // namespace eaao::sim

#endif // EAAO_SIM_INPLACE_CALLBACK_HPP
