/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator must be reproducible bit-for-bit given a seed, across
 * standard-library implementations. We therefore carry our own SplitMix64
 * (for seeding / hashing) and Xoshiro256** (for streams), plus the
 * distribution samplers the experiments need.
 */

#ifndef EAAO_SIM_RNG_HPP
#define EAAO_SIM_RNG_HPP

#include <cstdint>

namespace eaao::sim {

/** Mix a 64-bit value through the SplitMix64 finalizer (also a good hash). */
std::uint64_t splitmix64(std::uint64_t &state);

/** Stateless variant: hash a single 64-bit value. */
std::uint64_t mix64(std::uint64_t x);

/**
 * Complete serialized Rng position: the four Xoshiro256** state words
 * plus the Box-Muller normal cache (a normal() call consumes two
 * uniforms and banks the second deviate, so stream position alone does
 * not determine the next output).
 */
struct RngState
{
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
};

/**
 * Xoshiro256** deterministic generator.
 *
 * Satisfies UniformRandomBitGenerator. Streams derived from the same seed
 * with different stream ids are statistically independent.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a seed; state is expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Derive an independent child stream keyed by @p stream_id. */
    Rng fork(std::uint64_t stream_id) const;

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit output. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /** Standard normal deviate (Box-Muller with caching). */
    double normal();

    /** Normal deviate with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Log-normal deviate: exp(N(mu, sigma)). */
    double lognormal(double mu, double sigma);

    /** Exponential deviate with the given mean (= 1/lambda). */
    double exponential(double mean);

    /** Snapshot the full stream position (checkpoint/restore). */
    RngState saveState() const;

    /** Resume a stream position captured by saveState(). */
    void restoreState(const RngState &state);

  private:
    explicit Rng(const std::uint64_t st[4]);

    std::uint64_t s_[4];
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

} // namespace eaao::sim

#endif // EAAO_SIM_RNG_HPP
