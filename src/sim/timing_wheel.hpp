/**
 * @file
 * Hierarchical timing wheel: the near-future fast path of the event
 * kernel (docs/load-engine.md).
 *
 * Four levels of 64 slots park entries by due tick (one tick =
 * 2^20 ns ~ 1.05 ms), covering ~67 ms / ~4.3 s / ~4.6 min / ~4.9 h of
 * horizon; anything further stays in the caller's heap. The wheel is
 * a *parking lot*, not a priority queue: advanceTo() dumps every
 * bucket due at or before a target tick into a caller-supplied sink
 * (EventQueue pushes them onto its 4-ary heap), and the heap's total
 * (when, seq) order decides the final pop order. That split keeps the
 * heap no larger than one tick's worth of events while leaving the
 * kernel's pop sequence byte-identical to the pure-heap kernel — the
 * property tests/sim_timing_wheel_test.cpp pins.
 *
 * Level assignment is by distance: an entry delta = tick - frontier
 * ticks away parks at the level whose span covers delta, in the slot
 * addressed by that level's 6-bit field of the absolute tick. When the
 * frontier crosses a level's window boundary the matching bucket
 * cascades: each drained entry re-inserts against the new frontier,
 * landing one level down (or in the sink when due). A non-empty
 * bucket is never skipped — nextActionTick() computes the earliest
 * tick at which any bucket must flush, so advancing across a quiet
 * hour costs a few bitmap scans, not a loop over ticks.
 */

#ifndef EAAO_SIM_TIMING_WHEEL_HPP
#define EAAO_SIM_TIMING_WHEEL_HPP

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace eaao::sim {

/** One parked event reference; mirrors EventQueue's heap entry. */
struct WheelEntry
{
    SimTime when;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
};

class TimingWheel
{
  public:
    static constexpr unsigned kTickBits = 20; //!< 2^20 ns ~ 1.05 ms
    static constexpr unsigned kSlotBits = 6;
    static constexpr unsigned kLevels = 4;
    static constexpr std::uint32_t kSlots = 1u << kSlotBits;
    static constexpr std::uint64_t kSlotMask = kSlots - 1;

    /** Due tick of an absolute time. */
    static std::int64_t
    tickOf(SimTime t)
    {
        return t.ns() >> kTickBits;
    }

    /** Next tick the wheel has not yet dumped. */
    std::int64_t frontier() const { return frontier_; }

    /** Parked entries (stale ones included until they cascade out). */
    std::size_t size() const { return count_; }

    bool empty() const { return count_ == 0; }

    /**
     * Park @p e. Returns false — caller keeps the entry in its heap —
     * when the entry is due (tick <= frontier) or beyond level 3's
     * span (~4.9 h of ticks).
     */
    bool insert(const WheelEntry &e);

    /**
     * Dump every entry due at or before @p target into @p sink and
     * advance the frontier to target + 1. Entries of the same tick
     * arrive in unspecified order — the caller's heap restores the
     * total (when, seq) order. No-op when target < frontier.
     */
    template <typename Sink>
    void
    advanceTo(std::int64_t target, Sink &&sink)
    {
        while (advanceOne(target, sink)) {
        }
    }

    /**
     * Process exactly one action tick (bucket flushes and/or an L0
     * dump) at or before @p target. Returns false — with the frontier
     * advanced past @p target — when nothing is due in range. Callers
     * with an empty heap step with this so a run of stale (cancelled)
     * entries cannot drain the whole wheel in one call.
     */
    template <typename Sink>
    bool
    advanceOne(std::int64_t target, Sink &&sink)
    {
        if (frontier_ > target)
            return false;
        if (count_ == 0) {
            frontier_ = target + 1;
            return false;
        }
        const std::int64_t t = nextActionTick();
        if (t > target) {
            frontier_ = target + 1;
            return false;
        }
        processAction(t, sink);
        return true;
    }

    /** Drop every entry and reset the frontier to @p frontier. */
    void reset(std::int64_t frontier);

    /**
     * Re-park @p e at an explicit (level, slot) position — snapshot
     * restore only, paired with forEach() so a capture/restore
     * round-trip reproduces bucket placement bit-exactly.
     */
    void restoreEntry(const WheelEntry &e, std::uint8_t level,
                      std::uint8_t wslot);

    /** Visit every parked entry with its placement, level-major. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (unsigned level = 0; level < kLevels; ++level) {
            for (std::uint32_t s = 0; s < kSlots; ++s) {
                for (const WheelEntry &e : buckets_[level][s])
                    fn(e, static_cast<std::uint8_t>(level),
                       static_cast<std::uint8_t>(s));
            }
        }
    }

  private:
    /**
     * Earliest tick at which a bucket must act: an L0 dump at its
     * entries' due tick, or a level>=1 flush at its window start.
     * Precondition: count_ > 0.
     */
    std::int64_t nextActionTick() const;

    /**
     * Act at tick @p t: cascade every level whose window starts here
     * (highest first, so entries ripple down in one pass), then dump
     * the L0 bucket — which holds exactly the tick-t entries — into
     * the sink. Leaves frontier = t + 1.
     */
    template <typename Sink>
    void
    processAction(std::int64_t t, Sink &&sink)
    {
        frontier_ = t;
        for (unsigned level = kLevels - 1; level >= 1; --level) {
            const std::int64_t span = std::int64_t(1)
                                      << (kSlotBits * level);
            if ((t & (span - 1)) == 0)
                flushLevel(level, t, sink);
        }
        std::vector<WheelEntry> &due = buckets_[0][t & kSlotMask];
        if (!due.empty()) {
            occ_[0] &= ~(std::uint64_t(1) << (t & kSlotMask));
            count_ -= due.size();
            for (const WheelEntry &e : due)
                sink(e);
            due.clear();
        }
        frontier_ = t + 1;
    }

    /** Cascade the bucket of @p level addressed by tick @p t. */
    template <typename Sink>
    void
    flushLevel(unsigned level, std::int64_t t, Sink &&sink)
    {
        const std::uint32_t s =
            static_cast<std::uint32_t>(t >> (kSlotBits * level)) & kSlotMask;
        if (!(occ_[level] >> s & 1))
            return;
        std::vector<WheelEntry> &bucket = buckets_[level][s];
        // Drain through the scratch buffer: insert() may append to
        // other buckets mid-loop (never to this one — an entry whose
        // slot field matches the window being flushed always lands a
        // level down).
        scratch_.clear();
        scratch_.swap(bucket);
        occ_[level] &= ~(std::uint64_t(1) << s);
        count_ -= scratch_.size();
        for (const WheelEntry &e : scratch_) {
            if (!insert(e))
                sink(e);
        }
    }

    std::int64_t frontier_ = 0;
    std::size_t count_ = 0;
    std::uint64_t occ_[kLevels] = {};
    std::vector<WheelEntry> buckets_[kLevels][kSlots];
    std::vector<WheelEntry> scratch_;
};

} // namespace eaao::sim

#endif // EAAO_SIM_TIMING_WHEEL_HPP
