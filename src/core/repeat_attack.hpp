/**
 * @file
 * Repeat-attack optimization (paper Section 5.2, "Potential attack
 * optimizations").
 *
 * When the attacker intends to repeatedly target services of the same
 * victim account, the fingerprints of hosts that held victim instances
 * during the first attack identify the victim's likely base hosts. In
 * subsequent attacks the attacker can focus side-channel extraction on
 * its own instances whose fingerprints match the recorded set, instead
 * of monitoring every occupied host.
 *
 * Matching is drift-tolerant: the recorded T_boot is extrapolated with
 * the tracked drift slope (Section 4.4.2) before comparing buckets.
 */

#ifndef EAAO_CORE_REPEAT_ATTACK_HPP
#define EAAO_CORE_REPEAT_ATTACK_HPP

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/fingerprint.hpp"
#include "sim/time.hpp"

namespace eaao::core {

/** One remembered victim host. */
struct RecordedHost
{
    std::string cpu_model;
    double tboot_s = 0.0;      //!< derived boot time at record instant
    double record_wall_s = 0.0; //!< when the record was taken
    double drift_per_s = 0.0;  //!< fitted slope, if a history exists
};

/**
 * Store of victim-host fingerprints across attacks.
 */
class RepeatAttackPlanner
{
  public:
    /**
     * @param p_boot_s Rounding precision used for matching.
     * @param tolerance_buckets Extra +-buckets accepted around the
     *        drift-extrapolated position (measurement noise and
     *        slope-estimate error).
     */
    explicit RepeatAttackPlanner(double p_boot_s = 1.0,
                                 std::int64_t tolerance_buckets = 2);

    /**
     * Remember a host observed to carry victim instances.
     *
     * @param reading A reading taken on that host (attacker-side,
     *        from a co-located attacker instance).
     * @param drift_per_s Fitted T_boot drift, if the attacker tracked
     *        this host (0 = assume negligible drift).
     */
    void recordVictimHost(const Gen1Reading &reading,
                          double drift_per_s = 0.0);

    /** Number of remembered hosts. */
    std::size_t size() const { return hosts_.size(); }

    /**
     * Does @p reading (taken now, on some attacker instance) match a
     * remembered victim host?
     */
    bool matches(const Gen1Reading &reading) const;

    /**
     * Select the focus set: indices of @p readings that match
     * remembered victim hosts. Extraction effort concentrates there.
     */
    std::vector<std::size_t>
    focusIndices(const std::vector<Gen1Reading> &readings) const;

  private:
    double p_boot_s_;
    std::int64_t tolerance_buckets_;
    std::vector<RecordedHost> hosts_;
    /** model-hash -> recorded indices (fast candidate lookup). */
    std::map<std::uint64_t, std::vector<std::size_t>> by_model_;
};

} // namespace eaao::core

#endif // EAAO_CORE_REPEAT_ATTACK_HPP
