/**
 * @file
 * Drift-aware physical-host registry.
 *
 * The strategic advantage of fingerprints over pairwise covert
 * channels (paper Section 4.3) is *identity over time*: the attacker
 * can recognize a host across launches, days apart, despite T_boot
 * drift and fingerprint expiration. The registry is the attacker-side
 * database that makes this operational:
 *
 *  - observations (Gen 1 readings) are matched to known hosts using
 *    drift-extrapolated bucket comparison;
 *  - each host keeps a FingerprintHistory, so its drift slope and
 *    expiration forecast improve with every observation;
 *  - the registry serializes to a line-based text format, surviving
 *    between attack sessions.
 */

#ifndef EAAO_CORE_HOST_REGISTRY_HPP
#define EAAO_CORE_HOST_REGISTRY_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/tracker.hpp"

namespace eaao::core {

/** Attacker-assigned identifier of a tracked host. */
using TrackedHostId = std::uint32_t;

/** Interned index of a CPU-model string (see HostRegistry). */
using ModelId = std::uint32_t;

/** One tracked host. */
struct TrackedHost
{
    TrackedHostId id = 0;
    std::string cpu_model;
    ModelId model = 0; //!< interned cpu_model index
    FingerprintHistory history;

    /** Last observation. */
    double last_tboot_s = 0.0;
    double last_wall_s = 0.0;

    /** Best known drift slope (0 until >= 2 observations). */
    double drift_per_s = 0.0;

    /** Extrapolated T_boot at wall time @p wall_s. */
    double predictedTBoot(double wall_s) const;
};

/** Registry tuning. */
struct HostRegistryConfig
{
    double p_boot_s = 1.0;            //!< matching precision
    std::int64_t tolerance_buckets = 1; //!< slack around the prediction
};

/**
 * The host database.
 */
class HostRegistry
{
  public:
    explicit HostRegistry(const HostRegistryConfig &cfg = {});

    /**
     * Match-or-insert: find the tracked host this reading belongs to
     * (drift-extrapolated), append the observation to its history, or
     * register a new host if nothing matches.
     *
     * @return (host id, true if newly registered).
     */
    std::pair<TrackedHostId, bool> observe(const Gen1Reading &reading);

    /**
     * Match without inserting.
     * @return The tracked host id, or nullopt if unknown.
     */
    std::optional<TrackedHostId>
    match(const Gen1Reading &reading) const;

    /** Number of tracked hosts. */
    std::size_t size() const { return hosts_.size(); }

    /** Access a tracked host. */
    const TrackedHost &host(TrackedHostId id) const;

    /**
     * Expiration forecast for a host (seconds after its last
     * observation), per Section 4.4.2; nullopt when drift is
     * negligible or the history is too short.
     */
    std::optional<double> expirationSeconds(TrackedHostId id) const;

    /**
     * Hosts not observed since @p wall_s (candidates for re-discovery
     * before their fingerprints drift too far).
     */
    std::vector<TrackedHostId> staleHosts(double wall_s) const;

    /**
     * Serialize to a line-based text format (one host per line:
     * id, model, slope, last observation).
     */
    std::string serialize() const;

    /**
     * Reconstruct a registry from serialize() output. Histories are
     * collapsed to the last observation plus the fitted slope — enough
     * to keep matching across sessions.
     *
     * @return nullopt on malformed input.
     */
    static std::optional<HostRegistry>
    deserialize(const std::string &text,
                const HostRegistryConfig &cfg = {});

  private:
    /**
     * Interned model id for @p model, or nullopt if unseen. A data
     * center has a handful of CPU SKUs, so a linear scan over the
     * intern vector beats a string-keyed tree/hash map.
     */
    std::optional<ModelId> findModel(const std::string &model) const;

    /** Interned model id for @p model, registering it if unseen. */
    ModelId internModel(const std::string &model);

    /** Candidate ids whose model matches. */
    const std::vector<TrackedHostId> *
    candidates(const std::string &model) const;

    HostRegistryConfig cfg_;
    std::vector<TrackedHost> hosts_;
    std::vector<std::string> model_names_;  //!< intern table, by ModelId
    std::vector<std::vector<TrackedHostId>> model_hosts_; //!< by ModelId
};

} // namespace eaao::core

#endif // EAAO_CORE_HOST_REGISTRY_HPP
