/**
 * @file
 * Implementation of host fingerprinting.
 */

#include "core/fingerprint.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "hw/cpu_sku.hpp"
#include "sim/rng.hpp"
#include "support/logging.hpp"

namespace eaao::core {

Gen1Reading
readGen1(faas::SandboxView &sandbox)
{
    const std::string model = sandbox.cpuModelName();
    const double f = hw::SkuCatalog::labeledFrequencyHz(model);
    EAAO_ASSERT(f > 0.0,
                "model string carries no labeled frequency: ", model);
    return readGen1WithFrequency(sandbox, f);
}

Gen1Reading
readGen1WithFrequency(faas::SandboxView &sandbox, double frequency_hz)
{
    EAAO_ASSERT(frequency_hz > 0.0, "non-positive frequency");
    const faas::TimestampSample ts = sandbox.readTimestamp();

    Gen1Reading r;
    r.cpu_model = sandbox.cpuModelName();
    r.frequency_hz = frequency_hz;
    r.wall_s = ts.wall.secondsF();
    // Eq. 4.1: T_boot = T_w - tsc / f.
    r.tboot_s = r.wall_s - static_cast<double>(ts.tsc) / frequency_hz;
    return r;
}

Gen1Reading
readGen1Median(faas::SandboxView &sandbox, std::uint32_t reps)
{
    EAAO_ASSERT(reps >= 1, "need at least one repetition");
    std::vector<Gen1Reading> readings;
    readings.reserve(reps);
    for (std::uint32_t r = 0; r < reps; ++r)
        readings.push_back(readGen1(sandbox));
    std::sort(readings.begin(), readings.end(),
              [](const Gen1Reading &a, const Gen1Reading &b) {
                  return a.tboot_s < b.tboot_s;
              });
    return readings[readings.size() / 2];
}

Gen1Fingerprint
quantizeGen1(const Gen1Reading &reading, double p_boot_s)
{
    EAAO_ASSERT(p_boot_s > 0.0, "non-positive rounding precision");
    Gen1Fingerprint fp;
    fp.cpu_model = reading.cpu_model;
    fp.boot_bucket =
        static_cast<std::int64_t>(std::llround(reading.tboot_s / p_boot_s));
    return fp;
}

std::uint64_t
fingerprintKey(const Gen1Fingerprint &fp)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : fp.cpu_model) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ULL;
    }
    return sim::mix64(h ^ static_cast<std::uint64_t>(fp.boot_bucket));
}

Gen2Fingerprint
readGen2(faas::SandboxView &sandbox)
{
    const double hz = sandbox.refinedTscFrequencyHz();
    Gen2Fingerprint fp;
    fp.refined_khz = static_cast<std::int64_t>(std::llround(hz / 1000.0));
    return fp;
}

std::uint64_t
fingerprintKey(const Gen2Fingerprint &fp)
{
    return sim::mix64(0x47454e32ULL ^ // "GEN2"
                      static_cast<std::uint64_t>(fp.refined_khz));
}

} // namespace eaao::core
