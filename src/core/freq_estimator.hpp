/**
 * @file
 * TSC frequency estimators (paper Section 4.2).
 *
 * Method 1 ("reported"): take the labeled base frequency from the CPU
 * model string. Slightly wrong by a constant per-host error, causing
 * linear T_boot drift (Eq. 4.2) and fingerprint expiration.
 *
 * Method 2 ("measured"): read the TSC twice a known wall-clock interval
 * apart and divide. Drift-free, but on ~10% of hosts the measurement
 * scatters by 10 kHz - MHz, producing false negatives; this is why the
 * paper (and this library) defaults to method 1.
 */

#ifndef EAAO_CORE_FREQ_ESTIMATOR_HPP
#define EAAO_CORE_FREQ_ESTIMATOR_HPP

#include <cstddef>
#include <string>

#include "faas/sandbox.hpp"
#include "sim/time.hpp"

namespace eaao::core {

/** Result of a measured-frequency estimation. */
struct FrequencyEstimate
{
    double mean_hz = 0.0;
    double stddev_hz = 0.0;
    std::size_t reps = 0;

    /**
     * Is this estimate stable enough to base a fingerprint on? The
     * threshold reflects the paper's split between hosts with <100 Hz
     * deviation and "problematic" hosts at 10 kHz and beyond.
     */
    bool stable(double max_stddev_hz = 1000.0) const
    {
        return stddev_hz <= max_stddev_hz;
    }
};

/**
 * Method 1: reported TSC frequency for a sandbox (labeled frequency of
 * the cpuid model string). Returns 0 if unavailable (Gen 2 stub model).
 */
double reportedFrequencyHz(faas::SandboxView &sandbox);

/**
 * Method 2: measure the TSC frequency against the wall clock.
 *
 * @param sandbox The instance to measure in.
 * @param interval Wall-clock gap between the two TSC reads per rep.
 * @param reps Number of repetitions (paper: 10).
 */
FrequencyEstimate measuredFrequencyHz(
    faas::SandboxView &sandbox,
    sim::Duration interval = sim::Duration::millis(100),
    std::uint32_t reps = 10);

} // namespace eaao::core

#endif // EAAO_CORE_FREQ_ESTIMATOR_HPP
