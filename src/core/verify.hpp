/**
 * @file
 * Instance co-location verification (paper Section 4.3).
 *
 * The scalable method groups instances by fingerprint, verifies each
 * group with (ideally) a single adjustable-threshold covert-channel
 * test, recursively refines groups whose fingerprints turned out to be
 * false positives, and finishes with one all-representatives test that
 * surfaces false negatives across groups. Best case: O(M) tests for M
 * occupied hosts.
 *
 * Conventional baselines: O(N^2) pairwise covert-channel testing and
 * Single Instance Elimination (SIE), which the paper shows is
 * ineffective in FaaS because every instance shares its host.
 */

#ifndef EAAO_CORE_VERIFY_HPP
#define EAAO_CORE_VERIFY_HPP

#include <cstdint>
#include <vector>

#include "channel/covert.hpp"
#include "faas/platform.hpp"
#include "sim/time.hpp"

namespace eaao::core {

/** Options of the scalable verifier. */
struct VerifyOptions
{
    /** Base contention threshold for small tests (paper: m = 2). */
    std::uint32_t m = 2;

    /**
     * Maximum adjustable threshold: a group of up to this many
     * instances can be confirmed in one test (raise threshold /
     * reduce per-instance pressure, Section 4.3).
     */
    std::uint32_t m_max = 16;

    /**
     * Run group tests of different parallel classes concurrently
     * (classes guaranteed to live on disjoint hosts, e.g. distinct CPU
     * models in Gen 1, distinct fingerprints in Gen 2).
     */
    bool parallelize = true;

    /**
     * The fingerprints cannot produce false negatives (Gen 2): skip the
     * cross-group representative test entirely.
     */
    bool no_false_negatives = false;
};

/** Outcome of a verification run. */
struct VerifyResult
{
    /** Cluster label per input index; same label = verified co-located. */
    std::vector<std::uint64_t> cluster_of;

    /** Covert-channel group tests executed. */
    std::uint64_t group_tests = 0;

    /** Serialized rounds (wall-clock units of one test each). */
    std::uint64_t waves = 0;

    /** Wall-clock time the verification occupied. */
    sim::Duration elapsed;

    /** Billing for keeping the instances active throughout. */
    double cost_usd = 0.0;

    /** Number of distinct clusters (verified hosts). */
    std::size_t clusterCount() const;
};

/**
 * Fingerprint-assisted scalable verification.
 *
 * @param platform The data center.
 * @param chan The group-test covert channel.
 * @param ids Instances under test (must be active).
 * @param fp_keys Fingerprint key per instance (same order as ids).
 * @param parallel_class Class id per instance; instances of different
 *        classes are guaranteed host-disjoint, so their tests can run
 *        concurrently. Pass an empty vector to serialize everything.
 * @param opts Options.
 */
VerifyResult verifyScalable(faas::Platform &platform,
                            channel::RngChannel &chan,
                            const std::vector<faas::InstanceId> &ids,
                            const std::vector<std::uint64_t> &fp_keys,
                            const std::vector<std::uint64_t> &parallel_class,
                            const VerifyOptions &opts = {});

/**
 * Conventional O(N^2) pairwise verification over a pairwise channel.
 * Tests are serialized to avoid interference.
 */
VerifyResult verifyPairwise(faas::Platform &platform,
                            channel::RngChannel &pair_channel,
                            const std::vector<faas::InstanceId> &ids);

/**
 * Pairwise verification over the slow memory-bus channel (Varadarajan
 * et al. style; several seconds per test).
 */
VerifyResult verifyPairwiseMemBus(faas::Platform &platform,
                                  channel::MemBusChannel &chan,
                                  const std::vector<faas::InstanceId> &ids);

/**
 * Single Instance Elimination (Inci et al.): one simultaneous test of
 * all instances; instances that observe no contention are eliminated.
 *
 * @return Indices (into @p ids) of the surviving instances. In FaaS
 *         this typically returns everything (Section 4.3).
 */
std::vector<std::size_t> singleInstanceElimination(
    faas::Platform &platform, channel::RngChannel &chan,
    const std::vector<faas::InstanceId> &ids, std::uint32_t m = 2);

} // namespace eaao::core

#endif // EAAO_CORE_VERIFY_HPP
