/**
 * @file
 * Fingerprint tracking over time (paper Section 4.4.2).
 *
 * Because method-1 fingerprints use a slightly-wrong frequency, the
 * derived T_boot drifts linearly with real-world time (Eq. 4.2). A
 * FingerprintHistory accumulates (wall time, T_boot) observations for
 * one host, fits the drift line, validates linearity via the r-value,
 * and predicts when the rounded fingerprint will expire (cross a
 * rounding boundary).
 */

#ifndef EAAO_CORE_TRACKER_HPP
#define EAAO_CORE_TRACKER_HPP

#include <optional>
#include <vector>

#include "obs/observer.hpp"
#include "sim/time.hpp"
#include "stats/regression.hpp"

namespace eaao::core {

/**
 * Time series of derived boot times for one (apparent) host.
 */
class FingerprintHistory
{
  public:
    /** Record one observation. */
    void add(sim::SimTime when, double tboot_s);

    /** Number of observations. */
    std::size_t size() const { return wall_s_.size(); }

    /** Time span covered by the history. */
    sim::Duration span() const;

    /**
     * Fit T_boot as a linear function of wall time. Requires >= 2
     * observations.
     */
    stats::LinearFit fitDrift() const;

    /**
     * Estimated time (seconds after the last observation) until the
     * fingerprint rounded at @p p_boot_s changes value.
     *
     * @return nullopt when the drift is too small to ever cross a
     *         boundary within any practical horizon (|slope| < 1e-12).
     */
    std::optional<double> expirationSeconds(double p_boot_s) const;

    /** Raw observation access (for plotting/benches). */
    const std::vector<double> &wallSeconds() const { return wall_s_; }
    const std::vector<double> &tbootSeconds() const { return tboot_s_; }

    /**
     * Attach an observability handle: subsequent add() calls count
     * into "tracker.observations" and expirationSeconds() results are
     * recorded into the "tracker.expiration_days" histogram. Trackers
     * have no platform reference, so the handle is wired explicitly.
     */
    void setObserver(obs::Observer observer);

  private:
    std::vector<double> wall_s_;
    std::vector<double> tboot_s_;
    obs::Counter *c_observations_ = nullptr;
    obs::Histogram *h_expiration_days_ = nullptr;
};

} // namespace eaao::core

#endif // EAAO_CORE_TRACKER_HPP
