/**
 * @file
 * Implementation of co-location verification.
 */

#include "core/verify.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "support/logging.hpp"

namespace eaao::core {

namespace {

#if EAAO_OBS_ENABLED
/** Record one finished verification run (span + counters). */
void
recordVerify(faas::Platform &platform, const char *name,
             sim::SimTime start, std::size_t instances,
             const VerifyResult &out)
{
    const obs::Observer obs = platform.obs();
    if (obs.metrics != nullptr) {
        obs.metrics->counter("verify.runs")->add();
        obs.metrics->counter("verify.group_tests")->add(out.group_tests);
        obs.metrics->counter("verify.waves")->add(out.waves);
    }
    if (obs.trace != nullptr) {
        obs.trace->complete(
            name, "verify", start, platform.now(),
            {obs::TraceArg::u64("instances", instances),
             obs::TraceArg::u64("tests", out.group_tests),
             obs::TraceArg::u64("waves", out.waves),
             obs::TraceArg::u64("clusters", out.clusterCount()),
             obs::TraceArg::f64("cost_usd", out.cost_usd)});
    }
}
#endif

/** Minimal union-find over instance indices. */
class Dsu
{
  public:
    explicit Dsu(std::size_t n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    std::size_t
    find(std::size_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void
    merge(std::size_t a, std::size_t b)
    {
        a = find(a);
        b = find(b);
        if (a != b)
            parent_[std::max(a, b)] = std::min(a, b);
    }

  private:
    std::vector<std::size_t> parent_;
};

/** Billing rate summed over the instances under test. */
double
combinedUsdPerSecond(const faas::Platform &platform,
                     const std::vector<faas::InstanceId> &ids)
{
    const auto &pricing = platform.orchestrator().pricing();
    double rate = 0.0;
    for (const faas::InstanceId id : ids)
        rate += pricing.usdPerActiveSecond(platform.instanceInfo(id).size);
    return rate;
}

/**
 * Shared mutable state of one scalable verification run.
 *
 * The resolution fallback used to copy member vectors at every
 * recursion level and build a fresh `std::map` of cluster
 * representatives per merge. It now recurses over `[lo, hi)` ranges of
 * one scratch index arena: a split is two subranges of the same
 * storage, partition survivors are appended above the current top and
 * truncated on unwind (ranges are never reordered in place — an
 * ancestor's merge step must see its members in the original order,
 * because the first member of a cluster becomes its test
 * representative, and a different representative would change the
 * covert-channel group composition and thus its RNG draws). All group
 * and representative buffers are reused across calls.
 */
struct Run
{
    faas::Platform *platform;
    channel::RngChannel *chan;
    const std::vector<faas::InstanceId> *ids;
    VerifyOptions opts;
    Dsu dsu;
    std::uint64_t tests = 0;
    std::uint64_t waves = 0;

    Run(faas::Platform &p, channel::RngChannel &c,
        const std::vector<faas::InstanceId> &i, const VerifyOptions &o)
        : platform(&p), chan(&c), ids(&i), dsu(i.size())
    {
        opts = o;
        seen_.assign(i.size(), 0);
        arena_.reserve(2 * i.size());
        group_.reserve(i.size());
    }

    /** Run one serialized group test over member indices. */
    channel::GroupTestResult
    test(const std::size_t *members, std::size_t count, std::uint32_t m)
    {
        group_.clear();
        for (std::size_t i = 0; i < count; ++i)
            group_.push_back((*ids)[members[i]]);
        ++tests;
        ++waves;
        return chan->run(group_, m);
    }

    channel::GroupTestResult
    test(const std::vector<std::size_t> &members, std::uint32_t m)
    {
        return test(members.data(), members.size(), m);
    }

    /**
     * Threshold for a one-shot test of @p g members: the smallest m
     * with 2m-1 >= g, so that an all-positive outcome proves a single
     * shared host. Never below the base m.
     */
    std::uint32_t
    oneShotThreshold(std::size_t g) const
    {
        const auto needed =
            static_cast<std::uint32_t>((g + 2) / 2); // ceil((g+1)/2)
        return std::clamp(needed, opts.m, opts.m_max);
    }

    /**
     * Resolve a set of possibly co-located members into clusters
     * (sequential tests; used on the uncommon fallback paths).
     */
    void
    resolve(const std::vector<std::size_t> &members)
    {
        const std::size_t lo = arena_.size();
        arena_.insert(arena_.end(), members.begin(), members.end());
        resolveRange(lo, arena_.size());
        arena_.resize(lo);
    }

    void
    mergeAcross(const std::vector<std::size_t> &members)
    {
        mergeAcrossSpan(members.data(), members.size());
    }

  private:
    void
    resolveRange(std::size_t lo, std::size_t hi)
    {
        const std::size_t count = hi - lo;
        if (count <= 1)
            return;
        if (count > 2ULL * opts.m_max - 1) {
            // Too large for one test: split, resolve halves, merge.
            // The recursion only appends above the current arena top
            // (and truncates on return), so both halves are intact for
            // the merge step.
            const std::size_t mid = lo + count / 2;
            resolveRange(lo, mid);
            resolveRange(mid, hi);
            mergeAcrossSpan(arena_.data() + lo, count);
            return;
        }

        const std::uint32_t m = oneShotThreshold(count);
        const auto result = test(arena_.data() + lo, count, m);
        std::size_t n_pos = 0;
        for (std::size_t i = 0; i < count; ++i)
            n_pos += result.positive[i] ? 1 : 0;

        if (n_pos >= m) {
            // The positives share one host (m <= |P| <= 2m-1). Merge
            // them in place, then resolve the negatives from a fresh
            // range appended above the top.
            std::size_t anchor = count; // first positive
            const std::size_t neg_lo = arena_.size();
            for (std::size_t i = 0; i < count; ++i) {
                const std::size_t idx = arena_[lo + i];
                if (result.positive[i]) {
                    if (anchor == count)
                        anchor = idx;
                    else
                        dsu.merge(anchor, idx);
                } else {
                    arena_.push_back(idx);
                }
            }
            resolveRange(neg_lo, arena_.size());
            arena_.resize(neg_lo);
            return;
        }
        if (n_pos > 0) {
            eaao::warn("anomalous covert-channel outcome: ", n_pos,
                       " positives below threshold ", m);
        }
        // No host holds >= m members: split and recurse with a lower
        // threshold; merging handles co-location across the halves.
        if (count <= 2) {
            // Two members that tested negative at m=2 are not
            // co-located; nothing further to learn.
            return;
        }
        if (m == opts.m) {
            // Already at the base threshold and nothing met it: every
            // member saw fewer than m units, i.e. no two members share
            // a host. Done.
            return;
        }
        const std::size_t mid = lo + count / 2;
        resolveRange(lo, mid);
        resolveRange(mid, hi);
        mergeAcrossSpan(arena_.data() + lo, count);
    }

    /**
     * Merge clusters among @p members: one representative per current
     * cluster, one all-at-once base-threshold test, then pairwise
     * refinement of the positives. The representative of a cluster is
     * its first member in @p members order; representatives are tested
     * in ascending-root order (both as the old std::map produced).
     */
    void
    mergeAcrossSpan(const std::size_t *members, std::size_t count)
    {
        ++epoch_;
        reps_.clear();
        for (std::size_t i = 0; i < count; ++i) {
            const std::size_t idx = members[i];
            const std::size_t root = dsu.find(idx);
            if (seen_[root] != epoch_) {
                seen_[root] = epoch_;
                reps_.push_back({root, idx});
            }
        }
        if (reps_.size() < 2)
            return;
        std::sort(reps_.begin(), reps_.end()); // roots are unique
        rep_members_.clear();
        for (const auto &[root, rep] : reps_)
            rep_members_.push_back(rep);

        const auto result =
            test(rep_members_.data(), rep_members_.size(), opts.m);
        positives_.clear();
        for (std::size_t i = 0; i < rep_members_.size(); ++i) {
            if (result.positive[i])
                positives_.push_back(rep_members_[i]);
        }
        if (positives_.size() < 2)
            return;
        if (positives_.size() == 2) {
            dsu.merge(positives_[0], positives_[1]);
            return;
        }
        for (std::size_t i = 0; i < positives_.size(); ++i) {
            for (std::size_t j = i + 1; j < positives_.size(); ++j) {
                if (dsu.find(positives_[i]) == dsu.find(positives_[j]))
                    continue;
                const std::size_t pair[2] = {positives_[i],
                                             positives_[j]};
                const auto pair_result = test(pair, 2, opts.m);
                if (pair_result.positive[0] && pair_result.positive[1])
                    dsu.merge(positives_[i], positives_[j]);
            }
        }
    }

    /** Scratch member-index arena; resolveRange ranges live here. */
    std::vector<std::size_t> arena_;
    std::vector<faas::InstanceId> group_;  //!< reused test group
    std::vector<std::uint64_t> seen_;      //!< epoch stamp per root
    std::uint64_t epoch_ = 0;
    /** (root, first member) per cluster — replaces the per-call map. */
    std::vector<std::pair<std::size_t, std::size_t>> reps_;
    std::vector<std::size_t> rep_members_; //!< reps in root order
    std::vector<std::size_t> positives_;   //!< merge-test positives
};

} // namespace

std::size_t
VerifyResult::clusterCount() const
{
    std::unordered_map<std::uint64_t, bool> seen;
    for (const auto label : cluster_of)
        seen[label] = true;
    return seen.size();
}

VerifyResult
verifyScalable(faas::Platform &platform, channel::RngChannel &chan,
               const std::vector<faas::InstanceId> &ids,
               const std::vector<std::uint64_t> &fp_keys,
               const std::vector<std::uint64_t> &parallel_class,
               const VerifyOptions &opts)
{
    EAAO_ASSERT(ids.size() == fp_keys.size(), "ids/keys size mismatch");
    EAAO_ASSERT(parallel_class.empty() ||
                    parallel_class.size() == ids.size(),
                "ids/class size mismatch");
    const sim::SimTime start = platform.now();
    const std::uint64_t tests_before = chan.testsRun();

    Run run(platform, chan, ids, opts);

    // Step 1: group by fingerprint.
    std::map<std::uint64_t, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < ids.size(); ++i)
        groups[fp_keys[i]].push_back(i);

    // Step 2: one-shot tests per group (chunked if oversized), batched
    // into waves of host-disjoint classes when parallelism is allowed.
    struct Chunk
    {
        std::vector<std::size_t> members;
        std::uint32_t m;
        std::uint64_t cls;
    };
    std::vector<Chunk> chunks;
    std::vector<std::vector<std::size_t>> oversized_groups;
    for (const auto &[key, members] : groups) {
        if (members.size() < 2)
            continue;
        const std::size_t chunk_cap = 2ULL * opts.m_max - 1;
        const std::uint64_t cls =
            parallel_class.empty() ? 0 : parallel_class[members.front()];
        if (members.size() <= chunk_cap) {
            chunks.push_back(
                {members, run.oneShotThreshold(members.size()), cls});
        } else {
            // Oversized groups take the sequential fallback path.
            oversized_groups.push_back(members);
        }
    }

    // Queue chunks per class and execute wave by wave.
    std::map<std::uint64_t, std::vector<std::size_t>> class_queues;
    for (std::size_t c = 0; c < chunks.size(); ++c)
        class_queues[chunks[c].cls].push_back(c);

    std::vector<std::vector<std::size_t>> leftovers;
    std::vector<std::size_t> pos, neg; // reused across chunks
    bool work_left = true;
    std::size_t wave_idx = 0;
    while (work_left) {
        work_left = false;
        std::vector<std::size_t> wave;
        for (auto &[cls, queue] : class_queues) {
            if (wave_idx < queue.size()) {
                wave.push_back(queue[wave_idx]);
                if (!opts.parallelize)
                    break;
            }
        }
        if (!opts.parallelize) {
            // Serialized mode: drain queues one chunk at a time.
            wave.clear();
            for (auto &[cls, queue] : class_queues) {
                for (const std::size_t c : queue)
                    wave.push_back(c);
            }
            // Execute each alone.
            for (const std::size_t c : wave) {
                const auto result =
                    run.test(chunks[c].members, chunks[c].m);
                pos.clear();
                neg.clear();
                for (std::size_t i = 0; i < chunks[c].members.size();
                     ++i) {
                    (result.positive[i] ? pos : neg)
                        .push_back(chunks[c].members[i]);
                }
                if (pos.size() >= chunks[c].m) {
                    for (std::size_t i = 1; i < pos.size(); ++i)
                        run.dsu.merge(pos[0], pos[i]);
                    if (neg.size() > 1)
                        leftovers.push_back(neg);
                } else if (chunks[c].members.size() > 1) {
                    leftovers.push_back(chunks[c].members);
                }
            }
            break;
        }
        if (wave.empty())
            break;
        work_left = true;
        ++wave_idx;

        // One concurrent batch: at most one chunk per class.
        std::vector<std::vector<faas::InstanceId>> batch;
        batch.reserve(wave.size());
        for (const std::size_t c : wave) {
            std::vector<faas::InstanceId> g;
            g.reserve(chunks[c].members.size());
            for (const std::size_t idx : chunks[c].members)
                g.push_back(ids[idx]);
            batch.push_back(std::move(g));
        }
        // All chunks in a wave share one threshold requirement? No —
        // thresholds differ per chunk; the channel applies m per group.
        // Run groups with equal m together; split by m value.
        std::map<std::uint32_t, std::vector<std::size_t>> by_m;
        for (std::size_t w = 0; w < wave.size(); ++w)
            by_m[chunks[wave[w]].m].push_back(w);
        for (const auto &[m, widx] : by_m) {
            std::vector<std::vector<faas::InstanceId>> sub;
            sub.reserve(widx.size());
            for (const std::size_t w : widx)
                sub.push_back(batch[w]);
            EAAO_OBS_INSTANT(platform.obs(), "verify.wave", "verify",
                             platform.now(),
                             {obs::TraceArg::u64("wave", wave_idx),
                              obs::TraceArg::u64("groups", widx.size()),
                              obs::TraceArg::u64("m", m)});
            const auto results = run.chan->runConcurrent(sub, m);
            run.tests += results.size();
            ++run.waves;
            for (std::size_t k = 0; k < widx.size(); ++k) {
                const Chunk &chunk = chunks[wave[widx[k]]];
                pos.clear();
                neg.clear();
                for (std::size_t i = 0; i < chunk.members.size(); ++i) {
                    (results[k].positive[i] ? pos : neg)
                        .push_back(chunk.members[i]);
                }
                if (pos.size() >= chunk.m) {
                    for (std::size_t i = 1; i < pos.size(); ++i)
                        run.dsu.merge(pos[0], pos[i]);
                    if (neg.size() > 1)
                        leftovers.push_back(neg);
                } else if (chunk.members.size() > 1) {
                    leftovers.push_back(chunk.members);
                }
            }
        }
    }

    // Fallback resolution of inconclusive chunks and oversized groups
    // (rare: only fingerprints with false positives land here).
    for (const auto &members : leftovers)
        run.resolve(members);
    for (const auto &members : oversized_groups)
        run.resolve(members);

    // Step 3: find false negatives with one all-representatives test.
    if (!opts.no_false_negatives && ids.size() >= 2) {
        std::vector<std::size_t> all(ids.size());
        std::iota(all.begin(), all.end(), 0);
        run.mergeAcross(all);
    }

    VerifyResult out;
    out.cluster_of.resize(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i)
        out.cluster_of[i] = static_cast<std::uint64_t>(run.dsu.find(i));
    out.group_tests = chan.testsRun() - tests_before;
    out.waves = run.waves;
    out.elapsed = platform.now() - start;
    out.cost_usd =
        combinedUsdPerSecond(platform, ids) * out.elapsed.secondsF();
    EAAO_OBS_ONLY(
        recordVerify(platform, "verify.scalable", start, ids.size(), out);)
    return out;
}

VerifyResult
verifyPairwise(faas::Platform &platform, channel::RngChannel &pair_channel,
               const std::vector<faas::InstanceId> &ids)
{
    const sim::SimTime start = platform.now();
    const std::uint64_t tests_before = pair_channel.testsRun();
    Dsu dsu(ids.size());

    for (std::size_t i = 0; i < ids.size(); ++i) {
        for (std::size_t j = i + 1; j < ids.size(); ++j) {
            const auto result = pair_channel.run({ids[i], ids[j]}, 2);
            if (result.positive[0] && result.positive[1])
                dsu.merge(i, j);
        }
    }

    VerifyResult out;
    out.cluster_of.resize(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i)
        out.cluster_of[i] = static_cast<std::uint64_t>(dsu.find(i));
    out.group_tests = pair_channel.testsRun() - tests_before;
    out.waves = out.group_tests;
    out.elapsed = platform.now() - start;
    out.cost_usd =
        combinedUsdPerSecond(platform, ids) * out.elapsed.secondsF();
    EAAO_OBS_ONLY(
        recordVerify(platform, "verify.pairwise", start, ids.size(), out);)
    return out;
}

VerifyResult
verifyPairwiseMemBus(faas::Platform &platform, channel::MemBusChannel &chan,
                     const std::vector<faas::InstanceId> &ids)
{
    const sim::SimTime start = platform.now();
    const std::uint64_t tests_before = chan.testsRun();
    Dsu dsu(ids.size());

    // The mem-bus channel has a non-trivial false-positive rate; a
    // single false merge poisons two clusters transitively, so each
    // positive screen is confirmed by two retests (all three must
    // agree) before merging.
    for (std::size_t i = 0; i < ids.size(); ++i) {
        for (std::size_t j = i + 1; j < ids.size(); ++j) {
            if (!chan.testPair(ids[i], ids[j]))
                continue;
            if (chan.testPair(ids[i], ids[j]) &&
                chan.testPair(ids[i], ids[j])) {
                dsu.merge(i, j);
            }
        }
    }

    VerifyResult out;
    out.cluster_of.resize(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i)
        out.cluster_of[i] = static_cast<std::uint64_t>(dsu.find(i));
    out.group_tests = chan.testsRun() - tests_before;
    out.waves = out.group_tests;
    out.elapsed = platform.now() - start;
    out.cost_usd =
        combinedUsdPerSecond(platform, ids) * out.elapsed.secondsF();
    EAAO_OBS_ONLY(
        recordVerify(platform, "verify.membus", start, ids.size(), out);)
    return out;
}

std::vector<std::size_t>
singleInstanceElimination(faas::Platform &platform,
                          channel::RngChannel &chan,
                          const std::vector<faas::InstanceId> &ids,
                          std::uint32_t m)
{
    (void)platform;
    const auto result = chan.run(ids, m);
    std::vector<std::size_t> survivors;
    survivors.reserve(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (result.positive[i])
            survivors.push_back(i);
    }
    return survivors;
}

} // namespace eaao::core
