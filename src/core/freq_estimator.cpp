/**
 * @file
 * Implementation of the TSC frequency estimators.
 */

#include "core/freq_estimator.hpp"

#include "hw/cpu_sku.hpp"
#include "stats/summary.hpp"

namespace eaao::core {

double
reportedFrequencyHz(faas::SandboxView &sandbox)
{
    return hw::SkuCatalog::labeledFrequencyHz(sandbox.cpuModelName());
}

FrequencyEstimate
measuredFrequencyHz(faas::SandboxView &sandbox, sim::Duration interval,
                    std::uint32_t reps)
{
    const auto samples = sandbox.measureTscFrequency(interval, reps);
    stats::OnlineStats acc;
    for (const double s : samples)
        acc.add(s);

    FrequencyEstimate est;
    est.mean_hz = acc.mean();
    est.stddev_hz = acc.stddev();
    est.reps = acc.count();
    return est;
}

} // namespace eaao::core
