/**
 * @file
 * Plain-text table rendering shared by the benches and examples.
 */

#ifndef EAAO_CORE_REPORT_HPP
#define EAAO_CORE_REPORT_HPP

#include <cstdio>
#include <string>
#include <vector>

namespace eaao::core {

/**
 * A simple fixed-layout text table: collect rows of strings, then
 * print with per-column widths derived from the content.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append one data row. */
    void row(std::vector<std::string> cells);

    /** Render the table to stdout. */
    void print() const;

    /** Render the table into a string. */
    std::string str() const;

    /**
     * Render as RFC-4180-style CSV (quoting cells that contain
     * commas, quotes or newlines) — for piping bench output into
     * plotting scripts.
     */
    std::string csv() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style helper returning std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Format a ratio as a percentage string, e.g. "97.7%". */
std::string percent(double fraction, int decimals = 1);

} // namespace eaao::core

#endif // EAAO_CORE_REPORT_HPP
