/**
 * @file
 * Implementation of the repeat-attack planner.
 */

#include "core/repeat_attack.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace eaao::core {

namespace {

std::uint64_t
modelHash(const std::string &model)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : model) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

RepeatAttackPlanner::RepeatAttackPlanner(double p_boot_s,
                                         std::int64_t tolerance_buckets)
    : p_boot_s_(p_boot_s), tolerance_buckets_(tolerance_buckets)
{
    EAAO_ASSERT(p_boot_s > 0.0, "non-positive precision");
    EAAO_ASSERT(tolerance_buckets >= 0, "negative tolerance");
}

void
RepeatAttackPlanner::recordVictimHost(const Gen1Reading &reading,
                                      double drift_per_s)
{
    RecordedHost host;
    host.cpu_model = reading.cpu_model;
    host.tboot_s = reading.tboot_s;
    host.record_wall_s = reading.wall_s;
    host.drift_per_s = drift_per_s;
    by_model_[modelHash(host.cpu_model)].push_back(hosts_.size());
    hosts_.push_back(std::move(host));
}

bool
RepeatAttackPlanner::matches(const Gen1Reading &reading) const
{
    const auto it = by_model_.find(modelHash(reading.cpu_model));
    if (it == by_model_.end())
        return false;
    const auto bucket = static_cast<std::int64_t>(
        std::llround(reading.tboot_s / p_boot_s_));
    for (const std::size_t idx : it->second) {
        const RecordedHost &host = hosts_[idx];
        // Extrapolate the recorded T_boot to the reading's instant.
        const double elapsed = reading.wall_s - host.record_wall_s;
        const double predicted =
            host.tboot_s + host.drift_per_s * elapsed;
        const auto predicted_bucket = static_cast<std::int64_t>(
            std::llround(predicted / p_boot_s_));
        if (std::llabs(bucket - predicted_bucket) <= tolerance_buckets_)
            return true;
    }
    return false;
}

std::vector<std::size_t>
RepeatAttackPlanner::focusIndices(
    const std::vector<Gen1Reading> &readings) const
{
    std::vector<std::size_t> focus;
    for (std::size_t i = 0; i < readings.size(); ++i) {
        if (matches(readings[i]))
            focus.push_back(i);
    }
    return focus;
}

} // namespace eaao::core
