/**
 * @file
 * Host fingerprinting (paper Section 4).
 *
 * Gen 1: fingerprint = (CPU model string, host boot time T_boot rounded
 * to precision p_boot). T_boot = T_wall - tsc / f (Eq. 4.1), where f is
 * either the reported TSC frequency (method 1, default) or a measured
 * frequency (method 2).
 *
 * Gen 2: TSC offsetting hides the host boot time, but the guest can
 * read the kernel-refined host TSC frequency (1 kHz granularity), which
 * is host-stable and rarely collides across hosts.
 */

#ifndef EAAO_CORE_FINGERPRINT_HPP
#define EAAO_CORE_FINGERPRINT_HPP

#include <cstdint>
#include <string>

#include "faas/sandbox.hpp"

namespace eaao::core {

/** A raw Gen 1 measurement, before rounding. */
struct Gen1Reading
{
    std::string cpu_model;      //!< from cpuid
    double frequency_hz = 0.0;  //!< the f used in Eq. 4.1
    double tboot_s = 0.0;       //!< derived boot time, s since epoch
    double wall_s = 0.0;        //!< when the measurement was taken
};

/**
 * Take a Gen 1 reading using the *reported* TSC frequency (method 1):
 * the labeled base frequency parsed from the CPU model string.
 *
 * Asserts if the model string carries no labeled frequency (e.g. when
 * invoked inside a Gen 2 sandbox, whose cpuid is virtualized).
 */
Gen1Reading readGen1(faas::SandboxView &sandbox);

/**
 * Take a Gen 1 reading using a caller-supplied frequency (e.g. one
 * obtained from the method-2 measured estimator).
 */
Gen1Reading readGen1WithFrequency(faas::SandboxView &sandbox,
                                  double frequency_hz);

/**
 * Noise-robust Gen 1 reading: repeat the measurement @p reps times and
 * keep the median derived boot time. The median suppresses the heavy
 * tail of sentry-scheduling delays, which matters when tracking T_boot
 * drift over days (Section 4.4.2).
 */
Gen1Reading readGen1Median(faas::SandboxView &sandbox,
                           std::uint32_t reps = 15);

/** A rounded, comparable Gen 1 fingerprint. */
struct Gen1Fingerprint
{
    std::string cpu_model;
    std::int64_t boot_bucket = 0; //!< llround(tboot / p_boot)

    bool operator==(const Gen1Fingerprint &) const = default;
};

/** Round a reading at precision @p p_boot_s (seconds). */
Gen1Fingerprint quantizeGen1(const Gen1Reading &reading, double p_boot_s);

/** Stable 64-bit key for map/set use. */
std::uint64_t fingerprintKey(const Gen1Fingerprint &fp);

/** A Gen 2 fingerprint: the refined host TSC frequency. */
struct Gen2Fingerprint
{
    std::int64_t refined_khz = 0;

    bool operator==(const Gen2Fingerprint &) const = default;
};

/** Read the Gen 2 fingerprint (requires a Gen 2 sandbox). */
Gen2Fingerprint readGen2(faas::SandboxView &sandbox);

/** Stable 64-bit key for map/set use. */
std::uint64_t fingerprintKey(const Gen2Fingerprint &fp);

} // namespace eaao::core

#endif // EAAO_CORE_FINGERPRINT_HPP
