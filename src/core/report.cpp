/**
 * @file
 * Implementation of table rendering.
 */

#include "core/report.hpp"

#include <cstdarg>

namespace eaao::core {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    // Column widths from content.
    std::vector<std::size_t> widths;
    auto widen = [&widths](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t c = 0; c < cells.size(); ++c)
            widths[c] = std::max(widths[c], cells[c].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    auto render = [&widths](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell =
                c < cells.size() ? cells[c] : std::string();
            line += cell;
            if (c + 1 < widths.size())
                line += std::string(widths[c] - cell.size() + 2, ' ');
        }
        line += '\n';
        return line;
    };

    std::string out;
    if (!header_.empty()) {
        out += render(header_);
        std::size_t total = 0;
        for (const std::size_t w : widths)
            total += w + 2;
        out += std::string(total > 2 ? total - 2 : total, '-');
        out += '\n';
    }
    for (const auto &r : rows_)
        out += render(r);
    return out;
}

void
TextTable::print() const
{
    std::fputs(str().c_str(), stdout);
}

std::string
TextTable::csv() const
{
    auto escape = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (const char c : cell) {
            if (c == '"')
                out += '"';
            out += c;
        }
        out += '"';
        return out;
    };
    auto render = [&escape](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0)
                line += ',';
            line += escape(cells[c]);
        }
        line += '\n';
        return line;
    };
    std::string out;
    if (!header_.empty())
        out += render(header_);
    for (const auto &r : rows_)
        out += render(r);
    return out;
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

std::string
percent(double fraction, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals,
                  fraction * 100.0);
    return buf;
}

} // namespace eaao::core
