/**
 * @file
 * Implementation of the host registry.
 */

#include "core/host_registry.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/logging.hpp"

namespace eaao::core {

double
TrackedHost::predictedTBoot(double wall_s) const
{
    return last_tboot_s + drift_per_s * (wall_s - last_wall_s);
}

HostRegistry::HostRegistry(const HostRegistryConfig &cfg) : cfg_(cfg)
{
    EAAO_ASSERT(cfg.p_boot_s > 0.0, "non-positive precision");
    EAAO_ASSERT(cfg.tolerance_buckets >= 0, "negative tolerance");
}

std::optional<ModelId>
HostRegistry::findModel(const std::string &model) const
{
    for (ModelId id = 0; id < model_names_.size(); ++id) {
        if (model_names_[id] == model)
            return id;
    }
    return std::nullopt;
}

ModelId
HostRegistry::internModel(const std::string &model)
{
    if (const auto id = findModel(model))
        return *id;
    const auto id = static_cast<ModelId>(model_names_.size());
    model_names_.push_back(model);
    model_hosts_.emplace_back();
    return id;
}

const std::vector<TrackedHostId> *
HostRegistry::candidates(const std::string &model) const
{
    const auto id = findModel(model);
    return id ? &model_hosts_[*id] : nullptr;
}

std::optional<TrackedHostId>
HostRegistry::match(const Gen1Reading &reading) const
{
    const auto *ids = candidates(reading.cpu_model);
    if (ids == nullptr)
        return std::nullopt;
    const auto bucket = static_cast<std::int64_t>(
        std::llround(reading.tboot_s / cfg_.p_boot_s));

    std::optional<TrackedHostId> best;
    std::int64_t best_distance = 0;
    for (const TrackedHostId id : *ids) {
        const TrackedHost &host = hosts_[id];
        const auto predicted_bucket = static_cast<std::int64_t>(
            std::llround(host.predictedTBoot(reading.wall_s) /
                         cfg_.p_boot_s));
        const std::int64_t distance =
            std::llabs(bucket - predicted_bucket);
        if (distance > cfg_.tolerance_buckets)
            continue;
        if (!best || distance < best_distance) {
            best = id;
            best_distance = distance;
        }
    }
    return best;
}

std::pair<TrackedHostId, bool>
HostRegistry::observe(const Gen1Reading &reading)
{
    if (const auto found = match(reading)) {
        TrackedHost &host = hosts_[*found];
        // Histories must be appended in time order; replays of stale
        // readings only refresh the last-seen bookkeeping.
        if (host.history.size() == 0 ||
            reading.wall_s >= host.last_wall_s) {
            host.history.add(sim::SimTime::fromSecondsF(reading.wall_s),
                             reading.tboot_s);
            host.last_tboot_s = reading.tboot_s;
            host.last_wall_s = reading.wall_s;
            // Fitting a slope over a near-zero time span would divide
            // measurement noise by epsilon; require a real baseline.
            if (host.history.size() >= 2 &&
                host.history.span() >= sim::Duration::minutes(10)) {
                host.drift_per_s = host.history.fitDrift().slope;
            }
        }
        return {*found, false};
    }

    TrackedHost host;
    host.id = static_cast<TrackedHostId>(hosts_.size());
    host.cpu_model = reading.cpu_model;
    host.model = internModel(reading.cpu_model);
    host.history.add(sim::SimTime::fromSecondsF(reading.wall_s),
                     reading.tboot_s);
    host.last_tboot_s = reading.tboot_s;
    host.last_wall_s = reading.wall_s;
    model_hosts_[host.model].push_back(host.id);
    hosts_.push_back(std::move(host));
    return {hosts_.back().id, true};
}

const TrackedHost &
HostRegistry::host(TrackedHostId id) const
{
    EAAO_ASSERT(id < hosts_.size(), "bad tracked-host id ", id);
    return hosts_[id];
}

std::optional<double>
HostRegistry::expirationSeconds(TrackedHostId id) const
{
    const TrackedHost &tracked = host(id);
    if (tracked.history.size() < 2)
        return std::nullopt;
    return tracked.history.expirationSeconds(cfg_.p_boot_s);
}

std::vector<TrackedHostId>
HostRegistry::staleHosts(double wall_s) const
{
    std::vector<TrackedHostId> stale;
    for (const TrackedHost &tracked : hosts_) {
        if (tracked.last_wall_s < wall_s)
            stale.push_back(tracked.id);
    }
    return stale;
}

std::string
HostRegistry::serialize() const
{
    std::ostringstream out;
    out << "eaao-host-registry v1 " << cfg_.p_boot_s << ' '
        << cfg_.tolerance_buckets << '\n';
    for (const TrackedHost &host : hosts_) {
        char buf[256];
        std::snprintf(buf, sizeof(buf), "%.9f %.6f %.12e|",
                      host.last_tboot_s, host.last_wall_s,
                      host.drift_per_s);
        out << buf << host.cpu_model << '\n';
    }
    return out.str();
}

std::optional<HostRegistry>
HostRegistry::deserialize(const std::string &text,
                          const HostRegistryConfig &cfg)
{
    std::istringstream in(text);
    std::string header, version;
    double p_boot = 0.0;
    std::int64_t tolerance = 0;
    if (!(in >> header >> version >> p_boot >> tolerance) ||
        header != "eaao-host-registry" || version != "v1" ||
        p_boot <= 0.0 || tolerance < 0) {
        return std::nullopt;
    }
    HostRegistryConfig effective = cfg;
    effective.p_boot_s = p_boot;
    effective.tolerance_buckets = tolerance;
    HostRegistry registry(effective);

    std::string line;
    std::getline(in, line); // rest of the header line
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const auto bar = line.find('|');
        if (bar == std::string::npos)
            return std::nullopt;
        double tboot = 0.0, wall = 0.0, slope = 0.0;
        if (std::sscanf(line.c_str(), "%lf %lf %lf", &tboot, &wall,
                        &slope) != 3) {
            return std::nullopt;
        }
        TrackedHost host;
        host.id = static_cast<TrackedHostId>(registry.hosts_.size());
        host.cpu_model = line.substr(bar + 1);
        if (host.cpu_model.empty())
            return std::nullopt;
        host.model = registry.internModel(host.cpu_model);
        host.last_tboot_s = tboot;
        host.last_wall_s = wall;
        host.drift_per_s = slope;
        host.history.add(sim::SimTime::fromSecondsF(wall), tboot);
        registry.model_hosts_[host.model].push_back(host.id);
        registry.hosts_.push_back(std::move(host));
    }
    return registry;
}

} // namespace eaao::core
