/**
 * @file
 * Implementation of fingerprint tracking.
 */

#include "core/tracker.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "support/logging.hpp"

namespace eaao::core {

void
FingerprintHistory::setObserver(obs::Observer observer)
{
#if EAAO_OBS_ENABLED
    if (observer.metrics != nullptr) {
        c_observations_ = observer.metrics->counter(
            "tracker.observations");
        h_expiration_days_ = observer.metrics->histogram(
            "tracker.expiration_days", obs::expirationDaysBuckets());
    } else {
        c_observations_ = nullptr;
        h_expiration_days_ = nullptr;
    }
#else
    (void)observer;
#endif
}

void
FingerprintHistory::add(sim::SimTime when, double tboot_s)
{
    if (!wall_s_.empty()) {
        EAAO_ASSERT(when.secondsF() >= wall_s_.back(),
                    "history must be appended in time order");
    }
    wall_s_.push_back(when.secondsF());
    tboot_s_.push_back(tboot_s);
    EAAO_OBS_COUNT(c_observations_, 1);
}

sim::Duration
FingerprintHistory::span() const
{
    if (wall_s_.size() < 2)
        return sim::Duration();
    return sim::Duration::fromSecondsF(wall_s_.back() - wall_s_.front());
}

stats::LinearFit
FingerprintHistory::fitDrift() const
{
    return stats::linearRegression(wall_s_, tboot_s_);
}

std::optional<double>
FingerprintHistory::expirationSeconds(double p_boot_s) const
{
    EAAO_ASSERT(p_boot_s > 0.0, "non-positive rounding precision");
    const stats::LinearFit fit = fitDrift();
    if (std::fabs(fit.slope) < 1e-12)
        return std::nullopt;

    // Fitted T_boot at the last observation; boundaries of the rounding
    // bucket sit at (bucket +- 0.5) * p_boot.
    const double x_last = wall_s_.back();
    const double tau = fit.at(x_last);
    const double bucket = std::round(tau / p_boot_s);
    double distance;
    if (fit.slope > 0.0)
        distance = (bucket + 0.5) * p_boot_s - tau;
    else
        distance = tau - (bucket - 0.5) * p_boot_s;
    // Numerical safety: tau can sit exactly on a boundary.
    distance = std::max(distance, 0.0);
    const double expiration_s = distance / std::fabs(fit.slope);
    EAAO_OBS_OBSERVE(h_expiration_days_, expiration_s / 86400.0);
    return expiration_s;
}

} // namespace eaao::core
