/**
 * @file
 * Implementation of launching strategies and campaigns.
 */

#include "core/strategy.hpp"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "core/freq_estimator.hpp"
#include "hw/cpu_sku.hpp"
#include "core/verify.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "support/logging.hpp"

namespace eaao::core {

namespace {

/** FNV-1a hash of a string (for CPU-model class keys). */
std::uint64_t
hashString(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ULL;
    }
    return h;
}

#if EAAO_OBS_ENABLED
/** Record one finished attack campaign (span + counter).
 *  @p kind must be a string literal ("optimized" / "naive"). */
void
recordCampaign(faas::Platform &platform, const char *kind,
               sim::SimTime start, const CampaignResult &result)
{
    const obs::Observer observer = platform.obs();
    if (observer.metrics != nullptr)
        observer.metrics->counter("strategy.campaigns")->add();
    if (observer.trace != nullptr) {
        observer.trace->complete(
            "strategy.campaign", "strategy", start, platform.now(),
            {obs::TraceArg::str("kind", kind),
             obs::TraceArg::u64("services", result.services.size()),
             obs::TraceArg::u64("apparent_hosts",
                                result.apparent_hosts.size()),
             obs::TraceArg::u64("final_instances",
                                result.final_instances.size()),
             obs::TraceArg::f64("cost_usd", result.cost_usd)});
    }
}
#endif

} // namespace

std::set<std::uint64_t>
LaunchObservation::apparentHosts() const
{
    return {fp_keys.begin(), fp_keys.end()};
}

LaunchObservation
launchAndObserve(faas::Platform &platform, faas::ServiceId service,
                 const LaunchOptions &opts)
{
    EAAO_OBS_ONLY(const sim::SimTime obs_start = platform.now();)
    LaunchObservation obs;
    obs.ids = platform.connect(service, opts.instances);

    const faas::ExecEnv env =
        platform.orchestrator().service(service).env;
    obs.fp_keys.reserve(obs.ids.size());
    obs.class_keys.reserve(obs.ids.size());
    for (const faas::InstanceId id : obs.ids) {
        faas::SandboxView sandbox = platform.sandbox(id);
        if (env == faas::ExecEnv::Gen1) {
            // Method 1 (reported frequency) when the model string has
            // a label; fall back to the measured method when cpuid is
            // masked (Section 6 defense).
            const double reported =
                hw::SkuCatalog::labeledFrequencyHz(
                    sandbox.cpuModelName());
            const Gen1Reading reading =
                reported > 0.0
                    ? readGen1(sandbox)
                    : readGen1WithFrequency(
                          sandbox,
                          measuredFrequencyHz(sandbox).mean_hz);
            const Gen1Fingerprint fp =
                quantizeGen1(reading, opts.p_boot_s);
            obs.readings.push_back(reading);
            obs.fp_keys.push_back(fingerprintKey(fp));
            obs.class_keys.push_back(hashString(reading.cpu_model));
        } else {
            const Gen2Fingerprint fp = readGen2(sandbox);
            obs.fp_keys.push_back(fingerprintKey(fp));
            // Gen 2 fingerprints have no false negatives, so the
            // fingerprint itself is a safe parallel class.
            obs.class_keys.push_back(fingerprintKey(fp));
        }
    }

    platform.advance(opts.hold);
    if (opts.disconnect_after)
        platform.disconnectAll(service);

#if EAAO_OBS_ENABLED
    const obs::Observer observer = platform.obs();
    if (observer.metrics != nullptr)
        observer.metrics->counter("strategy.launches")->add();
    if (observer.trace != nullptr) {
        // apparentHosts() builds a set; compute only while tracing.
        observer.trace->complete(
            "strategy.launch", "strategy", obs_start, platform.now(),
            {obs::TraceArg::u64("service", service),
             obs::TraceArg::u64("instances", obs.ids.size()),
             obs::TraceArg::u64("apparent_hosts",
                                obs.apparentHosts().size())});
    }
#endif
    return obs;
}

std::vector<LaunchObservation>
primeService(faas::Platform &platform, faas::ServiceId service,
             const PrimeOptions &opts)
{
    EAAO_ASSERT(opts.launch.hold <= opts.interval,
                "hold exceeds launch interval");
    std::vector<LaunchObservation> all;
    all.reserve(opts.launches);
    for (std::uint32_t l = 0; l < opts.launches; ++l) {
        const bool last = l + 1 == opts.launches;
        LaunchOptions launch = opts.launch;
        launch.disconnect_after = !(last && opts.keep_last_connected);
        all.push_back(launchAndObserve(platform, service, launch));
        if (!last)
            platform.advance(opts.interval - opts.launch.hold);
    }
    return all;
}

CampaignResult
runOptimizedCampaign(faas::Platform &platform, faas::AccountId attacker,
                     const CampaignConfig &cfg)
{
    EAAO_OBS_ONLY(const sim::SimTime obs_start = platform.now();)
    const double spend_before = platform.accountSpendUsd(attacker);

    CampaignResult result;
    for (std::uint32_t s = 0; s < cfg.services; ++s) {
        result.services.push_back(
            platform.deployService(attacker, cfg.env, cfg.size));
    }

    // Interleaved rounds: every service launches once per round, so
    // each service sees the configured interval between its launches.
    const sim::Duration hold = cfg.prime.launch.hold;
    const sim::Duration round_budget = cfg.prime.interval;
    EAAO_ASSERT(hold * static_cast<std::int64_t>(cfg.services) <=
                    round_budget,
                "round does not fit the launch interval");

    for (std::uint32_t round = 0; round < cfg.prime.launches; ++round) {
        const bool last = round + 1 == cfg.prime.launches;
        for (const faas::ServiceId svc : result.services) {
            LaunchOptions launch = cfg.prime.launch;
            launch.disconnect_after = !(last &&
                                        cfg.prime.keep_last_connected);
            LaunchObservation obs =
                launchAndObserve(platform, svc, launch);
            for (const auto key : obs.fp_keys)
                result.apparent_hosts.insert(key);
            if (last && cfg.prime.keep_last_connected) {
                result.final_instances.insert(result.final_instances.end(),
                                              obs.ids.begin(),
                                              obs.ids.end());
                result.final_fp_keys.insert(result.final_fp_keys.end(),
                                            obs.fp_keys.begin(),
                                            obs.fp_keys.end());
                result.final_class_keys.insert(
                    result.final_class_keys.end(), obs.class_keys.begin(),
                    obs.class_keys.end());
            }
        }
        if (!last) {
            const sim::Duration used =
                hold * static_cast<std::int64_t>(cfg.services);
            platform.advance(round_budget - used);
        }
    }

    for (const faas::InstanceId id : result.final_instances)
        result.occupied_hosts.insert(platform.oracleHostOf(id));
    result.cost_usd = platform.accountSpendUsd(attacker) - spend_before;
    EAAO_OBS_ONLY(recordCampaign(platform, "optimized", obs_start, result);)
    return result;
}

CampaignResult
runNaiveCampaign(faas::Platform &platform, faas::AccountId attacker,
                 std::uint32_t services,
                 std::uint32_t instances_per_service, faas::ExecEnv env,
                 faas::ContainerSize size)
{
    EAAO_OBS_ONLY(const sim::SimTime obs_start = platform.now();)
    const double spend_before = platform.accountSpendUsd(attacker);

    CampaignResult result;
    for (std::uint32_t s = 0; s < services; ++s) {
        result.services.push_back(
            platform.deployService(attacker, env, size));
    }

    for (const faas::ServiceId svc : result.services) {
        LaunchOptions launch;
        launch.instances = instances_per_service;
        launch.disconnect_after = false;
        LaunchObservation obs = launchAndObserve(platform, svc, launch);
        result.final_instances.insert(result.final_instances.end(),
                                      obs.ids.begin(), obs.ids.end());
        result.final_fp_keys.insert(result.final_fp_keys.end(),
                                    obs.fp_keys.begin(),
                                    obs.fp_keys.end());
        result.final_class_keys.insert(result.final_class_keys.end(),
                                       obs.class_keys.begin(),
                                       obs.class_keys.end());
        for (const auto key : obs.fp_keys)
            result.apparent_hosts.insert(key);
    }

    for (const faas::InstanceId id : result.final_instances)
        result.occupied_hosts.insert(platform.oracleHostOf(id));
    result.cost_usd = platform.accountSpendUsd(attacker) - spend_before;
    EAAO_OBS_ONLY(recordCampaign(platform, "naive", obs_start, result);)
    return result;
}

CoverageResult
measureCoverageOracle(const faas::Platform &platform,
                      const std::set<hw::HostId> &attacker_hosts,
                      const std::vector<faas::InstanceId> &victim_ids)
{
    CoverageResult result;
    result.victim_instances =
        static_cast<std::uint32_t>(victim_ids.size());
    for (const faas::InstanceId id : victim_ids) {
        if (attacker_hosts.count(platform.oracleHostOf(id)) > 0)
            ++result.covered_instances;
    }
    return result;
}

CoverageResult
measureCoverageViaChannel(
    faas::Platform &platform, channel::RngChannel &chan,
    const CampaignResult &attack,
    const std::vector<faas::InstanceId> &victim_ids,
    const std::vector<std::uint64_t> &victim_fp_keys,
    const std::vector<std::uint64_t> &victim_class_keys)
{
    EAAO_ASSERT(victim_ids.size() == victim_fp_keys.size(),
                "victim ids/keys mismatch");
    EAAO_ASSERT(victim_ids.size() == victim_class_keys.size(),
                "victim ids/class mismatch");

    // One attacker representative per apparent host keeps the combined
    // verification cheap.
    std::unordered_map<std::uint64_t, std::size_t> rep_of_key;
    for (std::size_t i = 0; i < attack.final_instances.size(); ++i)
        rep_of_key.emplace(attack.final_fp_keys[i], i);

    std::vector<faas::InstanceId> ids;
    std::vector<std::uint64_t> keys;
    std::vector<std::uint64_t> classes;
    std::vector<bool> is_attacker;
    for (const auto &[key, idx] : rep_of_key) {
        ids.push_back(attack.final_instances[idx]);
        keys.push_back(key);
        classes.push_back(attack.final_class_keys[idx]);
        is_attacker.push_back(true);
    }
    const std::size_t victim_offset = ids.size();
    ids.insert(ids.end(), victim_ids.begin(), victim_ids.end());
    keys.insert(keys.end(), victim_fp_keys.begin(),
                victim_fp_keys.end());
    classes.insert(classes.end(), victim_class_keys.begin(),
                   victim_class_keys.end());
    is_attacker.insert(is_attacker.end(), victim_ids.size(), false);

    const VerifyResult verified =
        verifyScalable(platform, chan, ids, keys, classes);

    std::unordered_set<std::uint64_t> attacker_clusters;
    for (std::size_t i = 0; i < victim_offset; ++i)
        attacker_clusters.insert(verified.cluster_of[i]);

    CoverageResult result;
    result.victim_instances =
        static_cast<std::uint32_t>(victim_ids.size());
    for (std::size_t i = victim_offset; i < ids.size(); ++i) {
        if (attacker_clusters.count(verified.cluster_of[i]) > 0)
            ++result.covered_instances;
    }
    return result;
}

bool
ApparentHostCounter::add(const Gen1Reading &reading)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : reading.cpu_model) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ULL;
    }
    const auto bucket = static_cast<std::int64_t>(
        std::llround(reading.tboot_s / p_boot_s_));
    auto &buckets = buckets_by_model_[h];
    bool known = false;
    for (std::int64_t d = -2; d <= 2 && !known; ++d)
        known = buckets.count(bucket + d) > 0;
    buckets.insert(bucket);
    if (!known)
        ++count_;
    return !known;
}

ExplorationResult
exploreClusterSize(faas::Platform &platform,
                   const std::vector<faas::AccountId> &accounts,
                   std::uint32_t services_per_account,
                   std::uint32_t launches_per_service,
                   const PrimeOptions &prime)
{
    ExplorationResult result;
    ApparentHostCounter counter(prime.launch.p_boot_s);

    for (const faas::AccountId acct : accounts) {
        for (std::uint32_t s = 0; s < services_per_account; ++s) {
            const faas::ServiceId svc = platform.deployService(
                acct, faas::ExecEnv::Gen1, faas::sizes::kSmall);
            PrimeOptions po = prime;
            po.launches = launches_per_service;
            po.keep_last_connected = false;
            const auto launches = primeService(platform, svc, po);
            for (const auto &obs : launches) {
                for (const auto &reading : obs.readings)
                    counter.add(reading);
                result.cumulative_unique.push_back(counter.count());
            }
            // Let the service cool down so the next service starts in
            // a comparable state.
            platform.advance(sim::Duration::minutes(16));
        }
    }
    result.total = counter.count();
    return result;
}

} // namespace eaao::core
