/**
 * @file
 * Instance-launching strategies and attack campaigns (paper Section 5).
 *
 * Strategy 1 (naive): launch many instances from cold services; they
 * land on the attacker's base hosts and rarely meet the victim.
 *
 * Strategy 2 (optimized): prime each attacker service into a
 * high-demand state by repeatedly launching ~800 instances at ~10-minute
 * intervals; the load balancer then spreads instances over helper hosts
 * across the data center. Multiple services multiply the helper
 * footprint. The final launch is kept connected to hold the hosts.
 */

#ifndef EAAO_CORE_STRATEGY_HPP
#define EAAO_CORE_STRATEGY_HPP

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "channel/covert.hpp"
#include "core/fingerprint.hpp"
#include "faas/platform.hpp"
#include "sim/time.hpp"

namespace eaao::core {

/** One measured launch: instances plus their fingerprints. */
struct LaunchObservation
{
    std::vector<faas::InstanceId> ids;
    std::vector<Gen1Reading> readings;     //!< raw Gen 1 readings (empty
                                           //!< for Gen 2 services)
    std::vector<std::uint64_t> fp_keys;    //!< quantized fingerprint keys
    std::vector<std::uint64_t> class_keys; //!< parallel class per inst.
                                           //!< (CPU model / Gen 2 key)

    /** Distinct fingerprint keys = apparent hosts of this launch. */
    std::set<std::uint64_t> apparentHosts() const;
};

/** Options for one measured launch. */
struct LaunchOptions
{
    std::uint32_t instances = 800;
    sim::Duration hold = sim::Duration::seconds(30);
    double p_boot_s = 1.0;
    bool disconnect_after = true;
};

/**
 * Launch @p opts.instances concurrent instances of @p service, collect
 * each instance's host fingerprint, hold the connections for
 * @p opts.hold, and optionally disconnect.
 */
LaunchObservation launchAndObserve(faas::Platform &platform,
                                   faas::ServiceId service,
                                   const LaunchOptions &opts);

/** Options for priming one service (Strategy 2). */
struct PrimeOptions
{
    std::uint32_t launches = 6;
    sim::Duration interval = sim::Duration::minutes(10);
    LaunchOptions launch;
    bool keep_last_connected = true;
};

/**
 * Prime a single service: repeated launches at the configured interval.
 * @return One observation per launch.
 */
std::vector<LaunchObservation> primeService(faas::Platform &platform,
                                            faas::ServiceId service,
                                            const PrimeOptions &opts);

/** Result of a full attacker campaign. */
struct CampaignResult
{
    std::vector<faas::ServiceId> services;
    /** Instances still connected at the end (the attack footholds). */
    std::vector<faas::InstanceId> final_instances;
    std::vector<std::uint64_t> final_fp_keys;
    std::vector<std::uint64_t> final_class_keys;
    /** Oracle: hosts holding at least one attacker instance. */
    std::set<hw::HostId> occupied_hosts;
    /** Attacker-visible: distinct fingerprints across the campaign. */
    std::set<std::uint64_t> apparent_hosts;
    double cost_usd = 0.0;
};

/** Configuration of the optimized campaign. */
struct CampaignConfig
{
    std::uint32_t services = 6;
    PrimeOptions prime;
    faas::ExecEnv env = faas::ExecEnv::Gen1;
    faas::ContainerSize size = faas::sizes::kSmall;
};

/**
 * Strategy 2: deploy @p cfg.services services under @p attacker and
 * prime them in interleaved rounds; final launches stay connected.
 */
CampaignResult runOptimizedCampaign(faas::Platform &platform,
                                    faas::AccountId attacker,
                                    const CampaignConfig &cfg);

/**
 * Strategy 1: deploy services and launch each once from a cold state,
 * keeping the instances connected.
 */
CampaignResult runNaiveCampaign(faas::Platform &platform,
                                faas::AccountId attacker,
                                std::uint32_t services,
                                std::uint32_t instances_per_service,
                                faas::ExecEnv env = faas::ExecEnv::Gen1,
                                faas::ContainerSize size =
                                    faas::sizes::kSmall);

/** Victim-instance coverage measurement. */
struct CoverageResult
{
    std::uint32_t victim_instances = 0;
    std::uint32_t covered_instances = 0;

    double
    coverage() const
    {
        return victim_instances == 0
                   ? 0.0
                   : static_cast<double>(covered_instances) /
                         static_cast<double>(victim_instances);
    }
};

/**
 * Oracle coverage: fraction of victim instances whose physical host
 * also hosts an attacker instance.
 */
CoverageResult measureCoverageOracle(
    const faas::Platform &platform,
    const std::set<hw::HostId> &attacker_hosts,
    const std::vector<faas::InstanceId> &victim_ids);

/**
 * Covert-channel coverage, as the paper measures it: one attacker
 * representative per apparent host plus all victim instances are
 * verified together with the scalable method; a victim instance counts
 * as covered when its verified cluster contains an attacker
 * representative.
 */
CoverageResult measureCoverageViaChannel(
    faas::Platform &platform, channel::RngChannel &chan,
    const CampaignResult &attack,
    const std::vector<faas::InstanceId> &victim_ids,
    const std::vector<std::uint64_t> &victim_fp_keys,
    const std::vector<std::uint64_t> &victim_class_keys);

/**
 * Drift-tolerant apparent-host counter.
 *
 * Over a multi-hour exploration, hosts with large reported-frequency
 * error drift across T_boot rounding boundaries and would be counted
 * as several apparent hosts. Readings whose rounded T_boot lands next
 * to an already-seen bucket of the same CPU model are treated as the
 * same host (the attacker tracks fingerprints across expirations,
 * Section 5.2).
 */
class ApparentHostCounter
{
  public:
    explicit ApparentHostCounter(double p_boot_s = 1.0)
        : p_boot_s_(p_boot_s)
    {
    }

    /** Record a reading; returns true if it revealed a new host. */
    bool add(const Gen1Reading &reading);

    /** Distinct hosts seen so far. */
    std::size_t count() const { return count_; }

  private:
    double p_boot_s_;
    std::size_t count_ = 0;
    std::map<std::uint64_t, std::set<std::int64_t>> buckets_by_model_;
};

/** Cumulative host-discovery curve (Fig. 12). */
struct ExplorationResult
{
    /** Cumulative distinct apparent hosts after each launch. */
    std::vector<std::size_t> cumulative_unique;
    std::size_t total = 0;
};

/**
 * Estimate the data-center size: prime @p services_per_account fresh
 * services per account with @p launches_per_service optimized launches
 * each, accumulating distinct fingerprints across all launches.
 */
ExplorationResult exploreClusterSize(
    faas::Platform &platform,
    const std::vector<faas::AccountId> &accounts,
    std::uint32_t services_per_account,
    std::uint32_t launches_per_service, const PrimeOptions &prime);

} // namespace eaao::core

#endif // EAAO_CORE_STRATEGY_HPP
