/**
 * @file
 * Fixed-size worker pool for the experiment harness.
 *
 * A deliberately small pool: FIFO work queue, graceful shutdown that
 * drains every queued task, and first-exception propagation so a
 * failing trial surfaces in the submitting thread instead of
 * std::terminate-ing a worker.
 */

#ifndef EAAO_EXP_THREAD_POOL_HPP
#define EAAO_EXP_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eaao::exp {

/**
 * Fixed-size thread pool with a FIFO work queue.
 *
 * Tasks are plain callables; a task that throws records the first
 * exception, which wait() rethrows. Destruction drains the queue
 * (every submitted task runs) before joining the workers.
 */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** Spin up @p threads workers (0 is clamped to 1). */
    explicit ThreadPool(unsigned threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Drain the queue, join all workers. Pending exceptions are dropped. */
    ~ThreadPool();

    /** Enqueue a task. Throws std::runtime_error after shutdown began. */
    void submit(Task task);

    /**
     * Block until every submitted task has finished, then rethrow the
     * first exception any task raised (clearing it, so the pool stays
     * usable afterwards).
     */
    void wait();

    /** Number of worker threads. */
    unsigned threads() const { return static_cast<unsigned>(workers_.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<Task> queue_;
    mutable std::mutex mu_;
    std::condition_variable cv_work_; // queue non-empty or stopping
    std::condition_variable cv_idle_; // in_flight_ dropped to zero
    std::size_t in_flight_ = 0;       // queued + currently executing
    bool stopping_ = false;
    std::exception_ptr first_error_;
};

} // namespace eaao::exp

#endif // EAAO_EXP_THREAD_POOL_HPP
