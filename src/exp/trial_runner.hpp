/**
 * @file
 * Deterministic parallel trial harness.
 *
 * Paper-style Monte-Carlo campaigns repeat independent trials (a fresh
 * Platform, a fresh seed) and aggregate the results. Trials are
 * embarrassingly parallel, and Rng::fork(stream_id) yields
 * statistically independent per-trial streams, so the harness can fan
 * trials out across a ThreadPool while staying bit-for-bit
 * reproducible: every trial writes into its own slot of a
 * slot-per-trial result vector, and aggregation happens serially in
 * trial-index order. The printed numbers are therefore identical
 * whether the campaign runs on 1 thread or 16.
 */

#ifndef EAAO_EXP_TRIAL_RUNNER_HPP
#define EAAO_EXP_TRIAL_RUNNER_HPP

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "exp/thread_pool.hpp"
#include "obs/export.hpp"
#include "obs/observer.hpp"
#include "sim/rng.hpp"

namespace eaao::exp {

/**
 * Per-trial context handed to the trial body.
 *
 * The Rng stream is forked from the campaign seed by trial index, so
 * trial i draws the same numbers no matter which worker runs it or in
 * what order trials complete.
 */
struct TrialContext
{
    /** Trial index in [0, trials). */
    std::size_t index = 0;

    /** Total number of trials in the campaign. */
    std::size_t trials = 0;

    /** Campaign-level seed (shared across all trials). */
    std::uint64_t campaign_seed = 0;

    /** Independent per-trial random stream. */
    sim::Rng rng;

    /**
     * This trial's observability handle (null unless the campaign was
     * given an obs::TrialSet). Feed it to PlatformConfig::obs so the
     * trial's platform records into its private slot.
     */
    obs::Observer obs;

    /**
     * Deterministic 64-bit per-trial seed, convenient for seeding a
     * per-trial Platform / EventQueue.
     */
    std::uint64_t
    trialSeed() const
    {
        return sim::mix64(campaign_seed ^ sim::mix64(index + 1));
    }
};

/**
 * Run @p n independent trials of @p fn, fanned out over @p threads
 * workers (<= 1 runs inline on the calling thread).
 *
 * @p fn is invoked as `fn(TrialContext &)` and must be safe to call
 * concurrently from multiple threads for distinct trials; each
 * invocation should build its own Platform/EventQueue state. The
 * result of trial i lands in slot i of the returned vector, so
 * downstream aggregation order — and therefore every printed number —
 * is independent of the thread count.
 *
 * If any trial throws, the first exception (in completion order) is
 * rethrown after all in-flight trials finish.
 *
 * When @p obs_set is non-null it is resized to one recording slot per
 * trial and each trial's context carries the observer for its own
 * slot; workers therefore never share a sink, and the caller merges
 * the slots in trial order afterwards (obs::writeOutputs), keeping
 * observability output byte-identical for any thread count.
 */
template <typename Fn>
auto
runTrials(std::size_t n, std::uint64_t seed, Fn &&fn, unsigned threads = 1,
          obs::TrialSet *obs_set = nullptr)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn &, TrialContext &>>>
{
    using Result = std::decay_t<std::invoke_result_t<Fn &, TrialContext &>>;
    static_assert(std::is_default_constructible_v<Result>,
                  "trial results must be default-constructible (they are "
                  "pre-allocated slot-per-trial)");

    std::vector<Result> results(n);
    if (obs_set != nullptr)
        obs_set->prepare(n);
    if (n == 0)
        return results;

    const sim::Rng root(seed);
    auto run_one = [&](std::size_t i) {
        TrialContext ctx;
        ctx.index = i;
        ctx.trials = n;
        ctx.campaign_seed = seed;
        ctx.rng = root.fork(i);
        if (obs_set != nullptr)
            ctx.obs = obs_set->observer(i);
        results[i] = fn(ctx);
    };

    if (threads <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            run_one(i);
        return results;
    }

    const unsigned workers = static_cast<unsigned>(
        n < threads ? n : static_cast<std::size_t>(threads));
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&run_one, i] { run_one(i); });
    pool.wait();
    return results;
}

} // namespace eaao::exp

#endif // EAAO_EXP_TRIAL_RUNNER_HPP
