/**
 * @file
 * Implementation of the fixed-size worker pool.
 */

#include "exp/thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace eaao::exp {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stopping_ = true;
    }
    // Workers only exit once the queue is empty, so every task that was
    // submitted before shutdown still runs (graceful drain).
    cv_work_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(Task task)
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (stopping_)
            throw std::runtime_error("ThreadPool::submit after shutdown");
        queue_.push_back(std::move(task));
        ++in_flight_;
    }
    cv_work_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
    if (first_error_) {
        std::exception_ptr err = std::exchange(first_error_, nullptr);
        lock.unlock();
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_work_.wait(lock,
                          [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            task();
        } catch (...) {
            std::unique_lock<std::mutex> lock(mu_);
            if (!first_error_)
                first_error_ = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mu_);
            if (--in_flight_ == 0)
                cv_idle_.notify_all();
        }
    }
}

} // namespace eaao::exp
