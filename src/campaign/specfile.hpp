/**
 * @file
 * Low-level reader for the sectioned `eaao-scenario v2` campaign
 * format (docs/scenario-dsl.md).
 *
 * A spec file is a version header followed by `[section]` blocks.
 * Every non-blank, non-comment line inside a section is either a
 * `key = value` entry (the text left of the first `=` is a single
 * identifier) or a positional *directive* whose first token names it
 * (`account -1 1000`, `trigger surge when ... emit "..."`). Tokens
 * split on whitespace; double-quoted tokens may contain spaces. This
 * layer is purely syntactic — it keeps raw text and line numbers so
 * every typed accessor above it (spec.hpp, testkit's replay parser)
 * can report one-line, line-precise errors.
 */

#ifndef EAAO_CAMPAIGN_SPECFILE_HPP
#define EAAO_CAMPAIGN_SPECFILE_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace eaao::campaign {

/** Version this build reads and writes. */
inline constexpr unsigned kSpecVersion = 2;

/**
 * A malformed spec, expression, or parameter. The message is already
 * one line and line-precise ("<file>:<line>: ..."); drivers print it
 * to stderr verbatim and exit 2.
 */
class SpecError : public std::runtime_error
{
  public:
    explicit SpecError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

/** One meaningful line of a section. */
struct SpecLine
{
    std::size_t line_no = 0;
    std::string raw;                  //!< trimmed source text
    std::string key;                  //!< set for `key = value` lines
    std::string value;                //!< raw value text of a key line
    std::vector<std::string> tokens;  //!< value tokens (key lines) or
                                      //!< all tokens (directive lines)

    bool isKeyValue() const { return !key.empty(); }
};

/** One `[name]` block. */
struct SpecSection
{
    std::string name;
    std::size_t line_no = 0;  //!< line of the `[name]` header
    std::vector<SpecLine> lines;

    /** Last `key = value` line for @p key, or nullptr. */
    const SpecLine *find(const std::string &key) const;

    /** Every line whose key or leading directive token equals @p k. */
    std::vector<const SpecLine *> all(const std::string &k) const;
};

/** A fully tokenized spec file. */
struct SpecFile
{
    std::string path = "<memory>";  //!< origin, used in error messages
    unsigned version = kSpecVersion;
    std::vector<SpecSection> sections;

    const SpecSection *section(const std::string &name) const;

    /**
     * Parse @p text (a v2 file). On failure returns false with a
     * one-line, line-precise message in @p error. A v1 header is
     * reported as such (callers that also speak v1 sniff the header
     * first); a version above kSpecVersion yields the
     * "newer than this binary supports" message.
     */
    static bool parse(const std::string &text, const std::string &path,
                      SpecFile &out, std::string &error);

    /** Canonical re-rendering (used by `run_campaign --describe`). */
    std::string render() const;
};

/** "eaao-scenario v<N>" if @p line is a well-formed header. */
bool parseHeaderVersion(const std::string &line, unsigned &version);

/** True when @p text's first meaningful line is a v1 header. */
bool looksLikeV1(const std::string &text);

/** Section names the v2 format defines; anything else is an error. */
bool isKnownSection(const std::string &name);

} // namespace eaao::campaign

#endif // EAAO_CAMPAIGN_SPECFILE_HPP
