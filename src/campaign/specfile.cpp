/**
 * @file
 * Tokenizer for the sectioned `eaao-scenario v2` format.
 */

#include "campaign/specfile.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace eaao::campaign {

namespace {

const char *const kKnownSections[] = {
    "campaign", "platform", "tenants",  "script",  "workload",
    "attack",   "verify",   "triggers", "outputs", "timetravel",
};

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
isIdent(const std::string &s)
{
    if (s.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_')
        return false;
    for (const char c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '.') {
            return false;
        }
    }
    return true;
}

/**
 * Whitespace tokenizer with double-quoted tokens ("a b" is one token,
 * quotes stripped, no escape sequences). Returns false on an unclosed
 * quote.
 */
bool
tokenize(const std::string &text, std::vector<std::string> &out)
{
    out.clear();
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
        if (i >= text.size())
            break;
        if (text[i] == '"') {
            const std::size_t close = text.find('"', i + 1);
            if (close == std::string::npos)
                return false;
            out.push_back(text.substr(i + 1, close - i - 1));
            i = close + 1;
        } else {
            std::size_t j = i;
            while (j < text.size() &&
                   !std::isspace(static_cast<unsigned char>(text[j])))
                ++j;
            out.push_back(text.substr(i, j - i));
            i = j;
        }
    }
    return true;
}

} // namespace

bool
parseHeaderVersion(const std::string &line, unsigned &version)
{
    return std::sscanf(trim(line).c_str(), "eaao-scenario v%u",
                       &version) == 1;
}

bool
looksLikeV1(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        line = trim(line);
        if (line.empty() || line[0] == '#')
            continue;
        return line == "eaao-scenario v1";
    }
    return false;
}

bool
isKnownSection(const std::string &name)
{
    for (const char *known : kKnownSections) {
        if (name == known)
            return true;
    }
    return false;
}

const SpecLine *
SpecSection::find(const std::string &key) const
{
    const SpecLine *hit = nullptr;
    for (const SpecLine &line : lines) {
        if (line.key == key)
            hit = &line;
    }
    return hit;
}

std::vector<const SpecLine *>
SpecSection::all(const std::string &k) const
{
    std::vector<const SpecLine *> hits;
    for (const SpecLine &line : lines) {
        if (line.isKeyValue() ? line.key == k
                              : (!line.tokens.empty() &&
                                 line.tokens[0] == k)) {
            hits.push_back(&line);
        }
    }
    return hits;
}

const SpecSection *
SpecFile::section(const std::string &name) const
{
    for (const SpecSection &s : sections) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

bool
SpecFile::parse(const std::string &text, const std::string &path,
                SpecFile &out, std::string &error)
{
    out = SpecFile{};
    out.path = path;

    std::istringstream in(text);
    std::string raw;
    std::size_t line_no = 0;
    bool saw_header = false;
    SpecSection *current = nullptr;

    const auto fail = [&](const std::string &why) {
        error = path + ":" + std::to_string(line_no) + ": " + why;
        return false;
    };

    while (std::getline(in, raw)) {
        ++line_no;
        const std::string line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue;

        if (!saw_header) {
            unsigned version = 0;
            if (!parseHeaderVersion(line, version)) {
                return fail("expected header 'eaao-scenario v" +
                            std::to_string(kSpecVersion) + "'");
            }
            if (version == 1) {
                return fail(
                    "v1 is the flat replay format; this parser reads "
                    "the sectioned v2 format (see docs/scenario-dsl.md)");
            }
            if (version > kSpecVersion) {
                return fail("scenario version v" +
                            std::to_string(version) +
                            " is newer than this binary supports (max v" +
                            std::to_string(kSpecVersion) +
                            "); rebuild or regenerate the file");
            }
            out.version = version;
            saw_header = true;
            continue;
        }

        if (line.front() == '[') {
            if (line.back() != ']' || line.size() < 3)
                return fail("malformed section header '" + line + "'");
            const std::string name = line.substr(1, line.size() - 2);
            if (!isKnownSection(name)) {
                return fail("unknown section [" + name +
                            "] (see docs/scenario-dsl.md for the "
                            "section inventory)");
            }
            if (out.section(name) != nullptr)
                return fail("duplicate section [" + name + "]");
            out.sections.push_back(SpecSection{name, line_no, {}});
            current = &out.sections.back();
            continue;
        }
        if (current == nullptr)
            return fail("content before any [section] header");

        SpecLine sl;
        sl.line_no = line_no;
        sl.raw = line;

        // `key = value` when the text left of the first '=' is one
        // identifier; everything else (including expressions that
        // merely contain '=') is a positional directive.
        const std::size_t eq = line.find('=');
        if (eq != std::string::npos && isIdent(trim(line.substr(0, eq)))) {
            sl.key = trim(line.substr(0, eq));
            sl.value = trim(line.substr(eq + 1));
            if (!tokenize(sl.value, sl.tokens))
                return fail("unclosed '\"' in value of '" + sl.key + "'");
        } else {
            if (!tokenize(line, sl.tokens))
                return fail("unclosed '\"' in directive line");
            if (sl.tokens.empty())
                return fail("empty directive line");
        }
        current->lines.push_back(std::move(sl));
    }

    if (!saw_header) {
        line_no = 1;
        return fail("empty file (no 'eaao-scenario v" +
                    std::to_string(kSpecVersion) + "' header)");
    }
    error.clear();
    return true;
}

std::string
SpecFile::render() const
{
    std::ostringstream out;
    out << "eaao-scenario v" << version << "\n";
    for (const SpecSection &section : sections) {
        out << "\n[" << section.name << "]\n";
        for (const SpecLine &line : section.lines) {
            if (line.isKeyValue())
                out << line.key << " = " << line.value << "\n";
            else
                out << line.raw << "\n";
        }
    }
    return out.str();
}

} // namespace eaao::campaign
