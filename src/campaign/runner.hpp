/**
 * @file
 * Campaign program registry and the generic execution entry point
 * used by `bench/run_campaign`.
 *
 * A campaign file names its kernel with `[campaign] program = <name>`;
 * the kernel (one small function under src/campaign/programs/) reads
 * every knob — seeds, sweep lists, platform shape, notes — from the
 * spec and owns only the aggregation and table-printing logic that is
 * unique to its figure. The driver prints the campaign title before
 * the program runs and the declared `[outputs]` notes (plus the
 * trigger firing log, when requested) after it returns, so ported
 * campaigns stay byte-identical to the legacy per-figure binaries.
 */

#ifndef EAAO_CAMPAIGN_RUNNER_HPP
#define EAAO_CAMPAIGN_RUNNER_HPP

#include "campaign/spec.hpp"
#include "campaign/trigger.hpp"

#include <functional>
#include <string>
#include <vector>

namespace eaao::campaign {

/** Everything a campaign program sees. */
struct RunContext
{
    const CampaignSpec &spec;
    unsigned threads = 1;

    /**
     * The driver's argv, so programs reuse the stock support::
     * helpers (threadsFromArgs, maybeWriteBenchJson, ...) unchanged.
     */
    int argc = 0;
    char **argv = nullptr;

    /** Armed with the spec's `[triggers]`; empty() when none. */
    TriggerEngine triggers;
};

using ProgramFn = std::function<void(RunContext &)>;

/**
 * Register @p fn under @p name (called from static initializers in
 * the src/campaign/programs/ kernels via EAAO_CAMPAIGN_PROGRAM).
 * Duplicate names are a programming error and abort.
 */
void registerProgram(const std::string &name, ProgramFn fn);

/** The registered kernel, or an empty function when unknown. */
ProgramFn findProgram(const std::string &name);

/** All registered program names, sorted. */
std::vector<std::string> programNames();

/**
 * Execute @p spec: resolve the program, print the title, run, then
 * print notes and (if requested) the trigger log. Returns the process
 * exit code; an unknown program name throws SpecError.
 */
int runCampaign(const CampaignSpec &spec, int argc, char **argv);

/** Registers a campaign program at static-init time. */
#define EAAO_CAMPAIGN_PROGRAM(name)                                       \
    static void eaaoProgram_##name(::eaao::campaign::RunContext &ctx);    \
    namespace {                                                           \
    const bool eaao_registered_##name = [] {                              \
        ::eaao::campaign::registerProgram(#name, &eaaoProgram_##name);    \
        return true;                                                      \
    }();                                                                  \
    }                                                                     \
    static void eaaoProgram_##name(::eaao::campaign::RunContext &ctx)

} // namespace eaao::campaign

#endif // EAAO_CAMPAIGN_RUNNER_HPP
