/**
 * @file
 * Typed view over a parsed `eaao-scenario v2` spec file.
 *
 * CampaignSpec wraps a SpecFile with checked accessors: every getter
 * that fails (missing required key, non-numeric value, bad trigger
 * expression) throws a SpecError whose message is one line and names
 * the offending file:line. Campaign programs (runner.hpp) read every
 * knob — seeds, sweep lists, platform shape, notes — through this
 * class so a typo in a `.scenario` file fails fast at load time.
 */

#ifndef EAAO_CAMPAIGN_SPEC_HPP
#define EAAO_CAMPAIGN_SPEC_HPP

#include "campaign/specfile.hpp"
#include "campaign/trigger.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace eaao::campaign {

class CampaignSpec
{
  public:
    /** Read and parse @p path; throws SpecError (file:line message). */
    static CampaignSpec load(const std::string &path);

    /** Parse in-memory @p text; @p path labels error messages. */
    static CampaignSpec parse(const std::string &text,
                              const std::string &path = "<memory>");

    const SpecFile &file() const { return file_; }

    /** Required `[campaign] name`. */
    const std::string &name() const { return name_; }

    /** Required `[campaign] program` — selects the registered kernel. */
    const std::string &program() const { return program_; }

    /** `[campaign] title` (empty when absent). */
    const std::string &title() const { return title_; }

    // -- Checked scalar access, addressed by (section, key). ---------

    bool has(const std::string &section, const std::string &key) const;

    std::string str(const std::string &section,
                    const std::string &key) const;
    std::string str(const std::string &section, const std::string &key,
                    const std::string &fallback) const;

    double num(const std::string &section, const std::string &key) const;
    double num(const std::string &section, const std::string &key,
               double fallback) const;

    std::uint32_t u32(const std::string &section,
                      const std::string &key) const;
    std::uint32_t u32(const std::string &section, const std::string &key,
                      std::uint32_t fallback) const;

    std::uint64_t u64(const std::string &section,
                      const std::string &key) const;

    bool flag(const std::string &section, const std::string &key,
              bool fallback) const;

    // -- List access. ------------------------------------------------

    /** Value tokens of a required `key = a b c ...` line, as numbers. */
    std::vector<double> numList(const std::string &section,
                                const std::string &key) const;

    /** Value tokens of a required key line, verbatim. */
    std::vector<std::string> strList(const std::string &section,
                                     const std::string &key) const;

    /**
     * Every directive line in @p section whose first token is
     * @p head, in file order (empty when the section is absent).
     */
    std::vector<const SpecLine *>
    directives(const std::string &section, const std::string &head) const;

    // -- Structured sections. ---------------------------------------

    /** Parsed `[triggers]` lines (conditions compiled, arity-checked). */
    std::vector<Trigger> triggers() const;

    /** `[outputs] note =` lines, in file order. */
    std::vector<std::string> notes() const;

    /** `[outputs] trigger_log = 1` requests the firing log. */
    bool triggerLog() const { return flag("outputs", "trigger_log", false); }

    /** Throw a SpecError at @p line_no of this file. */
    [[noreturn]] void fail(std::size_t line_no,
                           const std::string &why) const;

  private:
    const SpecLine *findLine(const std::string &section,
                             const std::string &key) const;
    const SpecLine &requireLine(const std::string &section,
                                const std::string &key) const;
    double numFromToken(const SpecLine &line,
                        const std::string &token) const;

    SpecFile file_;
    std::string name_;
    std::string program_;
    std::string title_;
};

} // namespace eaao::campaign

#endif // EAAO_CAMPAIGN_SPEC_HPP
