/**
 * @file
 * Counter timelines and rising-edge trigger evaluation.
 */

#include "campaign/trigger.hpp"

#include <algorithm>

namespace eaao::campaign {

namespace {

/** Index of the last sample with t_s <= t, or -1. */
template <typename Samples>
std::ptrdiff_t
lastAtOrBefore(const Samples &samples, double t)
{
    const auto it = std::upper_bound(
        samples.begin(), samples.end(), t,
        [](double lhs, const auto &s) { return lhs < s.t_s; });
    return static_cast<std::ptrdiff_t>(it - samples.begin()) - 1;
}

} // namespace

void
CounterTimeline::record(const std::string &name, double t_s, double value)
{
    series_[name].push_back(Sample{t_s, value});
}

double
CounterTimeline::valueAt(const std::string &name, double t_s) const
{
    const auto it = series_.find(name);
    if (it == series_.end())
        return 0.0;
    const std::ptrdiff_t i = lastAtOrBefore(it->second, t_s);
    return i < 0 ? 0.0 : it->second[static_cast<std::size_t>(i)].value;
}

double
CounterTimeline::rate(const std::string &name, double window_s,
                      double t_s) const
{
    if (window_s <= 0.0)
        return 0.0;
    const double now = valueAt(name, t_s);
    const double then = valueAt(name, t_s - window_s);
    return (now - then) / window_s;
}

double
CounterTimeline::countSince(const std::string &name, double since_s,
                            double t_s) const
{
    const auto it = series_.find(name);
    if (it == series_.end())
        return 0.0;
    const std::ptrdiff_t hi = lastAtOrBefore(it->second, t_s);
    const std::ptrdiff_t lo = lastAtOrBefore(it->second, since_s);
    return static_cast<double>(hi - lo);
}

void
TriggerEngine::add(Trigger trigger)
{
    triggers_.push_back(Armed{std::move(trigger), false});
}

void
TriggerEngine::setCustomFunctions(
    std::function<CustomFunction(const std::string &)> resolver)
{
    custom_ = std::move(resolver);
}

void
TriggerEngine::sample(const std::string &name, double t_s, double value)
{
    timeline_.record(name, t_s, value);
    evaluateAt(t_s);
}

void
TriggerEngine::record(const std::string &name, double t_s, double value)
{
    timeline_.record(name, t_s, value);
}

void
TriggerEngine::evaluateAt(double t_s)
{
    for (Armed &armed : triggers_) {
        const bool now =
            evalExpr(*armed.trigger.condition, timeline_, t_s,
                     custom_ ? &custom_ : nullptr) != 0.0;
        if (now && !armed.was_true) {
            firings_.push_back(
                TriggerFiring{t_s, armed.trigger.name,
                              armed.trigger.message});
        }
        armed.was_true = now;
    }
}

} // namespace eaao::campaign
