/**
 * @file
 * Checked accessors over a parsed campaign spec.
 */

#include "campaign/spec.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace eaao::campaign {

namespace {

bool
parseNumber(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end == text.c_str() + text.size();
}

} // namespace

CampaignSpec
CampaignSpec::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        throw SpecError(path + ":1: cannot open file");
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str(), path);
}

CampaignSpec
CampaignSpec::parse(const std::string &text, const std::string &path)
{
    CampaignSpec spec;
    std::string error;
    if (!SpecFile::parse(text, path, spec.file_, error))
        throw SpecError(error);

    const SpecSection *campaign = spec.file_.section("campaign");
    if (campaign == nullptr) {
        throw SpecError(path + ":1: missing required section [campaign]");
    }
    spec.name_ = spec.str("campaign", "name");
    spec.program_ = spec.str("campaign", "program");
    spec.title_ = spec.str("campaign", "title", "");

    // Compile trigger conditions now so a malformed expression fails
    // the load with its line number instead of surfacing mid-run.
    (void)spec.triggers();
    return spec;
}

void
CampaignSpec::fail(std::size_t line_no, const std::string &why) const
{
    throw SpecError(file_.path + ":" + std::to_string(line_no) + ": " +
                    why);
}

const SpecLine *
CampaignSpec::findLine(const std::string &section,
                       const std::string &key) const
{
    const SpecSection *s = file_.section(section);
    return s == nullptr ? nullptr : s->find(key);
}

const SpecLine &
CampaignSpec::requireLine(const std::string &section,
                          const std::string &key) const
{
    const SpecLine *line = findLine(section, key);
    if (line == nullptr) {
        const SpecSection *s = file_.section(section);
        if (s == nullptr) {
            throw SpecError(file_.path + ":1: missing required section [" +
                            section + "] (wanted key '" + key + "')");
        }
        fail(s->line_no,
             "[" + section + "] is missing required key '" + key + "'");
    }
    return *line;
}

double
CampaignSpec::numFromToken(const SpecLine &line,
                           const std::string &token) const
{
    double value = 0.0;
    if (!parseNumber(token, value)) {
        fail(line.line_no, "'" + (line.key.empty() ? line.tokens[0]
                                                   : line.key) +
                               "' expects a number, got '" + token + "'");
    }
    return value;
}

bool
CampaignSpec::has(const std::string &section, const std::string &key) const
{
    return findLine(section, key) != nullptr;
}

std::string
CampaignSpec::str(const std::string &section, const std::string &key) const
{
    const SpecLine &line = requireLine(section, key);
    if (line.tokens.size() == 1)
        return line.tokens[0];  // unquotes a single quoted token
    return line.value;
}

std::string
CampaignSpec::str(const std::string &section, const std::string &key,
                  const std::string &fallback) const
{
    return has(section, key) ? str(section, key) : fallback;
}

double
CampaignSpec::num(const std::string &section, const std::string &key) const
{
    const SpecLine &line = requireLine(section, key);
    return numFromToken(line, line.value);
}

double
CampaignSpec::num(const std::string &section, const std::string &key,
                  double fallback) const
{
    return has(section, key) ? num(section, key) : fallback;
}

std::uint32_t
CampaignSpec::u32(const std::string &section, const std::string &key) const
{
    const double value = num(section, key);
    const auto u = static_cast<std::uint32_t>(value);
    if (value < 0.0 || static_cast<double>(u) != value) {
        fail(requireLine(section, key).line_no,
             "'" + key + "' expects a nonnegative integer");
    }
    return u;
}

std::uint32_t
CampaignSpec::u32(const std::string &section, const std::string &key,
                  std::uint32_t fallback) const
{
    return has(section, key) ? u32(section, key) : fallback;
}

std::uint64_t
CampaignSpec::u64(const std::string &section, const std::string &key) const
{
    const double value = num(section, key);
    const auto u = static_cast<std::uint64_t>(value);
    if (value < 0.0 || static_cast<double>(u) != value) {
        fail(requireLine(section, key).line_no,
             "'" + key + "' expects a nonnegative integer");
    }
    return u;
}

bool
CampaignSpec::flag(const std::string &section, const std::string &key,
                   bool fallback) const
{
    if (!has(section, key))
        return fallback;
    const std::string value = str(section, key);
    if (value == "1" || value == "true")
        return true;
    if (value == "0" || value == "false")
        return false;
    fail(findLine(section, key)->line_no,
         "'" + key + "' expects 0/1/true/false, got '" + value + "'");
}

std::vector<double>
CampaignSpec::numList(const std::string &section,
                      const std::string &key) const
{
    const SpecLine &line = requireLine(section, key);
    std::vector<double> values;
    values.reserve(line.tokens.size());
    for (const std::string &token : line.tokens)
        values.push_back(numFromToken(line, token));
    return values;
}

std::vector<std::string>
CampaignSpec::strList(const std::string &section,
                      const std::string &key) const
{
    return requireLine(section, key).tokens;
}

std::vector<const SpecLine *>
CampaignSpec::directives(const std::string &section,
                         const std::string &head) const
{
    const SpecSection *s = file_.section(section);
    if (s == nullptr)
        return {};
    std::vector<const SpecLine *> hits;
    for (const SpecLine &line : s->lines) {
        if (!line.isKeyValue() && line.tokens[0] == head)
            hits.push_back(&line);
    }
    return hits;
}

std::vector<Trigger>
CampaignSpec::triggers() const
{
    std::vector<Trigger> out;
    for (const SpecLine *line : directives("triggers", "trigger")) {
        // trigger <name> when <expr...> emit "<message>"
        const std::vector<std::string> &toks = line->tokens;
        const std::string where =
            file_.path + ":" + std::to_string(line->line_no);
        if (toks.size() < 5 || toks[2] != "when") {
            fail(line->line_no,
                 "expected: trigger <name> when <condition> emit "
                 "\"<message>\"");
        }
        std::size_t emit = toks.size();
        for (std::size_t i = 3; i < toks.size(); ++i) {
            if (toks[i] == "emit")
                emit = i;
        }
        if (emit + 2 != toks.size()) {
            fail(line->line_no,
                 "trigger '" + toks[1] +
                     "' must end with: emit \"<message>\"");
        }
        std::string condition;
        for (std::size_t i = 3; i < emit; ++i) {
            if (!condition.empty())
                condition += " ";
            condition += toks[i];
        }
        Trigger trigger;
        trigger.name = toks[1];
        trigger.condition_text = condition;
        trigger.condition = parseExpr(condition, where);
        trigger.message = toks[emit + 1];
        out.push_back(std::move(trigger));
    }
    return out;
}

std::vector<std::string>
CampaignSpec::notes() const
{
    std::vector<std::string> out;
    const SpecSection *s = file_.section("outputs");
    if (s == nullptr)
        return out;
    for (const SpecLine &line : s->lines) {
        if (line.key != "note")
            continue;
        // A fully quoted note keeps leading/trailing whitespace that
        // the line trimmer would otherwise eat.
        if (line.value.size() >= 2 && line.value.front() == '"' &&
            line.value.back() == '"') {
            out.push_back(
                line.value.substr(1, line.value.size() - 2));
        } else {
            out.push_back(line.value);
        }
    }
    return out;
}

} // namespace eaao::campaign
