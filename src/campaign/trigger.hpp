/**
 * @file
 * Condition-based triggers over sampled orchestrator counters
 * (docs/scenario-dsl.md §6).
 *
 * Programs sample named counters as simulated time advances; the
 * engine evaluates each `[triggers]` condition at every sample and
 * records a firing on each rising edge (false→true). The firing log
 * is deterministic — it depends only on the sample stream — and is
 * printed by the driver when the campaign declares
 * `[outputs] trigger_log = 1`.
 */

#ifndef EAAO_CAMPAIGN_TRIGGER_HPP
#define EAAO_CAMPAIGN_TRIGGER_HPP

#include "campaign/expr.hpp"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace eaao::campaign {

/**
 * Append-only per-counter sample store; the CounterSource the
 * expression evaluator reads. Samples must arrive in nondecreasing
 * time order per counter.
 */
class CounterTimeline : public CounterSource
{
  public:
    void record(const std::string &name, double t_s, double value);

    double valueAt(const std::string &name, double t_s) const override;
    double rate(const std::string &name, double window_s,
                double t_s) const override;
    double countSince(const std::string &name, double since_s,
                      double t_s) const override;

  private:
    struct Sample
    {
        double t_s;
        double value;
    };
    std::map<std::string, std::vector<Sample>> series_;
};

/** One parsed `trigger <name> when <expr> emit "<message>"` line. */
struct Trigger
{
    std::string name;
    std::string condition_text;
    std::unique_ptr<Expr> condition;
    std::string message;
};

struct TriggerFiring
{
    double t_s;
    std::string name;
    std::string message;
};

/**
 * Evaluates the campaign's triggers against a CounterTimeline.
 * Programs call sample() as the run progresses; each call both
 * records the counter and re-evaluates every trigger at that time.
 */
class TriggerEngine
{
  public:
    void add(Trigger trigger);
    bool empty() const { return triggers_.empty(); }

    /** Register a resolver for custom_function('name', ...). */
    void setCustomFunctions(
        std::function<CustomFunction(const std::string &)> resolver);

    /** Record @p value for @p name at @p t_s, then evaluate. */
    void sample(const std::string &name, double t_s, double value);

    /** Record without evaluating (batch several counters, then
     *  evaluateAt() once so triggers see a consistent snapshot). */
    void record(const std::string &name, double t_s, double value);

    /** Re-evaluate all triggers at @p t_s without a new sample. */
    void evaluateAt(double t_s);

    const std::vector<TriggerFiring> &firings() const { return firings_; }
    const CounterTimeline &timeline() const { return timeline_; }

  private:
    struct Armed
    {
        Trigger trigger;
        bool was_true = false;
    };
    std::vector<Armed> triggers_;
    CounterTimeline timeline_;
    std::vector<TriggerFiring> firings_;
    std::function<CustomFunction(const std::string &)> custom_;
};

} // namespace eaao::campaign

#endif // EAAO_CAMPAIGN_TRIGGER_HPP
