/**
 * @file
 * Recursive-descent parser and total evaluator for trigger
 * expressions (docs/scenario-dsl.md §5).
 */

#include "campaign/expr.hpp"

#include "campaign/specfile.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

namespace eaao::campaign {

namespace {

enum class TokKind : std::uint8_t
{
    End,
    Num,
    Str,     // 'single-quoted'
    Ident,   // possibly dotted: orch.placements
    Punct,   // ( ) ,
    Op,      // == != <= >= < > && || ! + - * /
};

struct Tok
{
    TokKind kind = TokKind::End;
    std::string text;
    double number = 0.0;
    std::size_t pos = 0;  // byte offset, for error messages
};

class Lexer
{
  public:
    Lexer(const std::string &text, const std::string &where)
        : text_(text), where_(where)
    {
        advance();
    }

    const Tok &peek() const { return tok_; }

    Tok take()
    {
        Tok t = tok_;
        advance();
        return t;
    }

    [[noreturn]] void fail(const std::string &why, std::size_t pos) const
    {
        throw SpecError(where_ + ": " + why + " at column " +
                        std::to_string(pos + 1) + " of '" + text_ + "'");
    }

  private:
    void advance()
    {
        while (i_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[i_])))
            ++i_;
        tok_ = Tok{};
        tok_.pos = i_;
        if (i_ >= text_.size()) {
            tok_.kind = TokKind::End;
            return;
        }
        const char c = text_[i_];
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i_ + 1 < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[i_ + 1])))) {
            char *end = nullptr;
            tok_.number = std::strtod(text_.c_str() + i_, &end);
            tok_.kind = TokKind::Num;
            tok_.text = text_.substr(i_, end - (text_.c_str() + i_));
            i_ = end - text_.c_str();
            return;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t j = i_;
            while (j < text_.size() &&
                   (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                    text_[j] == '_' || text_[j] == '.'))
                ++j;
            tok_.kind = TokKind::Ident;
            tok_.text = text_.substr(i_, j - i_);
            i_ = j;
            return;
        }
        if (c == '\'') {
            const std::size_t close = text_.find('\'', i_ + 1);
            if (close == std::string::npos)
                fail("unclosed string literal", i_);
            tok_.kind = TokKind::Str;
            tok_.text = text_.substr(i_ + 1, close - i_ - 1);
            i_ = close + 1;
            return;
        }
        if (c == '(' || c == ')' || c == ',') {
            tok_.kind = TokKind::Punct;
            tok_.text = std::string(1, c);
            ++i_;
            return;
        }
        static const char *const kTwoChar[] = {"==", "!=", "<=", ">=",
                                               "&&", "||"};
        for (const char *op : kTwoChar) {
            if (text_.compare(i_, 2, op) == 0) {
                tok_.kind = TokKind::Op;
                tok_.text = op;
                i_ += 2;
                return;
            }
        }
        if (c == '<' || c == '>' || c == '!' || c == '+' || c == '-' ||
            c == '*' || c == '/') {
            tok_.kind = TokKind::Op;
            tok_.text = std::string(1, c);
            ++i_;
            return;
        }
        fail(std::string("unexpected character '") + c + "'", i_);
    }

    const std::string &text_;
    const std::string &where_;
    std::size_t i_ = 0;
    Tok tok_;
};

std::unique_ptr<Expr>
mk(ExprOp op)
{
    auto e = std::make_unique<Expr>();
    e->op = op;
    return e;
}

std::unique_ptr<Expr>
mkBinary(ExprOp op, std::unique_ptr<Expr> lhs, std::unique_ptr<Expr> rhs)
{
    auto e = mk(op);
    e->kids.push_back(std::move(lhs));
    e->kids.push_back(std::move(rhs));
    return e;
}

struct FuncSig
{
    const char *name;
    int min_args;
    int max_args;
};

// Arity is checked at parse time so a bad trigger line fails the whole
// campaign load with a precise message instead of misfiring at runtime.
const FuncSig kFuncs[] = {
    {"rate", 2, 2},          {"count_since", 2, 2},
    {"min", 2, 2},           {"max", 2, 2},
    {"abs", 1, 1},           {"time", 0, 0},
    {"custom_function", 1, 8},
};

class Parser
{
  public:
    Parser(Lexer &lex) : lex_(lex) {}

    // Grammar (precedence climbing, loosest first):
    //   or    ::= and ( '||' and )*
    //   and   ::= cmp ( '&&' cmp )*
    //   cmp   ::= sum ( ('=='|'!='|'<'|'<='|'>'|'>=') sum )?
    //   sum   ::= term ( ('+'|'-') term )*
    //   term  ::= unary ( ('*'|'/') unary )*
    //   unary ::= ('!'|'-') unary | atom
    //   atom  ::= number | 'string' | counter | func '(' args ')'
    //           | '(' or ')'
    std::unique_ptr<Expr> parseOr()
    {
        auto lhs = parseAnd();
        while (isOp("||"))
            lhs = mkBinary(ExprOp::Or, std::move(lhs),
                           (lex_.take(), parseAnd()));
        return lhs;
    }

  private:
    bool isOp(const char *text) const
    {
        return lex_.peek().kind == TokKind::Op && lex_.peek().text == text;
    }

    bool isPunct(char c) const
    {
        return lex_.peek().kind == TokKind::Punct &&
               lex_.peek().text[0] == c;
    }

    std::unique_ptr<Expr> parseAnd()
    {
        auto lhs = parseCmp();
        while (isOp("&&"))
            lhs = mkBinary(ExprOp::And, std::move(lhs),
                           (lex_.take(), parseCmp()));
        return lhs;
    }

    std::unique_ptr<Expr> parseCmp()
    {
        auto lhs = parseSum();
        static const std::pair<const char *, ExprOp> kCmps[] = {
            {"==", ExprOp::Eq}, {"!=", ExprOp::Ne}, {"<=", ExprOp::Le},
            {">=", ExprOp::Ge}, {"<", ExprOp::Lt},  {">", ExprOp::Gt},
        };
        for (const auto &[text, op] : kCmps) {
            if (isOp(text)) {
                lex_.take();
                return mkBinary(op, std::move(lhs), parseSum());
            }
        }
        return lhs;
    }

    std::unique_ptr<Expr> parseSum()
    {
        auto lhs = parseTerm();
        while (isOp("+") || isOp("-")) {
            const ExprOp op =
                lex_.take().text == "+" ? ExprOp::Add : ExprOp::Sub;
            lhs = mkBinary(op, std::move(lhs), parseTerm());
        }
        return lhs;
    }

    std::unique_ptr<Expr> parseTerm()
    {
        auto lhs = parseUnary();
        while (isOp("*") || isOp("/")) {
            const ExprOp op =
                lex_.take().text == "*" ? ExprOp::Mul : ExprOp::Div;
            lhs = mkBinary(op, std::move(lhs), parseUnary());
        }
        return lhs;
    }

    std::unique_ptr<Expr> parseUnary()
    {
        if (isOp("!")) {
            lex_.take();
            auto e = mk(ExprOp::Not);
            e->kids.push_back(parseUnary());
            return e;
        }
        if (isOp("-")) {
            lex_.take();
            auto e = mk(ExprOp::Neg);
            e->kids.push_back(parseUnary());
            return e;
        }
        return parseAtom();
    }

    std::unique_ptr<Expr> parseAtom()
    {
        const Tok tok = lex_.take();
        switch (tok.kind) {
        case TokKind::Num: {
            auto e = mk(ExprOp::Num);
            e->number = tok.number;
            return e;
        }
        case TokKind::Str: {
            auto e = mk(ExprOp::Str);
            e->text = tok.text;
            return e;
        }
        case TokKind::Ident:
            if (isPunct('('))
                return parseCall(tok);
            {
                auto e = mk(ExprOp::Counter);
                e->text = tok.text;
                return e;
            }
        case TokKind::Punct:
            if (tok.text == "(") {
                auto e = parseOr();
                expectPunct(')');
                return e;
            }
            break;
        default:
            break;
        }
        lex_.fail(tok.kind == TokKind::End
                      ? "unexpected end of expression"
                      : "unexpected token '" + tok.text + "'",
                  tok.pos);
    }

    std::unique_ptr<Expr> parseCall(const Tok &name)
    {
        const FuncSig *sig = nullptr;
        for (const FuncSig &f : kFuncs) {
            if (name.text == f.name)
                sig = &f;
        }
        if (sig == nullptr) {
            lex_.fail("unknown function '" + name.text +
                          "' (known: rate, count_since, min, max, abs, "
                          "time, custom_function)",
                      name.pos);
        }
        expectPunct('(');
        auto e = mk(ExprOp::Call);
        e->text = name.text;
        if (!isPunct(')')) {
            e->kids.push_back(parseOr());
            while (isPunct(',')) {
                lex_.take();
                e->kids.push_back(parseOr());
            }
        }
        expectPunct(')');
        const int argc = static_cast<int>(e->kids.size());
        if (argc < sig->min_args || argc > sig->max_args) {
            lex_.fail(name.text + "() takes " +
                          (sig->min_args == sig->max_args
                               ? std::to_string(sig->min_args)
                               : std::to_string(sig->min_args) + ".." +
                                     std::to_string(sig->max_args)) +
                          " argument(s), got " + std::to_string(argc),
                      name.pos);
        }
        // The aggregate functions address a counter by name: their
        // first argument must be a counter reference, not a value.
        if ((e->text == "rate" || e->text == "count_since") &&
            e->kids[0]->op != ExprOp::Counter) {
            lex_.fail(e->text +
                          "() expects a counter name as its first "
                          "argument (e.g. rate(orch.placements, 60))",
                      name.pos);
        }
        if (e->text == "custom_function" &&
            e->kids[0]->op != ExprOp::Str) {
            lex_.fail("custom_function() expects a 'quoted name' as its "
                          "first argument",
                      name.pos);
        }
        return e;
    }

    void expectPunct(char c)
    {
        if (!isPunct(c))
            lex_.fail(std::string("expected '") + c + "'",
                      lex_.peek().pos);
        lex_.take();
    }

    Lexer &lex_;
};

double
truthy(bool b)
{
    return b ? 1.0 : 0.0;
}

std::string
renderNumber(double v)
{
    std::ostringstream out;
    out << v;
    return out.str();
}

} // namespace

std::unique_ptr<Expr>
parseExpr(const std::string &text, const std::string &where)
{
    Lexer lex(text, where);
    Parser parser(lex);
    auto e = parser.parseOr();
    if (lex.peek().kind != TokKind::End) {
        lex.fail("trailing input '" + lex.peek().text + "'",
                 lex.peek().pos);
    }
    return e;
}

double
evalExpr(const Expr &e, const CounterSource &counters, double t_s,
         const std::function<CustomFunction(const std::string &)> *custom)
{
    const auto kid = [&](std::size_t i) {
        return evalExpr(*e.kids[i], counters, t_s, custom);
    };
    switch (e.op) {
    case ExprOp::Num:
        return e.number;
    case ExprOp::Str:
        return 0.0;  // strings only carry names into Call nodes
    case ExprOp::Counter:
        return counters.valueAt(e.text, t_s);
    case ExprOp::Eq:
        return truthy(kid(0) == kid(1));
    case ExprOp::Ne:
        return truthy(kid(0) != kid(1));
    case ExprOp::Lt:
        return truthy(kid(0) < kid(1));
    case ExprOp::Le:
        return truthy(kid(0) <= kid(1));
    case ExprOp::Gt:
        return truthy(kid(0) > kid(1));
    case ExprOp::Ge:
        return truthy(kid(0) >= kid(1));
    case ExprOp::And:
        return truthy(kid(0) != 0.0 && kid(1) != 0.0);
    case ExprOp::Or:
        return truthy(kid(0) != 0.0 || kid(1) != 0.0);
    case ExprOp::Not:
        return truthy(kid(0) == 0.0);
    case ExprOp::Add:
        return kid(0) + kid(1);
    case ExprOp::Sub:
        return kid(0) - kid(1);
    case ExprOp::Mul:
        return kid(0) * kid(1);
    case ExprOp::Div: {
        const double denom = kid(1);
        return denom == 0.0 ? 0.0 : kid(0) / denom;
    }
    case ExprOp::Neg:
        return -kid(0);
    case ExprOp::Call:
        if (e.text == "rate")
            return counters.rate(e.kids[0]->text, kid(1), t_s);
        if (e.text == "count_since")
            return counters.countSince(e.kids[0]->text, kid(1), t_s);
        if (e.text == "min")
            return std::min(kid(0), kid(1));
        if (e.text == "max")
            return std::max(kid(0), kid(1));
        if (e.text == "abs")
            return std::abs(kid(0));
        if (e.text == "time")
            return t_s;
        if (e.text == "custom_function") {
            if (custom == nullptr)
                return 0.0;
            const CustomFunction fn = (*custom)(e.kids[0]->text);
            if (!fn)
                return 0.0;
            std::vector<double> args;
            for (std::size_t i = 1; i < e.kids.size(); ++i)
                args.push_back(kid(i));
            return fn(args);
        }
        return 0.0;
    }
    return 0.0;
}

std::string
renderExpr(const Expr &e)
{
    const auto kid = [&](std::size_t i) { return renderExpr(*e.kids[i]); };
    const auto binary = [&](const char *op) {
        return "(" + kid(0) + " " + op + " " + kid(1) + ")";
    };
    switch (e.op) {
    case ExprOp::Num:
        return renderNumber(e.number);
    case ExprOp::Str:
        return "'" + e.text + "'";
    case ExprOp::Counter:
        return e.text;
    case ExprOp::Eq:
        return binary("==");
    case ExprOp::Ne:
        return binary("!=");
    case ExprOp::Lt:
        return binary("<");
    case ExprOp::Le:
        return binary("<=");
    case ExprOp::Gt:
        return binary(">");
    case ExprOp::Ge:
        return binary(">=");
    case ExprOp::And:
        return binary("&&");
    case ExprOp::Or:
        return binary("||");
    case ExprOp::Not:
        return "!" + kid(0);
    case ExprOp::Add:
        return binary("+");
    case ExprOp::Sub:
        return binary("-");
    case ExprOp::Mul:
        return binary("*");
    case ExprOp::Div:
        return binary("/");
    case ExprOp::Neg:
        return "-" + kid(0);
    case ExprOp::Call: {
        std::string out = e.text + "(";
        for (std::size_t i = 0; i < e.kids.size(); ++i) {
            if (i != 0)
                out += ", ";
            out += kid(i);
        }
        return out + ")";
    }
    }
    return "?";
}

namespace {

void
collectCounters(const Expr &e, std::vector<std::string> &out)
{
    if (e.op == ExprOp::Counter)
        out.push_back(e.text);
    for (const std::unique_ptr<Expr> &kid : e.kids)
        collectCounters(*kid, out);
}

} // namespace

std::vector<std::string>
counterNames(const Expr &e)
{
    std::vector<std::string> names;
    collectCounters(e, names);
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

} // namespace eaao::campaign
