/**
 * @file
 * Section 5.2 kernel, "Potential attack optimizations": focusing
 * repeated attacks on the victim's recorded base hosts. Attack 1
 * records fingerprints (and drift slopes) of hosts that carried victim
 * instances; attack 2, a day later, matches fresh fingerprints against
 * the recorded set and monitors only the matching instances.
 */

#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/repeat_attack.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "core/tracker.hpp"
#include "faas/platform.hpp"

EAAO_CAMPAIGN_PROGRAM(sec52_repeat_attack)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;

    faas::PlatformConfig cfg;
    cfg.profile = campaign::profileOf(spec, "platform", "profile");
    cfg.seed = spec.u64("platform", "seed");
    faas::Platform p(cfg);
    const auto attacker = p.createAccount(0);
    const auto victim = p.createAccount(1);

    const std::uint32_t victim_count =
        spec.u32("verify", "victim_instances");
    const double tol_s = spec.num("attack", "match_tolerance_s");
    const int quorum = static_cast<int>(spec.u32("attack", "quorum"));
    const int track_reps =
        static_cast<int>(spec.u32("attack", "track_samples"));
    const int track_gap_min =
        static_cast<int>(spec.u32("attack", "track_gap_minutes"));

    // ---- Attack 1: co-locate and record victim hosts. ----
    const core::CampaignResult attack1 =
        core::runOptimizedCampaign(p, attacker, core::CampaignConfig{});
    const auto vsvc = p.deployService(victim, faas::ExecEnv::Gen1);
    const auto vids = p.connect(vsvc, victim_count);

    std::set<hw::HostId> victim_hosts;
    for (const auto id : vids)
        victim_hosts.insert(p.oracleHostOf(id));

    // Record one attacker-side reading per co-located victim host.
    core::RepeatAttackPlanner planner(tol_s, quorum);
    std::set<hw::HostId> recorded_hosts;
    for (std::size_t i = 0; i < attack1.final_instances.size(); ++i) {
        const auto inst = attack1.final_instances[i];
        const hw::HostId host = p.oracleHostOf(inst);
        if (victim_hosts.count(host) == 0 ||
            recorded_hosts.count(host) > 0) {
            continue;
        }
        faas::SandboxView sbx = p.sandbox(inst);
        // Track the host briefly to fit its drift slope.
        core::FingerprintHistory history;
        for (int t = 0; t < track_reps; ++t) {
            history.add(p.now(), core::readGen1Median(sbx, 15).tboot_s);
            p.advance(sim::Duration::minutes(track_gap_min));
        }
        const auto fit = history.fitDrift();
        core::Gen1Reading reading = core::readGen1Median(sbx, 15);
        planner.recordVictimHost(reading, fit.slope);
        recorded_hosts.insert(host);
    }
    std::printf("attack 1: victim on %zu hosts; recorded %zu "
                "fingerprints (co-located subset)\n\n",
                victim_hosts.size(), planner.size());

    // ---- One day later: attack 2 from a fresh high-demand state. ----
    p.disconnectAll(vsvc);
    for (const auto svc : attack1.services)
        p.disconnectAll(svc);
    p.advance(sim::Duration::days(1));

    const core::CampaignResult attack2 =
        core::runOptimizedCampaign(p, attacker, core::CampaignConfig{});
    const auto vsvc2 = p.deployService(victim, faas::ExecEnv::Gen1);
    const auto vids2 = p.connect(vsvc2, victim_count);
    std::set<hw::HostId> victim_hosts2;
    for (const auto id : vids2)
        victim_hosts2.insert(p.oracleHostOf(id));

    // Collect one representative attacker reading per occupied host.
    std::map<hw::HostId, core::Gen1Reading> reading_per_host;
    for (const auto inst : attack2.final_instances) {
        const hw::HostId host = p.oracleHostOf(inst);
        if (reading_per_host.count(host))
            continue;
        faas::SandboxView sbx = p.sandbox(inst);
        reading_per_host.emplace(host, core::readGen1Median(sbx, 15));
    }

    std::vector<core::Gen1Reading> readings;
    std::vector<hw::HostId> hosts;
    for (const auto &[host, reading] : reading_per_host) {
        hosts.push_back(host);
        readings.push_back(reading);
    }
    const auto focus = planner.focusIndices(readings);

    // Quality of the focus set.
    std::size_t focus_on_victim = 0;
    for (const std::size_t idx : focus)
        focus_on_victim += victim_hosts2.count(hosts[idx]);
    std::size_t reachable_victim_hosts = 0;
    for (const auto &[host, reading] : reading_per_host)
        reachable_victim_hosts += victim_hosts2.count(host);

    core::TextTable table;
    table.header({"metric", "unfocused", "focused"});
    table.row({"hosts to monitor",
               core::format("%zu", reading_per_host.size()),
               core::format("%zu", focus.size())});
    table.row({"victim hosts among them",
               core::format("%zu", reachable_victim_hosts),
               core::format("%zu", focus_on_victim)});
    table.row({"extraction effort",
               "1.0x",
               core::format("%.2fx",
                            static_cast<double>(focus.size()) /
                                static_cast<double>(
                                    reading_per_host.size()))});
    table.print();
}
