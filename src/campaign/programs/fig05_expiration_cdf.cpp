/**
 * @file
 * Figure 5 kernel: CDF of the estimated Gen 1 fingerprint expiration
 * time (paper §4.4.2). Launch long-running instances per data center,
 * record their hosts' fingerprints hourly, treat restarts as new
 * hosts, fit each history's T_boot drift, and report the predicted
 * time to cross a p_boot rounding boundary. The closing average is
 * computed from the run, so it stays in this kernel; every knob comes
 * from bench/campaigns/fig05_expiration_cdf.scenario.
 */

#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/fingerprint.hpp"
#include "core/report.hpp"
#include "core/tracker.hpp"
#include "faas/platform.hpp"
#include "sim/rng.hpp"
#include "stats/cdf.hpp"
#include "stats/summary.hpp"

namespace {

struct Fig05Knobs
{
    std::size_t instances = 50;
    int hours = 7 * 24;
    std::uint32_t connect = 800;
    double restart_prob_per_hour = 0.009;
    double p_boot = 1.0;
};

struct DcResult
{
    std::string name;
    std::size_t histories = 0;
    double min_abs_r = 1.0;
    std::vector<double> expiration_days;
};

DcResult
runDataCenter(const eaao::faas::DataCenterProfile &profile,
              std::uint64_t seed, const Fig05Knobs &knobs)
{
    using namespace eaao;
    faas::PlatformConfig cfg;
    cfg.profile = profile;
    cfg.seed = seed;
    faas::Platform platform(cfg);
    sim::Rng churn(seed * 977 + 5);

    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);

    // Launch a full base-host load and keep one long-running probe per
    // distinct host, so the histories cover ~75 hosts rather than the
    // handful a 50-instance launch would occupy.
    std::vector<faas::InstanceId> ids;
    {
        const auto all = platform.connect(svc, knobs.connect);
        std::set<hw::HostId> hosts;
        for (const auto id : all) {
            if (hosts.insert(platform.oracleHostOf(id)).second)
                ids.push_back(id);
        }
        if (ids.size() > knobs.instances)
            ids.resize(knobs.instances);
    }

    // One open history per tracked slot; restarts close it and open a
    // fresh one.
    std::vector<core::FingerprintHistory> open(ids.size());
    std::vector<core::FingerprintHistory> closed;

    for (int hour = 0; hour <= knobs.hours; ++hour) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            if (hour > 0 && churn.bernoulli(knobs.restart_prob_per_hour)) {
                // The platform terminated and replaced this instance;
                // conservatively treat the replacement as a new host.
                closed.push_back(std::move(open[i]));
                open[i] = core::FingerprintHistory();
                ids[i] = platform.restartInstance(ids[i]);
            }
            faas::SandboxView sbx = platform.sandbox(ids[i]);
            const core::Gen1Reading r = core::readGen1Median(sbx, 15);
            open[i].add(platform.now(), r.tboot_s);
        }
        platform.advance(sim::Duration::hours(1));
    }
    for (auto &history : open)
        closed.push_back(std::move(history));

    DcResult result;
    result.name = profile.name;
    for (const auto &history : closed) {
        if (history.span() < sim::Duration::hours(24))
            continue;
        ++result.histories;
        const stats::LinearFit fit = history.fitDrift();
        result.min_abs_r =
            std::min(result.min_abs_r, std::fabs(fit.r_value));
        const auto exp_s = history.expirationSeconds(knobs.p_boot);
        // A host whose drift is immeasurably small effectively never
        // expires within the horizon; clamp for the CDF tail.
        result.expiration_days.push_back(
            exp_s ? *exp_s / 86400.0 : 1e6);
    }
    return result;
}

} // namespace

EAAO_CAMPAIGN_PROGRAM(fig05_expiration_cdf)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;

    Fig05Knobs knobs;
    knobs.instances = spec.u32("workload", "instances");
    knobs.hours = static_cast<int>(spec.u32("workload", "hours"));
    knobs.connect = spec.u32("workload", "connect");
    knobs.restart_prob_per_hour =
        spec.num("workload", "restart_prob_per_hour");
    knobs.p_boot = spec.num("attack", "p_boot");
    const std::uint64_t seed = spec.u64("workload", "seed");
    const std::vector<faas::DataCenterProfile> dcs =
        campaign::profileList(spec, "platform", "profiles");

    std::vector<DcResult> results;
    for (std::size_t d = 0; d < dcs.size(); ++d)
        results.push_back(runDataCenter(dcs[d], seed + d, knobs));

    core::TextTable table;
    table.header({"days", results[0].name, results[1].name,
                  results[2].name});
    for (int day = 0; day <= 7; ++day) {
        std::vector<std::string> row = {core::format("%d", day)};
        for (const auto &result : results) {
            const stats::EmpiricalCdf cdf(result.expiration_days);
            row.push_back(core::format("%.3f",
                                       cdf.at(static_cast<double>(day))));
        }
        table.row(row);
    }
    table.print();

    std::printf("\n");
    core::TextTable meta;
    meta.header({"data center", "histories(>=24h)", "min |r|",
                 "t(10%% expired)"});
    double mean_p10 = 0.0;
    for (const auto &result : results) {
        const stats::EmpiricalCdf cdf(result.expiration_days);
        const double p10 = cdf.quantile(0.10);
        mean_p10 += p10 / static_cast<double>(results.size());
        meta.row({result.name, core::format("%zu", result.histories),
                  core::format("%.5f", result.min_abs_r),
                  core::format("%.2f d", p10)});
    }
    meta.print();
    std::printf("\naverage time for 10%% of fingerprints to expire: "
                "%.2f days (paper: ~2 days)\n"
                "paper shape: T_boot drifts linearly (min |r| = 0.9997); "
                "most fingerprints last multiple days.\n",
                mean_p10);
}
