/**
 * @file
 * Ablation kernel: evading contention detection by fragmenting
 * verification into short episodes spaced wider than the detector
 * window. Every episode stays under the burst threshold, at the price
 * of stretching a one-minute verification into tens of minutes of
 * billed instance time. Plans come from `plan` directives in [attack].
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "channel/covert.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "defense/detector.hpp"
#include "faas/platform.hpp"
#include "stats/clustering.hpp"

namespace {

using namespace eaao;

struct Plan
{
    std::string label;
    std::uint32_t episodes;
    std::uint32_t trials_per_episode;
    sim::Duration episode_gap;
};

struct Outcome
{
    std::size_t flagged = 0;
    sim::Duration elapsed;
    double cost_usd = 0.0;
    std::uint64_t pair_errors = 0;
};

Outcome
run(const faas::DataCenterProfile &profile, const Plan &plan,
    std::uint32_t instances, std::uint64_t seed)
{
    faas::PlatformConfig cfg;
    cfg.profile = profile;
    cfg.seed = seed;
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    core::LaunchOptions launch;
    launch.instances = instances;
    launch.disconnect_after = false;
    const auto obs = core::launchAndObserve(p, svc, launch);

    defense::ContentionDetector detector;
    channel::RngChannelConfig chan_cfg;
    chan_cfg.trials = plan.trials_per_episode;
    chan_cfg.detect_min = plan.trials_per_episode / 2;
    channel::RngChannel chan(p, chan_cfg);
    chan.attachDetector(&detector);

    std::map<std::uint64_t, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < obs.ids.size(); ++i)
        groups[obs.fp_keys[i]].push_back(i);

    const sim::SimTime start = p.now();
    std::map<std::size_t, std::uint32_t> positive_episodes;
    std::size_t max_flagged = 0;

    for (std::uint32_t e = 0; e < plan.episodes; ++e) {
        for (const auto &[key, members] : groups) {
            if (members.size() < 2)
                continue;
            std::vector<faas::InstanceId> group;
            for (const auto idx : members)
                group.push_back(obs.ids[idx]);
            const auto m = static_cast<std::uint32_t>(
                std::min<std::size_t>((members.size() + 2) / 2, 16));
            const auto result = chan.run(group, m);
            for (std::size_t i = 0; i < members.size(); ++i) {
                if (result.positive[i])
                    ++positive_episodes[members[i]];
            }
            max_flagged =
                std::max(max_flagged,
                         detector.flaggedHosts(p.now()).size());
        }
        if (e + 1 < plan.episodes)
            p.advance(plan.episode_gap);
    }
    max_flagged =
        std::max(max_flagged, detector.flaggedHosts(p.now()).size());

    // Aggregate: positive in a majority of episodes => co-located with
    // its fingerprint group.
    std::vector<std::uint64_t> clusters(obs.ids.size());
    for (std::size_t i = 0; i < clusters.size(); ++i)
        clusters[i] = 1000000 + i;
    for (const auto &[key, members] : groups) {
        for (const auto idx : members) {
            const auto it = positive_episodes.find(idx);
            const std::uint32_t wins =
                it == positive_episodes.end() ? 0 : it->second;
            if (wins * 2 > plan.episodes)
                clusters[idx] = key;
        }
    }

    std::vector<std::uint64_t> oracle;
    for (const auto id : obs.ids)
        oracle.push_back(p.oracleHostOf(id));
    const auto pc = stats::comparePairs(clusters, oracle);

    Outcome out;
    out.flagged = max_flagged;
    out.elapsed = p.now() - start;
    out.cost_usd = static_cast<double>(instances) *
                   out.elapsed.secondsF() *
                   faas::PricingModel{}.usdPerActiveSecond(
                       faas::sizes::kSmall);
    out.pair_errors = pc.fp + pc.fn;
    return out;
}

} // namespace

EAAO_CAMPAIGN_PROGRAM(abl_detection_evasion)
{
    const campaign::CampaignSpec &spec = ctx.spec;

    std::printf("detector: %u bursts per host within a 10-minute "
                "window raise a flag.\n\n",
                eaao::defense::DetectorConfig{}.burst_threshold);

    const faas::DataCenterProfile profile =
        campaign::profileOf(spec, "platform", "profile");
    const std::uint64_t seed = spec.u64("platform", "seed");
    const std::uint32_t instances = spec.u32("workload", "instances");

    // plan "<label>" <episodes> <trials_per_episode> <gap_minutes>
    std::vector<Plan> plans;
    for (const campaign::SpecLine *line :
         spec.directives("attack", "plan")) {
        if (line->tokens.size() != 5)
            spec.fail(line->line_no,
                      "expected: plan <label> <episodes> "
                      "<trials_per_episode> <gap_minutes>");
        Plan plan;
        plan.label = line->tokens[1];
        plan.episodes = static_cast<std::uint32_t>(
            std::stoul(line->tokens[2]));
        plan.trials_per_episode = static_cast<std::uint32_t>(
            std::stoul(line->tokens[3]));
        plan.episode_gap =
            sim::Duration::minutes(std::stoll(line->tokens[4]));
        plans.push_back(plan);
    }

    core::TextTable table;
    table.header({"plan", "hosts flagged (max)", "wall time",
                  "cost (USD)", "pair errors"});
    for (std::size_t r = 0; r < plans.size(); ++r) {
        const Outcome out = run(profile, plans[r], instances, seed + r);
        table.row({plans[r].label, core::format("%zu", out.flagged),
                   out.elapsed.str(),
                   core::format("%.2f", out.cost_usd),
                   core::format("%llu",
                                static_cast<unsigned long long>(
                                    out.pair_errors))});
    }
    table.print();
}
