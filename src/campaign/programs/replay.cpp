/**
 * @file
 * The `replay` program: executes the scenario embedded in the
 * campaign's [platform]/[tenants]/[script] sections through testkit's
 * deterministic runner and prints the canonical log — the same unit
 * the fuzzer's invariant oracles compare. `run_campaign` auto-wraps a
 * bare v1 replay file into this program, so corpus files run
 * unchanged; [triggers] conditions are evaluated against counters
 * sampled after every step.
 */

#include "campaign/runner.hpp"
#include "testkit/runner.hpp"
#include "testkit/scenario.hpp"

#include <cstdio>

EAAO_CAMPAIGN_PROGRAM(replay)
{
    using namespace eaao;

    testkit::Scenario scenario;
    std::string error;
    if (!testkit::Scenario::parse(ctx.spec.file().render(), scenario,
                                  error)) {
        throw campaign::SpecError(ctx.spec.file().path + ": " + error);
    }

    testkit::RunOptions opts;
    if (!ctx.triggers.empty()) {
        opts.step_hook = [&ctx](const testkit::RunOptions::StepSample &s) {
            ctx.triggers.record("orch.step", s.t_s,
                                static_cast<double>(s.step));
            ctx.triggers.record("orch.instances", s.t_s,
                                static_cast<double>(s.instances));
            ctx.triggers.record("orch.placements", s.t_s,
                                static_cast<double>(s.placements));
            ctx.triggers.record("orch.routed", s.t_s,
                                static_cast<double>(s.routed));
            ctx.triggers.evaluateAt(s.t_s);
        };
    }

    const testkit::ScenarioLog log = testkit::runScenario(scenario, opts);
    std::fputs(log.render().c_str(), stdout);
}
