/**
 * @file
 * Ablation kernel: the two placement knobs DESIGN.md calls out — the
 * helper chunk size (how aggressively the load balancer spreads a hot
 * service) and the demand-window length — and their effect on the
 * attack surface. Sweeps come from the campaign's [workload] section.
 */

#include <cstdio>
#include <set>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"

namespace {

using namespace eaao;

struct Outcome
{
    std::size_t primed_footprint; //!< hosts after priming one service
    double occupancy;             //!< full campaign, fraction of fleet
    double coverage;              //!< victim coverage
};

Outcome
evaluate(const faas::DataCenterProfile &profile,
         const faas::OrchestratorConfig &orch, std::uint64_t seed,
         std::uint32_t victim_count)
{
    faas::PlatformConfig cfg;
    cfg.profile = profile;
    cfg.orchestrator = orch;
    cfg.seed = seed;
    faas::Platform p(cfg);

    const auto attacker = p.createAccount(0);
    const auto victim = p.createAccount(1);

    // Primed footprint of a single service.
    const auto probe = p.deployService(attacker, faas::ExecEnv::Gen1);
    core::PrimeOptions prime;
    prime.keep_last_connected = false;
    const auto launches = core::primeService(p, probe, prime);
    std::set<std::uint64_t> footprint;
    for (const auto &obs : launches) {
        const auto hosts = obs.apparentHosts();
        footprint.insert(hosts.begin(), hosts.end());
    }
    p.advance(sim::Duration::minutes(45));

    // Full campaign and coverage.
    const auto attack =
        core::runOptimizedCampaign(p, attacker, core::CampaignConfig{});
    const auto vsvc = p.deployService(victim, faas::ExecEnv::Gen1);
    const auto vids = p.connect(vsvc, victim_count);
    const auto cov =
        core::measureCoverageOracle(p, attack.occupied_hosts, vids);

    Outcome out;
    out.primed_footprint = footprint.size();
    out.occupancy = static_cast<double>(attack.occupied_hosts.size()) /
                    static_cast<double>(p.fleet().size());
    out.coverage = cov.coverage();
    return out;
}

} // namespace

EAAO_CAMPAIGN_PROGRAM(abl_placement_knobs)
{
    const campaign::CampaignSpec &spec = ctx.spec;

    const faas::DataCenterProfile base_profile =
        campaign::profileOf(spec, "platform", "profile");
    const std::uint64_t chunk_seed =
        spec.u64("platform", "chunk_seed");
    const std::uint64_t window_seed =
        spec.u64("platform", "window_seed");
    const std::uint32_t victim_count =
        spec.u32("verify", "victim_instances");

    // ---- Helper chunk sweep. ----
    std::printf("-- helper chunk (hosts added per hot launch) --\n");
    core::TextTable chunk_table;
    chunk_table.header({"helper_chunk", "primed footprint", "occupancy",
                        "victim coverage"});
    for (const double chunk_val :
         spec.numList("workload", "chunk_sweep")) {
        const auto chunk = static_cast<std::uint32_t>(chunk_val);
        faas::DataCenterProfile profile = base_profile;
        profile.helper_chunk = chunk;
        const Outcome out =
            evaluate(profile, faas::OrchestratorConfig{},
                     chunk_seed + chunk, victim_count);
        chunk_table.row({core::format("%u", chunk),
                         core::format("%zu", out.primed_footprint),
                         core::percent(out.occupancy),
                         core::percent(out.coverage)});
    }
    chunk_table.print();
    std::printf("\nchunk 0 disables the load balancer entirely: the "
                "optimized strategy\ndegenerates to the naive one "
                "(base hosts only, low cross-account coverage).\n\n");

    // ---- Demand window sweep. ----
    std::printf("-- demand window (hotness memory) --\n");
    core::TextTable window_table;
    window_table.header({"window (min)", "primed footprint",
                         "occupancy", "victim coverage"});
    for (const double window_val :
         spec.numList("workload", "window_sweep")) {
        const int window_min = static_cast<int>(window_val);
        faas::OrchestratorConfig orch;
        orch.demand_window = sim::Duration::minutes(window_min);
        const Outcome out = evaluate(base_profile, orch,
                                     window_seed + window_min,
                                     victim_count);
        window_table.row({core::format("%d", window_min),
                          core::format("%zu", out.primed_footprint),
                          core::percent(out.occupancy),
                          core::percent(out.coverage)});
    }
    window_table.print();
}
