/**
 * @file
 * Section 6 kernel: potential mitigations, evaluated end-to-end. For
 * each defense we rerun the relevant attack primitive and report what
 * breaks and what it costs: Gen 1 trap-and-emulate rdtsc, Gen 2
 * hardware TSC offsetting + scaling, co-location-resistant scheduling,
 * and provider-side contention-burst detection. Each sub-experiment
 * gets its own platform seeded at consecutive offsets from the
 * campaign's base seed.
 */

#include <cstdio>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "channel/covert.hpp"
#include "core/fingerprint.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "defense/detector.hpp"
#include "defense/tsc_defense.hpp"
#include "faas/platform.hpp"
#include "stats/clustering.hpp"

namespace {

using namespace eaao;

/** Fingerprint quality of one launch vs the oracle. */
stats::PairConfusion
fingerprintQuality(faas::Platform &platform, faas::ExecEnv env,
                   std::uint32_t instances)
{
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, env);
    core::LaunchOptions launch;
    launch.instances = instances;
    launch.disconnect_after = false;
    const core::LaunchObservation obs =
        core::launchAndObserve(platform, svc, launch);
    std::vector<std::uint64_t> oracle;
    for (const auto id : obs.ids)
        oracle.push_back(platform.oracleHostOf(id));
    return stats::comparePairs(obs.fp_keys, oracle);
}

} // namespace

EAAO_CAMPAIGN_PROGRAM(sec6_mitigations)
{
    const campaign::CampaignSpec &spec = ctx.spec;

    const faas::DataCenterProfile profile =
        campaign::profileOf(spec, "platform", "profile");
    const std::uint64_t seed = spec.u64("platform", "seed");
    const std::uint32_t fp_instances =
        spec.u32("workload", "fingerprint_instances");
    const std::uint32_t detect_instances =
        spec.u32("workload", "detect_instances");
    const std::uint32_t victim_count =
        spec.u32("verify", "victim_instances");

    const auto baseConfig = [&](std::uint64_t offset) {
        faas::PlatformConfig cfg;
        cfg.profile = profile;
        cfg.seed = seed + offset;
        return cfg;
    };

    // ---- 1. Gen 1 trap-and-emulate. ----
    {
        std::printf("-- Gen 1: trap-and-emulate rdtsc/rdtscp --\n");
        core::TextTable table;
        table.header({"defense", "FMI", "precision", "recall",
                      "timer access"});

        faas::Platform off(baseConfig(0));
        const auto q_off =
            fingerprintQuality(off, faas::ExecEnv::Gen1, fp_instances);

        faas::PlatformConfig cfg = baseConfig(1);
        cfg.tsc_defense.gen1 = defense::Gen1TscPolicy::TrapEmulate;
        faas::Platform on(cfg);
        const auto q_on =
            fingerprintQuality(on, faas::ExecEnv::Gen1, fp_instances);

        table.row({"native TSC", core::format("%.4f", q_off.fmi()),
                   core::format("%.4f", q_off.precision()),
                   core::format("%.4f", q_off.recall()),
                   cfg.tsc_defense.native_timer_cost.str()});
        table.row({"trap-and-emulate",
                   core::format("%.4f", q_on.fmi()),
                   core::format("%.4f", q_on.precision()),
                   core::format("%.4f", q_on.recall()),
                   cfg.tsc_defense.emulated_timer_cost.str()});
        table.print();

        std::printf("\ntimer-overhead impact per workload class "
                    "(trap-and-emulate):\n\n");
        core::TextTable impact;
        impact.header({"workload", "timer calls/op", "base latency",
                       "added latency"});
        std::size_t count = 0;
        const auto *profiles = defense::timerSensitiveWorkloads(count);
        for (std::size_t i = 0; i < count; ++i) {
            const double frac = defense::timerOverheadFraction(
                cfg.tsc_defense, profiles[i]);
            impact.row({profiles[i].name,
                        core::format("%.0f",
                                     profiles[i].timer_calls_per_op),
                        profiles[i].base_op_latency.str(),
                        core::percent(frac)});
        }
        impact.print();
        std::printf("\npaper reference: Cassandra write latency "
                    "reportedly improved 43%% when\nmoving OFF a "
                    "trapping clock source — the same cost this "
                    "defense reintroduces.\n\n");
    }

    // ---- 2. Gen 2 hardware TSC scaling. ----
    {
        std::printf("-- Gen 2: TSC offsetting + scaling --\n");
        core::TextTable table;
        table.header({"defense", "FMI", "precision",
                      "distinct fingerprints"});

        faas::Platform off(baseConfig(2));
        const auto q_off =
            fingerprintQuality(off, faas::ExecEnv::Gen2, fp_instances);

        faas::PlatformConfig cfg = baseConfig(3);
        cfg.tsc_defense.gen2 = defense::Gen2TscPolicy::OffsetAndScale;
        faas::Platform on(cfg);
        const auto acct = on.createAccount();
        const auto svc = on.deployService(acct, faas::ExecEnv::Gen2);
        core::LaunchOptions launch;
        launch.instances = fp_instances;
        launch.disconnect_after = false;
        const auto obs = core::launchAndObserve(on, svc, launch);
        std::vector<std::uint64_t> oracle;
        for (const auto id : obs.ids)
            oracle.push_back(on.oracleHostOf(id));
        const auto q_on = stats::comparePairs(obs.fp_keys, oracle);
        const std::size_t distinct = stats::distinctCount(obs.fp_keys);

        table.row({"offset only", core::format("%.4f", q_off.fmi()),
                   core::format("%.4f", q_off.precision()), "-"});
        table.row({"offset + scale", core::format("%.4f", q_on.fmi()),
                   core::format("%.4f", q_on.precision()),
                   core::format("%zu (one per SKU)", distinct)});
        table.print();
        std::printf("\n");
    }

    // ---- 3. Co-location-resistant scheduling. ----
    {
        std::printf("-- scheduler: co-location-resistant placement "
                    "(account isolation) --\n");
        core::TextTable table;
        table.header({"scheduling", "victim coverage",
                      "attacker hosts", "helper relief"});
        for (const bool isolate : {false, true}) {
            faas::PlatformConfig cfg = baseConfig(4 + isolate);
            cfg.orchestrator.isolate_accounts = isolate;
            faas::Platform p(cfg);
            const auto attacker = p.createAccount(0);
            const auto victim = p.createAccount(1);
            const auto attack = core::runOptimizedCampaign(
                p, attacker, core::CampaignConfig{});
            const auto vsvc =
                p.deployService(victim, faas::ExecEnv::Gen1);
            const auto vids = p.connect(vsvc, victim_count);
            const auto cov = core::measureCoverageOracle(
                p, attack.occupied_hosts, vids);
            table.row(
                {isolate ? "co-location-resistant" : "default",
                 core::percent(cov.coverage()),
                 core::format("%zu", attack.occupied_hosts.size()),
                 isolate ? "home shard only (hot services overload it)"
                         : "DC-wide helper hosts"});
        }
        table.print();
        std::printf("\n");
    }

    // ---- 4. Contention-burst detection. ----
    {
        std::printf("-- provider-side contention detection --\n");
        faas::Platform p(baseConfig(6));
        const auto acct = p.createAccount();
        const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
        core::LaunchOptions launch;
        launch.instances = detect_instances;
        launch.disconnect_after = false;
        const auto obs = core::launchAndObserve(p, svc, launch);

        defense::ContentionDetector detector;
        channel::RngChannel chan(p);
        chan.attachDetector(&detector);
        const auto verified = core::verifyScalable(
            p, chan, obs.ids, obs.fp_keys, obs.class_keys);
        const auto flagged = detector.flaggedHosts(p.now());
        const auto implicated = detector.implicatedAccounts(p.now());

        core::TextTable table;
        table.header({"metric", "value"});
        table.row({"verification group tests",
                   core::format("%llu",
                                static_cast<unsigned long long>(
                                    verified.group_tests))});
        table.row({"contention bursts observed",
                   core::format("%llu",
                                static_cast<unsigned long long>(
                                    detector.totalBursts()))});
        table.row({"hosts flagged",
                   core::format("%zu", flagged.size())});
        table.row({"accounts implicated",
                   core::format("%zu", implicated.size())});
        table.print();
    }
}
