/**
 * @file
 * Extension kernel: attacker-induced victim scale-out. After priming
 * its own services onto helper hosts, the attacker floods the victim's
 * public endpoint, forcing the orchestrator to create many more victim
 * instances — each landing on hosts the attacker already holds. The
 * steady-load and flood shapes come from the campaign's [workload] and
 * [attack] sections.
 */

#include <cstdio>
#include <set>
#include <utility>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"
#include "faas/workload.hpp"

EAAO_CAMPAIGN_PROGRAM(ext_victim_inflation)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;

    faas::PlatformConfig cfg;
    cfg.profile = campaign::profileOf(spec, "platform", "profile");
    cfg.seed = spec.u64("platform", "seed");
    faas::Platform p(cfg);
    const auto attacker = p.createAccount(0);
    const auto victim = p.createAccount(1);

    // Attacker primes and holds (Strategy 2).
    const core::CampaignResult attack =
        core::runOptimizedCampaign(p, attacker, core::CampaignConfig{});

    // The victim runs a modest steady workload.
    const auto vsvc = p.deployService(victim, faas::ExecEnv::Gen1);
    sim::Rng rng(spec.u64("workload", "rng_seed"));
    faas::LoadSpec steady;
    steady.rps = spec.num("workload", "steady_rps");
    steady.mean_service_time = sim::Duration::millis(
        static_cast<std::int64_t>(
            spec.num("workload", "steady_service_ms")));
    steady.span = sim::Duration::minutes(
        static_cast<std::int64_t>(
            spec.num("workload", "steady_span_minutes")));
    const auto baseline = faas::driveLoad(p, vsvc, steady, rng);

    auto victim_live = [&p, vsvc] {
        const auto &svc = p.orchestrator().service(vsvc);
        return svc.active.size() + svc.idle.size();
    };
    auto coverage_now = [&] {
        std::set<hw::HostId> hosts;
        std::uint32_t covered = 0, total = 0;
        const auto &orch = p.orchestrator();
        for (std::size_t i = 0; i < orch.instanceCount(); ++i) {
            const auto &inst = orch.instance(i);
            if (inst.service != vsvc ||
                inst.state == faas::InstanceState::Terminated) {
                continue;
            }
            ++total;
            covered += attack.occupied_hosts.count(inst.host) > 0;
        }
        return std::pair<std::uint32_t, std::uint32_t>(covered, total);
    };

    const auto before = coverage_now();
    std::printf("steady state: %llu requests served, %zu live victim "
                "instances,\n  %u of %u co-located with the attacker\n\n",
                static_cast<unsigned long long>(baseline.requests),
                victim_live(), before.first, before.second);

    // The attacker floods the victim's public endpoint.
    const auto flood = faas::floodRequests(
        p, vsvc, spec.u32("attack", "flood_requests"),
        sim::Duration::seconds(static_cast<std::int64_t>(
            spec.num("attack", "flood_hold_s"))),
        sim::Duration::millis(static_cast<std::int64_t>(
            spec.num("attack", "flood_gap_ms"))),
        rng);

    const auto after = coverage_now();
    core::TextTable table;
    table.header({"", "before flood", "after flood"});
    table.row({"live victim instances",
               core::format("%u", before.second),
               core::format("%u", after.second)});
    table.row({"co-located with attacker",
               core::format("%u", before.first),
               core::format("%u", after.first)});
    table.row({"coverage",
               core::percent(before.second
                                 ? static_cast<double>(before.first) /
                                       before.second
                                 : 0.0),
               core::percent(after.second
                                 ? static_cast<double>(after.first) /
                                       after.second
                                 : 0.0)});
    table.print();

    const double flood_cost =
        static_cast<double>(flood.requests) *
        spec.num("attack", "flood_hold_s") *
        faas::PricingModel{}.usdPerActiveSecond(faas::sizes::kSmall);
    std::printf("\nthe flood billed the *victim* ~%.2f USD of instance "
                "time and multiplied the\nattackable victim instances "
                "%.1fx — autoscaling turns the public interface "
                "into\nan attack-surface amplifier.\n",
                flood_cost,
                before.second
                    ? static_cast<double>(after.second) / before.second
                    : 0.0);
}
