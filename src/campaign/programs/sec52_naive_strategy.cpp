/**
 * @file
 * Section 5.2, Strategy 1 kernel: naive instance launching. The
 * attacker launches from cold services without any insight into the
 * placement policy; base hosts are account-affine, so coverage is zero
 * unless the attacker's and victim's base hosts happen to overlap.
 * Paper-expectation cells come from `paper` directives in [verify].
 */

#include <cstdio>
#include <string>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"
#include "stats/summary.hpp"

namespace {

struct DcSetup
{
    eaao::faas::DataCenterProfile profile;
    std::uint32_t shards[3]; // attacker, Account 2, Account 3
    std::string paper[2];
};

} // namespace

EAAO_CAMPAIGN_PROGRAM(sec52_naive_strategy)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;

    const int runs = static_cast<int>(spec.u32("workload", "runs"));
    const int services = static_cast<int>(spec.u32("workload", "services"));
    const std::uint32_t per_service =
        spec.u32("workload", "instances_per_service");
    const std::uint32_t victim_count =
        spec.u32("verify", "victim_instances");
    const std::uint64_t seed = spec.u64("platform", "seed");
    const std::uint64_t victim_stride =
        spec.u64("platform", "victim_seed_stride");

    std::printf("=== Section 5.2, Strategy 1: naive launching "
                "(%u instances, %d cold services) ===\n\n",
                services * per_service, services);

    // dc <profile> <shard x3> — shard assignments reproduce the
    // per-account accidents the paper observed; `paper <profile>
    // <acc2> <acc3>` carries the expected-coverage column.
    std::vector<DcSetup> dcs;
    for (const campaign::SpecLine *line :
         spec.directives("tenants", "dc")) {
        if (line->tokens.size() != 5)
            spec.fail(line->line_no,
                      "expected: dc <profile> <shard> <shard> <shard>");
        DcSetup dc;
        dc.profile = campaign::profileByName(spec, line->tokens[1],
                                             line->line_no);
        for (int s = 0; s < 3; ++s)
            dc.shards[s] = static_cast<std::uint32_t>(
                std::stoul(line->tokens[2 + s]));
        dc.paper[0] = dc.paper[1] = "0%";
        dcs.push_back(dc);
    }
    for (const campaign::SpecLine *line :
         spec.directives("verify", "paper")) {
        if (line->tokens.size() != 4)
            spec.fail(line->line_no,
                      "expected: paper <profile> <acc2> <acc3>");
        bool matched = false;
        for (DcSetup &dc : dcs) {
            if (dc.profile.name == line->tokens[1]) {
                dc.paper[0] = line->tokens[2];
                dc.paper[1] = line->tokens[3];
                matched = true;
            }
        }
        if (!matched)
            spec.fail(line->line_no, "paper row names unknown DC '" +
                                         line->tokens[1] + "'");
    }

    core::TextTable table;
    table.header({"DC / victim", "coverage", "(sd)",
                  "attacker hosts", "paper"});

    for (const DcSetup &dc : dcs) {
        for (int victim_idx = 0; victim_idx < 2; ++victim_idx) {
            stats::OnlineStats coverage;
            std::size_t attacker_hosts = 0;
            for (int run = 0; run < runs; ++run) {
                faas::PlatformConfig cfg;
                cfg.profile = dc.profile;
                cfg.seed = seed + victim_idx * victim_stride + run;
                faas::Platform platform(cfg);
                const auto attacker =
                    platform.createAccount(dc.shards[0]);
                const auto victim = platform.createAccount(
                    dc.shards[1 + victim_idx]);

                const core::CampaignResult attack =
                    core::runNaiveCampaign(platform, attacker,
                                           services, per_service);
                attacker_hosts = attack.occupied_hosts.size();

                const auto vsvc = platform.deployService(
                    victim, faas::ExecEnv::Gen1);
                const auto vids = platform.connect(vsvc, victim_count);
                coverage.add(core::measureCoverageOracle(
                                 platform, attack.occupied_hosts, vids)
                                 .coverage());
            }
            table.row({dc.profile.name + " / Acc" +
                           std::to_string(victim_idx + 2),
                       core::percent(coverage.mean()),
                       core::format("%.3f", coverage.stddev()),
                       core::format("%zu", attacker_hosts),
                       dc.paper[victim_idx]});
        }
    }
    table.print();
}
