/**
 * @file
 * The `loadgen` program: open-loop arrival campaigns on the sharded
 * platform (docs/load-engine.md).
 *
 * The [workload] section declares arrival streams — one `stream`
 * directive per (service, family, rate, burstiness, service time,
 * span, churn, start) tuple — plus the warm-capacity and admission
 * knobs; [tenants] declares the account/service topology with the
 * same directive grammar testkit replay files use. The program
 * compiles everything into ShardOps, drives the window loop itself,
 * and samples the fleet-wide SLO counters (slo.admitted, slo.p99_s,
 * ...) at every barrier so [triggers] conditions can watch admission
 * backpressure develop. stdout is byte-identical across every
 * (--shards, --threads) grouping — CI diffs it like any other
 * determinism gate.
 */

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/report.hpp"
#include "faas/sharded.hpp"
#include "obs/metrics.hpp"
#include "support/bench_timer.hpp"
#include "support/options.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace {

using namespace eaao;

/** Numeric token of a directive, line-precise on garbage. */
double
numToken(const campaign::CampaignSpec &spec, const campaign::SpecLine &line,
         std::size_t index, const char *what)
{
    if (index >= line.tokens.size())
        spec.fail(line.line_no, std::string("missing ") + what + " token");
    const std::string &token = line.tokens[index];
    char *end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0')
        spec.fail(line.line_no, std::string("bad ") + what + " value '" +
                                    token + "'");
    return v;
}

faas::ArrivalKind
familyByName(const campaign::CampaignSpec &spec,
             const campaign::SpecLine &line, const std::string &name)
{
    if (name == "poisson")
        return faas::ArrivalKind::Poisson;
    if (name == "diurnal")
        return faas::ArrivalKind::Diurnal;
    if (name == "pareto")
        return faas::ArrivalKind::Pareto;
    spec.fail(line.line_no, "unknown arrival family '" + name +
                                "' (poisson, diurnal, pareto)");
}

faas::ShedPolicy
shedByName(const campaign::CampaignSpec &spec, const std::string &name)
{
    if (name == "queue")
        return faas::ShedPolicy::Queue;
    if (name == "reject")
        return faas::ShedPolicy::Reject;
    if (name == "shed_oldest")
        return faas::ShedPolicy::ShedOldest;
    throw campaign::SpecError(spec.file().path +
                              ": unknown shed policy '" + name +
                              "' (queue, reject, shed_oldest)");
}

faas::ContainerSize
sizeOf(std::uint32_t idx)
{
    switch (idx) {
    case 0:
        return faas::sizes::kPico;
    case 2:
        return faas::sizes::kMedium;
    case 3:
        return faas::sizes::kLarge;
    default:
        return faas::sizes::kSmall;
    }
}

/** One parsed `stream` directive. */
struct StreamDecl
{
    std::uint32_t service = 0; //!< index into the [tenants] services
    std::string family;
    faas::ArrivalSpec spec;
    double start_s = 0.0;
};

std::string
fmtF(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, v);
    return buf;
}

} // namespace

EAAO_CAMPAIGN_PROGRAM(loadgen)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;

    // -- Platform shape. --------------------------------------------
    faas::ShardedConfig cfg;
    cfg.profile = campaign::profileOf(spec, "platform", "profile");
    if (const std::uint32_t hosts = spec.u32("platform", "hosts", 0))
        cfg.profile.host_count = hosts;
    cfg.seed = spec.u64("platform", "seed");
    cfg.window =
        sim::Duration::seconds(spec.u32("workload", "window_s", 30));
    cfg.orchestrator.admission_depth = spec.u32("workload", "depth", 64);
    cfg.orchestrator.shed_policy =
        shedByName(spec, spec.str("workload", "shed", "queue"));
    cfg.shards = support::shardsFromArgs(ctx.argc, ctx.argv,
                                         spec.u32("workload", "shards", 1));
    cfg.threads = ctx.threads;

    faas::ShardedPlatform platform(cfg);

    // -- Tenant topology ([tenants], testkit directive grammar). -----
    std::vector<faas::AccountId> accounts;
    for (const campaign::SpecLine *line :
         spec.directives("tenants", "account")) {
        const double shard = numToken(spec, *line, 1, "account shard");
        const double quota = numToken(spec, *line, 2, "account quota");
        accounts.push_back(platform.createAccount(
            shard < 0 ? std::optional<std::uint32_t>{}
                      : std::optional<std::uint32_t>(
                            static_cast<std::uint32_t>(shard)),
            static_cast<std::uint32_t>(quota)));
    }
    std::vector<faas::ServiceId> services;
    for (const campaign::SpecLine *line :
         spec.directives("tenants", "service")) {
        const auto acct = static_cast<std::size_t>(
            numToken(spec, *line, 1, "service account"));
        if (acct >= accounts.size())
            spec.fail(line->line_no, "service references missing account");
        const auto env = static_cast<std::uint32_t>(
            numToken(spec, *line, 2, "service env"));
        const auto size = static_cast<std::uint32_t>(
            numToken(spec, *line, 3, "service size"));
        services.push_back(platform.deployService(
            accounts[acct],
            env == 0 ? faas::ExecEnv::Gen1 : faas::ExecEnv::Gen2,
            sizeOf(size)));
    }
    if (services.empty())
        throw campaign::SpecError(spec.file().path +
                                  ": loadgen needs at least one "
                                  "[tenants] service");

    // -- Streams ([workload] stream directives). ---------------------
    std::vector<StreamDecl> streams;
    for (const campaign::SpecLine *line :
         spec.directives("workload", "stream")) {
        StreamDecl s;
        s.service = static_cast<std::uint32_t>(
            numToken(spec, *line, 1, "stream service"));
        if (s.service >= services.size())
            spec.fail(line->line_no, "stream references missing service");
        if (line->tokens.size() < 3)
            spec.fail(line->line_no, "missing stream family token");
        s.family = line->tokens[2];
        s.spec.kind = familyByName(spec, *line, s.family);
        s.spec.rate_rps = numToken(spec, *line, 3, "stream rate_rps");
        s.spec.burst_factor = numToken(spec, *line, 4, "stream burst");
        s.spec.mean_service_time = sim::Duration::fromSecondsF(
            numToken(spec, *line, 5, "stream service_ms") / 1e3);
        s.spec.span = sim::Duration::fromSecondsF(
            numToken(spec, *line, 6, "stream span_s"));
        const double churn_s = numToken(spec, *line, 7, "stream churn_s");
        s.spec.churn_every =
            churn_s > 0 ? sim::Duration::fromSecondsF(churn_s)
                        : sim::Duration();
        s.start_s = numToken(spec, *line, 8, "stream start_s");
        if (s.spec.rate_rps <= 0 || s.spec.span.ns() <= 0)
            spec.fail(line->line_no, "stream needs rate > 0 and span > 0");
        streams.push_back(std::move(s));
    }
    if (streams.empty())
        throw campaign::SpecError(spec.file().path +
                                  ": loadgen needs at least one "
                                  "[workload] stream");

    // -- Compile to ShardOps. ----------------------------------------
    const std::uint32_t warm = spec.u32("workload", "warm_connections", 0);
    const std::uint32_t conc = spec.u32("workload", "concurrency", 0);
    std::vector<faas::ShardOp> ops;
    std::uint32_t step = 0;
    for (const faas::ServiceId svc : services) {
        if (conc > 0) {
            faas::ShardOp op;
            op.kind = faas::ShardOp::Kind::SetConcurrency;
            op.step = step++;
            op.service = svc;
            op.a = conc;
            ops.push_back(op);
        }
        if (warm > 0) {
            faas::ShardOp op;
            op.kind = faas::ShardOp::Kind::Connect;
            op.step = step++;
            op.service = svc;
            op.a = warm;
            ops.push_back(op);
        }
    }
    sim::SimTime last_end;
    for (const StreamDecl &s : streams) {
        faas::ShardOp op;
        op.kind = faas::ShardOp::Kind::OpenLoop;
        op.step = step++;
        op.at = sim::SimTime() + sim::Duration::fromSecondsF(s.start_s);
        op.service = services[s.service];
        op.a = static_cast<std::uint32_t>(s.spec.kind);
        op.rate = s.spec.rate_rps;
        op.burst = s.spec.burst_factor;
        op.dur = s.spec.mean_service_time;
        op.span = s.spec.span;
        op.gap = s.spec.churn_every;
        ops.push_back(op);
        last_end = std::max(last_end, op.at + op.span);
    }
    std::sort(ops.begin(), ops.end(),
              [](const faas::ShardOp &a, const faas::ShardOp &b) {
                  return a.at < b.at;
              });
    const sim::SimTime horizon =
        last_end +
        sim::Duration::seconds(spec.u32("workload", "drain_s", 120));

    // -- Window loop, sampling SLO counters at every barrier. --------
    support::BenchTimer timer("loadgen_" + spec.name(), cfg.threads,
                              cfg.seed);
    const double win_s = static_cast<double>(cfg.window.ns()) / 1e9;
    platform.beginRun(std::move(ops), horizon);
    while (platform.running()) {
        platform.advanceWindow();
        platform.completeWindow();
        if (ctx.triggers.empty())
            continue;
        const faas::ShardedTotals t = platform.totals();
        const faas::SloStats slo = platform.sloTotals();
        const double t_s = t.windows * win_s;
        const auto rec = [&](const char *name, double v) {
            ctx.triggers.record(name, t_s, v);
        };
        rec("arrivals.open_loop", static_cast<double>(t.open_loop));
        rec("orch.instances", static_cast<double>(t.instances));
        rec("slo.admitted", static_cast<double>(slo.admitted));
        rec("slo.served_warm", static_cast<double>(slo.served_warm));
        rec("slo.queued", static_cast<double>(slo.queued));
        rec("slo.dispatched", static_cast<double>(slo.dispatched));
        rec("slo.rejected", static_cast<double>(slo.rejected));
        rec("slo.shed", static_cast<double>(slo.shed));
        rec("slo.p50_s", obs::histogramQuantile(slo.latency_s, 0.50));
        rec("slo.p95_s", obs::histogramQuantile(slo.latency_s, 0.95));
        rec("slo.p99_s", obs::histogramQuantile(slo.latency_s, 0.99));
        rec("slo.cold_p99_s",
            obs::histogramQuantile(slo.cold_wait_s, 0.99));
        ctx.triggers.evaluateAt(t_s);
    }
    support::maybeWriteBenchJson(ctx.argc, ctx.argv, timer.stop());

    // -- Report. -----------------------------------------------------
    core::TextTable decl;
    decl.header({"svc", "family", "rate_rps", "burst", "service_ms",
                 "span_s", "churn_s", "start_s"});
    for (const StreamDecl &s : streams) {
        decl.row({std::to_string(s.service), s.family,
                  fmtF(s.spec.rate_rps, 1), fmtF(s.spec.burst_factor, 2),
                  fmtF(s.spec.mean_service_time.ns() / 1e6, 1),
                  fmtF(s.spec.span.ns() / 1e9, 1),
                  fmtF(s.spec.churn_every.ns() / 1e9, 1),
                  fmtF(s.start_s, 1)});
    }
    decl.print();

    const faas::ShardedTotals t = platform.totals();
    const faas::SloStats slo = platform.sloTotals();
    std::printf("\nadmission\n");
    core::TextTable adm;
    adm.header({"admitted", "served_warm", "queued", "dispatched",
                "rejected", "shed"});
    adm.row({std::to_string(slo.admitted), std::to_string(slo.served_warm),
             std::to_string(slo.queued), std::to_string(slo.dispatched),
             std::to_string(slo.rejected), std::to_string(slo.shed)});
    adm.print();

    std::printf("\nslo percentiles (s)\n");
    core::TextTable pct;
    pct.header({"series", "p50", "p90", "p95", "p99", "p99.9"});
    const auto row = [&](const char *name, const obs::Histogram &h) {
        pct.row({name, fmtF(obs::histogramQuantile(h, 0.50), 6),
                 fmtF(obs::histogramQuantile(h, 0.90), 6),
                 fmtF(obs::histogramQuantile(h, 0.95), 6),
                 fmtF(obs::histogramQuantile(h, 0.99), 6),
                 fmtF(obs::histogramQuantile(h, 0.999), 6)});
    };
    row("latency", slo.latency_s);
    row("cold_wait", slo.cold_wait_s);
    pct.print();

    std::printf("\nwindows %u  arrivals %llu  instances %llu  "
                "events_processed %llu\n",
                t.windows, static_cast<unsigned long long>(t.open_loop),
                static_cast<unsigned long long>(t.instances),
                static_cast<unsigned long long>(t.events_processed));
    std::printf("final_spend_usd %.2f\n", t.final_spend_usd);
}
