/**
 * @file
 * Shared helpers for the ported campaign programs: resolving
 * data-center profile names from spec files.
 */

#ifndef EAAO_CAMPAIGN_PROGRAMS_COMMON_HPP
#define EAAO_CAMPAIGN_PROGRAMS_COMMON_HPP

#include "campaign/spec.hpp"
#include "faas/fleet.hpp"

#include <string>
#include <vector>

namespace eaao::campaign {

/**
 * The paper-calibrated preset named @p name (us-east1 / us-central1 /
 * us-west1). Throws SpecError at @p line_no of @p spec otherwise.
 */
faas::DataCenterProfile profileByName(const CampaignSpec &spec,
                                      const std::string &name,
                                      std::size_t line_no);

/** Profiles named by the required list `[section] key = n1 n2 ...`. */
std::vector<faas::DataCenterProfile>
profileList(const CampaignSpec &spec, const std::string &section,
            const std::string &key);

/** Profile named by the required scalar `[section] key = name`. */
faas::DataCenterProfile profileOf(const CampaignSpec &spec,
                                  const std::string &section,
                                  const std::string &key);

} // namespace eaao::campaign

#endif // EAAO_CAMPAIGN_PROGRAMS_COMMON_HPP
