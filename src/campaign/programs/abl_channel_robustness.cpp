/**
 * @file
 * Ablation kernel: robustness of the covert-channel verification
 * pipeline. Each `arm` directive degrades the channel — background
 * contention, per-unit detection probability, trial count — and the
 * table reports clustering accuracy and the test count (noise pushes
 * groups onto the pairwise fallback path).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "channel/covert.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "faas/platform.hpp"
#include "stats/clustering.hpp"

namespace {

struct Row
{
    eaao::channel::RngChannelConfig chan;
    std::string label;
};

} // namespace

EAAO_CAMPAIGN_PROGRAM(abl_channel_robustness)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;

    const faas::DataCenterProfile profile =
        campaign::profileOf(spec, "platform", "profile");
    const std::uint64_t seed = spec.u64("platform", "seed");
    const std::uint32_t instances = spec.u32("workload", "instances");

    // arm "<label>" <trials> <detect_min> <background_prob> <unit_detect_prob>
    std::vector<Row> rows;
    for (const campaign::SpecLine *line :
         spec.directives("attack", "arm")) {
        if (line->tokens.size() != 6)
            spec.fail(line->line_no,
                      "expected: arm <label> <trials> <detect_min> "
                      "<background_prob> <unit_detect_prob>");
        Row row;
        row.label = line->tokens[1];
        row.chan.trials = static_cast<std::uint32_t>(
            std::stoul(line->tokens[2]));
        row.chan.detect_min = static_cast<std::uint32_t>(
            std::stoul(line->tokens[3]));
        row.chan.background_prob = std::stod(line->tokens[4]);
        row.chan.unit_detect_prob = std::stod(line->tokens[5]);
        rows.push_back(row);
    }

    core::TextTable table;
    table.header({"channel", "tests", "precision", "recall",
                  "test time"});

    for (std::size_t r = 0; r < rows.size(); ++r) {
        faas::PlatformConfig cfg;
        cfg.profile = profile;
        cfg.seed = seed + r;
        faas::Platform p(cfg);
        const auto acct = p.createAccount();
        const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
        core::LaunchOptions launch;
        launch.instances = instances;
        launch.disconnect_after = false;
        const auto obs = core::launchAndObserve(p, svc, launch);

        channel::RngChannel chan(p, rows[r].chan);
        const auto result = core::verifyScalable(
            p, chan, obs.ids, obs.fp_keys, obs.class_keys);

        std::vector<std::uint64_t> oracle;
        for (const auto id : obs.ids)
            oracle.push_back(p.oracleHostOf(id));
        const auto pc = stats::comparePairs(result.cluster_of, oracle);

        table.row({rows[r].label,
                   core::format("%llu",
                                static_cast<unsigned long long>(
                                    result.group_tests)),
                   core::format("%.4f", pc.precision()),
                   core::format("%.4f", pc.recall()),
                   result.elapsed.str()});
    }
    table.print();
}
