/**
 * @file
 * Section 5.2 kernel: the optimized launching strategy in the Gen 2
 * environment (both attacker and victims run Gen 2 instances).
 *
 * Each (data center, victim account, run) triple runs as one
 * independent trial on the parallel harness; aggregation is serial in
 * trial order so the table is identical for any --threads value.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "exp/trial_runner.hpp"
#include "faas/platform.hpp"
#include "stats/summary.hpp"
#include "support/bench_timer.hpp"

namespace {

struct DcSetup
{
    eaao::faas::DataCenterProfile profile;
    std::uint32_t shards[3];
    std::string paper[2];
};

} // namespace

EAAO_CAMPAIGN_PROGRAM(sec52_gen2_coverage)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;
    const unsigned threads = ctx.threads;

    const int runs = static_cast<int>(spec.u32("workload", "runs"));
    const std::uint32_t victim_count =
        spec.u32("verify", "victim_instances");
    const std::uint64_t seed = spec.u64("platform", "seed");
    const std::uint64_t victim_stride =
        spec.u64("platform", "victim_seed_stride");

    std::printf("=== Section 5.2: optimized strategy in the Gen 2 "
                "environment (%d runs) ===\n\n", runs);

    // dc <profile> <shard x3> <paper_acc2> <paper_acc3>
    std::vector<DcSetup> dcs;
    for (const campaign::SpecLine *line :
         spec.directives("tenants", "dc")) {
        if (line->tokens.size() != 7)
            spec.fail(line->line_no,
                      "expected: dc <profile> <shard> <shard> <shard> "
                      "<paper_acc2> <paper_acc3>");
        DcSetup dc;
        dc.profile = campaign::profileByName(spec, line->tokens[1],
                                             line->line_no);
        for (int s = 0; s < 3; ++s)
            dc.shards[s] = static_cast<std::uint32_t>(
                std::stoul(line->tokens[2 + s]));
        dc.paper[0] = line->tokens[5];
        dc.paper[1] = line->tokens[6];
        dcs.push_back(dc);
    }

    const std::size_t n_trials = dcs.size() * 2 * runs;
    support::BenchTimer timer(spec.name(), threads, seed);
    const std::vector<double> coverages = exp::runTrials(
        n_trials, seed,
        [&](exp::TrialContext &trial) {
            const DcSetup &dc = dcs[trial.index / (2 * runs)];
            const int victim_idx =
                static_cast<int>((trial.index / runs) % 2);
            const int run = static_cast<int>(trial.index % runs);

            faas::PlatformConfig cfg;
            cfg.profile = dc.profile;
            cfg.seed = seed + victim_idx * victim_stride + run;
            faas::Platform platform(cfg);
            const auto attacker = platform.createAccount(dc.shards[0]);
            const auto victim = platform.createAccount(
                dc.shards[1 + victim_idx]);

            core::CampaignConfig campaign;
            campaign.env = faas::ExecEnv::Gen2;
            const core::CampaignResult attack =
                core::runOptimizedCampaign(platform, attacker,
                                           campaign);

            const auto vsvc = platform.deployService(
                victim, faas::ExecEnv::Gen2);
            const auto vids = platform.connect(vsvc, victim_count);
            return core::measureCoverageOracle(
                       platform, attack.occupied_hosts, vids)
                .coverage();
        },
        threads);
    support::maybeWriteBenchJson(ctx.argc, ctx.argv, timer.stop());

    core::TextTable table;
    table.header({"DC / victim", "coverage", "(sd)", "paper"});

    for (std::size_t d = 0; d < dcs.size(); ++d) {
        for (int victim_idx = 0; victim_idx < 2; ++victim_idx) {
            stats::OnlineStats coverage;
            for (int run = 0; run < runs; ++run)
                coverage.add(coverages[(d * 2 + victim_idx) * runs +
                                       run]);
            table.row({dcs[d].profile.name + " / Acc" +
                           std::to_string(victim_idx + 2),
                       core::percent(coverage.mean()),
                       core::format("%.3f", coverage.stddev()),
                       dcs[d].paper[victim_idx]});
        }
    }
    table.print();
}
