/**
 * @file
 * Profile-name resolution for campaign programs.
 */

#include "campaign/programs/common.hpp"

namespace eaao::campaign {

faas::DataCenterProfile
profileByName(const CampaignSpec &spec, const std::string &name,
              std::size_t line_no)
{
    if (name == "us-east1")
        return faas::DataCenterProfile::usEast1();
    if (name == "us-central1")
        return faas::DataCenterProfile::usCentral1();
    if (name == "us-west1")
        return faas::DataCenterProfile::usWest1();
    spec.fail(line_no, "unknown data-center profile '" + name +
                           "' (known: us-east1, us-central1, us-west1)");
}

std::vector<faas::DataCenterProfile>
profileList(const CampaignSpec &spec, const std::string &section,
            const std::string &key)
{
    const std::vector<std::string> names = spec.strList(section, key);
    const SpecLine *line = spec.file().section(section)->find(key);
    std::vector<faas::DataCenterProfile> profiles;
    profiles.reserve(names.size());
    for (const std::string &name : names)
        profiles.push_back(profileByName(spec, name, line->line_no));
    return profiles;
}

faas::DataCenterProfile
profileOf(const CampaignSpec &spec, const std::string &section,
          const std::string &key)
{
    const std::string name = spec.str(section, key);
    const SpecLine *line = spec.file().section(section)->find(key);
    return profileByName(spec, name, line->line_no);
}

} // namespace eaao::campaign
