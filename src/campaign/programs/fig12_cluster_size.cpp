/**
 * @file
 * Figure 12 kernel: estimating the scale of each data center's Cloud
 * Run-style cluster by exploring hosts with the optimized strategy
 * (paper §5.2). The cumulative number of unique apparent hosts
 * flattens out, so its final value estimates the cluster size.
 */

#include <cstdio>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"

EAAO_CAMPAIGN_PROGRAM(fig12_cluster_size)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;

    const std::vector<faas::DataCenterProfile> dcs =
        campaign::profileList(spec, "platform", "profiles");
    const std::uint64_t seed = spec.u64("platform", "seed");
    const std::uint32_t accounts_per_dc =
        spec.u32("tenants", "accounts");
    const int services = static_cast<int>(spec.u32("workload", "services"));
    const int launches_per_service =
        static_cast<int>(spec.u32("workload", "launches_per_service"));
    const std::size_t total_launches = static_cast<std::size_t>(
        accounts_per_dc * services * launches_per_service);

    std::vector<core::ExplorationResult> results;
    for (std::size_t d = 0; d < dcs.size(); ++d) {
        faas::PlatformConfig cfg;
        cfg.profile = dcs[d];
        cfg.seed = seed + d;
        faas::Platform platform(cfg);

        std::vector<faas::AccountId> accounts;
        for (std::uint32_t a = 0; a < accounts_per_dc; ++a) {
            accounts.push_back(platform.createAccount(
                a % platform.fleet().shardCount()));
        }

        core::PrimeOptions prime; // 800 instances, 10-minute interval
        results.push_back(core::exploreClusterSize(
            platform, accounts, services, launches_per_service, prime));
    }

    core::TextTable table;
    table.header({"launch", dcs[0].name, dcs[1].name, dcs[2].name});
    for (std::size_t l = 0; l < total_launches; l += 8) {
        std::vector<std::string> row = {
            core::format("%zu", l + 1)};
        for (const auto &result : results) {
            row.push_back(core::format(
                "%zu", l < result.cumulative_unique.size()
                           ? result.cumulative_unique[l]
                           : result.total));
        }
        table.row(row);
    }
    std::vector<std::string> final_row = {
        core::format("%zu", total_launches)};
    for (const auto &result : results)
        final_row.push_back(core::format("%zu", result.total));
    table.row(final_row);
    table.print();

    std::printf("\ntotal unique apparent hosts found: %zu (%s), %zu "
                "(%s), %zu (%s)\npaper: 474 in us-east1, 1702 in "
                "us-central1, 199 in us-west1 — the curves\nflatten, "
                "so the totals estimate the cluster sizes.\n",
                results[0].total, dcs[0].name.c_str(),
                results[1].total, dcs[1].name.c_str(),
                results[2].total, dcs[2].name.c_str());
}
