/**
 * @file
 * Figure 4 kernel: Gen 1 fingerprint accuracy (FMI / precision /
 * recall) as a function of the T_boot rounding precision p_boot.
 *
 * Protocol (paper Section 4.4.1): in each data center, launch the
 * configured number of concurrent instances, record each instance's
 * raw T_boot reading, generate the co-location ground truth with the
 * scalable covert-channel methodology, then sweep p_boot and score
 * the fingerprints with pair-counting metrics. All knobs — the DC
 * list, instance count, runs, seeds, and the p_boot sweep — come from
 * the campaign file (bench/campaigns/fig04_fingerprint_accuracy.scenario).
 */

#include <cstdio>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/fingerprint.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "exp/trial_runner.hpp"
#include "stats/clustering.hpp"
#include "stats/summary.hpp"
#include "support/bench_timer.hpp"
#include "support/options.hpp"

namespace {

struct RunData
{
    std::vector<eaao::core::Gen1Reading> readings;
    std::vector<std::uint64_t> truth; // channel-verified clusters
};

RunData
collectRun(const eaao::faas::DataCenterProfile &profile,
           std::uint64_t seed, std::uint32_t instances)
{
    using namespace eaao;
    faas::PlatformConfig cfg;
    cfg.profile = profile;
    cfg.seed = seed;
    faas::Platform platform(cfg);
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);

    core::LaunchOptions launch;
    launch.instances = instances;
    launch.disconnect_after = false;
    const core::LaunchObservation obs =
        core::launchAndObserve(platform, svc, launch);

    channel::RngChannel chan(platform);
    const core::VerifyResult verified = core::verifyScalable(
        platform, chan, obs.ids, obs.fp_keys, obs.class_keys);

    RunData run;
    run.readings = obs.readings;
    run.truth = verified.cluster_of;
    return run;
}

} // namespace

EAAO_CAMPAIGN_PROGRAM(fig04_fingerprint_accuracy)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;
    const unsigned threads = ctx.threads;

    const std::uint32_t instances = spec.u32("workload", "instances");
    const int runs_per_dc =
        static_cast<int>(spec.u32("workload", "runs_per_dc"));
    const std::uint64_t seed = spec.u64("workload", "seed");
    const std::uint64_t dc_stride = spec.u64("workload", "dc_seed_stride");
    const std::vector<double> p_boots = spec.numList("attack", "p_boots");
    const std::vector<faas::DataCenterProfile> dcs =
        campaign::profileList(spec, "platform", "profiles");

    // Collect all runs once — each (DC, run) pair is an independent
    // trial fanned out across the worker pool; slot-per-trial results
    // keep the sweep below byte-identical for any thread count. The
    // p_boot sweep itself is offline over the recorded readings.
    support::BenchTimer timer(spec.name(), threads, seed);
    const std::vector<RunData> runs = exp::runTrials(
        dcs.size() * runs_per_dc, seed,
        [&](exp::TrialContext &trial) {
            const std::size_t d = trial.index / runs_per_dc;
            const std::size_t r = trial.index % runs_per_dc;
            return collectRun(dcs[d], seed + d * dc_stride + r, instances);
        },
        threads);
    support::maybeWriteBenchJson(ctx.argc, ctx.argv, timer.stop());

    core::TextTable table;
    table.header({"p_boot", "FMI", "FMI(sd)", "precision", "prec(sd)",
                  "recall", "rec(sd)"});

    for (const double p_boot : p_boots) {
        stats::OnlineStats fmi, precision, recall;
        for (const RunData &run : runs) {
            std::vector<std::uint64_t> keys;
            keys.reserve(run.readings.size());
            for (const auto &reading : run.readings) {
                keys.push_back(core::fingerprintKey(
                    core::quantizeGen1(reading, p_boot)));
            }
            const stats::PairConfusion pc =
                stats::comparePairs(keys, run.truth);
            fmi.add(pc.fmi());
            precision.add(pc.precision());
            recall.add(pc.recall());
        }
        table.row({core::format("%8.0e s", p_boot),
                   core::format("%.4f", fmi.mean()),
                   core::format("%.4f", fmi.stddev()),
                   core::format("%.4f", precision.mean()),
                   core::format("%.4f", precision.stddev()),
                   core::format("%.4f", recall.mean()),
                   core::format("%.4f", recall.stddev())});
    }
    table.print();
}
