/**
 * @file
 * Ablation kernel: the p_boot trade-off between instantaneous accuracy
 * and fingerprint lifetime (expiration ~ p_boot * f / eps, §4.4.2).
 * Sweeps p_boot over one launch plus a multi-hour tracking window and
 * reports both sides of the trade.
 */

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/fingerprint.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "core/tracker.hpp"
#include "faas/platform.hpp"
#include "stats/cdf.hpp"
#include "stats/clustering.hpp"

EAAO_CAMPAIGN_PROGRAM(abl_pboot_tradeoff)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;

    faas::PlatformConfig cfg;
    cfg.profile = campaign::profileOf(spec, "platform", "profile");
    cfg.seed = spec.u64("platform", "seed");
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);

    // One launch for the accuracy side...
    core::LaunchOptions launch;
    launch.instances = spec.u32("workload", "instances");
    launch.disconnect_after = false;
    const auto obs = core::launchAndObserve(p, svc, launch);
    std::vector<std::uint64_t> oracle;
    for (const auto id : obs.ids)
        oracle.push_back(p.oracleHostOf(id));

    // ...and a long tracking window (one probe per host) for the
    // lifetime side.
    const int track_hours =
        static_cast<int>(spec.u32("workload", "track_hours"));
    std::vector<faas::InstanceId> probes;
    {
        std::set<hw::HostId> seen;
        for (const auto id : obs.ids) {
            if (seen.insert(p.oracleHostOf(id)).second)
                probes.push_back(id);
        }
    }
    std::vector<core::FingerprintHistory> histories(probes.size());
    for (int hour = 0; hour <= track_hours; ++hour) {
        for (std::size_t i = 0; i < probes.size(); ++i) {
            faas::SandboxView sbx = p.sandbox(probes[i]);
            histories[i].add(p.now(),
                             core::readGen1Median(sbx, 15).tboot_s);
        }
        p.advance(sim::Duration::hours(1));
    }

    core::TextTable table;
    table.header({"p_boot", "FMI", "precision", "recall",
                  "median expiration", "10% expire by"});
    for (const double p_boot : spec.numList("attack", "p_boots")) {
        std::vector<std::uint64_t> keys;
        for (const auto &reading : obs.readings) {
            keys.push_back(core::fingerprintKey(
                core::quantizeGen1(reading, p_boot)));
        }
        const auto pc = stats::comparePairs(keys, oracle);

        std::vector<double> expirations_d;
        for (const auto &history : histories) {
            const auto exp_s = history.expirationSeconds(p_boot);
            expirations_d.push_back(exp_s ? *exp_s / 86400.0 : 1e6);
        }
        const stats::EmpiricalCdf cdf(expirations_d);

        auto days = [](double d) {
            return d >= 1e5 ? std::string(">1000 d")
                            : core::format("%.1f d", d);
        };
        table.row({core::format("%g s", p_boot),
                   core::format("%.4f", pc.fmi()),
                   core::format("%.4f", pc.precision()),
                   core::format("%.4f", pc.recall()),
                   days(cdf.quantile(0.5)), days(cdf.quantile(0.1))});
    }
    table.print();
}
