/**
 * @file
 * Figure 6 / Experiment 1 kernel: instance distribution across hosts
 * and the decay of idle instances after disconnecting (paper §5.1).
 * Launch the configured burst, record the host footprint, disconnect,
 * and sample surviving idle instances over time. Knobs come from
 * bench/campaigns/fig06_idle_termination.scenario.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"

EAAO_CAMPAIGN_PROGRAM(fig06_idle_termination)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;

    faas::PlatformConfig cfg;
    cfg.profile = campaign::profileOf(spec, "platform", "profile");
    cfg.seed = spec.u64("platform", "seed");
    faas::Platform platform(cfg);
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);

    const std::uint32_t connect = spec.u32("workload", "connect");
    const int decay_half_min =
        static_cast<int>(spec.u32("workload", "decay_half_minutes"));

    const auto ids = platform.connect(svc, connect);

    // Observation 1: near-uniform spread.
    std::map<hw::HostId, int> per_host;
    for (const auto id : ids)
        ++per_host[platform.oracleHostOf(id)];
    std::map<int, int> count_hist;
    for (const auto &[host, count] : per_host)
        ++count_hist[count];

    std::printf("%u instances placed onto %zu hosts "
                "(paper: 75 hosts)\n\n", connect, per_host.size());
    core::TextTable dist;
    dist.header({"instances/host", "hosts"});
    for (const auto &[count, hosts] : count_hist)
        dist.row({core::format("%d", count), core::format("%d", hosts)});
    dist.print();

    // Observation 2 / Figure 6: disconnect, then watch idle decay.
    platform.disconnectAll(svc);
    std::printf("\nidle instances after disconnecting:\n\n");
    core::TextTable decay;
    decay.header({"minutes", "idle instances"});
    for (int half_min = 0; half_min <= decay_half_min; ++half_min) {
        int idle = 0;
        for (const auto id : ids) {
            idle += (platform.instanceInfo(id).state ==
                     faas::InstanceState::Idle);
        }
        decay.row({core::format("%.1f", half_min * 0.5),
                   core::format("%d", idle)});
        platform.advance(sim::Duration::seconds(30));
    }
    decay.print();
}
