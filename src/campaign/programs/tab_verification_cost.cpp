/**
 * @file
 * Section 4.3 kernel: cost comparison of scalable fingerprint-assisted
 * verification vs conventional pairwise covert-channel testing (and
 * SIE) for one launch of concurrent instances.
 *
 * The four methods are evaluated on four independent platforms; each
 * evaluation is one trial on the parallel harness, and the rows are
 * printed serially in method order so stdout is identical for any
 * --threads value.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "exp/trial_runner.hpp"
#include "faas/platform.hpp"
#include "stats/clustering.hpp"
#include "support/bench_timer.hpp"

namespace {

struct Setup
{
    std::unique_ptr<eaao::faas::Platform> platform;
    eaao::core::LaunchObservation obs;

    Setup(const eaao::faas::DataCenterProfile &profile,
          std::uint64_t seed, std::uint32_t instances)
    {
        using namespace eaao;
        faas::PlatformConfig cfg;
        cfg.profile = profile;
        cfg.seed = seed;
        platform = std::make_unique<faas::Platform>(cfg);
        const auto acct = platform->createAccount();
        const auto svc =
            platform->deployService(acct, faas::ExecEnv::Gen1);
        core::LaunchOptions launch;
        launch.instances = instances;
        launch.disconnect_after = false;
        obs = core::launchAndObserve(*platform, svc, launch);
    }
};

/** One evaluated method: a table row, or the SIE survivor count. */
struct MethodResult
{
    std::vector<std::string> row;
    std::size_t sie_survivors = 0;
};

std::vector<std::string>
scoreRow(const char *label, const Setup &s,
         const eaao::core::VerifyResult &r)
{
    using namespace eaao;
    std::vector<std::uint64_t> oracle;
    for (const auto id : s.obs.ids)
        oracle.push_back(s.platform->oracleHostOf(id));
    const auto pc = stats::comparePairs(r.cluster_of, oracle);
    const bool cents = std::string(label) == "scalable (ours)";
    return {label,
            core::format("%llu",
                         static_cast<unsigned long long>(r.group_tests)),
            r.elapsed.str(),
            core::format(cents ? "%.2f" : "%.0f", r.cost_usd),
            core::format("%llu", static_cast<unsigned long long>(
                                     pc.fp + pc.fn))};
}

} // namespace

EAAO_CAMPAIGN_PROGRAM(tab_verification_cost)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;
    const unsigned threads = ctx.threads;

    const faas::DataCenterProfile profile =
        campaign::profileOf(spec, "platform", "profile");
    const std::uint64_t seed = spec.u64("platform", "seed");
    const std::uint32_t instances = spec.u32("workload", "instances");

    std::printf("=== Section 4.3: co-location verification cost for "
                "%u instances (%s) ===\n\n", instances,
                profile.name.c_str());

    support::BenchTimer timer(spec.name(), threads, seed);
    const std::vector<MethodResult> methods = exp::runTrials(
        4, seed,
        [&](exp::TrialContext &trial) {
            Setup s(profile, seed + trial.index, instances);
            MethodResult out;
            switch (trial.index) {
            case 0: { // Scalable fingerprint-assisted verification.
                channel::RngChannel chan(*s.platform);
                const core::VerifyResult r = core::verifyScalable(
                    *s.platform, chan, s.obs.ids, s.obs.fp_keys,
                    s.obs.class_keys);
                out.row = scoreRow("scalable (ours)", s, r);
                break;
            }
            case 1: { // Pairwise RNG channel at 100 ms/test.
                channel::RngChannelConfig quick;
                quick.trials = 6;
                quick.detect_min = 3;
                channel::RngChannel chan(*s.platform, quick);
                const core::VerifyResult r =
                    core::verifyPairwise(*s.platform, chan, s.obs.ids);
                out.row = scoreRow("pairwise, 100 ms/test", s, r);
                break;
            }
            case 2: { // Pairwise memory-bus channel (3 s/test).
                channel::MemBusChannel chan(*s.platform);
                const core::VerifyResult r = core::verifyPairwiseMemBus(
                    *s.platform, chan, s.obs.ids);
                out.row = scoreRow("pairwise, mem-bus 3 s/test", s, r);
                break;
            }
            case 3: { // SIE (Inci et al.) is ineffective in FaaS.
                channel::RngChannel chan(*s.platform);
                out.sie_survivors =
                    core::singleInstanceElimination(*s.platform, chan,
                                                    s.obs.ids)
                        .size();
                break;
            }
            }
            return out;
        },
        threads);
    support::maybeWriteBenchJson(ctx.argc, ctx.argv, timer.stop());

    core::TextTable table;
    table.header({"method", "tests", "wall time", "cost (USD)",
                  "pairwise errors"});
    for (std::size_t i = 0; i < 3; ++i)
        table.row(methods[i].row);
    table.print();

    std::printf("\nSIE filtering: %zu of %u instances survive "
                "(paper: SIE removes nothing,\nsince the "
                "orchestrator co-locates instances of the same "
                "service).\n",
                methods[3].sie_survivors, instances);
}
