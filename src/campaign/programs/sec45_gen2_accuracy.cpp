/**
 * @file
 * Section 4.5 kernel: accuracy of the Gen 2 fingerprint
 * (kernel-refined host TSC frequency). Same setup as the Gen 1
 * accuracy evaluation, but fingerprints are the refined frequency read
 * inside the guest: low precision, zero false negatives, so Step-2
 * verification can run fully parallel with no Step 3.
 */

#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "faas/platform.hpp"
#include "stats/clustering.hpp"
#include "stats/summary.hpp"

EAAO_CAMPAIGN_PROGRAM(sec45_gen2_accuracy)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;

    const std::uint32_t instances = spec.u32("workload", "instances");
    const int runs_per_dc =
        static_cast<int>(spec.u32("workload", "runs_per_dc"));
    const std::vector<faas::DataCenterProfile> dcs =
        campaign::profileList(spec, "platform", "profiles");
    const std::uint64_t seed = spec.u64("platform", "seed");
    const std::uint64_t dc_stride =
        spec.u64("platform", "dc_seed_stride");

    std::printf("=== Section 4.5: Gen 2 fingerprint accuracy "
                "(%u instances, %d runs x %zu DCs) ===\n\n",
                instances, runs_per_dc, dcs.size());

    stats::OnlineStats fmi, precision, recall, hosts_per_fp;
    std::uint64_t total_fn = 0;
    stats::OnlineStats waves_parallel, waves_serial;

    for (std::size_t d = 0; d < dcs.size(); ++d) {
        for (int run = 0; run < runs_per_dc; ++run) {
            faas::PlatformConfig cfg;
            cfg.profile = dcs[d];
            cfg.seed = seed + d * dc_stride + run;
            faas::Platform platform(cfg);
            const auto acct = platform.createAccount();
            const auto svc =
                platform.deployService(acct, faas::ExecEnv::Gen2);

            core::LaunchOptions launch;
            launch.instances = instances;
            launch.disconnect_after = false;
            const core::LaunchObservation obs =
                core::launchAndObserve(platform, svc, launch);

            std::vector<std::uint64_t> oracle;
            for (const auto id : obs.ids)
                oracle.push_back(platform.oracleHostOf(id));

            const auto pc = stats::comparePairs(obs.fp_keys, oracle);
            fmi.add(pc.fmi());
            precision.add(pc.precision());
            recall.add(pc.recall());
            total_fn += pc.fn;

            // Hosts per fingerprint (averaged over fingerprints).
            std::map<std::uint64_t, std::set<std::uint64_t>> by_fp;
            for (std::size_t i = 0; i < obs.fp_keys.size(); ++i)
                by_fp[obs.fp_keys[i]].insert(oracle[i]);
            double sum = 0.0;
            for (const auto &[key, hosts] : by_fp)
                sum += static_cast<double>(hosts.size());
            hosts_per_fp.add(sum / static_cast<double>(by_fp.size()));

            // Verification benefit: Gen 2 allows fully parallel Step 2
            // and skips Step 3.
            channel::RngChannel chan_par(platform);
            core::VerifyOptions par;
            par.no_false_negatives = true;
            const auto vp = core::verifyScalable(
                platform, chan_par, obs.ids, obs.fp_keys,
                obs.class_keys, par);
            waves_parallel.add(static_cast<double>(vp.waves));

            channel::RngChannel chan_ser(platform);
            core::VerifyOptions ser;
            ser.parallelize = false;
            const auto vs = core::verifyScalable(
                platform, chan_ser, obs.ids, obs.fp_keys,
                obs.class_keys, ser);
            waves_serial.add(static_cast<double>(vs.waves));
        }
    }

    core::TextTable table;
    table.header({"metric", "measured", "paper"});
    table.row({"FMI", core::format("%.3f", fmi.mean()), "0.66"});
    table.row({"precision", core::format("%.3f", precision.mean()),
               "0.48"});
    table.row({"recall", core::format("%.3f", recall.mean()), "1.0"});
    table.row({"false negatives (total)",
               core::format("%llu",
                            static_cast<unsigned long long>(total_fn)),
               "0 (structural)"});
    table.row({"avg hosts per fingerprint",
               core::format("%.2f", hosts_per_fp.mean()), "2.0"});
    table.row({"verification waves, parallel Step 2",
               core::format("%.1f", waves_parallel.mean()), "-"});
    table.row({"verification waves, serialized",
               core::format("%.1f", waves_serial.mean()), "-"});
    table.print();
}
