/**
 * @file
 * Figure 7 / Experiment 2 kernel: apparent-host footprint of repeated
 * cold launches of the same service (paper §5.1). Each `variant` line
 * in the campaign's [workload] section runs the launch/cool-down loop
 * either reusing one service or deploying a fresh one per launch.
 */

#include <cstdio>
#include <set>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"
#include "obs/export.hpp"

namespace {

void
runVariant(eaao::faas::Platform &platform, eaao::faas::AccountId acct,
           bool fresh_service_per_launch, const char *label, int launches,
           int interval_min)
{
    using namespace eaao;

    faas::ServiceId svc =
        platform.deployService(acct, faas::ExecEnv::Gen1);

    core::TextTable table;
    table.header({"launch", "apparent hosts", "cumulative"});
    std::set<std::uint64_t> cumulative;
    for (int launch = 1; launch <= launches; ++launch) {
        if (fresh_service_per_launch && launch > 1) {
            svc = platform.deployService(acct, faas::ExecEnv::Gen1);
            platform.redeployService(svc); // freshly built image
        }
        core::LaunchOptions opts;
        const core::LaunchObservation obs =
            core::launchAndObserve(platform, svc, opts);
        const auto apparent = obs.apparentHosts();
        cumulative.insert(apparent.begin(), apparent.end());
        table.row({core::format("%d", launch),
                   core::format("%zu", apparent.size()),
                   core::format("%zu", cumulative.size())});
        platform.advance(sim::Duration::minutes(interval_min) - opts.hold);
    }
    std::printf("%s\n", label);
    table.print();
    std::printf("\n");
}

} // namespace

EAAO_CAMPAIGN_PROGRAM(fig07_exp2_same_service)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;

    const obs::ObsConfig obs_cfg =
        obs::ObsConfig::fromArgs(ctx.argc, ctx.argv);
    obs::TrialSet obs_set(obs_cfg);
    obs_set.prepare(1);

    faas::PlatformConfig cfg;
    cfg.profile = campaign::profileOf(spec, "platform", "profile");
    cfg.seed = spec.u64("platform", "seed");
    cfg.obs = obs_set.observer(0);
    faas::Platform platform(cfg);
    const auto acct = platform.createAccount();

    const int launches = static_cast<int>(spec.u32("workload", "launches"));
    const int interval_min =
        static_cast<int>(spec.u32("workload", "interval_minutes"));

    // variant <same_service|fresh_service> "<label>"
    for (const campaign::SpecLine *line :
         spec.directives("workload", "variant")) {
        if (line->tokens.size() != 3 ||
            (line->tokens[1] != "same_service" &&
             line->tokens[1] != "fresh_service")) {
            spec.fail(line->line_no,
                      "expected: variant <same_service|fresh_service> "
                      "\"<label>\"");
        }
        runVariant(platform, acct, line->tokens[1] == "fresh_service",
                   line->tokens[2].c_str(), launches, interval_min);
    }

    obs::writeOutputs(obs_cfg, obs_set);
}
