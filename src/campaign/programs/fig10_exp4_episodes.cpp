/**
 * @file
 * Figure 10 / Experiment 4 (episodes) kernel: helper-host footprints
 * of different services overlap but differ (paper §5.1). Each episode
 * deploys a fresh service and primes it; the helper footprint is the
 * difference between the full and base-launch footprints.
 */

#include <cstdio>
#include <set>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"
#include "obs/export.hpp"

EAAO_CAMPAIGN_PROGRAM(fig10_exp4_episodes)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;

    const obs::ObsConfig obs_cfg =
        obs::ObsConfig::fromArgs(ctx.argc, ctx.argv);
    obs::TrialSet obs_set(obs_cfg);
    obs_set.prepare(1);

    faas::PlatformConfig cfg;
    cfg.profile = campaign::profileOf(spec, "platform", "profile");
    cfg.seed = spec.u64("platform", "seed");
    cfg.obs = obs_set.observer(0);
    faas::Platform platform(cfg);
    const auto acct = platform.createAccount();

    const int episodes = static_cast<int>(spec.u32("workload", "episodes"));
    const int cooldown_min =
        static_cast<int>(spec.u32("workload", "cooldown_minutes"));

    core::TextTable table;
    table.header({"episode", "apparent helper hosts",
                  "cumulative helper hosts"});
    std::set<std::uint64_t> cumulative_helpers;

    for (int episode = 1; episode <= episodes; ++episode) {
        const auto svc =
            platform.deployService(acct, faas::ExecEnv::Gen1);

        core::PrimeOptions prime;
        prime.keep_last_connected = false;
        const auto launches = primeService(platform, svc, prime);

        const std::set<std::uint64_t> base =
            launches.front().apparentHosts();
        std::set<std::uint64_t> all;
        for (const auto &obs : launches) {
            const auto hosts = obs.apparentHosts();
            all.insert(hosts.begin(), hosts.end());
        }
        std::set<std::uint64_t> helpers;
        for (const auto key : all) {
            if (base.count(key) == 0)
                helpers.insert(key);
        }
        cumulative_helpers.insert(helpers.begin(), helpers.end());
        table.row({core::format("%d", episode),
                   core::format("%zu", helpers.size()),
                   core::format("%zu", cumulative_helpers.size())});

        // Cool-down between episodes so the next service starts cold.
        platform.advance(sim::Duration::minutes(cooldown_min));
    }
    table.print();

    obs::writeOutputs(obs_cfg, obs_set);
}
