/**
 * @file
 * Section 4.2 kernel: comparing the two TSC-frequency derivation
 * methods. Method 1 uses the reported (labeled) frequency — always
 * available, but slightly wrong, so fingerprints drift and expire.
 * Method 2 measures against the wall clock — drift-free, but on ~10%
 * of hosts the measurement scatters, causing false negatives.
 */

#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/fingerprint.hpp"
#include "core/freq_estimator.hpp"
#include "core/report.hpp"
#include "faas/platform.hpp"
#include "stats/summary.hpp"

EAAO_CAMPAIGN_PROGRAM(sec42_freq_methods)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;

    faas::PlatformConfig cfg;
    cfg.profile = campaign::profileOf(spec, "platform", "profile");
    cfg.seed = spec.u64("platform", "seed");
    faas::Platform platform(cfg);

    const std::uint32_t connect = spec.u32("workload", "connect");

    // Reach hosts across many shards by launching from one account per
    // shard (the paper reached 586 hosts over repeated experiments).
    std::vector<faas::InstanceId> probes; // one probe per host
    std::set<hw::HostId> seen;
    for (std::uint32_t shard = 0; shard < platform.fleet().shardCount();
         ++shard) {
        const auto acct = platform.createAccount(shard);
        const auto svc =
            platform.deployService(acct, faas::ExecEnv::Gen1);
        const auto ids = platform.connect(svc, connect);
        for (const auto id : ids) {
            const hw::HostId host = platform.oracleHostOf(id);
            if (seen.insert(host).second)
                probes.push_back(id);
        }
    }
    std::printf("evaluating %zu hosts\n\n", probes.size());

    // Method 2: measure the frequency on every host, 10 reps x 100 ms.
    std::size_t problematic = 0;
    stats::OnlineStats clean_sigma, noisy_sigma;
    stats::OnlineStats label_err;
    for (const auto id : probes) {
        faas::SandboxView sbx = platform.sandbox(id);
        const core::FrequencyEstimate est =
            core::measuredFrequencyHz(sbx);
        if (!est.stable()) {
            ++problematic;
            noisy_sigma.add(est.stddev_hz);
        } else {
            clean_sigma.add(est.stddev_hz);
        }
        const auto &tsc =
            platform.fleet().host(platform.oracleHostOf(id)).tsc();
        label_err.add(std::fabs(tsc.trueHz() - tsc.nominalHz()));
    }

    core::TextTable table;
    table.header({"metric", "value", "paper"});
    table.row({"hosts evaluated",
               core::format("%zu", probes.size()), "586"});
    table.row({"problematic hosts (method 2)",
               core::format("%zu (%.1f%%)", problematic,
                            100.0 * static_cast<double>(problematic) /
                                static_cast<double>(probes.size())),
               "58 (~10%)"});
    table.row({"median sigma, stable hosts",
               core::format("%.0f Hz", clean_sigma.mean()),
               "< 100 Hz"});
    table.row({"sigma range, problematic hosts",
               core::format("%.0f kHz .. %.1f MHz",
                            noisy_sigma.min() / 1e3,
                            noisy_sigma.max() / 1e6),
               "10 kHz .. few MHz"});
    table.row({"mean |reported-freq error|",
               core::format("%.0f Hz", label_err.mean()),
               "up to a few MHz (tail)"});
    table.print();

    // Consequence for method 1: drift and expiration.
    std::printf("\nmethod-1 drift examples (Eq. 4.2): expiration = "
                "p_boot * f / |eps|\n\n");
    core::TextTable drift;
    drift.header({"|eps|", "drift per day", "expiration (p_boot=1s)"});
    for (const double eps : spec.numList("workload", "eps_sweep")) {
        const double rate = eps / 2.0e9;
        drift.row({core::format("%.0f Hz", eps),
                   core::format("%.1f ms", rate * 86400.0 * 1e3),
                   core::format("%.2f d", 1.0 / (rate * 86400.0))});
    }
    drift.print();
}
