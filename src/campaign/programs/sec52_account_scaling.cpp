/**
 * @file
 * Section 5.2 kernel, "Potential attack optimizations": occupying more
 * hosts with more accounts and more services — and the quota wall that
 * makes it expensive. Established accounts scale to full launches;
 * fresh accounts are quota-capped until they build usage history.
 */

#include <cstdio>
#include <set>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"
#include "support/logging.hpp"

namespace {

using namespace eaao;

/** Occupied-host fraction for a fleet of attacker accounts. */
double
occupancyWithAccounts(const faas::DataCenterProfile &profile,
                      std::uint32_t accounts,
                      std::uint32_t services_per_account,
                      std::uint32_t quota, std::uint32_t instances,
                      std::uint64_t seed, double &cost_usd)
{
    faas::PlatformConfig cfg;
    cfg.profile = profile;
    cfg.seed = seed;
    faas::Platform p(cfg);

    std::set<hw::HostId> occupied;
    cost_usd = 0.0;
    for (std::uint32_t a = 0; a < accounts; ++a) {
        const auto acct = p.createAccount(
            a % p.fleet().shardCount(), quota);
        core::CampaignConfig campaign;
        campaign.services = services_per_account;
        campaign.prime.launch.instances = instances; // clamped by quota
        const auto result =
            core::runOptimizedCampaign(p, acct, campaign);
        occupied.insert(result.occupied_hosts.begin(),
                        result.occupied_hosts.end());
        cost_usd += result.cost_usd;
    }
    return static_cast<double>(occupied.size()) /
           static_cast<double>(p.fleet().size());
}

} // namespace

EAAO_CAMPAIGN_PROGRAM(sec52_account_scaling)
{
    const campaign::CampaignSpec &spec = ctx.spec;

    // Quota clamps are expected here; silence the per-launch warnings.
    eaao::setLogLevel(eaao::LogLevel::Silent);

    const faas::DataCenterProfile profile =
        campaign::profileOf(spec, "platform", "profile");
    const std::uint64_t seed = spec.u64("platform", "seed");
    const std::uint32_t instances =
        spec.u32("workload", "instances_per_launch");

    core::TextTable table;
    table.header({"accounts", "services/acct", "quota", "occupancy",
                  "cost (USD)"});

    // point <accounts> <services_per_account> <quota>
    for (const campaign::SpecLine *line :
         spec.directives("workload", "point")) {
        if (line->tokens.size() != 4)
            spec.fail(line->line_no,
                      "expected: point <accounts> <services> <quota>");
        const auto accounts = static_cast<std::uint32_t>(
            std::stoul(line->tokens[1]));
        const auto services = static_cast<std::uint32_t>(
            std::stoul(line->tokens[2]));
        const auto quota = static_cast<std::uint32_t>(
            std::stoul(line->tokens[3]));
        double cost = 0.0;
        const double occ = occupancyWithAccounts(
            profile, accounts, services, quota, instances,
            seed + accounts * 13 + services, cost);
        table.row({core::format("%u", accounts),
                   core::format("%u", services),
                   core::format("%u", quota),
                   core::percent(occ),
                   core::format("%.1f", cost)});
    }
    table.print();
}
