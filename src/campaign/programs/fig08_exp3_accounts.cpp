/**
 * @file
 * Figure 8 / Experiment 3 kernel: apparent-host footprint across
 * accounts (paper §5.1). Accounts (with home shards) come from the
 * campaign's [tenants] section; the launch schedule — which account
 * fires each cold launch — from [workload] schedule.
 */

#include <cstdio>
#include <set>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"
#include "obs/export.hpp"

EAAO_CAMPAIGN_PROGRAM(fig08_exp3_accounts)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;

    const obs::ObsConfig obs_cfg =
        obs::ObsConfig::fromArgs(ctx.argc, ctx.argv);
    obs::TrialSet obs_set(obs_cfg);
    obs_set.prepare(1);

    faas::PlatformConfig cfg;
    cfg.profile = campaign::profileOf(spec, "platform", "profile");
    cfg.seed = spec.u64("platform", "seed");
    cfg.obs = obs_set.observer(0);
    faas::Platform platform(cfg);

    // account <shard> — one standard account per line, one Gen 1
    // service each.
    std::vector<faas::AccountId> accounts;
    for (const campaign::SpecLine *line :
         spec.directives("tenants", "account")) {
        if (line->tokens.size() != 2)
            spec.fail(line->line_no, "expected: account <shard>");
        accounts.push_back(platform.createAccount(
            static_cast<std::uint32_t>(std::stoul(line->tokens[1]))));
    }
    std::vector<faas::ServiceId> services;
    for (const auto acct : accounts) {
        services.push_back(
            platform.deployService(acct, faas::ExecEnv::Gen1));
    }

    const std::vector<double> schedule =
        spec.numList("workload", "schedule");
    const int interval_min =
        static_cast<int>(spec.u32("workload", "interval_minutes"));

    core::TextTable table;
    table.header({"launch", "account", "apparent hosts", "cumulative"});
    std::set<std::uint64_t> cumulative;
    for (std::size_t launch = 0; launch < schedule.size(); ++launch) {
        const int a = static_cast<int>(schedule[launch]);
        core::LaunchOptions opts;
        const core::LaunchObservation obs =
            core::launchAndObserve(platform, services[a], opts);
        const auto apparent = obs.apparentHosts();
        cumulative.insert(apparent.begin(), apparent.end());
        table.row({core::format("%d", static_cast<int>(launch) + 1),
                   core::format("%d", a + 1),
                   core::format("%zu", apparent.size()),
                   core::format("%zu", cumulative.size())});
        platform.advance(sim::Duration::minutes(interval_min) - opts.hold);
    }
    table.print();

    obs::writeOutputs(obs_cfg, obs_set);
}
