/**
 * @file
 * Figure 9 / Experiment 4 kernel: repeated launches at a short
 * interval trigger the load balancer and spill instances onto helper
 * hosts (paper §5.1). The main run and the control arms — launch
 * interval, seed, and whether the table prints — are `run` directives
 * in the campaign's [workload] section.
 */

#include <cstdio>
#include <set>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"
#include "obs/export.hpp"

namespace sim = eaao::sim;

namespace {

std::size_t
runInterval(const eaao::faas::DataCenterProfile &profile,
            std::uint64_t seed, sim::Duration interval, int launches,
            bool print, eaao::obs::Observer observer)
{
    using namespace eaao;
    faas::PlatformConfig cfg;
    cfg.profile = profile;
    cfg.seed = seed;
    cfg.obs = observer;
    faas::Platform platform(cfg);
    const auto acct = platform.createAccount();
    const auto svc = platform.deployService(acct, faas::ExecEnv::Gen1);

    core::TextTable table;
    table.header({"launch", "apparent hosts", "cumulative"});
    std::set<std::uint64_t> cumulative;
    std::size_t first = 0;
    for (int launch = 1; launch <= launches; ++launch) {
        core::LaunchOptions opts;
        opts.hold = sim::Duration::seconds(30);
        const core::LaunchObservation obs =
            core::launchAndObserve(platform, svc, opts);
        const auto apparent = obs.apparentHosts();
        cumulative.insert(apparent.begin(), apparent.end());
        if (launch == 1)
            first = cumulative.size();
        table.row({core::format("%d", launch),
                   core::format("%zu", apparent.size()),
                   core::format("%zu", cumulative.size())});
        if (launch < launches)
            platform.advance(interval - opts.hold);
    }
    if (print)
        table.print();
    return cumulative.size() - first;
}

} // namespace

EAAO_CAMPAIGN_PROGRAM(fig09_exp4_short_interval)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;

    const obs::ObsConfig obs_cfg =
        obs::ObsConfig::fromArgs(ctx.argc, ctx.argv);
    obs::TrialSet obs_set(obs_cfg);

    const faas::DataCenterProfile profile =
        campaign::profileOf(spec, "platform", "profile");
    const int launches = static_cast<int>(spec.u32("workload", "launches"));

    // run <seed> <interval_min> — the main (printed) run, then the
    // control arms summarized in the interval table.
    const auto main_run = spec.directives("workload", "main_run");
    const auto controls = spec.directives("workload", "control");
    if (main_run.size() != 1)
        spec.fail(spec.file().section("workload")->line_no,
                  "[workload] needs exactly one 'main_run <seed> "
                  "<interval_min>' line");
    obs_set.prepare(
        static_cast<std::uint32_t>(1 + controls.size()));

    const auto seedOf = [&](const campaign::SpecLine *line) {
        if (line->tokens.size() != 3)
            spec.fail(line->line_no,
                      "expected: <directive> <seed> <interval_min>");
        return static_cast<std::uint64_t>(std::stoull(line->tokens[1]));
    };
    const auto intervalOf = [&](const campaign::SpecLine *line) {
        return sim::Duration::minutes(std::stoll(line->tokens[2]));
    };

    runInterval(profile, seedOf(main_run[0]), intervalOf(main_run[0]),
                launches, true, obs_set.observer(0));

    std::printf("\nextra hosts discovered after launch 1, by launch "
                "interval:\n\n");
    core::TextTable table;
    table.header({"interval", "new hosts after 6 launches"});
    for (std::size_t i = 0; i < controls.size(); ++i) {
        const std::size_t extra = runInterval(
            profile, seedOf(controls[i]), intervalOf(controls[i]),
            launches, false, obs_set.observer(static_cast<std::uint32_t>(i + 1)));
        table.row({controls[i]->tokens[2] + " min",
                   core::format("%zu", extra)});
    }
    table.print();

    obs::writeOutputs(obs_cfg, obs_set);
}
