/**
 * @file
 * Figure 11 kernel: victim-instance coverage of the optimized
 * launching strategy (Strategy 2), sweeping the number of victim
 * instances (Fig. 11a) and the victim container size (Fig. 11b).
 *
 * Each (data center, victim account, run) triple is an independent
 * trial with its own Platform, fanned out across the trial harness;
 * aggregation is serial in trial-index order, so the printed tables
 * are byte-identical for any --threads value. The DC roster with its
 * per-account home shards, the sweeps, and the seeds all come from the
 * campaign file.
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "campaign/programs/common.hpp"
#include "campaign/runner.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "exp/trial_runner.hpp"
#include "faas/platform.hpp"
#include "stats/summary.hpp"
#include "support/bench_timer.hpp"

namespace {

struct DcSetup
{
    eaao::faas::DataCenterProfile profile;
    // Home shards of attacker / Account 2 / Account 3, matching the
    // per-account accidents the paper observed (see DESIGN.md).
    std::uint32_t shards[3];
};

struct SweepPoint
{
    std::string label;
    std::uint32_t count;
    eaao::faas::ContainerSize size;
};

/** Raw samples produced by one (DC, victim account, run) trial. */
struct TrialSamples
{
    double cost_usd = 0.0;
    double host_fraction = 0.0;
    std::vector<double> cov_a;       // per count_sweep point
    std::vector<double> cov_b;       // per size_sweep point
    std::vector<double> any_coloc;   // default-config indicator samples
};

eaao::faas::ContainerSize
sizeByName(const eaao::campaign::CampaignSpec &spec,
           const std::string &name, unsigned line_no)
{
    using namespace eaao::faas;
    if (name == "pico")
        return sizes::kPico;
    if (name == "small")
        return sizes::kSmall;
    if (name == "medium")
        return sizes::kMedium;
    if (name == "large")
        return sizes::kLarge;
    spec.fail(line_no, "unknown container size '" + name +
                           "' (known: pico, small, medium, large)");
}

} // namespace

EAAO_CAMPAIGN_PROGRAM(fig11_victim_coverage)
{
    using namespace eaao;
    const campaign::CampaignSpec &spec = ctx.spec;
    const unsigned threads = ctx.threads;

    const int runs = static_cast<int>(spec.u32("workload", "runs"));
    std::printf("=== Figure 11: victim instance coverage, optimized "
                "strategy (%d runs each) ===\n\n", runs);

    // dc <profile> <attacker_shard> <acc2_shard> <acc3_shard>
    std::vector<DcSetup> dcs;
    for (const campaign::SpecLine *line :
         spec.directives("tenants", "dc")) {
        if (line->tokens.size() != 5)
            spec.fail(line->line_no,
                      "expected: dc <profile> <shard> <shard> <shard>");
        DcSetup dc;
        dc.profile = campaign::profileByName(spec, line->tokens[1],
                                             line->line_no);
        for (int s = 0; s < 3; ++s)
            dc.shards[s] = static_cast<std::uint32_t>(
                std::stoul(line->tokens[2 + s]));
        dcs.push_back(dc);
    }

    // sweep <a|b> <label> <count> <size>
    std::vector<SweepPoint> count_sweep, size_sweep;
    for (const campaign::SpecLine *line :
         spec.directives("workload", "sweep")) {
        if (line->tokens.size() != 5)
            spec.fail(line->line_no,
                      "expected: sweep <a|b> <label> <count> <size>");
        SweepPoint point;
        point.label = line->tokens[2];
        point.count = static_cast<std::uint32_t>(
            std::stoul(line->tokens[3]));
        point.size = sizeByName(spec, line->tokens[4], line->line_no);
        if (line->tokens[1] == "a")
            count_sweep.push_back(point);
        else if (line->tokens[1] == "b")
            size_sweep.push_back(point);
        else
            spec.fail(line->line_no, "sweep table must be 'a' or 'b'");
    }

    const std::uint64_t seed = spec.u64("platform", "seed");
    const std::uint32_t any_count =
        spec.u32("verify", "any_coloc_count");
    const faas::ContainerSize any_size = sizeByName(
        spec, spec.str("verify", "any_coloc_size"),
        spec.file().section("verify")->line_no);

    // Trial index encodes (dc, victim, run) in the original nesting
    // order, so the serial aggregation below feeds every accumulator
    // in exactly the order the serial loop used to.
    const std::size_t n_trials = dcs.size() * 2 * runs;
    support::BenchTimer timer(spec.name(), threads, seed);
    const std::vector<TrialSamples> trials = exp::runTrials(
        n_trials, seed,
        [&](exp::TrialContext &trial) {
            const DcSetup &dc = dcs[trial.index / (2 * runs)];
            const int victim_idx =
                static_cast<int>((trial.index / runs) % 2);
            const int run = static_cast<int>(trial.index % runs);
            const std::string key =
                dc.profile.name + " / Acc" +
                std::to_string(victim_idx + 2);

            faas::PlatformConfig cfg;
            cfg.profile = dc.profile;
            cfg.seed = seed + sim::mix64(key.size() * 131 + run) %
                                  100000;
            faas::Platform platform(cfg);

            const auto attacker = platform.createAccount(dc.shards[0]);
            const auto victim = platform.createAccount(
                dc.shards[1 + victim_idx]);

            const core::CampaignResult attack =
                core::runOptimizedCampaign(platform, attacker,
                                           core::CampaignConfig{});

            TrialSamples out;
            out.cost_usd = attack.cost_usd;
            out.host_fraction =
                static_cast<double>(attack.occupied_hosts.size()) /
                static_cast<double>(platform.fleet().size());

            auto run_victim = [&](const SweepPoint &point,
                                  std::vector<double> &acc) {
                const auto vsvc = platform.deployService(
                    victim, faas::ExecEnv::Gen1, point.size);
                const auto vids = platform.connect(vsvc, point.count);
                const core::CoverageResult cov =
                    core::measureCoverageOracle(
                        platform, attack.occupied_hosts, vids);
                acc.push_back(cov.coverage());
                if (point.count == any_count &&
                    point.size.vcpus == any_size.vcpus) {
                    out.any_coloc.push_back(
                        cov.covered_instances > 0 ? 1.0 : 0.0);
                }
                platform.disconnectAll(vsvc);
                platform.advance(sim::Duration::minutes(16));
            };

            for (const SweepPoint &point : count_sweep)
                run_victim(point, out.cov_a);
            for (const SweepPoint &point : size_sweep)
                run_victim(point, out.cov_b);
            return out;
        },
        threads);
    support::maybeWriteBenchJson(ctx.argc, ctx.argv, timer.stop());

    // coverage[dc][victim][sweep-index] -> stats over runs
    std::map<std::string, std::vector<stats::OnlineStats>> table_a;
    std::map<std::string, std::vector<stats::OnlineStats>> table_b;
    std::map<std::string, stats::OnlineStats> any_coloc;
    std::map<std::string, stats::OnlineStats> host_fraction;
    stats::OnlineStats cost_stats;

    for (std::size_t i = 0; i < trials.size(); ++i) {
        const DcSetup &dc = dcs[i / (2 * runs)];
        const int victim_idx = static_cast<int>((i / runs) % 2);
        const std::string key = dc.profile.name + " / Acc" +
                                std::to_string(victim_idx + 2);
        table_a[key].resize(count_sweep.size());
        table_b[key].resize(size_sweep.size());

        const TrialSamples &t = trials[i];
        cost_stats.add(t.cost_usd);
        host_fraction[dc.profile.name].add(t.host_fraction);
        for (std::size_t p = 0; p < t.cov_a.size(); ++p)
            table_a[key][p].add(t.cov_a[p]);
        for (std::size_t p = 0; p < t.cov_b.size(); ++p)
            table_b[key][p].add(t.cov_b[p]);
        for (const double sample : t.any_coloc)
            any_coloc[key].add(sample);
    }

    auto print_sweep =
        [&](const char *title, const std::vector<SweepPoint> &sweep,
            std::map<std::string, std::vector<stats::OnlineStats>> &t) {
            std::printf("%s\n", title);
            core::TextTable table;
            std::vector<std::string> head = {"DC / victim"};
            for (const auto &point : sweep) {
                head.push_back(point.label);
                head.push_back("(sd)");
            }
            table.header(head);
            for (auto &[key, cells] : t) {
                std::vector<std::string> row = {key};
                for (const auto &acc : cells) {
                    row.push_back(core::percent(acc.mean()));
                    row.push_back(core::format("%.3f", acc.stddev()));
                }
                table.row(row);
            }
            table.print();
            std::printf("\n");
        };

    print_sweep("-- Fig 11a: varying victim instance count (Small) --",
                count_sweep, table_a);
    print_sweep("-- Fig 11b: varying victim size (100 instances) --",
                size_sweep, table_b);

    std::printf("-- probability of co-locating with at least one "
                "victim instance (default config) --\n");
    core::TextTable anyt;
    anyt.header({"DC / victim", "P(>=1 co-location)"});
    for (const auto &[key, acc] : any_coloc)
        anyt.row({key, core::percent(acc.mean(), 0)});
    anyt.print();

    std::printf("\n-- attacker host occupancy and cost --\n");
    core::TextTable occ;
    occ.header({"DC", "fraction of fleet occupied"});
    for (const auto &[name, acc] : host_fraction)
        occ.row({name, core::percent(acc.mean())});
    occ.print();
    std::printf("\naverage attack cost: %.1f USD per campaign "
                "(paper: 23-27 USD)\n", cost_stats.mean());
}
