/**
 * @file
 * The v2 trigger expression language (docs/scenario-dsl.md §5).
 *
 * A small, total expression language over orchestrator counters,
 * modeled on AWS IoT FleetWise campaign expressions: comparisons,
 * boolean operators, arithmetic, windowed aggregates
 * (`rate(counter, window_s)`, `count_since(counter, t_s)`), and
 * FleetWise-style `custom_function('name', args...)` escape hatches.
 * Parsing is strict (unknown functions, bad arity, and malformed
 * syntax are line-precise SpecErrors); evaluation is total (unknown
 * counters read 0, division by zero yields 0) so triggers never
 * abort a running campaign.
 */

#ifndef EAAO_CAMPAIGN_EXPR_HPP
#define EAAO_CAMPAIGN_EXPR_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace eaao::campaign {

enum class ExprOp : std::uint8_t
{
    Num,      //!< numeric literal
    Str,      //!< 'single-quoted' literal (custom_function name / args)
    Counter,  //!< dotted counter reference, e.g. orch.placements
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Not,
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Call,  //!< function call; name in `text`, args in `kids`
};

struct Expr
{
    ExprOp op = ExprOp::Num;
    double number = 0.0;
    std::string text;  //!< counter name, string literal, or call name
    std::vector<std::unique_ptr<Expr>> kids;
};

/**
 * Read-side interface the evaluator pulls counter data through.
 * Implemented by TriggerEngine's CounterTimeline (trigger.hpp).
 */
class CounterSource
{
  public:
    virtual ~CounterSource() = default;

    /** Latest sampled value of @p name at or before @p t_s, else 0. */
    virtual double valueAt(const std::string &name, double t_s) const = 0;

    /**
     * Increase of @p name over the trailing window
     * [t_s - window_s, t_s], divided by window_s. 0 for an empty or
     * zero-length window.
     */
    virtual double rate(const std::string &name, double window_s,
                        double t_s) const = 0;

    /** Number of samples of @p name recorded in (since_s, t_s]. */
    virtual double countSince(const std::string &name, double since_s,
                              double t_s) const = 0;
};

/** Host hook for `custom_function('name', args...)`. */
using CustomFunction =
    std::function<double(const std::vector<double> &args)>;

/**
 * Parse @p text into an expression tree.
 *
 * @p where prefixes error messages ("<file>:<line>") so a malformed
 * trigger condition reports the spec line it came from. Throws
 * SpecError on any syntax, arity, or unknown-function problem.
 */
std::unique_ptr<Expr> parseExpr(const std::string &text,
                                const std::string &where);

/**
 * Evaluate @p e at simulated time @p t_s. Boolean results are 1/0;
 * any nonzero value is truthy. @p custom resolves
 * custom_function('name', ...) calls; with none registered the call
 * evaluates to 0.
 */
double evalExpr(const Expr &e, const CounterSource &counters, double t_s,
                const std::function<CustomFunction(const std::string &)>
                    *custom = nullptr);

/** Canonical single-line rendering (used by `--describe` and tests). */
std::string renderExpr(const Expr &e);

/**
 * Sorted, deduplicated counter names referenced anywhere in @p e,
 * including inside aggregate and custom_function arguments — what a
 * program must sample for the condition to ever fire. `--describe`
 * prints the union over a campaign's triggers.
 */
std::vector<std::string> counterNames(const Expr &e);

} // namespace eaao::campaign

#endif // EAAO_CAMPAIGN_EXPR_HPP
