/**
 * @file
 * Program registry and the title/notes/trigger-log printing contract.
 */

#include "campaign/runner.hpp"

#include "support/options.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace eaao::campaign {

namespace {

std::map<std::string, ProgramFn> &
registry()
{
    static std::map<std::string, ProgramFn> programs;
    return programs;
}

} // namespace

void
registerProgram(const std::string &name, ProgramFn fn)
{
    auto [it, inserted] = registry().emplace(name, std::move(fn));
    if (!inserted) {
        std::fprintf(stderr,
                     "fatal: campaign program '%s' registered twice\n",
                     name.c_str());
        std::abort();
    }
    (void)it;
}

ProgramFn
findProgram(const std::string &name)
{
    const auto it = registry().find(name);
    return it == registry().end() ? ProgramFn{} : it->second;
}

std::vector<std::string>
programNames()
{
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const auto &[name, fn] : registry())
        names.push_back(name);
    return names;
}

int
runCampaign(const CampaignSpec &spec, int argc, char **argv)
{
    const ProgramFn program = findProgram(spec.program());
    if (!program) {
        std::string known;
        for (const std::string &name : programNames()) {
            known += known.empty() ? "" : ", ";
            known += name;
        }
        throw SpecError(spec.file().path +
                        ": unknown program '" + spec.program() +
                        "' (known: " + known + ")");
    }

    RunContext ctx{spec, support::threadsFromArgs(argc, argv), argc,
                   argv, TriggerEngine{}};
    for (Trigger &trigger : spec.triggers())
        ctx.triggers.add(std::move(trigger));

    if (!spec.title().empty())
        std::printf("%s\n\n", spec.title().c_str());

    program(ctx);

    const std::vector<std::string> notes = spec.notes();
    if (!notes.empty()) {
        // `note_gap = 0` when the program already ends with a blank
        // line (legacy layouts differ; parity is byte-exact).
        if (spec.flag("outputs", "note_gap", true))
            std::printf("\n");
        for (const std::string &note : notes)
            std::printf("%s\n", note.c_str());
    }

    if (spec.triggerLog()) {
        std::printf("\ntrigger log (%zu firing%s)\n",
                    ctx.triggers.firings().size(),
                    ctx.triggers.firings().size() == 1 ? "" : "s");
        for (const TriggerFiring &firing : ctx.triggers.firings()) {
            std::printf("  t=%.0fs %s: %s\n", firing.t_s,
                        firing.name.c_str(), firing.message.c_str());
        }
    }
    return 0;
}

} // namespace eaao::campaign
