/**
 * @file
 * Implementation of the metrics registry.
 */

#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "support/logging.hpp"

namespace eaao::obs {

namespace {

/**
 * Render a double compactly but losslessly enough for determinism:
 * %.9g is a pure function of the value, and every value we render is
 * itself deterministic (sums are accumulated in slot order).
 */
std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

void
Histogram::observe(double x)
{
    if (counts.empty())
        counts.assign(bounds.size() + 1, 0);
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), x);
    ++counts[static_cast<std::size_t>(it - bounds.begin())];
    if (count == 0) {
        min = x;
        max = x;
    } else {
        min = std::min(min, x);
        max = std::max(max, x);
    }
    ++count;
    sum += x;
}

void
Histogram::merge(const Histogram &other)
{
    EAAO_ASSERT(bounds == other.bounds,
                "merging histograms with different bucket bounds");
    if (other.count == 0)
        return;
    if (counts.empty())
        counts.assign(bounds.size() + 1, 0);
    if (!other.counts.empty()) {
        for (std::size_t i = 0; i < counts.size(); ++i)
            counts[i] += other.counts[i];
    }
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    sum += other.sum;
}

Counter *
MetricsRegistry::counter(const std::string &name)
{
    return &counters_[name];
}

Histogram *
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<double> &bounds)
{
    EAAO_ASSERT(std::is_sorted(bounds.begin(), bounds.end()),
                "histogram bounds must be ascending: ", name);
    auto [it, inserted] = histograms_.try_emplace(name);
    if (inserted) {
        it->second.bounds = bounds;
        it->second.counts.assign(bounds.size() + 1, 0);
    } else {
        EAAO_ASSERT(it->second.bounds == bounds,
                    "histogram re-registered with different bounds: ",
                    name);
    }
    return &it->second;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &[name, ctr] : other.counters_)
        counters_[name].value += ctr.value;
    for (const auto &[name, hist] : other.histograms_)
        histogram(name, hist.bounds)->merge(hist);
}

std::string
MetricsRegistry::toJson() const
{
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, ctr] : counters_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name +
               "\": " + std::to_string(ctr.value);
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto &[name, hist] : histograms_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": {\"bounds\": [";
        for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += formatDouble(hist.bounds[i]);
        }
        out += "], \"counts\": [";
        for (std::size_t i = 0; i < hist.bounds.size() + 1; ++i) {
            if (i > 0)
                out += ", ";
            out += hist.counts.empty() ? "0"
                                       : std::to_string(hist.counts[i]);
        }
        out += "], \"count\": " + std::to_string(hist.count);
        out += ", \"sum\": " + formatDouble(hist.sum);
        if (hist.count > 0) {
            out += ", \"min\": " + formatDouble(hist.min);
            out += ", \"max\": " + formatDouble(hist.max);
        }
        out += "}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

MetricsRegistry
mergeRegistries(const std::vector<MetricsRegistry> &parts)
{
    MetricsRegistry merged;
    for (const MetricsRegistry &part : parts)
        merged.merge(part);
    return merged;
}

double
histogramQuantile(const Histogram &h, double q)
{
    if (h.count == 0 || h.counts.empty())
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    // Rank of the target observation, 1-based; q=0 maps to rank 1.
    const double rank = std::max(1.0, q * static_cast<double>(h.count));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
        if (h.counts[i] == 0)
            continue;
        const std::uint64_t next = cum + h.counts[i];
        if (rank > static_cast<double>(next)) {
            cum = next;
            continue;
        }
        double lo = i == 0 ? 0.0 : h.bounds[i - 1];
        double hi = i < h.bounds.size() ? h.bounds[i] : h.max;
        lo = std::max(lo, std::min(h.min, hi));
        hi = std::max(lo, std::min(hi, h.max));
        const double frac = (rank - static_cast<double>(cum)) /
                            static_cast<double>(h.counts[i]);
        return lo + (hi - lo) * frac;
    }
    return h.max;
}

namespace {

const std::vector<double> kColdStartS = {0.5, 1, 2, 4, 8, 16, 32, 64};
const std::vector<double> kRequestLatencyS = {
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5,   1,      2.5,   5,    10,    25,   50,  100};
const std::vector<double> kColdWaitS = {0.1,  0.25, 0.5, 1,  1.5, 2,  3,
                                        4,    6,    8,   12, 16,  24, 32,
                                        48,   64};
const std::vector<double> kInstancesPerHost = {1, 2,  4,  6,  8, 10,
                                               12, 16, 24, 32, 64};
const std::vector<double> kFraction = {0.01, 0.02, 0.05, 0.1, 0.2,
                                       0.3,  0.5,  0.75, 1.0};
const std::vector<double> kDays = {0.25, 0.5, 1, 2, 4, 8, 16, 32, 64};

} // namespace

const std::vector<double> &
coldStartBucketsS()
{
    return kColdStartS;
}

const std::vector<double> &
requestLatencyBucketsS()
{
    return kRequestLatencyS;
}

const std::vector<double> &
coldWaitBucketsS()
{
    return kColdWaitS;
}

const std::vector<double> &
instancesPerHostBuckets()
{
    return kInstancesPerHost;
}

const std::vector<double> &
churnFractionBuckets()
{
    return kFraction;
}

const std::vector<double> &
errorRateBuckets()
{
    return kFraction;
}

const std::vector<double> &
uptimeDaysBuckets()
{
    return kDays;
}

const std::vector<double> &
expirationDaysBuckets()
{
    return kDays;
}

} // namespace eaao::obs
