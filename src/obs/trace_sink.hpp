/**
 * @file
 * Sim-time structured tracing in Chrome trace_event form.
 *
 * A TraceSink buffers span ("ph":"X" complete) and instant ("ph":"i")
 * events stamped with *virtual* time; writeChromeTrace() renders one
 * sink per trial into a single JSON file that loads directly in
 * chrome://tracing or https://ui.perfetto.dev. Each trial becomes a
 * process (pid = trial slot) and each named track becomes a thread
 * within it, so a multi-replica campaign reads as side-by-side
 * timelines.
 *
 * Determinism contract: events carry only sim-derived data (no wall
 * clock, no pointers), per-trial sinks are serialized in trial-slot
 * order, and events within a track are sorted by (sim time, emission
 * order) — the file is byte-identical for any worker-thread count.
 *
 * All name/track/arg-key strings must have static storage duration
 * (string literals): the sink stores the pointers, not copies.
 *
 * See docs/observability.md for the event schema.
 */

#ifndef EAAO_OBS_TRACE_SINK_HPP
#define EAAO_OBS_TRACE_SINK_HPP

#include <cstdint>
#include <deque>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace eaao::obs {

/** One key/value argument attached to a trace event. */
struct TraceArg
{
    enum class Kind : std::uint8_t { U64, I64, F64, Str };

    const char *key = "";
    Kind kind = Kind::U64;
    std::uint64_t u = 0;
    std::int64_t i = 0;
    double f = 0.0;
    const char *s = "";

    static TraceArg
    u64(const char *key, std::uint64_t v)
    {
        TraceArg a;
        a.key = key;
        a.kind = Kind::U64;
        a.u = v;
        return a;
    }

    static TraceArg
    i64(const char *key, std::int64_t v)
    {
        TraceArg a;
        a.key = key;
        a.kind = Kind::I64;
        a.i = v;
        return a;
    }

    static TraceArg
    f64(const char *key, double v)
    {
        TraceArg a;
        a.key = key;
        a.kind = Kind::F64;
        a.f = v;
        return a;
    }

    /** @p v must be a static-lifetime string (literal / toString). */
    static TraceArg
    str(const char *key, const char *v)
    {
        TraceArg a;
        a.key = key;
        a.kind = Kind::Str;
        a.s = v;
        return a;
    }
};

/** One buffered trace event. */
struct TraceEvent
{
    static constexpr std::size_t kMaxArgs = 6;

    const char *name = "";
    std::uint32_t track = 0;  //!< index into TraceSink::tracks()
    char phase = 'i';         //!< 'X' complete span, 'i' instant
    sim::SimTime ts;          //!< span start / instant time
    sim::Duration dur;        //!< span length (phase 'X' only)
    std::uint64_t seq = 0;    //!< emission order (sort tie-break)
    std::uint8_t n_args = 0;
    TraceArg args[kMaxArgs];
};

/**
 * Buffering trace collector for one trial.
 */
class TraceSink
{
  public:
    /** Record an instant event on @p track at sim time @p ts. */
    void instant(const char *name, const char *track, sim::SimTime ts,
                 std::initializer_list<TraceArg> args = {});

    /**
     * Record a complete span on @p track covering [start, end].
     * Call at span end; nesting falls out of the timestamps.
     */
    void complete(const char *name, const char *track, sim::SimTime start,
                  sim::SimTime end,
                  std::initializer_list<TraceArg> args = {});

    /** Buffered events, in emission order. */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Track names, indexed by TraceEvent::track. */
    const std::vector<const char *> &tracks() const { return tracks_; }

    /** Number of buffered events. */
    std::size_t size() const { return events_.size(); }

    /** Drop all buffered events (track table survives). */
    void clear() { events_.clear(); }

    /**
     * Copy @p s into sink-owned stable storage and return its pointer
     * (checkpoint restore: serialized strings cannot be mapped back to
     * the original literals). The copy lives as long as the sink; the
     * caller is expected to dedup repeats.
     */
    const char *
    intern(const std::string &s)
    {
        interned_.push_back(s);
        return interned_.back().c_str();
    }

    /**
     * Replace the buffered events and track table wholesale
     * (checkpoint restore). String pointers inside @p events and
     * @p tracks must be static or interned via intern().
     */
    void
    restoreState(std::vector<TraceEvent> events,
                 std::vector<const char *> tracks)
    {
        events_ = std::move(events);
        tracks_ = std::move(tracks);
    }

  private:
    std::uint32_t trackId(const char *track);

    void push(TraceEvent event, std::initializer_list<TraceArg> args);

    std::vector<TraceEvent> events_;
    std::vector<const char *> tracks_;
    std::deque<std::string> interned_; //!< restore-time string storage
};

/**
 * Render trial sinks as one Chrome trace_event JSON document.
 * @p trials are serialized in order; trial i becomes pid i. Null
 * entries are skipped (their pid is still consumed, keeping trial
 * numbering stable).
 */
void writeChromeTrace(std::ostream &out,
                      const std::vector<const TraceSink *> &trials);

/** Convenience: render to a string (tests, determinism checks). */
std::string toChromeTraceJson(const std::vector<const TraceSink *> &trials);

} // namespace eaao::obs

#endif // EAAO_OBS_TRACE_SINK_HPP
