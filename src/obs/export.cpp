/**
 * @file
 * Implementation of the observability export wiring.
 */

#include "obs/export.hpp"

#include <fstream>

#include "support/logging.hpp"
#include "support/options.hpp"

namespace eaao::obs {

ObsConfig
ObsConfig::fromArgs(int argc, char **argv)
{
    ObsConfig cfg;
    cfg.trace_path = support::traceJsonFromArgs(argc, argv);
    cfg.metrics_path = support::metricsJsonFromArgs(argc, argv);
    return cfg;
}

void
TrialSet::prepare(std::size_t trials)
{
    slots_.clear();
    if (enabled_)
        slots_.resize(trials);
}

Observer
TrialSet::observer(std::size_t index)
{
    if (!enabled_)
        return Observer{};
    EAAO_ASSERT(index < slots_.size(),
                "trial slot out of range: ", index, " of ", slots_.size());
    return slots_[index].observer();
}

void
writeOutputs(const ObsConfig &config, const TrialSet &set)
{
    if (!set.enabled())
        return;

    if (config.trace_path) {
        std::vector<const TraceSink *> sinks;
        sinks.reserve(set.slots().size());
        for (const TrialObs &slot : set.slots())
            sinks.push_back(&slot.trace);
        std::ofstream out(*config.trace_path,
                          std::ios::out | std::ios::trunc);
        if (!out)
            EAAO_FATAL("cannot open trace output '", *config.trace_path,
                       "'");
        writeChromeTrace(out, sinks);
        if (!out)
            EAAO_FATAL("failed writing trace output '", *config.trace_path,
                       "'");
    }

    if (config.metrics_path) {
        std::vector<MetricsRegistry> parts;
        parts.reserve(set.slots().size());
        for (const TrialObs &slot : set.slots())
            parts.push_back(slot.metrics);
        const MetricsRegistry merged = mergeRegistries(parts);
        std::ofstream out(*config.metrics_path,
                          std::ios::out | std::ios::trunc);
        if (!out)
            EAAO_FATAL("cannot open metrics output '", *config.metrics_path,
                       "'");
        out << merged.toJson();
        if (!out)
            EAAO_FATAL("failed writing metrics output '",
                       *config.metrics_path, "'");
    }
}

} // namespace eaao::obs
