/**
 * @file
 * The Observer handle: how instrumented subsystems reach the
 * observability layer, and the macros that gate every instrument site.
 *
 * An Observer is two non-owning pointers (trace sink, metrics
 * registry), both usually null. It is passed by value through
 * PlatformConfig into the orchestrator, channels and attacker-side
 * drivers; a default-constructed Observer disables everything, so the
 * cost of an instrument site in a normal run is one
 * branch-on-null-pointer.
 *
 * Sites are additionally gated by EAAO_OBS_ENABLED (default 1; the
 * CMake option EAAO_ENABLE_OBS=OFF defines it to 0), which compiles
 * the instrumentation out entirely — argument expressions included.
 * Use EAAO_OBS_ONLY() for declarations that exist only to feed a
 * site (e.g. a span's start time).
 */

#ifndef EAAO_OBS_OBSERVER_HPP
#define EAAO_OBS_OBSERVER_HPP

namespace eaao::obs {

class TraceSink;
class MetricsRegistry;
struct Counter;
struct Histogram;

/** Non-owning handle to a trial's trace sink and metrics registry. */
struct Observer
{
    TraceSink *trace = nullptr;
    MetricsRegistry *metrics = nullptr;

    /** True when any recording is active. */
    bool
    enabled() const
    {
        return trace != nullptr || metrics != nullptr;
    }
};

} // namespace eaao::obs

#ifndef EAAO_OBS_ENABLED
#define EAAO_OBS_ENABLED 1
#endif

#if EAAO_OBS_ENABLED

/** Declaration or statement present only in instrumented builds. */
#define EAAO_OBS_ONLY(...) __VA_ARGS__

/** Record an instant event if @p observer has a trace sink. */
#define EAAO_OBS_INSTANT(observer, ...)                                      \
    do {                                                                     \
        if ((observer).trace != nullptr)                                     \
            (observer).trace->instant(__VA_ARGS__);                          \
    } while (0)

/** Record a complete span if @p observer has a trace sink. */
#define EAAO_OBS_SPAN(observer, ...)                                         \
    do {                                                                     \
        if ((observer).trace != nullptr)                                     \
            (observer).trace->complete(__VA_ARGS__);                         \
    } while (0)

/** Bump a resolved (possibly null) obs::Counter handle. */
#define EAAO_OBS_COUNT(counter_ptr, n)                                       \
    do {                                                                     \
        if ((counter_ptr) != nullptr)                                        \
            (counter_ptr)->add(n);                                           \
    } while (0)

/** Observe into a resolved (possibly null) obs::Histogram handle. */
#define EAAO_OBS_OBSERVE(histogram_ptr, x)                                   \
    do {                                                                     \
        if ((histogram_ptr) != nullptr)                                      \
            (histogram_ptr)->observe(x);                                     \
    } while (0)

#else // !EAAO_OBS_ENABLED

#define EAAO_OBS_ONLY(...)
#define EAAO_OBS_INSTANT(observer, ...)                                      \
    do {                                                                     \
    } while (0)
#define EAAO_OBS_SPAN(observer, ...)                                         \
    do {                                                                     \
    } while (0)
#define EAAO_OBS_COUNT(counter_ptr, n)                                       \
    do {                                                                     \
    } while (0)
#define EAAO_OBS_OBSERVE(histogram_ptr, x)                                   \
    do {                                                                     \
    } while (0)

#endif // EAAO_OBS_ENABLED

#endif // EAAO_OBS_OBSERVER_HPP
