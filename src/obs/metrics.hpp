/**
 * @file
 * Sim-time metrics: named counters and fixed-bucket histograms.
 *
 * A MetricsRegistry is a per-trial object: every simulated campaign
 * records into its own registry, and the per-trial registries are
 * reduced in trial-slot order after exp::runTrials returns (exactly
 * like stats::mergeStats), so the merged JSON is byte-identical for
 * any worker-thread count.
 *
 * Handles returned by counter()/histogram() are stable for the
 * lifetime of the registry (node-based storage), so hot instrument
 * sites resolve them once and pay only a null-check + increment per
 * event. Bucket boundaries are fixed at registration; merging two
 * histograms with different boundaries is a programming error.
 *
 * See docs/observability.md for the metric reference.
 */

#ifndef EAAO_OBS_METRICS_HPP
#define EAAO_OBS_METRICS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eaao::obs {

/** Monotonic event counter. */
struct Counter
{
    std::uint64_t value = 0;

    /** Add @p n events. */
    void
    add(std::uint64_t n = 1) noexcept
    {
        value += n;
    }
};

/**
 * Fixed-bucket histogram. Bucket i counts observations with
 * x <= bounds[i] (first matching bucket); one overflow bucket catches
 * everything above the last bound.
 */
struct Histogram
{
    std::vector<double> bounds;        //!< ascending upper bounds
    std::vector<std::uint64_t> counts; //!< bounds.size() + 1 buckets
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0; //!< meaningful only when count > 0
    double max = 0.0; //!< meaningful only when count > 0

    /** Record one observation. */
    void observe(double x);

    /** Add another histogram's observations (same bounds required). */
    void merge(const Histogram &other);
};

/**
 * Registry of named counters and histograms.
 *
 * Storage is ordered by name, so iteration, merging and JSON
 * rendering are all deterministic.
 */
class MetricsRegistry
{
  public:
    /** Find or create the counter named @p name. Stable pointer. */
    Counter *counter(const std::string &name);

    /**
     * Find or create the histogram named @p name with the given
     * bucket upper bounds (ascending). Re-registration must use the
     * same bounds. Stable pointer.
     */
    Histogram *histogram(const std::string &name,
                         const std::vector<double> &bounds);

    /** True when nothing has been registered. */
    bool empty() const { return counters_.empty() && histograms_.empty(); }

    /**
     * Fold @p other into this registry (values added, histograms
     * merged bucket-wise). Used slot-by-slot after a trial campaign.
     */
    void merge(const MetricsRegistry &other);

    /** Render as a pretty-printed JSON object, names sorted. */
    std::string toJson() const;

    /** Read-only views (for tests and custom reporting). */
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
};

/**
 * Reduce per-trial registries into one, merging left-to-right in slot
 * order. Bit-deterministic for any worker-thread count, because the
 * merge order is the trial-index order, never the completion order.
 */
MetricsRegistry mergeRegistries(const std::vector<MetricsRegistry> &parts);

/**
 * Interpolated quantile estimate from a fixed-bucket histogram.
 *
 * Walks the cumulative counts to the bucket holding the q-th ranked
 * observation and interpolates linearly inside it. The first bucket
 * interpolates from 0 (or from min when it is tighter); the overflow
 * bucket is pinned between the last bound and max. Returns 0.0 for an
 * empty histogram. @p q is clamped to [0, 1]. The result is a pure
 * function of the histogram contents, so it is safe to render into
 * deterministic output.
 */
double histogramQuantile(const Histogram &h, double q);

/** @name Standard bucket boundaries (documented in docs/observability.md)
 *  @{ */

/** Cold-start latency, seconds (creation startup time). */
const std::vector<double> &coldStartBucketsS();

/** End-to-end request latency under open-loop load, seconds. */
const std::vector<double> &requestLatencyBucketsS();

/** Time an admitted request waits before dispatch, seconds. */
const std::vector<double> &coldWaitBucketsS();

/** Live instances co-resident on one host at placement time. */
const std::vector<double> &instancesPerHostBuckets();

/** Helper-order churn fraction per refresh, in [0, 1]. */
const std::vector<double> &churnFractionBuckets();

/** Covert-channel per-test error fraction, in [0, 1]. */
const std::vector<double> &errorRateBuckets();

/** Host uptime at platform start, days. */
const std::vector<double> &uptimeDaysBuckets();

/** Fingerprint time-to-expiration, days. */
const std::vector<double> &expirationDaysBuckets();

/** @} */

} // namespace eaao::obs

#endif // EAAO_OBS_METRICS_HPP
