/**
 * @file
 * Wiring between the observability layer and experiment binaries.
 *
 * ObsConfig resolves the `--trace-json` / `--metrics-json` flags (and
 * their EAAO_TRACE_JSON / EAAO_METRICS_JSON environment fallbacks);
 * TrialSet owns one TraceSink + MetricsRegistry pair per trial slot so
 * exp::runTrials workers record without synchronisation; writeOutputs
 * merges the slots in trial order and writes the requested files.
 *
 * Typical use in a bench or example:
 *
 *     const auto obs_cfg = obs::ObsConfig::fromArgs(argc, argv);
 *     obs::TrialSet obs_set(obs_cfg);
 *     exp::runTrials(n, seed, fn, threads, &obs_set);
 *     obs::writeOutputs(obs_cfg, obs_set);
 *
 * Nothing here touches stdout: bench output stays byte-identical
 * whether observability is on or off.
 */

#ifndef EAAO_OBS_EXPORT_HPP
#define EAAO_OBS_EXPORT_HPP

#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace_sink.hpp"

namespace eaao::obs {

/** Resolved observability outputs for one binary invocation. */
struct ObsConfig
{
    std::optional<std::string> trace_path;
    std::optional<std::string> metrics_path;

    /** True when at least one output was requested. */
    bool
    enabled() const
    {
        return trace_path.has_value() || metrics_path.has_value();
    }

    /**
     * Parse `--trace-json` / `--metrics-json` from @p argv with
     * environment fallbacks (support::traceJsonFromArgs and friends).
     */
    static ObsConfig fromArgs(int argc, char **argv);
};

/** One trial slot's recording state. */
struct TrialObs
{
    TraceSink trace;
    MetricsRegistry metrics;

    /** Handle wired to this slot's sink and registry. */
    Observer
    observer()
    {
        return Observer{&trace, &metrics};
    }
};

/**
 * Per-trial recording slots for a parallel campaign.
 *
 * When disabled (no outputs requested), prepare() is a no-op and
 * observer() returns a null Observer, so the instrumented code runs
 * its cheap disabled path. When enabled, each trial gets a private
 * slot; slots are only combined after the run, in slot order.
 */
class TrialSet
{
  public:
    /** Enable recording iff @p config requests an output. */
    explicit TrialSet(const ObsConfig &config) : enabled_(config.enabled())
    {
    }

    /** Direct control, for tests. */
    explicit TrialSet(bool enabled) : enabled_(enabled) {}

    bool enabled() const { return enabled_; }

    /** Size for @p trials slots (drops previous contents). */
    void prepare(std::size_t trials);

    /**
     * Observer for trial slot @p index; null when disabled. Valid
     * until the next prepare().
     */
    Observer observer(std::size_t index);

    /** The recorded slots, indexed by trial. */
    const std::vector<TrialObs> &slots() const { return slots_; }
    std::vector<TrialObs> &slots() { return slots_; }

  private:
    bool enabled_;
    std::vector<TrialObs> slots_;
};

/**
 * Merge @p set's slots in trial order and write whichever outputs
 * @p config requests. Writing is fatal on I/O failure (user error:
 * they asked for the file). No-op when disabled.
 */
void writeOutputs(const ObsConfig &config, const TrialSet &set);

} // namespace eaao::obs

#endif // EAAO_OBS_EXPORT_HPP
