/**
 * @file
 * Implementation of the trace sink and Chrome trace_event rendering.
 */

#include "obs/trace_sink.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <sstream>

#include "support/logging.hpp"

namespace eaao::obs {

std::uint32_t
TraceSink::trackId(const char *track)
{
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        if (tracks_[i] == track || std::strcmp(tracks_[i], track) == 0)
            return static_cast<std::uint32_t>(i);
    }
    tracks_.push_back(track);
    return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void
TraceSink::push(TraceEvent event, std::initializer_list<TraceArg> args)
{
    EAAO_ASSERT(args.size() <= TraceEvent::kMaxArgs,
                "too many trace args for event ", event.name);
    event.seq = static_cast<std::uint64_t>(events_.size());
    event.n_args = static_cast<std::uint8_t>(args.size());
    std::size_t i = 0;
    for (const TraceArg &arg : args)
        event.args[i++] = arg;
    events_.push_back(event);
}

void
TraceSink::instant(const char *name, const char *track, sim::SimTime ts,
                   std::initializer_list<TraceArg> args)
{
    TraceEvent e;
    e.name = name;
    e.track = trackId(track);
    e.phase = 'i';
    e.ts = ts;
    push(e, args);
}

void
TraceSink::complete(const char *name, const char *track, sim::SimTime start,
                    sim::SimTime end, std::initializer_list<TraceArg> args)
{
    EAAO_ASSERT(end >= start, "span ends before it starts: ", name);
    TraceEvent e;
    e.name = name;
    e.track = trackId(track);
    e.phase = 'X';
    e.ts = start;
    e.dur = end - start;
    push(e, args);
}

namespace {

/** Append a JSON string literal with escaping. */
void
appendJsonString(std::string &out, const char *s)
{
    out += '"';
    for (; *s != '\0'; ++s) {
        const char c = *s;
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** Sim nanoseconds as trace microseconds ("%.3f" is exact at ns). */
void
appendMicros(std::string &out, std::int64_t ns)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                  static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
    out += buf;
}

void
appendArg(std::string &out, const TraceArg &arg)
{
    appendJsonString(out, arg.key);
    out += ": ";
    char buf[64];
    switch (arg.kind) {
    case TraceArg::Kind::U64:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(arg.u));
        out += buf;
        break;
    case TraceArg::Kind::I64:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(arg.i));
        out += buf;
        break;
    case TraceArg::Kind::F64:
        std::snprintf(buf, sizeof(buf), "%.9g", arg.f);
        out += buf;
        break;
    case TraceArg::Kind::Str:
        appendJsonString(out, arg.s);
        break;
    }
}

/** Render one event as a single JSON object line. */
void
appendEvent(std::string &out, const TraceEvent &event, std::size_t pid,
            const char *track_name)
{
    (void)track_name;
    out += "{\"name\": ";
    appendJsonString(out, event.name);
    out += ", \"ph\": \"";
    out += event.phase;
    out += "\", \"ts\": ";
    appendMicros(out, event.ts.ns());
    if (event.phase == 'X') {
        out += ", \"dur\": ";
        appendMicros(out, event.dur.ns());
    }
    if (event.phase == 'i')
        out += ", \"s\": \"t\"";
    char buf[64];
    std::snprintf(buf, sizeof(buf), ", \"pid\": %zu, \"tid\": %u", pid,
                  event.track);
    out += buf;
    if (event.n_args > 0) {
        out += ", \"args\": {";
        for (std::uint8_t a = 0; a < event.n_args; ++a) {
            if (a > 0)
                out += ", ";
            appendArg(out, event.args[a]);
        }
        out += "}";
    }
    out += "}";
}

/** Metadata event naming a process or thread. */
void
appendMetadata(std::string &out, const char *what, std::size_t pid,
               std::uint32_t tid, bool with_tid, const std::string &name)
{
    out += "{\"name\": \"";
    out += what;
    out += "\", \"ph\": \"M\", \"pid\": ";
    out += std::to_string(pid);
    if (with_tid) {
        out += ", \"tid\": ";
        out += std::to_string(tid);
    }
    out += ", \"args\": {\"name\": ";
    appendJsonString(out, name.c_str());
    out += "}}";
}

} // namespace

void
writeChromeTrace(std::ostream &out,
                 const std::vector<const TraceSink *> &trials)
{
    std::string doc = "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
    bool first = true;
    auto emit = [&doc, &first](const std::string &line) {
        if (!first)
            doc += ",\n";
        first = false;
        doc += line;
    };

    for (std::size_t pid = 0; pid < trials.size(); ++pid) {
        const TraceSink *sink = trials[pid];
        if (sink == nullptr || sink->events().empty())
            continue;

        std::string line;
        appendMetadata(line, "process_name", pid, 0, false,
                       "trial " + std::to_string(pid));
        emit(line);
        for (std::uint32_t t = 0;
             t < static_cast<std::uint32_t>(sink->tracks().size()); ++t) {
            line.clear();
            appendMetadata(line, "thread_name", pid, t, true,
                           sink->tracks()[t]);
            emit(line);
        }

        // Stable order: per track, ascending sim time, emission order
        // as the tie-break. This keeps each track's timeline monotonic
        // in the file and the bytes independent of buffering details.
        std::vector<std::size_t> order(sink->events().size());
        std::iota(order.begin(), order.end(), 0);
        const auto &events = sink->events();
        std::sort(order.begin(), order.end(),
                  [&events](std::size_t a, std::size_t b) {
                      const TraceEvent &ea = events[a];
                      const TraceEvent &eb = events[b];
                      if (ea.track != eb.track)
                          return ea.track < eb.track;
                      if (ea.ts != eb.ts)
                          return ea.ts < eb.ts;
                      return ea.seq < eb.seq;
                  });
        for (const std::size_t idx : order) {
            line.clear();
            appendEvent(line, events[idx], pid,
                        sink->tracks()[events[idx].track]);
            emit(line);
        }
    }

    doc += "\n]}\n";
    out << doc;
}

std::string
toChromeTraceJson(const std::vector<const TraceSink *> &trials)
{
    std::ostringstream oss;
    writeChromeTrace(oss, trials);
    return oss.str();
}

} // namespace eaao::obs
