/**
 * @file
 * Implementation of pair-counting clustering metrics.
 */

#include "stats/clustering.hpp"

#include <cmath>
#include <map>
#include <unordered_map>

#include "support/logging.hpp"

namespace eaao::stats {

double
PairConfusion::precision() const
{
    const std::uint64_t denom = tp + fp;
    return denom == 0 ? 1.0
                      : static_cast<double>(tp) / static_cast<double>(denom);
}

double
PairConfusion::recall() const
{
    const std::uint64_t denom = tp + fn;
    return denom == 0 ? 1.0
                      : static_cast<double>(tp) / static_cast<double>(denom);
}

double
PairConfusion::fmi() const
{
    return std::sqrt(precision() * recall());
}

namespace {

/** pairs(n) = n choose 2. */
std::uint64_t
pairs(std::uint64_t n)
{
    return n * (n - 1) / 2;
}

} // namespace

PairConfusion
comparePairs(const std::vector<std::uint64_t> &predicted,
             const std::vector<std::uint64_t> &truth)
{
    EAAO_ASSERT(predicted.size() == truth.size(),
                "label vector size mismatch");
    const std::uint64_t n = predicted.size();

    // Contingency table: joint counts per (predicted, truth) label pair,
    // plus the marginals.
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> joint;
    std::unordered_map<std::uint64_t, std::uint64_t> pred_marginal;
    std::unordered_map<std::uint64_t, std::uint64_t> true_marginal;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        ++joint[{predicted[i], truth[i]}];
        ++pred_marginal[predicted[i]];
        ++true_marginal[truth[i]];
    }

    std::uint64_t same_both = 0; // pairs together in both clusterings
    for (const auto &[key, count] : joint)
        same_both += pairs(count);

    std::uint64_t same_pred = 0;
    for (const auto &[label, count] : pred_marginal)
        same_pred += pairs(count);

    std::uint64_t same_true = 0;
    for (const auto &[label, count] : true_marginal)
        same_true += pairs(count);

    PairConfusion out;
    out.tp = same_both;
    out.fp = same_pred - same_both;
    out.fn = same_true - same_both;
    out.tn = pairs(n) - same_pred - same_true + same_both;
    return out;
}

std::vector<std::size_t>
clusterSizeHistogram(const std::vector<std::uint64_t> &labels)
{
    std::unordered_map<std::uint64_t, std::size_t> counts;
    for (auto l : labels)
        ++counts[l];
    std::size_t max_size = 0;
    for (const auto &[label, c] : counts)
        max_size = std::max(max_size, c);
    std::vector<std::size_t> hist(max_size + 1, 0);
    for (const auto &[label, c] : counts)
        ++hist[c];
    return hist;
}

std::size_t
distinctCount(const std::vector<std::uint64_t> &labels)
{
    std::unordered_map<std::uint64_t, bool> seen;
    for (auto l : labels)
        seen[l] = true;
    return seen.size();
}

} // namespace eaao::stats
