/**
 * @file
 * Online summary statistics and percentile helpers.
 */

#ifndef EAAO_STATS_SUMMARY_HPP
#define EAAO_STATS_SUMMARY_HPP

#include <cstddef>
#include <limits>
#include <vector>

namespace eaao::stats {

/**
 * Welford-style online accumulator for mean / variance / extrema.
 */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations. */
    std::size_t count() const { return n_; }

    /** Sample mean (0 if empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 if fewer than two observations). */
    double variance() const;

    /** Unbiased sample standard deviation. */
    double stddev() const;

    /** Minimum observation (+inf if empty). */
    double min() const { return min_; }

    /** Maximum observation (-inf if empty). */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return sum_; }

    /** Merge another accumulator into this one. */
    void merge(const OnlineStats &other);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Reduce per-trial accumulators into one, merging left-to-right in
 * slot order. Used by the parallel trial harness: because the merge
 * order is the trial-index order (not completion order), the reduced
 * statistics are bit-identical for any worker-thread count.
 */
OnlineStats mergeStats(const std::vector<OnlineStats> &parts);

/**
 * Percentile of a sample using linear interpolation between order
 * statistics. @p q is in [0, 1]. The input is copied and sorted.
 */
double percentile(std::vector<double> values, double q);

/** Arithmetic mean of a vector (0 if empty). */
double meanOf(const std::vector<double> &values);

/** Sample standard deviation of a vector (0 if n < 2). */
double stddevOf(const std::vector<double> &values);

} // namespace eaao::stats

#endif // EAAO_STATS_SUMMARY_HPP
