/**
 * @file
 * Implementation of summary statistics.
 */

#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace eaao::stats {

void
OnlineStats::add(double x)
{
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
OnlineStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const double total = static_cast<double>(n_ + other.n_);
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ = (mean_ * static_cast<double>(n_) +
             other.mean_ * static_cast<double>(other.n_)) /
            total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

OnlineStats
mergeStats(const std::vector<OnlineStats> &parts)
{
    OnlineStats out;
    for (const OnlineStats &part : parts)
        out.merge(part);
    return out;
}

double
percentile(std::vector<double> values, double q)
{
    EAAO_ASSERT(!values.empty(), "percentile of empty sample");
    EAAO_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range: ", q);
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values.front();
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= values.size())
        return values.back();
    return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double
meanOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

double
stddevOf(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = meanOf(values);
    double s2 = 0.0;
    for (double v : values)
        s2 += (v - m) * (v - m);
    return std::sqrt(s2 / static_cast<double>(values.size() - 1));
}

} // namespace eaao::stats
