/**
 * @file
 * Empirical CDF and histogram builders used by the figure benches.
 */

#ifndef EAAO_STATS_CDF_HPP
#define EAAO_STATS_CDF_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace eaao::stats {

/**
 * Empirical cumulative distribution function over a sample.
 */
class EmpiricalCdf
{
  public:
    /** Build from a sample (copied and sorted). */
    explicit EmpiricalCdf(std::vector<double> sample);

    /** Fraction of the sample <= x. */
    double at(double x) const;

    /** Inverse CDF (quantile) for q in [0, 1]. */
    double quantile(double q) const;

    /** Number of sample points. */
    std::size_t size() const { return sorted_.size(); }

    /** Smallest sample value. */
    double minValue() const;

    /** Largest sample value. */
    double maxValue() const;

    /**
     * Evaluate the CDF at evenly spaced points across [lo, hi];
     * convenient for printing figure series.
     */
    std::vector<std::pair<double, double>> series(double lo, double hi,
                                                  std::size_t points) const;

  private:
    std::vector<double> sorted_;
};

/** Fixed-width histogram over [lo, hi) with out-of-range clamping. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one observation. */
    void add(double x);

    /** Count in bin @p i. */
    std::size_t binCount(std::size_t i) const { return counts_.at(i); }

    /** Center x-value of bin @p i. */
    double binCenter(std::size_t i) const;

    /** Number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** Total observations recorded. */
    std::size_t total() const { return total_; }

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace eaao::stats

#endif // EAAO_STATS_CDF_HPP
