/**
 * @file
 * Implementation of least-squares regression.
 */

#include "stats/regression.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace eaao::stats {

LinearFit
linearRegression(const std::vector<double> &x, const std::vector<double> &y)
{
    EAAO_ASSERT(x.size() == y.size(), "x/y size mismatch");
    EAAO_ASSERT(x.size() >= 2, "regression needs at least two points");

    const auto n = static_cast<double>(x.size());
    double sx = 0.0, sy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
    }
    const double mx = sx / n;
    const double my = sy / n;

    double sxx = 0.0, syy = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    EAAO_ASSERT(sxx > 0.0, "degenerate regression: all x identical");

    LinearFit fit;
    fit.n = x.size();
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    if (syy <= 0.0) {
        // Perfectly flat series: the zero-slope line explains everything.
        fit.r_value = 1.0;
    } else {
        fit.r_value = sxy / std::sqrt(sxx * syy);
    }
    return fit;
}

} // namespace eaao::stats
