/**
 * @file
 * Goodness-of-fit hypothesis tests.
 *
 * The simulator's realism rests on its samplers (exponential reap
 * delays, lognormal noise mixtures, Poisson arrivals, Zipf weights).
 * These tests let the test suite check distributions properly instead
 * of eyeballing moments: a one-sample Kolmogorov-Smirnov test against
 * an arbitrary CDF and a chi-square test against expected bin counts.
 */

#ifndef EAAO_STATS_HYPOTHESIS_HPP
#define EAAO_STATS_HYPOTHESIS_HPP

#include <functional>
#include <vector>

namespace eaao::stats {

/** Outcome of a goodness-of-fit test. */
struct GofResult
{
    double statistic = 0.0; //!< KS D or chi-square value
    double p_value = 0.0;   //!< asymptotic p-value

    /** Reject the null hypothesis at significance alpha? */
    bool
    reject(double alpha = 0.01) const
    {
        return p_value < alpha;
    }
};

/**
 * One-sample Kolmogorov-Smirnov test.
 *
 * @param sample Observations (copied and sorted).
 * @param cdf The hypothesized continuous CDF.
 * @return D statistic and asymptotic p-value (Kolmogorov
 *         distribution; accurate for n >= ~35).
 */
GofResult ksTest(std::vector<double> sample,
                 const std::function<double(double)> &cdf);

/**
 * Chi-square goodness-of-fit test.
 *
 * @param observed Observed counts per bin.
 * @param expected Expected counts per bin (same length; each >= ~5
 *        for the asymptotics to hold).
 * @return Chi-square statistic and p-value with k-1 degrees of
 *         freedom.
 */
GofResult chiSquareTest(const std::vector<double> &observed,
                        const std::vector<double> &expected);

/** Regularized upper incomplete gamma Q(a, x) (for chi-square p). */
double upperIncompleteGammaQ(double a, double x);

/** Standard normal CDF. */
double normalCdf(double x, double mean = 0.0, double sigma = 1.0);

/** Exponential CDF with the given mean. */
double exponentialCdf(double x, double mean);

} // namespace eaao::stats

#endif // EAAO_STATS_HYPOTHESIS_HPP
