/**
 * @file
 * Ordinary least-squares linear regression.
 *
 * Used to fit the drift of a host's derived boot time T_boot against
 * real-world time (paper Section 4.4.2); the r-value validates the
 * linear-drift hypothesis and the slope feeds the expiration estimate.
 */

#ifndef EAAO_STATS_REGRESSION_HPP
#define EAAO_STATS_REGRESSION_HPP

#include <cstddef>
#include <vector>

namespace eaao::stats {

/** Result of a simple y = slope * x + intercept fit. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    double r_value = 0.0;      //!< Pearson correlation coefficient
    std::size_t n = 0;         //!< number of points

    /** Predicted y at @p x. */
    double at(double x) const { return slope * x + intercept; }
};

/**
 * Fit a least-squares line through (x[i], y[i]).
 *
 * Requires x.size() == y.size() and at least two points. If all y values
 * are identical the r_value is reported as 1 when the slope is exactly
 * zero (a perfectly flat, perfectly explained series).
 */
LinearFit linearRegression(const std::vector<double> &x,
                           const std::vector<double> &y);

} // namespace eaao::stats

#endif // EAAO_STATS_REGRESSION_HPP
