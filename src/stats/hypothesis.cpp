/**
 * @file
 * Implementation of the goodness-of-fit tests.
 */

#include "stats/hypothesis.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace eaao::stats {

namespace {

/** Asymptotic Kolmogorov distribution tail: P(D_n > d). */
double
kolmogorovPValue(double d, std::size_t n)
{
    const double sqrt_n = std::sqrt(static_cast<double>(n));
    // Stephens' effective statistic improves small-n accuracy.
    const double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    double sum = 0.0;
    for (int k = 1; k <= 100; ++k) {
        const double term = 2.0 * ((k % 2) ? 1.0 : -1.0) *
                            std::exp(-2.0 * k * k * lambda * lambda);
        sum += term;
        if (std::fabs(term) < 1e-12)
            break;
    }
    return std::clamp(sum, 0.0, 1.0);
}

} // namespace

GofResult
ksTest(std::vector<double> sample,
       const std::function<double(double)> &cdf)
{
    EAAO_ASSERT(!sample.empty(), "empty KS sample");
    std::sort(sample.begin(), sample.end());
    const auto n = static_cast<double>(sample.size());

    double d = 0.0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
        const double f = cdf(sample[i]);
        const double lo = static_cast<double>(i) / n;
        const double hi = static_cast<double>(i + 1) / n;
        d = std::max(d, std::max(std::fabs(f - lo), std::fabs(hi - f)));
    }

    GofResult result;
    result.statistic = d;
    result.p_value = kolmogorovPValue(d, sample.size());
    return result;
}

GofResult
chiSquareTest(const std::vector<double> &observed,
              const std::vector<double> &expected)
{
    EAAO_ASSERT(observed.size() == expected.size(),
                "bin count mismatch");
    EAAO_ASSERT(observed.size() >= 2, "need at least two bins");

    double chi2 = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        EAAO_ASSERT(expected[i] > 0.0, "non-positive expected count");
        const double delta = observed[i] - expected[i];
        chi2 += delta * delta / expected[i];
    }

    GofResult result;
    result.statistic = chi2;
    const auto dof = static_cast<double>(observed.size() - 1);
    result.p_value = upperIncompleteGammaQ(dof / 2.0, chi2 / 2.0);
    return result;
}

double
upperIncompleteGammaQ(double a, double x)
{
    EAAO_ASSERT(a > 0.0 && x >= 0.0, "bad gamma arguments");
    if (x == 0.0)
        return 1.0;

    if (x < a + 1.0) {
        // Series expansion of P(a, x); Q = 1 - P.
        double term = 1.0 / a;
        double sum = term;
        for (int k = 1; k < 500; ++k) {
            term *= x / (a + k);
            sum += term;
            if (term < sum * 1e-15)
                break;
        }
        const double log_p =
            -x + a * std::log(x) - std::lgamma(a) + std::log(sum);
        return std::clamp(1.0 - std::exp(log_p), 0.0, 1.0);
    }

    // Continued fraction for Q(a, x) (Lentz's algorithm).
    const double tiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int k = 1; k < 500; ++k) {
        const double an = -k * (k - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = b + an / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::fabs(delta - 1.0) < 1e-15)
            break;
    }
    const double log_q = -x + a * std::log(x) - std::lgamma(a) +
                         std::log(h);
    return std::clamp(std::exp(log_q), 0.0, 1.0);
}

double
normalCdf(double x, double mean, double sigma)
{
    return 0.5 * std::erfc(-(x - mean) / (sigma * std::sqrt(2.0)));
}

double
exponentialCdf(double x, double mean)
{
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x / mean);
}

} // namespace eaao::stats
