/**
 * @file
 * Implementation of the empirical CDF and histogram.
 */

#include "stats/cdf.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace eaao::stats {

EmpiricalCdf::EmpiricalCdf(std::vector<double> sample)
    : sorted_(std::move(sample))
{
    EAAO_ASSERT(!sorted_.empty(), "empty CDF sample");
    std::sort(sorted_.begin(), sorted_.end());
}

double
EmpiricalCdf::at(double x) const
{
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

double
EmpiricalCdf::quantile(double q) const
{
    EAAO_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    if (sorted_.size() == 1)
        return sorted_.front();
    const double pos = q * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= sorted_.size())
        return sorted_.back();
    return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double
EmpiricalCdf::minValue() const
{
    return sorted_.front();
}

double
EmpiricalCdf::maxValue() const
{
    return sorted_.back();
}

std::vector<std::pair<double, double>>
EmpiricalCdf::series(double lo, double hi, std::size_t points) const
{
    EAAO_ASSERT(points >= 2, "need at least two series points");
    std::vector<std::pair<double, double>> out;
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double x = lo + (hi - lo) * static_cast<double>(i) /
                                  static_cast<double>(points - 1);
        out.emplace_back(x, at(x));
    }
    return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    EAAO_ASSERT(hi > lo, "empty histogram range");
    EAAO_ASSERT(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    const double frac = (x - lo_) / (hi_ - lo_);
    auto bin = static_cast<std::int64_t>(
        std::floor(frac * static_cast<double>(counts_.size())));
    bin = std::clamp<std::int64_t>(
        bin, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
}

double
Histogram::binCenter(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * (static_cast<double>(i) + 0.5);
}

} // namespace eaao::stats
