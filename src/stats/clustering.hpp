/**
 * @file
 * Pair-counting metrics for comparing clusterings.
 *
 * The paper evaluates fingerprint quality by treating "same fingerprint"
 * as a predicted clustering and the covert-channel co-location ground
 * truth as the reference clustering, then counting true/false
 * positive/negative instance pairs and reporting precision, recall, and
 * the Fowlkes-Mallows index (FMI).
 */

#ifndef EAAO_STATS_CLUSTERING_HPP
#define EAAO_STATS_CLUSTERING_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eaao::stats {

/** Confusion counts over all unordered pairs of items. */
struct PairConfusion
{
    std::uint64_t tp = 0; //!< same predicted cluster, same true cluster
    std::uint64_t fp = 0; //!< same predicted cluster, different true
    std::uint64_t tn = 0; //!< different predicted, different true
    std::uint64_t fn = 0; //!< different predicted, same true

    /** Pairwise precision TP / (TP + FP); 1 if no positives predicted. */
    double precision() const;

    /** Pairwise recall TP / (TP + FN); 1 if no true positives exist. */
    double recall() const;

    /** Fowlkes-Mallows index: sqrt(precision * recall). */
    double fmi() const;
};

/**
 * Count pairwise agreement between two label vectors of equal length.
 *
 * Labels are arbitrary integers; only equality within each vector
 * matters. Runs in O(n log n)-ish time using contingency counts rather
 * than the O(n^2) naive pair loop.
 *
 * @param predicted Predicted cluster label per item (e.g. fingerprint id).
 * @param truth True cluster label per item (e.g. verified host id).
 */
PairConfusion comparePairs(const std::vector<std::uint64_t> &predicted,
                           const std::vector<std::uint64_t> &truth);

/**
 * Histogram of cluster sizes for a label vector: result[k] = number of
 * clusters with exactly k members (index 0 unused).
 */
std::vector<std::size_t> clusterSizeHistogram(
    const std::vector<std::uint64_t> &labels);

/** Number of distinct labels. */
std::size_t distinctCount(const std::vector<std::uint64_t> &labels);

} // namespace eaao::stats

#endif // EAAO_STATS_CLUSTERING_HPP
