/**
 * @file
 * Common command-line / environment knobs for benches and examples.
 *
 * Every experiment binary accepts `--threads N` (also `--threads=N`)
 * and honours the `EAAO_THREADS` environment variable; precedence is
 * argv > environment > hardware concurrency. The trial harness
 * guarantees byte-identical output for any thread count, so the knob
 * only changes wall-clock time.
 *
 * `--bench-json <path>` (also `--bench-json=<path>`, or the
 * EAAO_BENCH_JSON environment variable) names a file the bench appends
 * its timing record to — see bench_timer.hpp. Timing never goes to
 * stdout, so bench output stays byte-identical either way.
 *
 * `--trace-json <path>` / EAAO_TRACE_JSON and `--metrics-json <path>`
 * / EAAO_METRICS_JSON name the observability outputs: a Chrome
 * trace_event file and a metrics JSON file (see src/obs/ and
 * docs/observability.md). Like timing, they never touch stdout.
 */

#ifndef EAAO_SUPPORT_OPTIONS_HPP
#define EAAO_SUPPORT_OPTIONS_HPP

#include <cstdint>
#include <optional>
#include <string>

namespace eaao::support {

/**
 * Default worker-thread count: EAAO_THREADS if set and positive,
 * otherwise std::thread::hardware_concurrency() (min 1).
 */
unsigned defaultThreads();

/**
 * Resolve the worker-thread count for a bench/example binary from
 * `--threads N` / `--threads=N` in @p argv, falling back to
 * defaultThreads(). A malformed or missing value is a fatal user
 * error.
 */
unsigned threadsFromArgs(int argc, char **argv);

/**
 * Resolve a lane-grouping count from `--shards N` / `--shards=N` in
 * @p argv, falling back to @p fallback when the flag is absent. A
 * malformed or non-positive value is a fatal user error.
 */
std::uint32_t shardsFromArgs(int argc, char **argv,
                             std::uint32_t fallback);

/**
 * Resolve the bench-timing JSON path from `--bench-json <path>` /
 * `--bench-json=<path>` in @p argv, falling back to EAAO_BENCH_JSON.
 * nullopt when neither is given (timing disabled); an empty value is
 * a fatal user error.
 */
std::optional<std::string> benchJsonFromArgs(int argc, char **argv);

/**
 * Resolve the Chrome trace output path from `--trace-json <path>` /
 * `--trace-json=<path>`, falling back to EAAO_TRACE_JSON. nullopt when
 * neither is given (tracing disabled); an empty value is a fatal user
 * error.
 */
std::optional<std::string> traceJsonFromArgs(int argc, char **argv);

/**
 * Resolve the metrics output path from `--metrics-json <path>` /
 * `--metrics-json=<path>`, falling back to EAAO_METRICS_JSON. nullopt
 * when neither is given (metrics disabled); an empty value is a fatal
 * user error.
 */
std::optional<std::string> metricsJsonFromArgs(int argc, char **argv);

} // namespace eaao::support

#endif // EAAO_SUPPORT_OPTIONS_HPP
