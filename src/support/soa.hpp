/**
 * @file
 * Struct-of-arrays host-load table with optional touch tracking.
 *
 * The orchestrator's per-host capacity bookkeeping (vcpus and memory
 * in use) lives here as two parallel dense columns instead of an
 * array of structs: the placement scans read one column at a time, so
 * the SoA layout halves the bytes those scans pull through the cache
 * and lets the compiler vectorize them.
 *
 * With touch tracking enabled the table doubles as a *delta ledger*
 * for the sharded platform (docs/sharding.md): each lane accumulates
 * its capacity changes locally during a window, and the barrier drains
 * every lane's delta into the shared committed table in canonical lane
 * order. Touch order is deterministic (it is the lane's own execution
 * order), so the fold — including the floating-point sums reported in
 * the exchange digest — is reproducible bit-for-bit.
 */

#ifndef EAAO_SUPPORT_SOA_HPP
#define EAAO_SUPPORT_SOA_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/logging.hpp"

namespace eaao::support {

/** Summary of one drained delta (for the window exchange digest). */
struct HostLoadFold
{
    std::size_t hosts = 0;  //!< distinct hosts folded
    double vcpus = 0.0;     //!< signed vcpu delta, summed in touch order
    double mem_gb = 0.0;    //!< signed memory delta, summed in touch order
};

/**
 * Dense per-host load columns (vcpus, memory) with O(1) add/sub and
 * an optional touched-host list for delta draining.
 */
class HostLoadSoA
{
  public:
    /**
     * Size for @p hosts entries, zeroed. @p track_touched records the
     * set of hosts mutated since the last drain() (delta-ledger mode).
     */
    void
    assign(std::size_t hosts, bool track_touched = false)
    {
        vcpus_.assign(hosts, 0.0);
        mem_gb_.assign(hosts, 0.0);
        track_ = track_touched;
        dirty_.assign(track_ ? hosts : 0, 0);
        touched_.clear();
    }

    std::size_t size() const { return vcpus_.size(); }

    void
    add(std::uint32_t host, double vcpus, double mem_gb)
    {
        vcpus_[host] += vcpus;
        mem_gb_[host] += mem_gb;
        touch(host);
    }

    void
    sub(std::uint32_t host, double vcpus, double mem_gb)
    {
        vcpus_[host] -= vcpus;
        mem_gb_[host] -= mem_gb;
        touch(host);
    }

    double vcpus(std::uint32_t host) const { return vcpus_[host]; }
    double memGb(std::uint32_t host) const { return mem_gb_[host]; }

    bool tracking() const { return track_; }

    /** Hosts mutated since the last drain, in first-touch order. */
    const std::vector<std::uint32_t> &touched() const { return touched_; }

    /**
     * Drain this delta into @p into (nullptr discards it — the
     * dropped-exchange fault path), zeroing the touched entries and
     * the touch list. Entries fold in first-touch order; each host
     * folds exactly once, so cross-host order only affects the digest
     * sums, which touch order keeps deterministic. Requires tracking.
     */
    HostLoadFold
    drain(HostLoadSoA *into)
    {
        EAAO_ASSERT(track_, "drain() on an untracked HostLoadSoA");
        HostLoadFold fold;
        for (const std::uint32_t host : touched_) {
            fold.vcpus += vcpus_[host];
            fold.mem_gb += mem_gb_[host];
            if (into != nullptr) {
                into->vcpus_[host] += vcpus_[host];
                into->mem_gb_[host] += mem_gb_[host];
                into->touch(host);
            }
            vcpus_[host] = 0.0;
            mem_gb_[host] = 0.0;
            dirty_[host] = 0;
        }
        fold.hosts = touched_.size();
        touched_.clear();
        return fold;
    }

    /** Raw vcpu column (checkpoint capture). */
    const std::vector<double> &vcpusColumn() const { return vcpus_; }

    /** Raw memory column (checkpoint capture). */
    const std::vector<double> &memColumn() const { return mem_gb_; }

    /**
     * Replace the table's contents with captured columns and touch
     * list, preserving the current tracking mode and size. The dirty
     * bitmap is rebuilt from @p touched so subsequent touches and
     * drains behave exactly as in the captured run.
     */
    void
    restoreState(const std::vector<double> &vcpus,
                 const std::vector<double> &mem_gb,
                 const std::vector<std::uint32_t> &touched)
    {
        EAAO_ASSERT(vcpus.size() == vcpus_.size() &&
                        mem_gb.size() == mem_gb_.size(),
                    "HostLoadSoA restore size mismatch");
        vcpus_ = vcpus;
        mem_gb_ = mem_gb;
        if (track_) {
            dirty_.assign(vcpus_.size(), 0);
            touched_ = touched;
            for (const std::uint32_t host : touched_)
                dirty_[host] = 1;
        }
    }

  private:
    void
    touch(std::uint32_t host)
    {
        if (!track_ || dirty_[host] != 0)
            return;
        dirty_[host] = 1;
        touched_.push_back(host);
    }

    std::vector<double> vcpus_;
    std::vector<double> mem_gb_;
    std::vector<std::uint8_t> dirty_; //!< empty unless tracking
    std::vector<std::uint32_t> touched_;
    bool track_ = false;
};

} // namespace eaao::support

#endif // EAAO_SUPPORT_SOA_HPP
