/**
 * @file
 * Diagnostics: panic/fatal/warn helpers and lightweight logging.
 *
 * Follows the gem5 convention: panic() flags an internal simulator bug
 * (aborts), fatal() flags a user/configuration error (clean exit),
 * warn()/inform() report conditions without stopping the run.
 */

#ifndef EAAO_SUPPORT_LOGGING_HPP
#define EAAO_SUPPORT_LOGGING_HPP

#include <sstream>
#include <string>

namespace eaao {

/** Verbosity levels for runtime logging. */
enum class LogLevel {
    Silent = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

/** Global log threshold; messages above this level are suppressed. */
LogLevel logLevel();

/** Set the global log threshold. */
void setLogLevel(LogLevel level);

namespace detail {

/** Emit a message to stderr with a severity tag. Internal use. */
void emit(const char *tag, const std::string &msg);

/** Abort with a panic message (simulator bug). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit with a fatal message (user error). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Fold a variadic pack into one string via ostringstream. */
template <typename... Args>
std::string
fold(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/** Report an internal invariant violation and abort. */
#define EAAO_PANIC(...)                                                      \
    ::eaao::detail::panicImpl(__FILE__, __LINE__,                            \
                              ::eaao::detail::fold(__VA_ARGS__))

/** Report an unrecoverable user/configuration error and exit(1). */
#define EAAO_FATAL(...)                                                      \
    ::eaao::detail::fatalImpl(__FILE__, __LINE__,                            \
                              ::eaao::detail::fold(__VA_ARGS__))

/** Assert an invariant; on failure, panic with the condition and message. */
#define EAAO_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            EAAO_PANIC("assertion failed: ", #cond, ": ",                    \
                       ::eaao::detail::fold(__VA_ARGS__));                   \
        }                                                                    \
    } while (0)

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emit("warn", detail::fold(std::forward<Args>(args)...));
}

/** Informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Info)
        detail::emit("info", detail::fold(std::forward<Args>(args)...));
}

} // namespace eaao

#endif // EAAO_SUPPORT_LOGGING_HPP
