/**
 * @file
 * Implementation of the diagnostics helpers.
 */

#include "support/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace eaao {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

} // namespace detail

} // namespace eaao
