/**
 * @file
 * Small sorted-vector map for hot low-cardinality tables.
 *
 * The orchestrator keeps a per-host count of instances by account and
 * by service; each host carries ~10 entries, so an unordered_map pays
 * hashing and node allocations for nothing. SmallFlatMap stores the
 * entries contiguously in key order: lookups are a binary search over
 * one cache line or two, iteration is deterministic (sorted by key,
 * never hash order), and the whole table is a single vector.
 */

#ifndef EAAO_SUPPORT_FLAT_MAP_HPP
#define EAAO_SUPPORT_FLAT_MAP_HPP

#include <algorithm>
#include <utility>
#include <vector>

namespace eaao::support {

/**
 * Sorted-vector map with the subset of the std::map interface the hot
 * paths use. Keys must be totally ordered by `<`; values must be
 * default-constructible (operator[] inserts a default).
 */
template <typename Key, typename Value>
class SmallFlatMap
{
  public:
    using value_type = std::pair<Key, Value>;
    using const_iterator = typename std::vector<value_type>::const_iterator;
    using iterator = typename std::vector<value_type>::iterator;

    /** Value for @p key, default-inserting it if absent. */
    Value &
    operator[](const Key &key)
    {
        const auto it = lowerBound(key);
        if (it != entries_.end() && it->first == key)
            return it->second;
        return entries_.insert(it, {key, Value{}})->second;
    }

    /** Iterator to @p key's entry, or end(). */
    const_iterator
    find(const Key &key) const
    {
        const auto it = lowerBound(key);
        return it != entries_.end() && it->first == key ? it
                                                        : entries_.end();
    }

    iterator
    find(const Key &key)
    {
        const auto it = lowerBound(key);
        return it != entries_.end() && it->first == key ? it
                                                        : entries_.end();
    }

    /** Remove @p key's entry. @return true if it existed. */
    bool
    erase(const Key &key)
    {
        const auto it = lowerBound(key);
        if (it == entries_.end() || it->first != key)
            return false;
        entries_.erase(it);
        return true;
    }

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** Iteration is in ascending key order — deterministic. */
    const_iterator begin() const { return entries_.begin(); }
    const_iterator end() const { return entries_.end(); }
    iterator begin() { return entries_.begin(); }
    iterator end() { return entries_.end(); }

  private:
    iterator
    lowerBound(const Key &key)
    {
        return std::lower_bound(
            entries_.begin(), entries_.end(), key,
            [](const value_type &e, const Key &k) { return e.first < k; });
    }

    const_iterator
    lowerBound(const Key &key) const
    {
        return std::lower_bound(
            entries_.begin(), entries_.end(), key,
            [](const value_type &e, const Key &k) { return e.first < k; });
    }

    std::vector<value_type> entries_;
};

} // namespace eaao::support

#endif // EAAO_SUPPORT_FLAT_MAP_HPP
