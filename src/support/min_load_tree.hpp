/**
 * @file
 * Tournament tree over per-position load counters.
 *
 * The orchestrator's placement decisions repeatedly ask "which is the
 * first position within a prefix of this preference order whose load
 * is minimal (and whose host still has capacity)?". Re-scanning the
 * prefix per decision made placement O(prefix) with a map lookup per
 * candidate; this tree answers the same query in O(log n) for the
 * common case, with loads updated incrementally as instances come and
 * go.
 *
 * Each leaf holds the key `(load << 32) | position`; internal nodes
 * hold the minimum key of their subtree. Because the position is the
 * low part of the key, the tree's minimum is exactly the *first*
 * position carrying the minimal load — the same host the legacy
 * first-strict-improvement scan selects, which is what keeps indexed
 * placement byte-identical to the reference scan.
 */

#ifndef EAAO_SUPPORT_MIN_LOAD_TREE_HPP
#define EAAO_SUPPORT_MIN_LOAD_TREE_HPP

#include <cstdint>
#include <optional>
#include <vector>

namespace eaao::support {

/**
 * Min-tournament over (load, position) keys with prefix-restricted,
 * predicate-filtered argmin queries.
 */
class MinLoadTree
{
  public:
    /** Rebuild over @p loads (position i gets loads[i]). */
    void
    assign(const std::vector<std::uint32_t> &loads)
    {
        n_ = loads.size();
        tree_.assign(n_ == 0 ? 0 : 4 * n_, kInf);
        if (n_ > 0)
            build(0, 0, n_, loads);
    }

    std::size_t size() const { return n_; }

    /** Set position @p pos to @p load; O(log n). */
    void
    update(std::size_t pos, std::uint32_t load)
    {
        updateNode(0, 0, n_, pos, key(load, pos));
    }

    /**
     * First position in [0, prefix) with minimal load among positions
     * @p accept allows, or nullopt if none qualifies. The predicate is
     * evaluated lazily during the descent: when the true minimum
     * qualifies (the common case — hosts rarely run out of capacity)
     * only O(log n) nodes are visited.
     */
    template <typename Accept>
    std::optional<std::size_t>
    minInPrefix(std::size_t prefix, Accept &&accept) const
    {
        if (n_ == 0 || prefix == 0)
            return std::nullopt;
        if (prefix > n_)
            prefix = n_;
        std::uint64_t best = kInf;
        query(0, 0, n_, prefix, best, accept);
        if (best == kInf)
            return std::nullopt;
        return static_cast<std::size_t>(best & 0xffffffffULL);
    }

  private:
    static constexpr std::uint64_t kInf = ~0ULL;

    static std::uint64_t
    key(std::uint32_t load, std::size_t pos)
    {
        return (static_cast<std::uint64_t>(load) << 32) |
               static_cast<std::uint64_t>(pos);
    }

    void
    build(std::size_t node, std::size_t l, std::size_t r,
          const std::vector<std::uint32_t> &loads)
    {
        if (r - l == 1) {
            tree_[node] = key(loads[l], l);
            return;
        }
        const std::size_t mid = l + (r - l) / 2;
        build(2 * node + 1, l, mid, loads);
        build(2 * node + 2, mid, r, loads);
        tree_[node] = std::min(tree_[2 * node + 1], tree_[2 * node + 2]);
    }

    void
    updateNode(std::size_t node, std::size_t l, std::size_t r,
               std::size_t pos, std::uint64_t k)
    {
        if (r - l == 1) {
            tree_[node] = k;
            return;
        }
        const std::size_t mid = l + (r - l) / 2;
        if (pos < mid)
            updateNode(2 * node + 1, l, mid, pos, k);
        else
            updateNode(2 * node + 2, mid, r, pos, k);
        tree_[node] = std::min(tree_[2 * node + 1], tree_[2 * node + 2]);
    }

    /**
     * Left-first descent pruned by the best accepted key so far. A
     * subtree whose minimum cannot beat the current best — or that
     * lies wholly beyond the prefix — is never entered.
     */
    template <typename Accept>
    void
    query(std::size_t node, std::size_t l, std::size_t r,
          std::size_t prefix, std::uint64_t &best, Accept &accept) const
    {
        if (l >= prefix || tree_[node] >= best)
            return;
        if (r - l == 1) {
            if (accept(l))
                best = tree_[node];
            return;
        }
        const std::size_t mid = l + (r - l) / 2;
        query(2 * node + 1, l, mid, prefix, best, accept);
        query(2 * node + 2, mid, r, prefix, best, accept);
    }

    std::size_t n_ = 0;
    std::vector<std::uint64_t> tree_;
};

} // namespace eaao::support

#endif // EAAO_SUPPORT_MIN_LOAD_TREE_HPP
