/**
 * @file
 * Bench timing pipeline: wall-clock timing of a bench's trial loop
 * plus machine-readable JSON records for the perf trajectory.
 *
 * Determinism contract: nothing here ever writes to stdout — bench
 * stdout stays byte-identical whether or not timing is enabled. The
 * records go to the file named by `--bench-json <path>` (or the
 * EAAO_BENCH_JSON environment variable), one JSON object per line, so
 * CI can append runs into a BENCH_*.json trajectory.
 */

#ifndef EAAO_SUPPORT_BENCH_TIMER_HPP
#define EAAO_SUPPORT_BENCH_TIMER_HPP

#include <chrono>
#include <cstdint>
#include <string>

namespace eaao::support {

/**
 * Add @p n to the process-wide executed-event counter. Called by
 * EventQueue's destructor (one relaxed atomic add per queue lifetime,
 * nothing per event), so the total is exact once the platforms built
 * inside a trial loop have been destroyed.
 */
void noteEventsProcessed(std::uint64_t n) noexcept;

/** Events executed by all destroyed queues so far, process-wide. */
std::uint64_t totalEventsProcessed() noexcept;

/** One timing record of a bench's trial loop. */
struct BenchTimingRecord
{
    std::string bench;                  //!< bench binary name
    double wall_s = 0.0;                //!< trial-loop wall time
    std::uint64_t events_processed = 0; //!< kernel events in the loop
    double events_per_s = 0.0;          //!< throughput (0 if wall_s==0)
    unsigned threads = 1;               //!< worker threads used
    std::uint64_t seed = 0;             //!< campaign seed
};

/** Render a record as a single-line JSON object (no trailing newline). */
std::string toJson(const BenchTimingRecord &record);

/**
 * Scoped timer around a bench's trial loop. Construction snapshots the
 * steady clock and the event counter; stop() produces the record.
 */
class BenchTimer
{
  public:
    BenchTimer(std::string bench, unsigned threads, std::uint64_t seed);

    /** Measure since construction. Callable more than once. */
    BenchTimingRecord stop() const;

  private:
    std::string bench_;
    unsigned threads_;
    std::uint64_t seed_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t events_start_;
};

/**
 * Append @p line (newline added) to @p path atomically with respect to
 * other appenders: the file is opened O_APPEND and the whole line goes
 * out in a single write(), so records from concurrent processes or
 * threads never interleave mid-line. A fatal user error if the file
 * cannot be opened or the write fails.
 */
void appendJsonLine(const std::string &path, const std::string &line);

/**
 * Append @p record as one JSON line to @p path (via appendJsonLine).
 * A fatal user error if the file cannot be opened.
 */
void appendBenchJson(const std::string &path,
                     const BenchTimingRecord &record);

/**
 * Append @p record to the path given by `--bench-json` /
 * EAAO_BENCH_JSON (see options.hpp); a silent no-op when neither is
 * set. Never touches stdout.
 */
void maybeWriteBenchJson(int argc, char **argv,
                         const BenchTimingRecord &record);

} // namespace eaao::support

#endif // EAAO_SUPPORT_BENCH_TIMER_HPP
