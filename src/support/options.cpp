/**
 * @file
 * Implementation of the shared bench/example knobs.
 */

#include "support/options.hpp"

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "support/logging.hpp"

namespace eaao::support {

namespace {

/** Parse a strictly positive integer; 0 on failure. */
unsigned
parsePositive(const char *text)
{
    if (text == nullptr || *text == '\0')
        return 0;
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == nullptr || *end != '\0' || v <= 0)
        return 0;
    return static_cast<unsigned>(v);
}

} // namespace

unsigned
defaultThreads()
{
    if (const char *env = std::getenv("EAAO_THREADS")) {
        const unsigned n = parsePositive(env);
        if (n == 0)
            EAAO_FATAL("EAAO_THREADS must be a positive integer, got '",
                       env, "'");
        return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
threadsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--threads") == 0) {
            if (i + 1 >= argc)
                EAAO_FATAL("--threads requires a value");
            const unsigned n = parsePositive(argv[i + 1]);
            if (n == 0)
                EAAO_FATAL("--threads must be a positive integer, got '",
                           argv[i + 1], "'");
            return n;
        }
        if (std::strncmp(arg, "--threads=", 10) == 0) {
            const unsigned n = parsePositive(arg + 10);
            if (n == 0)
                EAAO_FATAL("--threads must be a positive integer, got '",
                           arg + 10, "'");
            return n;
        }
    }
    return defaultThreads();
}

std::optional<std::string>
benchJsonFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--bench-json") == 0) {
            if (i + 1 >= argc || argv[i + 1][0] == '\0')
                EAAO_FATAL("--bench-json requires a path");
            return std::string(argv[i + 1]);
        }
        if (std::strncmp(arg, "--bench-json=", 13) == 0) {
            if (arg[13] == '\0')
                EAAO_FATAL("--bench-json requires a path");
            return std::string(arg + 13);
        }
    }
    if (const char *env = std::getenv("EAAO_BENCH_JSON")) {
        if (*env != '\0')
            return std::string(env);
    }
    return std::nullopt;
}

} // namespace eaao::support
