/**
 * @file
 * Implementation of the shared bench/example knobs.
 */

#include "support/options.hpp"

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "support/logging.hpp"

namespace eaao::support {

std::uint32_t
shardsFromArgs(int argc, char **argv, std::uint32_t fallback)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--shards") == 0) {
            if (i + 1 >= argc)
                EAAO_FATAL("--shards requires a value");
            value = argv[i + 1];
        } else if (std::strncmp(arg, "--shards=", 9) == 0) {
            value = arg + 9;
        }
        if (value != nullptr) {
            char *end = nullptr;
            const long n = std::strtol(value, &end, 10);
            if (end == nullptr || *end != '\0' || n <= 0)
                EAAO_FATAL("--shards must be a positive integer, got '",
                           value, "'");
            return static_cast<std::uint32_t>(n);
        }
    }
    return fallback;
}

namespace {

/** Parse a strictly positive integer; 0 on failure. */
unsigned
parsePositive(const char *text)
{
    if (text == nullptr || *text == '\0')
        return 0;
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == nullptr || *end != '\0' || v <= 0)
        return 0;
    return static_cast<unsigned>(v);
}

} // namespace

unsigned
defaultThreads()
{
    if (const char *env = std::getenv("EAAO_THREADS")) {
        const unsigned n = parsePositive(env);
        if (n == 0)
            EAAO_FATAL("EAAO_THREADS must be a positive integer, got '",
                       env, "'");
        return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
threadsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--threads") == 0) {
            if (i + 1 >= argc)
                EAAO_FATAL("--threads requires a value");
            const unsigned n = parsePositive(argv[i + 1]);
            if (n == 0)
                EAAO_FATAL("--threads must be a positive integer, got '",
                           argv[i + 1], "'");
            return n;
        }
        if (std::strncmp(arg, "--threads=", 10) == 0) {
            const unsigned n = parsePositive(arg + 10);
            if (n == 0)
                EAAO_FATAL("--threads must be a positive integer, got '",
                           arg + 10, "'");
            return n;
        }
    }
    return defaultThreads();
}

namespace {

/**
 * Shared parser for path-valued flags: `--flag <path>` / `--flag=<path>`
 * in argv, then the environment variable, then nullopt.
 */
std::optional<std::string>
pathFromArgs(int argc, char **argv, const char *flag, const char *env_var)
{
    const std::size_t flag_len = std::strlen(flag);
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, flag) == 0) {
            if (i + 1 >= argc || argv[i + 1][0] == '\0')
                EAAO_FATAL(flag, " requires a path");
            return std::string(argv[i + 1]);
        }
        if (std::strncmp(arg, flag, flag_len) == 0 &&
            arg[flag_len] == '=') {
            if (arg[flag_len + 1] == '\0')
                EAAO_FATAL(flag, " requires a path");
            return std::string(arg + flag_len + 1);
        }
    }
    if (const char *env = std::getenv(env_var)) {
        if (*env != '\0')
            return std::string(env);
    }
    return std::nullopt;
}

} // namespace

std::optional<std::string>
benchJsonFromArgs(int argc, char **argv)
{
    return pathFromArgs(argc, argv, "--bench-json", "EAAO_BENCH_JSON");
}

std::optional<std::string>
traceJsonFromArgs(int argc, char **argv)
{
    return pathFromArgs(argc, argv, "--trace-json", "EAAO_TRACE_JSON");
}

std::optional<std::string>
metricsJsonFromArgs(int argc, char **argv)
{
    return pathFromArgs(argc, argv, "--metrics-json", "EAAO_METRICS_JSON");
}

} // namespace eaao::support
