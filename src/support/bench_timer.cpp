/**
 * @file
 * Implementation of the bench timing pipeline.
 */

#include "support/bench_timer.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>

#include "support/logging.hpp"
#include "support/options.hpp"

namespace eaao::support {

namespace {

/** Process-wide executed-event counter (flushed per queue lifetime). */
std::atomic<std::uint64_t> g_events_processed{0};

} // namespace

void
noteEventsProcessed(std::uint64_t n) noexcept
{
    g_events_processed.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t
totalEventsProcessed() noexcept
{
    return g_events_processed.load(std::memory_order_relaxed);
}

BenchTimer::BenchTimer(std::string bench, unsigned threads,
                       std::uint64_t seed)
    : bench_(std::move(bench)), threads_(threads), seed_(seed),
      start_(std::chrono::steady_clock::now()),
      events_start_(totalEventsProcessed())
{
}

BenchTimingRecord
BenchTimer::stop() const
{
    BenchTimingRecord record;
    record.bench = bench_;
    record.threads = threads_;
    record.seed = seed_;
    record.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    record.events_processed = totalEventsProcessed() - events_start_;
    record.events_per_s =
        record.wall_s > 0.0
            ? static_cast<double>(record.events_processed) / record.wall_s
            : 0.0;
    return record;
}

std::string
toJson(const BenchTimingRecord &record)
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"bench\": \"%s\", \"wall_s\": %.6f, "
                  "\"events_processed\": %llu, \"events_per_s\": %.1f, "
                  "\"threads\": %u, \"seed\": %llu}",
                  record.bench.c_str(), record.wall_s,
                  static_cast<unsigned long long>(record.events_processed),
                  record.events_per_s, record.threads,
                  static_cast<unsigned long long>(record.seed));
    return buf;
}

void
appendBenchJson(const std::string &path, const BenchTimingRecord &record)
{
    std::ofstream out(path, std::ios::app);
    if (!out)
        EAAO_FATAL("cannot open bench-json file '", path, "'");
    out << toJson(record) << '\n';
}

void
maybeWriteBenchJson(int argc, char **argv,
                    const BenchTimingRecord &record)
{
    if (const auto path = benchJsonFromArgs(argc, argv))
        appendBenchJson(*path, record);
}

} // namespace eaao::support
