/**
 * @file
 * Implementation of the bench timing pipeline.
 */

#include "support/bench_timer.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "support/logging.hpp"
#include "support/options.hpp"

namespace eaao::support {

namespace {

/** Process-wide executed-event counter (flushed per queue lifetime). */
std::atomic<std::uint64_t> g_events_processed{0};

} // namespace

void
noteEventsProcessed(std::uint64_t n) noexcept
{
    g_events_processed.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t
totalEventsProcessed() noexcept
{
    return g_events_processed.load(std::memory_order_relaxed);
}

BenchTimer::BenchTimer(std::string bench, unsigned threads,
                       std::uint64_t seed)
    : bench_(std::move(bench)), threads_(threads), seed_(seed),
      start_(std::chrono::steady_clock::now()),
      events_start_(totalEventsProcessed())
{
}

BenchTimingRecord
BenchTimer::stop() const
{
    BenchTimingRecord record;
    record.bench = bench_;
    record.threads = threads_;
    record.seed = seed_;
    record.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    record.events_processed = totalEventsProcessed() - events_start_;
    record.events_per_s =
        record.wall_s > 0.0
            ? static_cast<double>(record.events_processed) / record.wall_s
            : 0.0;
    return record;
}

std::string
toJson(const BenchTimingRecord &record)
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"bench\": \"%s\", \"wall_s\": %.6f, "
                  "\"events_processed\": %llu, \"events_per_s\": %.1f, "
                  "\"threads\": %u, \"seed\": %llu}",
                  record.bench.c_str(), record.wall_s,
                  static_cast<unsigned long long>(record.events_processed),
                  record.events_per_s, record.threads,
                  static_cast<unsigned long long>(record.seed));
    return buf;
}

void
appendJsonLine(const std::string &path, const std::string &line)
{
    // O_APPEND + one write() per record: POSIX guarantees the file
    // offset update and the write are atomic, so concurrent appenders
    // (parallel CI benches sharing one trajectory file) never tear or
    // interleave a record. The previous ofstream-based version
    // buffered arbitrarily and could interleave partial lines.
    const std::string data = line + '\n';
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                          0644);
    if (fd < 0)
        EAAO_FATAL("cannot open bench-json file '", path,
                   "': ", std::strerror(errno));
    std::size_t done = 0;
    while (done < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + done, data.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno;
            ::close(fd);
            EAAO_FATAL("failed writing bench-json file '", path,
                       "': ", std::strerror(err));
        }
        done += static_cast<std::size_t>(n);
    }
    ::close(fd);
}

void
appendBenchJson(const std::string &path, const BenchTimingRecord &record)
{
    appendJsonLine(path, toJson(record));
}

void
maybeWriteBenchJson(int argc, char **argv,
                    const BenchTimingRecord &record)
{
    if (const auto path = benchJsonFromArgs(argc, argv))
        appendBenchJson(*path, record);
}

} // namespace eaao::support
