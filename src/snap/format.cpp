/**
 * @file
 * eaao-snap v1 container encode/decode (see format.hpp for layout).
 */

#include "snap/format.hpp"

#include <sstream>

#include "exp/thread_pool.hpp"
#include "support/logging.hpp"

namespace eaao::snap {

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

namespace {

bool
hostIsLittleEndian()
{
    const std::uint16_t probe = 1;
    std::uint8_t low = 0;
    std::memcpy(&low, &probe, 1);
    return low == 1;
}

} // namespace

void
SectionWriter::putString(const std::string &s)
{
    putU64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
}

void
SectionWriter::putF64Array(const double *v, std::size_t n)
{
    if (hostIsLittleEndian()) {
        // The in-memory column already is the wire layout: bulk-append
        // it instead of paying a call per element.
        const std::size_t off = buf_.size();
        buf_.resize(off + n * 8);
        std::memcpy(buf_.data() + off, v, n * 8);
        return;
    }
    for (std::size_t i = 0; i < n; ++i)
        putF64(v[i]);
}

bool
SectionReader::getBits(std::uint64_t &v, unsigned bytes)
{
    if (size_ - off_ < bytes)
        return false;
    // memcpy into a zeroed staging array + shift assembly: the
    // compiler folds this into one little-endian load, where the
    // per-byte indexing it replaces did not vectorize.
    std::uint8_t tmp[8] = {};
    std::memcpy(tmp, data_ + off_, bytes);
    std::uint64_t out = 0;
    for (unsigned i = 0; i < bytes; ++i)
        out |= static_cast<std::uint64_t>(tmp[i]) << (8 * i);
    off_ += bytes;
    v = out;
    return true;
}

bool
SectionReader::getF64Array(double *v, std::size_t n)
{
    if ((size_ - off_) / 8 < n)
        return false;
    if (hostIsLittleEndian()) {
        std::memcpy(v, data_ + off_, n * 8);
        off_ += n * 8;
        return true;
    }
    for (std::size_t i = 0; i < n; ++i)
        if (!getF64(v[i]))
            return false;
    return true;
}

bool
SectionReader::getU8(std::uint8_t &v)
{
    if (size_ - off_ < 1)
        return false;
    v = data_[off_++];
    return true;
}

bool
SectionReader::getU32(std::uint32_t &v)
{
    std::uint64_t bits = 0;
    if (!getBits(bits, 4))
        return false;
    v = static_cast<std::uint32_t>(bits);
    return true;
}

bool
SectionReader::getU64(std::uint64_t &v)
{
    return getBits(v, 8);
}

bool
SectionReader::getI64(std::int64_t &v)
{
    std::uint64_t bits = 0;
    if (!getBits(bits, 8))
        return false;
    v = static_cast<std::int64_t>(bits);
    return true;
}

bool
SectionReader::getF64(double &v)
{
    std::uint64_t bits = 0;
    if (!getBits(bits, 8))
        return false;
    std::memcpy(&v, &bits, sizeof v);
    return true;
}

bool
SectionReader::getString(std::string &s)
{
    std::uint64_t n = 0;
    if (!getU64(n) || size_ - off_ < n)
        return false;
    s.assign(reinterpret_cast<const char *>(data_ + off_),
             static_cast<std::size_t>(n));
    off_ += static_cast<std::size_t>(n);
    return true;
}

void
SnapshotWriter::addSection(std::uint32_t id, std::vector<std::uint8_t> payload)
{
    for (const Section &s : sections_)
        EAAO_ASSERT(s.id != id, "duplicate snapshot section id ", id);
    sections_.push_back(Section{id, std::move(payload)});
}

namespace {

void
putHeaderU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putHeaderU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t
headerU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::uint32_t
headerU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

constexpr std::size_t kHeaderSize = 24;
constexpr std::size_t kTableEntrySize = 32;

} // namespace

std::vector<std::uint8_t>
SnapshotWriter::finish() const
{
    std::size_t payload_bytes = 0;
    for (const Section &s : sections_)
        payload_bytes += s.payload.size();

    std::vector<std::uint8_t> out;
    out.reserve(kHeaderSize + payload_bytes +
                sections_.size() * kTableEntrySize);
    for (const char c : kMagic)
        out.push_back(static_cast<std::uint8_t>(c));
    putHeaderU32(out, kFormatVersion);
    putHeaderU32(out, static_cast<std::uint32_t>(sections_.size()));
    putHeaderU64(out, kHeaderSize + payload_bytes); // table offset

    struct Entry
    {
        std::uint32_t id;
        std::uint64_t offset;
        std::uint64_t size;
        std::uint64_t checksum;
    };
    std::vector<Entry> table;
    table.reserve(sections_.size());
    for (const Section &s : sections_) {
        table.push_back(Entry{s.id, out.size(), s.payload.size(),
                              fnv1a(s.payload.data(), s.payload.size())});
        out.insert(out.end(), s.payload.begin(), s.payload.end());
    }
    for (const Entry &e : table) {
        putHeaderU32(out, e.id);
        putHeaderU32(out, 0); // reserved
        putHeaderU64(out, e.offset);
        putHeaderU64(out, e.size);
        putHeaderU64(out, e.checksum);
    }
    return out;
}

bool
SnapshotReader::parse(const std::vector<std::uint8_t> &image,
                      std::string &error, unsigned threads)
{
    ids_.clear();
    payloads_.clear();

    if (image.size() < kHeaderSize) {
        error = "truncated snapshot: shorter than the 24-byte header";
        return false;
    }
    if (std::memcmp(image.data(), kMagic, sizeof kMagic) != 0) {
        error = "not an eaao-snap file (bad magic)";
        return false;
    }
    const std::uint32_t version = headerU32(image.data() + 8);
    if (version > kFormatVersion) {
        std::ostringstream msg;
        msg << "snapshot format v" << version
            << " is newer than this binary supports (max v" << kFormatVersion
            << "); re-capture with this build or upgrade";
        error = msg.str();
        return false;
    }
    if (version == 0) {
        error = "corrupt snapshot: format version 0";
        return false;
    }
    const std::uint32_t count = headerU32(image.data() + 12);
    const std::uint64_t table_offset = headerU64(image.data() + 16);
    if (table_offset < kHeaderSize || table_offset > image.size() ||
        image.size() - table_offset <
            static_cast<std::uint64_t>(count) * kTableEntrySize) {
        error = "truncated snapshot: section table out of bounds";
        return false;
    }

    // Pass 1: bounds + duplicate checks, in table order.
    std::vector<std::uint64_t> expected(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint8_t *entry =
            image.data() + table_offset + i * kTableEntrySize;
        const std::uint32_t id = headerU32(entry);
        const std::uint64_t offset = headerU64(entry + 8);
        const std::uint64_t size = headerU64(entry + 16);
        expected[i] = headerU64(entry + 24);
        if (offset < kHeaderSize || offset > table_offset ||
            size > table_offset - offset) {
            std::ostringstream msg;
            msg << "corrupt snapshot: section " << id
                << " payload out of bounds";
            error = msg.str();
            ids_.clear();
            payloads_.clear();
            return false;
        }
        for (const std::uint32_t seen : ids_) {
            if (seen == id) {
                std::ostringstream msg;
                msg << "corrupt snapshot: duplicate section " << id;
                error = msg.str();
                ids_.clear();
                payloads_.clear();
                return false;
            }
        }
        ids_.push_back(id);
        payloads_.push_back(SectionView{image.data() + offset,
                                        static_cast<std::size_t>(size)});
    }

    // Pass 2: checksums — independent per section, so optionally
    // fanned over workers; mismatches are reported in table order
    // regardless of which worker finds them first.
    std::vector<std::uint64_t> actual(count);
    const auto sum = [this, &actual](std::uint32_t i) {
        actual[i] = fnv1a(payloads_[i].data, payloads_[i].size);
    };
    if (threads > 1 && count > 1) {
        exp::ThreadPool pool(threads < count ? threads : count);
        for (std::uint32_t i = 0; i < count; ++i)
            pool.submit([&sum, i] { sum(i); });
        pool.wait();
    } else {
        for (std::uint32_t i = 0; i < count; ++i)
            sum(i);
    }
    for (std::uint32_t i = 0; i < count; ++i) {
        if (actual[i] != expected[i]) {
            std::ostringstream msg;
            msg << "corrupt snapshot: section " << ids_[i]
                << " checksum mismatch";
            error = msg.str();
            ids_.clear();
            payloads_.clear();
            return false;
        }
    }
    return true;
}

const SectionView *
SnapshotReader::section(std::uint32_t id) const
{
    for (std::size_t i = 0; i < ids_.size(); ++i)
        if (ids_[i] == id)
            return &payloads_[i];
    return nullptr;
}

} // namespace eaao::snap
