/**
 * @file
 * The eaao-snap v1 container format: a sectioned, checksummed binary
 * envelope for deterministic checkpoint images.
 *
 * Layout (all integers little-endian, fixed width):
 *
 *     offset  size  field
 *     0       8     magic "EAAOSNAP"
 *     8       4     u32 format version (1)
 *     12      4     u32 section count
 *     16      8     u64 section-table offset
 *     24      ...   section payloads, back to back
 *     table   n*32  per section: u32 id, u32 reserved(0),
 *                   u64 offset, u64 size, u64 FNV-1a checksum
 *
 * Readers reject a bad magic, a version newer than they support
 * (mirroring Scenario::parse's forward-version rejection), a section
 * table that points outside the image, and any payload whose FNV-1a
 * 64-bit checksum disagrees with the table — each with a one-line
 * error a driver can print before exiting 2. Doubles are serialized
 * as their IEEE-754 bit patterns, so round-trips are bit-exact.
 *
 * See docs/checkpoint.md for the section inventory.
 */

#ifndef EAAO_SNAP_FORMAT_HPP
#define EAAO_SNAP_FORMAT_HPP

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace eaao::snap {

/** Magic bytes at offset 0 of every snapshot image. */
inline constexpr char kMagic[8] = {'E', 'A', 'A', 'O', 'S', 'N', 'A', 'P'};

/**
 * Highest format version this binary reads and writes. Version 2
 * added the event queue's timing-wheel state (frontier + parked
 * entries with bucket placement) and the lanes' open-loop arrival
 * cursors to the per-lane sections.
 */
inline constexpr std::uint32_t kFormatVersion = 2;

/** Section identifiers (id 0x100 + lane for per-lane sections). */
inline constexpr std::uint32_t kSectionMeta = 1;
inline constexpr std::uint32_t kSectionCommitted = 2;
inline constexpr std::uint32_t kSectionObs = 3;
inline constexpr std::uint32_t kSectionLaneBase = 0x100;

/** FNV-1a 64-bit hash of @p size bytes at @p data. */
std::uint64_t fnv1a(const std::uint8_t *data, std::size_t size);

/**
 * Append-only little-endian encoder for one section payload.
 */
class SectionWriter
{
  public:
    void
    putU8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    putU32(std::uint32_t v)
    {
        putBits(v, 4);
    }

    void
    putU64(std::uint64_t v)
    {
        putBits(v, 8);
    }

    void
    putI64(std::int64_t v)
    {
        putBits(static_cast<std::uint64_t>(v), 8);
    }

    /** Bit-pattern serialization: round-trips NaNs and -0.0 exactly. */
    void
    putF64(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        putBits(bits, 8);
    }

    /** u64 length prefix + raw bytes. */
    void putString(const std::string &s);

    /** @p n doubles as back-to-back IEEE-754 bit patterns (no count). */
    void putF64Array(const double *v, std::size_t n);

    /**
     * Append @p n uninitialized bytes and return their write pointer —
     * one allocation for a whole fixed-width record table, which the
     * caller fills with unchecked little-endian stores. The pointer is
     * invalidated by any later put/grow call.
     */
    std::uint8_t *
    grow(std::size_t n)
    {
        const std::size_t off = buf_.size();
        buf_.resize(off + n);
        return buf_.data() + off;
    }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    void
    putBits(std::uint64_t v, unsigned bytes)
    {
        // Staged through a local array so the append is one
        // bounds-checked insert, not `bytes` push_backs; the shift
        // loop compiles to a single store on little-endian hosts.
        std::uint8_t tmp[8];
        for (unsigned i = 0; i < bytes; ++i)
            tmp[i] = static_cast<std::uint8_t>(v >> (8 * i));
        buf_.insert(buf_.end(), tmp, tmp + bytes);
    }

    std::vector<std::uint8_t> buf_;
};

/**
 * Bounds-checked little-endian decoder over one section payload.
 * Every get returns false (and leaves the output untouched) on
 * truncation; atEnd() lets callers insist the payload was consumed.
 */
class SectionReader
{
  public:
    SectionReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    bool getU8(std::uint8_t &v);
    bool getU32(std::uint32_t &v);
    bool getU64(std::uint64_t &v);
    bool getI64(std::int64_t &v);
    bool getF64(double &v);
    bool getString(std::string &s);

    /** Counterpart of putF64Array: @p n doubles into @p v. */
    bool getF64Array(double *v, std::size_t n);

    bool atEnd() const { return off_ == size_; }

    /** Unconsumed payload bytes (bounds untrusted counts pre-alloc). */
    std::size_t remaining() const { return size_ - off_; }

    /**
     * Claim the next @p n bytes raw, or nullptr when fewer remain.
     * One bounds check for a whole fixed-width record table; callers
     * decode the returned window with unchecked little-endian loads.
     */
    const std::uint8_t *
    take(std::size_t n)
    {
        if (size_ - off_ < n)
            return nullptr;
        const std::uint8_t *p = data_ + off_;
        off_ += n;
        return p;
    }

  private:
    bool getBits(std::uint64_t &v, unsigned bytes);

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t off_ = 0;
};

/**
 * Assembles a snapshot image from named section payloads.
 */
class SnapshotWriter
{
  public:
    /** Append a section. Ids must be unique; order is preserved. */
    void addSection(std::uint32_t id, std::vector<std::uint8_t> payload);

    /** Render the final image (header + payloads + table). */
    std::vector<std::uint8_t> finish() const;

  private:
    struct Section
    {
        std::uint32_t id;
        std::vector<std::uint8_t> payload;
    };

    std::vector<Section> sections_;
};

/** One section payload: a borrowed view into the parsed image. */
struct SectionView
{
    const std::uint8_t *data;
    std::size_t size;
};

/**
 * Validates a snapshot image and exposes its sections as zero-copy
 * views — the image must outlive the reader.
 */
class SnapshotReader
{
  public:
    /**
     * Parse and fully validate @p image (magic, version, table
     * bounds, every section checksum). On failure returns false with
     * a one-line description in @p error. The views handed out by
     * section() point into @p image; keep it alive while they are
     * in use. @p threads > 1 fans the per-section checksums over a
     * worker pool — the result (including which error is reported)
     * is identical for any thread count.
     */
    bool parse(const std::vector<std::uint8_t> &image, std::string &error,
               unsigned threads = 1);

    /** Section payload by id, or nullptr when absent. */
    const SectionView *section(std::uint32_t id) const;

    /** Section ids in file order (after a successful parse). */
    const std::vector<std::uint32_t> &sectionIds() const { return ids_; }

  private:
    std::vector<std::uint32_t> ids_;
    std::vector<SectionView> payloads_;
};

} // namespace eaao::snap

#endif // EAAO_SNAP_FORMAT_HPP
