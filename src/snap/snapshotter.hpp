/**
 * @file
 * Deterministic checkpoint/restore for the sharded platform.
 *
 * capture() serializes a ShardedPlatform paused at a window barrier —
 * event arena, orchestrator records, RNG stream positions, lane script
 * cursors, the shared committed capacity table, and (when attached)
 * the per-lane observability slots — into an eaao-snap v1 image
 * (snap/format.hpp). restore() loads such an image into a platform
 * built with the *same configuration* (shards/threads may differ: lane
 * grouping is output-invariant), after which resumeRun() continues the
 * run and produces a canonical log, merged metrics and Chrome trace
 * byte-identical to the uninterrupted run.
 *
 * The capture point is the *pre-fold* barrier state (after
 * ShardedPlatform::advanceWindow(), before completeWindow()), so the
 * lanes' not-yet-folded capacity deltas are live data inside the
 * image; restore re-folds them first. See docs/checkpoint.md.
 */

#ifndef EAAO_SNAP_SNAPSHOTTER_HPP
#define EAAO_SNAP_SNAPSHOTTER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "faas/sharded.hpp"
#include "obs/export.hpp"

namespace eaao::snap {

class SectionReader;
class SectionWriter;
class SnapshotReader;

class Snapshotter
{
  public:
    /**
     * Serialize @p platform into a snapshot image. The platform must
     * be paused (between beginRun()/advanceWindow() steps or not
     * running); every pending event must carry an EventTag (all
     * orchestrator-scheduled events do).
     */
    static std::vector<std::uint8_t>
    capture(const faas::ShardedPlatform &platform);

    /**
     * Load @p image into @p platform, which must have been constructed
     * with the same configuration the capture platform used (checked
     * via an embedded config fingerprint; the shards/threads grouping
     * knobs are excluded) and the same observability attachment.
     * On failure returns false with a one-line reason in @p error; the
     * platform contents are unspecified then (drivers treat a failed
     * restore as fatal).
     */
    static bool restore(const std::vector<std::uint8_t> &image,
                        faas::ShardedPlatform &platform, std::string &error);

    /**
     * Fast path for forking many runs from one in-memory image: the
     * caller parses (and thereby checksums) the image once with
     * SnapshotReader::parse and restores from the reader repeatedly.
     * The image backing @p reader must still be alive.
     */
    static bool restore(const SnapshotReader &reader,
                        faas::ShardedPlatform &platform, std::string &error);

    /** Write @p image to @p path (binary). */
    static bool writeFile(const std::string &path,
                          const std::vector<std::uint8_t> &image,
                          std::string &error);

    /** Read a snapshot image from @p path. */
    static bool readFile(const std::string &path,
                         std::vector<std::uint8_t> &image,
                         std::string &error);

    /**
     * Order-sensitive hash of every configuration field that shapes
     * the simulation (profile, orchestrator, tsc/timing noise,
     * pricing, seed/epoch/window/max_lanes). The shards/threads
     * grouping knobs are deliberately excluded: a snapshot captured at
     * one grouping restores at any other.
     */
    static std::uint64_t configFingerprint(const faas::ShardedConfig &cfg);

  private:
    static void captureLane(const faas::ShardedPlatform::Lane &lane,
                            SectionWriter &out);

    /**
     * @p omit_one_vcpus_delta non-null arms planted fault 5 (see
     * OrchestratorConfig::fault_injection): the first restored lane
     * with a non-empty touch list gets its vcpus delta column dropped,
     * after which the flag is cleared.
     */
    static bool restoreLane(SectionReader &in,
                            faas::ShardedPlatform::Lane &lane,
                            bool *omit_one_vcpus_delta, std::string &error);

    static void captureObs(const obs::TrialSet &set, SectionWriter &out);
    static bool restoreObs(SectionReader &in, obs::TrialSet &set,
                           std::string &error);
};

} // namespace eaao::snap

#endif // EAAO_SNAP_SNAPSHOTTER_HPP
