/**
 * @file
 * ShardedPlatform checkpoint capture/restore (see snapshotter.hpp).
 *
 * Serialization strategy: the *primary* records of each lane
 * orchestrator (accounts, services, instances, RNG position, routing
 * sequence counter, host-load columns) are stored verbatim — every
 * double as its IEEE-754 bit pattern — while the *derived* tables
 * (per-host load maps, routing-index entries, per-account active
 * sets, placement min-views) are rebuilt deterministically by
 * Orchestrator::rebuildDerivedState() after restore. Event-queue
 * callbacks are serialized as EventTags and rebound through
 * Orchestrator::rebindEvent().
 */

#include "snap/snapshotter.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "exp/thread_pool.hpp"
#include "snap/format.hpp"
#include "support/logging.hpp"

namespace eaao::snap {

namespace {

using faas::ShardOp;

/**
 * Run @p fn(lane_index) for every lane, fanned over a temporary pool
 * when the platform was configured multi-threaded. Lane state is
 * disjoint, so this is safe for both capture (read-only) and restore
 * (per-lane mutation); callers that need cross-lane sequencing (the
 * fault-5 "first lane" victim pick) must pass threads = 1.
 */
void
forEachLane(std::uint32_t lanes, unsigned threads,
            const std::function<void(std::uint32_t)> &fn)
{
    if (threads > 1 && lanes > 1) {
        exp::ThreadPool pool(std::min<unsigned>(threads, lanes));
        for (std::uint32_t i = 0; i < lanes; ++i)
            pool.submit([&fn, i] { fn(i); });
        pool.wait();
        return;
    }
    for (std::uint32_t i = 0; i < lanes; ++i)
        fn(i);
}

// ---------------------------------------------------------------- helpers

/**
 * Unchecked little-endian load from a window already claimed via
 * SectionReader::take(). Compiles to a single load on little-endian
 * hosts; the shift assembly keeps big-endian hosts correct.
 */
std::uint64_t
ldLE(const std::uint8_t *p, unsigned bytes)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::uint32_t
ldU32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(ldLE(p, 4));
}

std::int64_t
ldI64(const std::uint8_t *p)
{
    return static_cast<std::int64_t>(ldLE(p, 8));
}

double
ldF64(const std::uint8_t *p)
{
    const std::uint64_t bits = ldLE(p, 8);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

/** Counterpart stores into a window claimed via SectionWriter::grow(). */
void
stLE(std::uint8_t *p, std::uint64_t v, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
stF64(std::uint8_t *p, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    stLE(p, bits, 8);
}

/** Fixed wire widths of the two bulk-encoded record tables. */
constexpr std::size_t kInstWire = 84;
constexpr std::size_t kTraceWire = 29;

void
putU32Vec(SectionWriter &out, const std::vector<std::uint32_t> &v)
{
    out.putU64(v.size());
    for (const std::uint32_t x : v)
        out.putU32(x);
}

bool
getU32Vec(SectionReader &in, std::vector<std::uint32_t> &v)
{
    std::uint64_t n = 0;
    if (!in.getU64(n))
        return false;
    v.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint32_t x = 0;
        if (!in.getU32(x))
            return false;
        v.push_back(x);
    }
    return true;
}

void
putU64Vec(SectionWriter &out, const std::vector<std::uint64_t> &v)
{
    out.putU64(v.size());
    for (const std::uint64_t x : v)
        out.putU64(x);
}

bool
getU64Vec(SectionReader &in, std::vector<std::uint64_t> &v)
{
    std::uint64_t n = 0;
    if (!in.getU64(n))
        return false;
    v.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t x = 0;
        if (!in.getU64(x))
            return false;
        v.push_back(x);
    }
    return true;
}

void
putF64Vec(SectionWriter &out, const std::vector<double> &v)
{
    out.putU64(v.size());
    out.putF64Array(v.data(), v.size());
}

bool
getF64Vec(SectionReader &in, std::vector<double> &v)
{
    std::uint64_t n = 0;
    // The remaining() bound keeps a hostile count from ballooning the
    // allocation before the payload proves it holds n doubles.
    if (!in.getU64(n) || n > in.remaining() / 8)
        return false;
    v.resize(static_cast<std::size_t>(n));
    return in.getF64Array(v.data(), v.size());
}

void
putHistogram(SectionWriter &out, const obs::Histogram &h)
{
    putF64Vec(out, h.bounds);
    putU64Vec(out, h.counts);
    out.putU64(h.count);
    out.putF64(h.sum);
    out.putF64(h.min);
    out.putF64(h.max);
}

bool
getHistogram(SectionReader &in, obs::Histogram &h)
{
    if (!getF64Vec(in, h.bounds) || !getU64Vec(in, h.counts) ||
        !in.getU64(h.count) || !in.getF64(h.sum) || !in.getF64(h.min) ||
        !in.getF64(h.max))
        return false;
    return h.counts.empty() || h.counts.size() == h.bounds.size() + 1;
}

void
putRng(SectionWriter &out, const sim::RngState &rng)
{
    for (int i = 0; i < 4; ++i)
        out.putU64(rng.s[i]);
    out.putF64(rng.cached_normal);
    out.putU8(rng.has_cached_normal ? 1 : 0);
}

bool
getRng(SectionReader &in, sim::RngState &rng)
{
    std::uint8_t has_cached = 0;
    for (int i = 0; i < 4; ++i)
        if (!in.getU64(rng.s[i]))
            return false;
    if (!in.getF64(rng.cached_normal) || !in.getU8(has_cached))
        return false;
    rng.has_cached_normal = has_cached != 0;
    return true;
}

void
putStringVec(SectionWriter &out, const std::vector<std::string> &v)
{
    out.putU64(v.size());
    for (const std::string &s : v)
        out.putString(s);
}

bool
getStringVec(SectionReader &in, std::vector<std::string> &v)
{
    std::uint64_t n = 0;
    if (!in.getU64(n))
        return false;
    v.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string s;
        if (!in.getString(s))
            return false;
        v.push_back(std::move(s));
    }
    return true;
}

/** The four preset container sizes, indexed for serialization. */
const faas::ContainerSize *const kSizes[] = {
    &faas::sizes::kPico,
    &faas::sizes::kSmall,
    &faas::sizes::kMedium,
    &faas::sizes::kLarge,
};

std::uint8_t
sizeIndex(const faas::ContainerSize &size)
{
    for (std::uint8_t i = 0; i < 4; ++i) {
        if (std::strcmp(kSizes[i]->name, size.name) == 0 &&
            kSizes[i]->vcpus == size.vcpus &&
            kSizes[i]->memory_gb == size.memory_gb)
            return i;
    }
    EAAO_FATAL("checkpoint: container size ", size.name,
               " is not one of the four presets");
}

bool
sizeFromIndex(std::uint8_t idx, faas::ContainerSize &size)
{
    if (idx >= 4)
        return false;
    size = *kSizes[idx];
    return true;
}

void
putOp(SectionWriter &out, const ShardOp &op)
{
    out.putU8(static_cast<std::uint8_t>(op.kind));
    out.putI64(op.at.ns());
    out.putU32(op.step);
    out.putU32(op.sub);
    out.putU32(op.service);
    out.putU32(op.account);
    out.putU32(op.a);
    out.putI64(op.dur.ns());
    out.putU64(op.n);
    out.putU32(op.gap_every);
    out.putI64(op.gap.ns());
    out.putI64(op.dur_step.ns());
    out.putU32(op.dur_mod);
    out.putU32(op.spend_every);
    out.putF64(op.rate);
    out.putF64(op.burst);
    out.putI64(op.span.ns());
}

bool
getOp(SectionReader &in, ShardOp &op)
{
    std::uint8_t kind = 0;
    std::int64_t at = 0, dur = 0, gap = 0, dur_step = 0, span = 0;
    if (!in.getU8(kind) || !in.getI64(at) || !in.getU32(op.step) ||
        !in.getU32(op.sub) || !in.getU32(op.service) ||
        !in.getU32(op.account) || !in.getU32(op.a) || !in.getI64(dur) ||
        !in.getU64(op.n) || !in.getU32(op.gap_every) || !in.getI64(gap) ||
        !in.getI64(dur_step) || !in.getU32(op.dur_mod) ||
        !in.getU32(op.spend_every) || !in.getF64(op.rate) ||
        !in.getF64(op.burst) || !in.getI64(span))
        return false;
    if (kind > static_cast<std::uint8_t>(ShardOp::Kind::OpenLoop))
        return false;
    op.kind = static_cast<ShardOp::Kind>(kind);
    op.at = sim::SimTime::fromNanos(at);
    op.dur = sim::Duration::nanos(dur);
    op.gap = sim::Duration::nanos(gap);
    op.dur_step = sim::Duration::nanos(dur_step);
    op.span = sim::Duration::nanos(span);
    return true;
}

void
putEventQueueImage(SectionWriter &out, const sim::EventQueueImage &img)
{
    out.putI64(img.now_ns);
    out.putU64(img.next_seq);
    out.putU64(img.processed);
    out.putU64(img.scheduled);
    out.putU64(img.cancelled);
    out.putU64(img.slots.size());
    for (const auto &s : img.slots) {
        out.putU32(s.gen);
        out.putU8(s.live);
        out.putU32(s.kind);
        out.putU64(s.arg);
    }
    const auto putEntries =
        [&out](const std::vector<sim::EventQueueImage::EntryImage> &es) {
            out.putU64(es.size());
            for (const auto &e : es) {
                out.putI64(e.when_ns);
                out.putU64(e.seq);
                out.putU32(e.slot);
                out.putU32(e.gen);
            }
        };
    putEntries(img.heap);
    putEntries(img.staging);
    putU32Vec(out, img.free_list);
    out.putI64(img.wheel_frontier);
    out.putU64(img.wheel.size());
    for (const auto &w : img.wheel) {
        out.putI64(w.when_ns);
        out.putU64(w.seq);
        out.putU32(w.slot);
        out.putU32(w.gen);
        out.putU8(w.level);
        out.putU8(w.wslot);
    }
}

bool
getEventQueueImage(SectionReader &in, sim::EventQueueImage &img)
{
    std::uint64_t n = 0;
    if (!in.getI64(img.now_ns) || !in.getU64(img.next_seq) ||
        !in.getU64(img.processed) || !in.getU64(img.scheduled) ||
        !in.getU64(img.cancelled) || !in.getU64(n))
        return false;
    img.slots.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        sim::EventQueueImage::SlotImage s;
        if (!in.getU32(s.gen) || !in.getU8(s.live) || !in.getU32(s.kind) ||
            !in.getU64(s.arg))
            return false;
        img.slots.push_back(s);
    }
    const auto getEntries =
        [&in](std::vector<sim::EventQueueImage::EntryImage> &es) {
            std::uint64_t count = 0;
            if (!in.getU64(count))
                return false;
            es.clear();
            for (std::uint64_t i = 0; i < count; ++i) {
                sim::EventQueueImage::EntryImage e;
                if (!in.getI64(e.when_ns) || !in.getU64(e.seq) ||
                    !in.getU32(e.slot) || !in.getU32(e.gen))
                    return false;
                es.push_back(e);
            }
            return true;
        };
    if (!getEntries(img.heap) || !getEntries(img.staging) ||
        !getU32Vec(in, img.free_list))
        return false;
    std::uint64_t wheel_n = 0;
    if (!in.getI64(img.wheel_frontier) || !in.getU64(wheel_n))
        return false;
    img.wheel.clear();
    for (std::uint64_t i = 0; i < wheel_n; ++i) {
        sim::EventQueueImage::WheelEntryImage w;
        if (!in.getI64(w.when_ns) || !in.getU64(w.seq) ||
            !in.getU32(w.slot) || !in.getU32(w.gen) || !in.getU8(w.level) ||
            !in.getU8(w.wslot))
            return false;
        img.wheel.push_back(w);
    }
    return true;
}

} // namespace

// ------------------------------------------------------------ fingerprint

std::uint64_t
Snapshotter::configFingerprint(const faas::ShardedConfig &cfg)
{
    std::uint64_t h = 0xeaa0514a90000001ULL;
    const auto mixU = [&h](std::uint64_t v) { h = sim::mix64(h ^ v); };
    const auto mixF = [&](double v) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        mixU(bits);
    };
    const auto mixS = [&](const std::string &s) {
        mixU(fnv1a(reinterpret_cast<const std::uint8_t *>(s.data()),
                   s.size()));
    };

    mixU(cfg.seed);
    mixU(static_cast<std::uint64_t>(cfg.epoch.ns()));
    mixU(static_cast<std::uint64_t>(cfg.window.ns()));
    mixU(cfg.max_lanes);
    // cfg.shards / cfg.threads deliberately excluded: lane grouping is
    // output-invariant, so a snapshot restores at any grouping.

    const faas::DataCenterProfile &p = cfg.profile;
    mixS(p.name);
    mixU(p.host_count);
    mixU(p.shard_size);
    mixU(p.helper_chunk);
    mixF(p.helper_order_jitter);
    mixF(p.base_order_jitter);
    mixF(p.per_launch_jitter);
    mixF(p.base_launch_jitter);
    mixF(p.cold_spill_fraction);
    mixF(p.wave_fraction);
    mixU(p.wave_count);
    mixF(p.uptime_mean_days);
    mixF(p.wave_span_days);
    mixF(p.wave_sigma_s);

    const faas::OrchestratorConfig &o = cfg.orchestrator;
    mixF(o.spread_target);
    mixU(o.hot_burst_min);
    mixU(static_cast<std::uint64_t>(o.demand_window.ns()));
    mixU(o.hotness_cap);
    mixU(static_cast<std::uint64_t>(o.idle_hold.ns()));
    mixF(o.idle_reap_mean_s);
    mixU(static_cast<std::uint64_t>(o.idle_max.ns()));
    mixF(o.host_usable_fraction);
    mixF(o.host_usable_memory_fraction);
    mixU(o.creation_slowdown_threshold);
    mixF(o.creation_slowdown_factor);
    mixF(o.startup_billable_s_gen1);
    mixF(o.startup_billable_s_gen2);
    mixU(o.admission_depth);
    mixU(static_cast<std::uint64_t>(o.shed_policy));
    mixU(o.isolate_accounts ? 1 : 0);
    mixU(o.reference_scan ? 1 : 0);
    mixU(o.fault_injection);

    const hw::TscConfig &t = cfg.tsc;
    mixF(t.label_tail_fraction);
    mixF(t.label_core_median_hz);
    mixF(t.label_core_sigma);
    mixF(t.label_tail_median_hz);
    mixF(t.label_tail_sigma);
    mixF(t.refine_noise_half_width_hz);
    mixF(t.refine_granularity_hz);

    const hw::TimingNoiseConfig &n = cfg.timing;
    mixF(n.clean_fraction);
    mixF(n.clean_median_s);
    mixF(n.clean_sigma);
    mixF(n.dirty_median_s);
    mixF(n.dirty_sigma);
    mixF(n.noisy_timer_fraction);
    mixF(n.freq_meas_clean_sigma_hz);
    mixF(n.freq_meas_noisy_median_hz);
    mixF(n.freq_meas_noisy_sigma);

    mixF(cfg.pricing.cpu_usd_per_vcpu_s);
    mixF(cfg.pricing.mem_usd_per_gb_s);
    return h;
}

// ---------------------------------------------------------------- capture

void
Snapshotter::captureLane(const faas::ShardedPlatform::Lane &lane,
                         SectionWriter &out)
{
    sim::EventQueueImage img;
    if (!lane.eq.exportImage(img))
        EAAO_FATAL("checkpoint: a live event carries no EventTag "
                   "(only orchestrator-scheduled events are snapshot-safe)");
    putEventQueueImage(out, img);

    const faas::Orchestrator &orch = *lane.orch;

    putRng(out, orch.rng_.saveState());

    out.putU64(orch.routing_.nextSeq());

    out.putU64(orch.accounts_.size());
    for (const faas::AccountRecord &acct : orch.accounts_) {
        out.putU32(acct.id);
        out.putU32(acct.shard);
        putU32Vec(out, acct.base_order);
        out.putU32(acct.live_count);
        out.putF64(acct.spend_usd);
        out.putU32(acct.quota_per_service);
    }

    out.putU64(orch.services_.size());
    for (const faas::ServiceRecord &svc : orch.services_) {
        out.putU32(svc.id);
        out.putU32(svc.account);
        out.putU8(static_cast<std::uint8_t>(svc.env));
        out.putU8(sizeIndex(svc.size));
        out.putU32(svc.max_concurrency);
        putU32Vec(out, svc.helper_order);
        putU32Vec(out, svc.spill_order);
        out.putU64(svc.bursts.size());
        for (const auto &[when, count] : svc.bursts) {
            out.putI64(when.ns());
            out.putU32(count);
        }
        out.putU64(svc.request_creations.size());
        for (const sim::SimTime &when : svc.request_creations)
            out.putI64(when.ns());
        putU64Vec(out, svc.active);
        putU64Vec(out, svc.idle);
        out.putU64(svc.helper_seed);
        out.putU64(svc.requests_served);
        const faas::AdmissionQueue &aq = orch.admission_[svc.id];
        out.putU64(aq.dispatch_event);
        out.putU64(aq.q.size());
        for (const faas::QueuedRequest &qr : aq.q) {
            out.putI64(qr.enqueued_at.ns());
            out.putI64(qr.service_time.ns());
        }
    }

    putHistogram(out, orch.slo_.latency_s);
    putHistogram(out, orch.slo_.cold_wait_s);
    out.putU64(orch.slo_.admitted);
    out.putU64(orch.slo_.served_warm);
    out.putU64(orch.slo_.queued);
    out.putU64(orch.slo_.dispatched);
    out.putU64(orch.slo_.rejected);
    out.putU64(orch.slo_.shed);

    // The instance table dominates the image (every instance ever
    // created); encode its fixed-width records through one grow()
    // window instead of sixteen checked appends each.
    out.putU64(orch.instances_.size());
    std::uint8_t *ip = out.grow(orch.instances_.size() * kInstWire);
    for (const faas::InstanceRecord &inst : orch.instances_) {
        stLE(ip, inst.id, 8);
        stLE(ip + 8, inst.service, 4);
        stLE(ip + 12, inst.account, 4);
        stLE(ip + 16, inst.host, 4);
        ip[20] = sizeIndex(inst.size);
        ip[21] = static_cast<std::uint8_t>(inst.env);
        ip[22] = static_cast<std::uint8_t>(inst.state);
        stLE(ip + 23, inst.in_flight, 4);
        stLE(ip + 27, static_cast<std::uint64_t>(inst.created_at.ns()), 8);
        stLE(ip + 35, static_cast<std::uint64_t>(inst.state_since.ns()), 8);
        stF64(ip + 43, inst.active_seconds);
        stLE(ip + 51, inst.vm_tsc_offset, 8);
        ip[59] = inst.terminated_at.has_value() ? 1 : 0;
        stLE(ip + 60,
             static_cast<std::uint64_t>(
                 inst.terminated_at ? inst.terminated_at->ns() : 0),
             8);
        stLE(ip + 68, inst.reap_event, 8);
        stLE(ip + 76, inst.route_seq, 8);
        ip += kInstWire;
    }

    putF64Vec(out, orch.host_load_.vcpusColumn());
    putF64Vec(out, orch.host_load_.memColumn());
    putU32Vec(out, orch.host_load_.touched());

    out.putU64(lane.trace.events().size());
    std::uint8_t *tp = out.grow(lane.trace.events().size() * kTraceWire);
    for (const faas::PlacementEvent &ev : lane.trace.events()) {
        stLE(tp, static_cast<std::uint64_t>(ev.when.ns()), 8);
        stLE(tp + 8, ev.instance, 8);
        stLE(tp + 16, ev.service, 4);
        stLE(tp + 20, ev.account, 4);
        stLE(tp + 24, ev.host, 4);
        tp[28] = static_cast<std::uint8_t>(ev.reason);
        tp += kTraceWire;
    }

    out.putU64(lane.ops.size());
    for (const ShardOp &op : lane.ops)
        putOp(out, op);
    out.putU64(lane.next_op);
    out.putU64(lane.storm != nullptr
                   ? static_cast<std::uint64_t>(lane.storm - lane.ops.data())
                   : ~0ULL);
    out.putU64(lane.storm_done);
    out.putI64(lane.storm_t.ns());

    putU32Vec(out, lane.accounts);
    putU32Vec(out, lane.services);
    putU64Vec(out, lane.created);
    out.putU64(lane.trace_scanned);
    putStringVec(out, lane.routed);
    putStringVec(out, lane.restarted);
    putStringVec(out, lane.spend);
    out.putU64(lane.routed_count);
    out.putF64(lane.spend_checksum);

    // Open-loop arrival cursors. Capture happens at a window barrier,
    // where generation has drained every materialized arrival, so the
    // cursor state below IS the stream's entire forward state.
    out.putU64(lane.open_loops.size());
    for (const auto &s : lane.open_loops) {
        out.putU64(s.op_index);
        putRng(out, s.cursor.rngState());
        out.putI64(s.cursor.origin().ns());
        out.putI64(s.cursor.next().ns());
        putRng(out, s.service_rng.saveState());
        out.putI64(s.end.ns());
        out.putI64(s.gen_until.ns());
        out.putI64(s.next_churn.ns());
        out.putU64(s.generated);
    }
}

void
Snapshotter::captureObs(const obs::TrialSet &set, SectionWriter &out)
{
    out.putU64(set.slots().size());
    for (const obs::TrialObs &slot : set.slots()) {
        const obs::TraceSink &sink = slot.trace;
        out.putU64(sink.tracks().size());
        for (const char *track : sink.tracks())
            out.putString(track);
        out.putU64(sink.events().size());
        for (const obs::TraceEvent &ev : sink.events()) {
            out.putString(ev.name);
            out.putU32(ev.track);
            out.putU8(static_cast<std::uint8_t>(ev.phase));
            out.putI64(ev.ts.ns());
            out.putI64(ev.dur.ns());
            out.putU64(ev.seq);
            out.putU8(ev.n_args);
            for (std::uint8_t i = 0; i < ev.n_args; ++i) {
                const obs::TraceArg &arg = ev.args[i];
                out.putString(arg.key);
                out.putU8(static_cast<std::uint8_t>(arg.kind));
                out.putU64(arg.u);
                out.putI64(arg.i);
                out.putF64(arg.f);
                out.putString(arg.s);
            }
        }

        const obs::MetricsRegistry &reg = slot.metrics;
        out.putU64(reg.counters().size());
        for (const auto &[name, counter] : reg.counters()) {
            out.putString(name);
            out.putU64(counter.value);
        }
        out.putU64(reg.histograms().size());
        for (const auto &[name, hist] : reg.histograms()) {
            out.putString(name);
            putF64Vec(out, hist.bounds);
            putU64Vec(out, hist.counts);
            out.putU64(hist.count);
            out.putF64(hist.sum);
            out.putF64(hist.min);
            out.putF64(hist.max);
        }
    }
}

std::vector<std::uint8_t>
Snapshotter::capture(const faas::ShardedPlatform &platform)
{
    SnapshotWriter writer;

    const bool has_obs =
        platform.obs_set_ != nullptr && platform.obs_set_->enabled();

    SectionWriter meta;
    meta.putU64(configFingerprint(platform.cfg_));
    meta.putU32(platform.laneCount());
    meta.putU32(platform.fleet_->size());
    meta.putU8(has_obs ? 1 : 0);
    meta.putU32(platform.windows_run_);
    meta.putI64(platform.final_now_.ns());
    meta.putI64(platform.run_horizon_.ns());
    meta.putI64(platform.next_wend_.ns());
    meta.putU8(platform.running_ ? 1 : 0);
    meta.putU8(platform.pending_fold_ ? 1 : 0);
    meta.putU64(platform.acct_map_.size());
    for (const auto &[lane, local] : platform.acct_map_) {
        meta.putU32(lane);
        meta.putU32(local);
    }
    meta.putU64(platform.svc_map_.size());
    for (const auto &[lane, local] : platform.svc_map_) {
        meta.putU32(lane);
        meta.putU32(local);
    }
    putStringVec(meta, platform.exchange_log_);
    writer.addSection(kSectionMeta, meta.take());

    SectionWriter committed;
    putF64Vec(committed, platform.committed_.vcpusColumn());
    putF64Vec(committed, platform.committed_.memColumn());
    writer.addSection(kSectionCommitted, committed.take());

    // Lane sections serialize independently; build them in parallel
    // and assemble in lane order so the image is byte-identical for
    // any thread count.
    const std::uint32_t lanes = platform.laneCount();
    std::vector<std::vector<std::uint8_t>> lane_payloads(lanes);
    forEachLane(lanes, platform.cfg_.threads, [&](std::uint32_t i) {
        SectionWriter lane;
        captureLane(*platform.lanes_[i], lane);
        lane_payloads[i] = lane.take();
    });
    for (std::uint32_t i = 0; i < lanes; ++i)
        writer.addSection(kSectionLaneBase + i, std::move(lane_payloads[i]));

    if (has_obs) {
        SectionWriter obs;
        captureObs(*platform.obs_set_, obs);
        writer.addSection(kSectionObs, obs.take());
    }

    return writer.finish();
}

// ---------------------------------------------------------------- restore

bool
Snapshotter::restoreLane(SectionReader &in,
                         faas::ShardedPlatform::Lane &lane,
                         bool *omit_one_vcpus_delta, std::string &error)
{
    const auto bail = [&error](const char *what) {
        error = std::string("truncated snapshot: ") + what;
        return false;
    };

    sim::EventQueueImage img;
    if (!getEventQueueImage(in, img))
        return bail("lane event-queue image");
    faas::Orchestrator &orch = *lane.orch;

    sim::RngState rng;
    if (!getRng(in, rng))
        return bail("lane rng state");

    std::uint64_t routing_next_seq = 0;
    if (!in.getU64(routing_next_seq))
        return bail("lane routing counter");

    std::uint64_t n = 0;
    if (!in.getU64(n))
        return bail("lane account table");
    std::vector<faas::AccountRecord> accounts;
    for (std::uint64_t i = 0; i < n; ++i) {
        faas::AccountRecord acct;
        if (!in.getU32(acct.id) || !in.getU32(acct.shard) ||
            !getU32Vec(in, acct.base_order) || !in.getU32(acct.live_count) ||
            !in.getF64(acct.spend_usd) || !in.getU32(acct.quota_per_service))
            return bail("lane account table");
        accounts.push_back(std::move(acct));
    }

    if (!in.getU64(n))
        return bail("lane service table");
    std::vector<faas::ServiceRecord> services;
    std::vector<faas::AdmissionQueue> admission;
    for (std::uint64_t i = 0; i < n; ++i) {
        faas::ServiceRecord svc;
        std::uint8_t env = 0, size = 0;
        std::uint64_t bursts = 0, creations = 0;
        if (!in.getU32(svc.id) || !in.getU32(svc.account) ||
            !in.getU8(env) || !in.getU8(size) ||
            !in.getU32(svc.max_concurrency) ||
            !getU32Vec(in, svc.helper_order) ||
            !getU32Vec(in, svc.spill_order) || !in.getU64(bursts))
            return bail("lane service table");
        if (env > 1 || !sizeFromIndex(size, svc.size)) {
            error = "corrupt snapshot: bad service record";
            return false;
        }
        svc.env = static_cast<faas::ExecEnv>(env);
        for (std::uint64_t b = 0; b < bursts; ++b) {
            std::int64_t when = 0;
            std::uint32_t count = 0;
            if (!in.getI64(when) || !in.getU32(count))
                return bail("lane service table");
            svc.bursts.emplace_back(sim::SimTime::fromNanos(when), count);
        }
        if (!in.getU64(creations))
            return bail("lane service table");
        for (std::uint64_t c = 0; c < creations; ++c) {
            std::int64_t when = 0;
            if (!in.getI64(when))
                return bail("lane service table");
            svc.request_creations.push_back(sim::SimTime::fromNanos(when));
        }
        if (!getU64Vec(in, svc.active) || !getU64Vec(in, svc.idle) ||
            !in.getU64(svc.helper_seed) || !in.getU64(svc.requests_served))
            return bail("lane service table");
        faas::AdmissionQueue aq;
        std::uint64_t queued = 0;
        if (!in.getU64(aq.dispatch_event) || !in.getU64(queued))
            return bail("lane admission queue");
        for (std::uint64_t q = 0; q < queued; ++q) {
            std::int64_t at = 0, st = 0;
            if (!in.getI64(at) || !in.getI64(st))
                return bail("lane admission queue");
            aq.q.push_back(
                faas::QueuedRequest{sim::SimTime::fromNanos(at),
                                    sim::Duration::nanos(st)});
        }
        admission.push_back(std::move(aq));
        services.push_back(std::move(svc));
    }

    faas::SloStats slo;
    if (!getHistogram(in, slo.latency_s) ||
        !getHistogram(in, slo.cold_wait_s) || !in.getU64(slo.admitted) ||
        !in.getU64(slo.served_warm) || !in.getU64(slo.queued) ||
        !in.getU64(slo.dispatched) || !in.getU64(slo.rejected) ||
        !in.getU64(slo.shed))
        return bail("lane slo stats");

    if (!in.getU64(n))
        return bail("lane instance table");
    // Instance records are fixed-width on the wire; claim the whole
    // table with one bounds check and decode with unchecked loads.
    // This table dominates the image (every instance ever created),
    // so the per-field checked-getter path was the restore hot spot.
    const std::uint8_t *inst_raw = nullptr;
    if (n > in.remaining() / kInstWire ||
        (inst_raw = in.take(static_cast<std::size_t>(n) * kInstWire)) ==
            nullptr)
        return bail("lane instance table");
    std::vector<faas::InstanceRecord> instances;
    instances.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint8_t *p = inst_raw + i * kInstWire;
        faas::InstanceRecord inst;
        inst.id = ldLE(p, 8);
        inst.service = ldU32(p + 8);
        inst.account = ldU32(p + 12);
        inst.host = ldU32(p + 16);
        const std::uint8_t size = p[20], env = p[21], state = p[22],
                           has_term = p[59];
        inst.in_flight = ldU32(p + 23);
        inst.active_seconds = ldF64(p + 43);
        inst.vm_tsc_offset = ldLE(p + 51, 8);
        inst.reap_event = ldLE(p + 68, 8);
        inst.route_seq = ldLE(p + 76, 8);
        if (env > 1 || state > 2 || !sizeFromIndex(size, inst.size)) {
            error = "corrupt snapshot: bad instance record";
            return false;
        }
        inst.env = static_cast<faas::ExecEnv>(env);
        inst.state = static_cast<faas::InstanceState>(state);
        inst.created_at = sim::SimTime::fromNanos(ldI64(p + 27));
        inst.state_since = sim::SimTime::fromNanos(ldI64(p + 35));
        if (has_term != 0)
            inst.terminated_at = sim::SimTime::fromNanos(ldI64(p + 60));
        if (inst.host >= orch.host_load_.size() ||
            inst.service >= services.size() ||
            inst.account >= accounts.size()) {
            error = "corrupt snapshot: instance record references out "
                    "of range";
            return false;
        }
        instances.push_back(std::move(inst));
    }

    std::vector<double> load_vcpus, load_mem;
    std::vector<std::uint32_t> load_touched;
    if (!getF64Vec(in, load_vcpus) || !getF64Vec(in, load_mem) ||
        !getU32Vec(in, load_touched))
        return bail("lane host-load columns");
    if (load_vcpus.size() != orch.host_load_.size() ||
        load_mem.size() != orch.host_load_.size()) {
        error = "corrupt snapshot: host-load column size mismatch";
        return false;
    }

    if (!in.getU64(n))
        return bail("lane placement trace");
    // Fixed-width records, same bulk treatment as the instance table.
    const std::uint8_t *trace_raw = nullptr;
    if (n > in.remaining() / kTraceWire ||
        (trace_raw = in.take(static_cast<std::size_t>(n) * kTraceWire)) ==
            nullptr)
        return bail("lane placement trace");
    std::vector<faas::PlacementEvent> trace_events;
    trace_events.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint8_t *p = trace_raw + i * kTraceWire;
        faas::PlacementEvent ev;
        const std::uint8_t reason = p[28];
        if (reason >= faas::kPlacementReasonCount) {
            error = "corrupt snapshot: bad placement reason";
            return false;
        }
        ev.when = sim::SimTime::fromNanos(ldI64(p));
        ev.instance = ldLE(p + 8, 8);
        ev.service = ldU32(p + 16);
        ev.account = ldU32(p + 20);
        ev.host = ldU32(p + 24);
        ev.reason = static_cast<faas::PlacementReason>(reason);
        trace_events.push_back(ev);
    }

    if (!in.getU64(n))
        return bail("lane op list");
    std::vector<ShardOp> ops;
    for (std::uint64_t i = 0; i < n; ++i) {
        ShardOp op;
        if (!getOp(in, op))
            return bail("lane op list");
        ops.push_back(op);
    }
    std::uint64_t next_op = 0, storm_index = 0, storm_done = 0;
    std::int64_t storm_t = 0;
    if (!in.getU64(next_op) || !in.getU64(storm_index) ||
        !in.getU64(storm_done) || !in.getI64(storm_t))
        return bail("lane op cursor");
    if (next_op > ops.size() ||
        (storm_index != ~0ULL && storm_index >= ops.size())) {
        error = "corrupt snapshot: lane op cursor out of range";
        return false;
    }

    std::vector<std::uint32_t> lane_accounts, lane_services;
    std::vector<std::uint64_t> lane_created;
    std::uint64_t trace_scanned = 0;
    std::vector<std::string> routed, restarted, spend;
    std::uint64_t routed_count = 0;
    double spend_checksum = 0.0;
    if (!getU32Vec(in, lane_accounts) || !getU32Vec(in, lane_services) ||
        !getU64Vec(in, lane_created) || !in.getU64(trace_scanned) ||
        !getStringVec(in, routed) || !getStringVec(in, restarted) ||
        !getStringVec(in, spend) || !in.getU64(routed_count) ||
        !in.getF64(spend_checksum))
        return bail("lane log buffers");

    std::uint64_t open_loop_count = 0;
    if (!in.getU64(open_loop_count))
        return bail("lane open-loop streams");
    std::vector<faas::ShardedPlatform::Lane::OpenLoopStream> open_loops;
    for (std::uint64_t i = 0; i < open_loop_count; ++i) {
        faas::ShardedPlatform::Lane::OpenLoopStream s;
        std::uint64_t op_index = 0;
        sim::RngState cursor_rng, service_rng;
        std::int64_t origin = 0, next = 0, end = 0, gen_until = 0,
                     next_churn = 0;
        if (!in.getU64(op_index) || !getRng(in, cursor_rng) ||
            !in.getI64(origin) || !in.getI64(next) ||
            !getRng(in, service_rng) || !in.getI64(end) ||
            !in.getI64(gen_until) || !in.getI64(next_churn) ||
            !in.getU64(s.generated))
            return bail("lane open-loop streams");
        if (op_index >= ops.size() ||
            ops[op_index].kind != ShardOp::Kind::OpenLoop ||
            ops[op_index].rate <= 0.0) {
            error = "corrupt snapshot: open-loop stream references a "
                    "non-open-loop op";
            return false;
        }
        s.op_index = static_cast<std::size_t>(op_index);
        // Rebuild the cursor from its defining op, then overwrite the
        // draw state (the throwaway seed never surfaces).
        s.cursor = faas::ArrivalCursor(
            faas::openLoopSpec(ops[op_index]), sim::Rng(1),
            sim::SimTime::fromNanos(origin));
        s.cursor.restore(cursor_rng, sim::SimTime::fromNanos(origin),
                         sim::SimTime::fromNanos(next));
        s.service_rng.restoreState(service_rng);
        s.end = sim::SimTime::fromNanos(end);
        s.gen_until = sim::SimTime::fromNanos(gen_until);
        s.next_churn = sim::SimTime::fromNanos(next_churn);
        open_loops.push_back(std::move(s));
    }

    if (!in.atEnd()) {
        error = "corrupt snapshot: trailing bytes in lane section";
        return false;
    }

    // Everything parsed; now mutate. Primary records first, then the
    // derived tables, then the event queue (rebind needs nothing from
    // the records at bind time, but keep the dependency order honest).
    orch.rng_.restoreState(rng);
    orch.accounts_ = std::move(accounts);
    orch.services_ = std::move(services);
    orch.instances_ = std::move(instances);
    orch.admission_ = std::move(admission);
    orch.slo_ = std::move(slo);
    orch.routing_.resetForRestore(routing_next_seq);
    orch.rebuildDerivedState();

    if (omit_one_vcpus_delta != nullptr && *omit_one_vcpus_delta &&
        !load_touched.empty()) {
        // Planted fault 5: drop this lane's vcpus delta column.
        load_vcpus.assign(load_vcpus.size(), 0.0);
        *omit_one_vcpus_delta = false;
    }
    orch.host_load_.restoreState(load_vcpus, load_mem, load_touched);

    lane.eq.importImage(img, [&orch](std::uint32_t kind, std::uint64_t arg) {
        return orch.rebindEvent(kind, arg);
    });

    lane.trace.clear();
    for (const faas::PlacementEvent &ev : trace_events)
        lane.trace.record(ev);

    lane.ops = std::move(ops);
    lane.next_op = static_cast<std::size_t>(next_op);
    lane.storm = storm_index != ~0ULL ? lane.ops.data() + storm_index
                                      : nullptr;
    lane.storm_done = storm_done;
    lane.storm_t = sim::SimTime::fromNanos(storm_t);
    lane.accounts = std::move(lane_accounts);
    lane.services = std::move(lane_services);
    lane.created = std::move(lane_created);
    lane.trace_scanned = static_cast<std::size_t>(trace_scanned);
    lane.routed = std::move(routed);
    lane.restarted = std::move(restarted);
    lane.spend = std::move(spend);
    lane.routed_count = routed_count;
    lane.spend_checksum = spend_checksum;
    lane.open_loops = std::move(open_loops);
    return true;
}

bool
Snapshotter::restoreObs(SectionReader &in, obs::TrialSet &set,
                        std::string &error)
{
    const auto bail = [&error](const char *what) {
        error = std::string("truncated snapshot: ") + what;
        return false;
    };

    std::uint64_t slot_count = 0;
    if (!in.getU64(slot_count))
        return bail("obs section");
    if (slot_count != set.slots().size()) {
        error = "corrupt snapshot: obs slot count mismatch";
        return false;
    }

    for (std::uint64_t s = 0; s < slot_count; ++s) {
        obs::TrialObs &slot = set.slots()[static_cast<std::size_t>(s)];
        obs::TraceSink &sink = slot.trace;

        // Serialized strings can't be mapped back to the original
        // literals; intern each distinct string once into sink-owned
        // storage. trackId()/Chrome rendering compare by content, so
        // interned pointers blend with literals recorded after restore.
        std::map<std::string, const char *> interned;
        const auto intern = [&](const std::string &str) {
            auto it = interned.find(str);
            if (it == interned.end())
                it = interned.emplace(str, sink.intern(str)).first;
            return it->second;
        };

        std::uint64_t n = 0;
        if (!in.getU64(n))
            return bail("obs track table");
        std::vector<const char *> tracks;
        for (std::uint64_t i = 0; i < n; ++i) {
            std::string track;
            if (!in.getString(track))
                return bail("obs track table");
            tracks.push_back(intern(track));
        }

        if (!in.getU64(n))
            return bail("obs event buffer");
        std::vector<obs::TraceEvent> events;
        for (std::uint64_t i = 0; i < n; ++i) {
            obs::TraceEvent ev;
            std::string name;
            std::uint8_t phase = 0;
            std::int64_t ts = 0, dur = 0;
            if (!in.getString(name) || !in.getU32(ev.track) ||
                !in.getU8(phase) || !in.getI64(ts) || !in.getI64(dur) ||
                !in.getU64(ev.seq) || !in.getU8(ev.n_args))
                return bail("obs event buffer");
            if (ev.track >= tracks.size() ||
                ev.n_args > obs::TraceEvent::kMaxArgs) {
                error = "corrupt snapshot: bad trace event";
                return false;
            }
            ev.name = intern(name);
            ev.phase = static_cast<char>(phase);
            ev.ts = sim::SimTime::fromNanos(ts);
            ev.dur = sim::Duration::nanos(dur);
            for (std::uint8_t a = 0; a < ev.n_args; ++a) {
                obs::TraceArg &arg = ev.args[a];
                std::string key, sval;
                std::uint8_t kind = 0;
                if (!in.getString(key) || !in.getU8(kind) ||
                    !in.getU64(arg.u) || !in.getI64(arg.i) ||
                    !in.getF64(arg.f) || !in.getString(sval))
                    return bail("obs event buffer");
                if (kind > 3) {
                    error = "corrupt snapshot: bad trace arg kind";
                    return false;
                }
                arg.key = intern(key);
                arg.kind = static_cast<obs::TraceArg::Kind>(kind);
                arg.s = intern(sval);
            }
            events.push_back(ev);
        }
        sink.restoreState(std::move(events), std::move(tracks));

        obs::MetricsRegistry &reg = slot.metrics;
        // Zero whatever the target registry accumulated since its
        // construction, then overwrite with the captured values.
        // Handles resolved at orchestrator construction stay valid:
        // the registry's node-based storage never moves.
        for (const auto &[name, counter] : reg.counters())
            reg.counter(name)->value = 0;
        for (const auto &[name, hist] : reg.histograms()) {
            obs::Histogram *h = reg.histogram(name, hist.bounds);
            h->counts.assign(h->bounds.size() + 1, 0);
            h->count = 0;
            h->sum = 0.0;
            h->min = 0.0;
            h->max = 0.0;
        }
        if (!in.getU64(n))
            return bail("obs counter table");
        for (std::uint64_t i = 0; i < n; ++i) {
            std::string name;
            std::uint64_t value = 0;
            if (!in.getString(name) || !in.getU64(value))
                return bail("obs counter table");
            reg.counter(name)->value = value;
        }
        if (!in.getU64(n))
            return bail("obs histogram table");
        for (std::uint64_t i = 0; i < n; ++i) {
            std::string name;
            std::vector<double> bounds;
            std::vector<std::uint64_t> counts;
            std::uint64_t count = 0;
            double sum = 0.0, min = 0.0, max = 0.0;
            if (!in.getString(name) || !getF64Vec(in, bounds) ||
                !getU64Vec(in, counts) || !in.getU64(count) ||
                !in.getF64(sum) || !in.getF64(min) || !in.getF64(max))
                return bail("obs histogram table");
            if (counts.size() != bounds.size() + 1) {
                error = "corrupt snapshot: bad histogram bucket count";
                return false;
            }
            obs::Histogram *h = reg.histogram(name, bounds);
            h->counts = std::move(counts);
            h->count = count;
            h->sum = sum;
            h->min = min;
            h->max = max;
        }
    }
    if (!in.atEnd()) {
        error = "corrupt snapshot: trailing bytes in obs section";
        return false;
    }
    return true;
}

bool
Snapshotter::restore(const std::vector<std::uint8_t> &image,
                     faas::ShardedPlatform &platform, std::string &error)
{
    SnapshotReader reader;
    if (!reader.parse(image, error, platform.cfg_.threads))
        return false;
    return restore(reader, platform, error);
}

bool
Snapshotter::restore(const SnapshotReader &reader,
                     faas::ShardedPlatform &platform, std::string &error)
{
    const SectionView *meta = reader.section(kSectionMeta);
    if (meta == nullptr) {
        error = "corrupt snapshot: missing meta section";
        return false;
    }
    SectionReader m(meta->data, meta->size);

    const auto bail = [&error](const char *what) {
        error = std::string("truncated snapshot: ") + what;
        return false;
    };

    std::uint64_t fingerprint = 0;
    std::uint32_t lane_count = 0, fleet_size = 0, windows_run = 0;
    std::uint8_t has_obs = 0, running = 0, pending_fold = 0;
    std::int64_t final_now = 0, run_horizon = 0, next_wend = 0;
    if (!m.getU64(fingerprint) || !m.getU32(lane_count) ||
        !m.getU32(fleet_size) || !m.getU8(has_obs) ||
        !m.getU32(windows_run) || !m.getI64(final_now) ||
        !m.getI64(run_horizon) || !m.getI64(next_wend) ||
        !m.getU8(running) || !m.getU8(pending_fold))
        return bail("meta section");

    if (fingerprint != configFingerprint(platform.cfg_)) {
        error = "snapshot was captured under a different configuration "
                "(config fingerprint mismatch)";
        return false;
    }
    if (lane_count != platform.laneCount() ||
        fleet_size != platform.fleet_->size()) {
        error = "snapshot lane/fleet shape does not match this platform";
        return false;
    }
    const bool platform_obs =
        platform.obs_set_ != nullptr && platform.obs_set_->enabled();
    if ((has_obs != 0) != platform_obs) {
        error = has_obs != 0
                    ? "snapshot carries observability state but the "
                      "restore platform has none attached"
                    : "restore platform has observability attached but "
                      "the snapshot carries none";
        return false;
    }

    std::uint64_t n = 0;
    if (!m.getU64(n))
        return bail("meta account map");
    std::vector<std::pair<std::uint32_t, faas::AccountId>> acct_map;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint32_t lane = 0, local = 0;
        if (!m.getU32(lane) || !m.getU32(local))
            return bail("meta account map");
        acct_map.emplace_back(lane, local);
    }
    if (!m.getU64(n))
        return bail("meta service map");
    std::vector<std::pair<std::uint32_t, faas::ServiceId>> svc_map;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint32_t lane = 0, local = 0;
        if (!m.getU32(lane) || !m.getU32(local))
            return bail("meta service map");
        svc_map.emplace_back(lane, local);
    }
    std::vector<std::string> exchange_log;
    if (!getStringVec(m, exchange_log))
        return bail("meta exchange log");
    if (!m.atEnd()) {
        error = "corrupt snapshot: trailing bytes in meta section";
        return false;
    }

    const SectionView *committed = reader.section(kSectionCommitted);
    if (committed == nullptr) {
        error = "corrupt snapshot: missing committed-load section";
        return false;
    }
    SectionReader c(committed->data, committed->size);
    std::vector<double> committed_vcpus, committed_mem;
    if (!getF64Vec(c, committed_vcpus) || !getF64Vec(c, committed_mem) ||
        !c.atEnd())
        return bail("committed-load section");
    if (committed_vcpus.size() != platform.committed_.size() ||
        committed_mem.size() != platform.committed_.size()) {
        error = "corrupt snapshot: committed-load size mismatch";
        return false;
    }

    bool omit_vcpus_delta =
        platform.cfg_.orchestrator.fault_injection == 5;
    std::vector<const SectionView *> lane_sections(lane_count);
    for (std::uint32_t i = 0; i < lane_count; ++i) {
        lane_sections[i] = reader.section(kSectionLaneBase + i);
        if (lane_sections[i] == nullptr) {
            std::ostringstream msg;
            msg << "corrupt snapshot: missing lane " << i << " section";
            error = msg.str();
            return false;
        }
    }
    // Restore lanes in parallel (disjoint state). The fault-5 victim
    // pick needs "first lane with a non-empty touch list" to be
    // well-defined, so that mode stays serial; everywhere else the
    // shared omit flag is false and only ever read.
    const unsigned restore_threads =
        omit_vcpus_delta ? 1u : platform.cfg_.threads;
    std::vector<std::string> lane_errors(lane_count);
    std::vector<std::uint8_t> lane_ok(lane_count, 1);
    forEachLane(lane_count, restore_threads, [&](std::uint32_t i) {
        SectionReader lane(lane_sections[i]->data, lane_sections[i]->size);
        lane_ok[i] = restoreLane(lane, *platform.lanes_[i],
                                 &omit_vcpus_delta, lane_errors[i])
                         ? 1
                         : 0;
    });
    for (std::uint32_t i = 0; i < lane_count; ++i) {
        if (lane_ok[i] == 0) {
            error = lane_errors[i];
            return false;
        }
    }

    if (has_obs != 0) {
        const SectionView *payload = reader.section(kSectionObs);
        if (payload == nullptr) {
            error = "corrupt snapshot: missing obs section";
            return false;
        }
        SectionReader obs(payload->data, payload->size);
        if (!restoreObs(obs, *platform.obs_set_, error))
            return false;
    }

    platform.committed_.restoreState(committed_vcpus, committed_mem, {});
    platform.acct_map_ = std::move(acct_map);
    platform.svc_map_ = std::move(svc_map);
    platform.exchange_log_ = std::move(exchange_log);
    platform.windows_run_ = windows_run;
    platform.final_now_ = sim::SimTime::fromNanos(final_now);
    platform.run_horizon_ = sim::SimTime::fromNanos(run_horizon);
    platform.next_wend_ = sim::SimTime::fromNanos(next_wend);
    platform.running_ = running != 0;
    platform.pending_fold_ = pending_fold != 0;
    return true;
}

// ------------------------------------------------------------------ files

bool
Snapshotter::writeFile(const std::string &path,
                       const std::vector<std::uint8_t> &image,
                       std::string &error)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        error = "cannot open " + path + " for writing";
        return false;
    }
    out.write(reinterpret_cast<const char *>(image.data()),
              static_cast<std::streamsize>(image.size()));
    if (!out) {
        error = "short write to " + path;
        return false;
    }
    return true;
}

bool
Snapshotter::readFile(const std::string &path,
                      std::vector<std::uint8_t> &image, std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    image.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    if (in.bad()) {
        error = "read error on " + path;
        return false;
    }
    return true;
}

} // namespace eaao::snap
