/**
 * @file
 * Scenario fuzzer driver.
 *
 * Generates seeded random scenarios (src/testkit/scenario.hpp) and
 * checks the invariant oracles (src/testkit/invariants.hpp) on each,
 * fanning scenario batches over a thread pool, until a time budget or
 * scenario cap is exhausted. On the first violation the scenario is
 * shrunk to a minimal reproducer and written as a replay file; the
 * process exits 1. `--replay FILE` re-runs a replay file under the full
 * oracle suite instead of fuzzing.
 *
 * Usage:
 *   fuzz_scenarios [--seed S] [--time-budget SECONDS]
 *                  [--max-scenarios N] [--threads N] [--shards N]
 *                  [--verify-every N] [--snapshot-every N]
 *                  [--inject-fault K] [--out DIR] [--replay FILE]
 *                  [--fork-at B] [--forks N] [--fork-budget M]
 *
 * Scenario i is a pure function of (seed, i): a campaign is
 * reproducible from its seed regardless of thread count or budget.
 * `--inject-fault K` forces OrchestratorConfig::fault_injection = K
 * into every scenario — the mutation self-test of docs/testing.md: the
 * fuzzer must catch the planted bug and shrink it to a small replay.
 *
 * `--fork-at B` switches to time-travel mode: scenario i becomes the
 * *prefix*, primed once to window barrier B (runScenarioToBarrier),
 * and `--forks N` divergent suffixes of up to `--fork-budget M` steps
 * each are branched from that single image and checked under the fork
 * oracles (prefix-consistency, fork-determinism, fork-vs-straight).
 * Failures shrink suffix-only — the prefix is the snapshot reference
 * — and the replay file carries `[timetravel]` metadata so
 * `--replay` re-primes and re-forks it. Fault 6 lives on this path.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/trial_runner.hpp"
#include "testkit/invariants.hpp"
#include "testkit/scenario.hpp"
#include "testkit/shrink.hpp"

namespace {

using namespace eaao;

struct Args
{
    std::uint64_t seed = 1;
    double time_budget_s = 60.0;
    std::uint64_t max_scenarios = ~0ULL;
    unsigned threads = 4;
    std::uint32_t shards = 5; //!< largest shard-equality arm
    std::uint64_t verify_every = 25; //!< 0 disables the verify oracle
    std::uint64_t snapshot_every = 4; //!< 0 disables the snapshot oracle
    std::uint32_t inject_fault = 0;
    std::string out_dir = ".";
    std::string replay_path;
    std::uint32_t fork_at = ~0u;   //!< barrier window; ~0u = classic mode
    std::uint32_t forks = 4;       //!< suffixes branched per prefix image
    std::uint32_t fork_budget = 8; //!< max steps per generated suffix
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--seed S] [--time-budget SECONDS] [--max-scenarios N]\n"
        "          [--threads N] [--shards N] [--verify-every N]\n"
        "          [--snapshot-every N] [--inject-fault K]\n"
        "          [--out DIR] [--replay FILE]\n"
        "          [--fork-at B] [--forks N] [--fork-budget M]\n",
        argv0);
    std::exit(2);
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    const auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--seed") == 0)
            args.seed = std::strtoull(value(i), nullptr, 10);
        else if (std::strcmp(arg, "--time-budget") == 0)
            args.time_budget_s = std::strtod(value(i), nullptr);
        else if (std::strcmp(arg, "--max-scenarios") == 0)
            args.max_scenarios = std::strtoull(value(i), nullptr, 10);
        else if (std::strcmp(arg, "--threads") == 0)
            args.threads =
                static_cast<unsigned>(std::strtoul(value(i), nullptr, 10));
        else if (std::strcmp(arg, "--shards") == 0)
            args.shards = static_cast<std::uint32_t>(
                std::strtoul(value(i), nullptr, 10));
        else if (std::strcmp(arg, "--verify-every") == 0)
            args.verify_every = std::strtoull(value(i), nullptr, 10);
        else if (std::strcmp(arg, "--snapshot-every") == 0)
            args.snapshot_every = std::strtoull(value(i), nullptr, 10);
        else if (std::strcmp(arg, "--inject-fault") == 0)
            args.inject_fault =
                static_cast<std::uint32_t>(std::strtoul(value(i), nullptr, 10));
        else if (std::strcmp(arg, "--out") == 0)
            args.out_dir = value(i);
        else if (std::strcmp(arg, "--replay") == 0)
            args.replay_path = value(i);
        else if (std::strcmp(arg, "--fork-at") == 0)
            args.fork_at = static_cast<std::uint32_t>(
                std::strtoul(value(i), nullptr, 10));
        else if (std::strcmp(arg, "--forks") == 0)
            args.forks = static_cast<std::uint32_t>(
                std::strtoul(value(i), nullptr, 10));
        else if (std::strcmp(arg, "--fork-budget") == 0)
            args.fork_budget = static_cast<std::uint32_t>(
                std::strtoul(value(i), nullptr, 10));
        else
            usage(argv[0]);
    }
    if (args.threads == 0)
        args.threads = 1;
    if (args.forks == 0)
        args.forks = 1;
    if (args.fork_budget == 0)
        args.fork_budget = 1;
    return args;
}

/** Oracle selection for scenario @p index of the campaign. */
testkit::InvariantOptions
oracleOptions(const Args &args, std::uint64_t index)
{
    testkit::InvariantOptions opts;
    opts.threads = args.threads > 1 ? args.threads : 4;
    opts.shard_arm = args.shards > 1 ? args.shards : 5;
    // The verify oracle costs a covert-channel campaign; sample it.
    opts.check_verify =
        args.verify_every != 0 && index % args.verify_every == 0;
    // The snapshot oracle costs several extra sharded runs; sample it.
    opts.check_snapshot =
        args.snapshot_every != 0 && index % args.snapshot_every == 0;
    return opts;
}

std::string
describe(const std::vector<testkit::Violation> &violations)
{
    std::ostringstream out;
    for (const testkit::Violation &v : violations)
        out << "  [" << v.oracle << "] " << v.detail << "\n";
    return out.str();
}

int
replay(const Args &args)
{
    std::ifstream in(args.replay_path);
    if (!in) {
        std::fprintf(stderr, "fuzz_scenarios: cannot open %s\n",
                     args.replay_path.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    testkit::Scenario sc;
    std::string error;
    if (!testkit::Scenario::parse(buf.str(), sc, error)) {
        std::fprintf(stderr, "fuzz_scenarios: parse error in %s: %s\n",
                     args.replay_path.c_str(), error.c_str());
        return 2;
    }
    if (args.inject_fault != 0)
        sc.fault = args.inject_fault;

    // Replay runs the complete oracle suite, verify included.
    testkit::InvariantOptions opts;
    opts.threads = args.threads > 1 ? args.threads : 4;
    opts.shard_arm = args.shards > 1 ? args.shards : 5;
    opts.check_verify = true;
    opts.check_snapshot = true;
    const std::vector<testkit::Violation> violations =
        testkit::checkInvariants(sc, opts);
    if (violations.empty()) {
        std::printf("replay %s: all invariants hold\n",
                    args.replay_path.c_str());
        return 0;
    }
    std::printf("replay %s: %zu violation(s)\n%s",
                args.replay_path.c_str(), violations.size(),
                describe(violations).c_str());
    return 1;
}

/** Shrink a failing scenario and write the reproducer replay file. */
int
reportFailure(const Args &args, const testkit::Scenario &failing,
              std::uint64_t index,
              const std::vector<testkit::Violation> &violations)
{
    std::printf("scenario %llu FAILED (%zu violation(s)):\n%s",
                static_cast<unsigned long long>(index), violations.size(),
                describe(violations).c_str());

    const testkit::InvariantOptions opts = oracleOptions(args, index);
    const testkit::FailurePredicate still_fails =
        [&opts](const testkit::Scenario &candidate) {
            return !testkit::checkInvariants(candidate, opts).empty();
        };
    std::printf("shrinking...\n");
    const testkit::ShrinkResult shrunk =
        testkit::shrink(failing, still_fails);
    std::printf("shrunk to %zu step(s), %zu service(s), %zu account(s) "
                "after %u attempts\n",
                shrunk.scenario.steps.size(), shrunk.scenario.services.size(),
                shrunk.scenario.accounts.size(), shrunk.attempts);

    std::ostringstream path;
    path << args.out_dir << "/repro-seed" << args.seed << "-" << index
         << ".scenario";
    std::ofstream out(path.str());
    out << shrunk.scenario.serialize();
    out.close();
    std::printf("reproducer written to %s\n", path.str().c_str());
    std::printf("replay with: fuzz_scenarios --replay %s\n",
                path.str().c_str());
    return 1;
}

/**
 * Shrink a failing time-travel fork suffix-only (the cached prime
 * stays valid across every candidate — suffix edits never touch the
 * prefix the image hashes) and write the reproducer replay file.
 */
int
reportForkFailure(const Args &args, const testkit::Scenario &failing,
                  std::uint64_t index, std::uint32_t fork,
                  const testkit::TimeTravelPrime &prime,
                  const std::vector<testkit::Violation> &violations)
{
    std::printf("scenario %llu fork %u FAILED (%zu violation(s)):\n%s",
                static_cast<unsigned long long>(index), fork,
                violations.size(), describe(violations).c_str());

    const testkit::InvariantOptions opts = oracleOptions(args, index);
    const testkit::FailurePredicate still_fails =
        [&opts, &prime](const testkit::Scenario &candidate) {
            return !testkit::checkTimeTravelForks(candidate, opts, &prime)
                        .empty();
        };
    std::printf("shrinking (suffix-only)...\n");
    const testkit::ShrinkResult shrunk =
        testkit::shrink(failing, still_fails);
    std::printf("shrunk to %zu suffix step(s) after %u attempts\n",
                shrunk.scenario.steps.size() -
                    shrunk.scenario.tt_prefix_steps,
                shrunk.attempts);

    std::ostringstream path;
    path << args.out_dir << "/repro-seed" << args.seed << "-" << index
         << "-fork" << fork << ".scenario";
    std::ofstream out(path.str());
    out << shrunk.scenario.serialize();
    out.close();
    std::printf("reproducer written to %s\n", path.str().c_str());
    std::printf("replay with: fuzz_scenarios --replay %s\n",
                path.str().c_str());
    return 1;
}

/**
 * Time-travel mode: prime each prefix to the barrier once, then
 * branch --forks divergent suffixes from the one image — the
 * `--forked-storms` fast path under the fork oracles.
 */
int
fuzzForks(const Args &args)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(args.time_budget_s));

    std::uint64_t index = 0;
    std::uint64_t forks_checked = 0;
    while (index < args.max_scenarios && Clock::now() < deadline) {
        testkit::Scenario prefix =
            testkit::generateScenario(args.seed, index);
        if (args.inject_fault != 0)
            prefix.fault = args.inject_fault;

        const testkit::InvariantOptions opts = oracleOptions(args, index);

        // Prime once per index on the composed-empty-suffix scenario;
        // every fork of this index branches from the same image.
        const testkit::Scenario primed_sc =
            testkit::composeTimeTravel(prefix, {}, args.fork_at);
        testkit::TimeTravelPrime prime;
        std::string error;
        if (!testkit::primeTimeTravel(primed_sc, opts, prime, error)) {
            std::printf("scenario %llu FAILED: prime to barrier %u: %s\n",
                        static_cast<unsigned long long>(index), args.fork_at,
                        error.c_str());
            return 1;
        }

        for (std::uint32_t fork = 0; fork < args.forks; ++fork) {
            const testkit::Scenario sc = testkit::composeTimeTravel(
                prefix,
                testkit::generateSuffixSteps(args.seed, index, fork, prefix,
                                             args.fork_budget),
                args.fork_at);
            const std::vector<testkit::Violation> violations =
                testkit::checkTimeTravelForks(sc, opts, &prime);
            if (!violations.empty())
                return reportForkFailure(args, sc, index, fork, prime,
                                         violations);
            ++forks_checked;
            if (Clock::now() >= deadline)
                break;
        }

        ++index;
        if (index % 16 == 0) {
            std::printf("primed %llu prefixes, checked %llu forks...\n",
                        static_cast<unsigned long long>(index),
                        static_cast<unsigned long long>(forks_checked));
            std::fflush(stdout);
        }
    }
    std::printf("primed %llu prefixes, checked %llu forks: zero invariant "
                "violations\n",
                static_cast<unsigned long long>(index),
                static_cast<unsigned long long>(forks_checked));
    return 0;
}

int
fuzz(const Args &args)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(args.time_budget_s));

    struct Outcome
    {
        std::vector<testkit::Violation> violations;
    };

    std::uint64_t next_index = 0;
    std::uint64_t checked = 0;
    while (next_index < args.max_scenarios && Clock::now() < deadline) {
        const std::uint64_t batch_start = next_index;
        const std::uint64_t batch = std::min<std::uint64_t>(
            args.threads * 2, args.max_scenarios - next_index);
        next_index += batch;

        // Scenarios of a batch are independent; fan the oracle checks
        // out one scenario per trial slot. Determinism of the harness
        // is immaterial here (any failure is re-derived from its
        // index), but it keeps campaign output stable across runs.
        const std::vector<Outcome> outcomes = exp::runTrials(
            batch, args.seed,
            [&](exp::TrialContext &ctx) -> Outcome {
                const std::uint64_t index = batch_start + ctx.index;
                testkit::Scenario sc =
                    testkit::generateScenario(args.seed, index);
                if (args.inject_fault != 0)
                    sc.fault = args.inject_fault;
                return Outcome{
                    testkit::checkInvariants(sc, oracleOptions(args, index))};
            },
            args.threads);

        for (std::uint64_t i = 0; i < batch; ++i) {
            ++checked;
            if (outcomes[i].violations.empty())
                continue;
            const std::uint64_t index = batch_start + i;
            testkit::Scenario sc = testkit::generateScenario(args.seed, index);
            if (args.inject_fault != 0)
                sc.fault = args.inject_fault;
            return reportFailure(args, sc, index, outcomes[i].violations);
        }
        if (batch_start / 64 != next_index / 64) {
            std::printf("checked %llu scenarios...\n",
                        static_cast<unsigned long long>(checked));
            std::fflush(stdout);
        }
    }
    std::printf("checked %llu scenarios: zero invariant violations\n",
                static_cast<unsigned long long>(checked));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);
    if (!args.replay_path.empty())
        return replay(args);
    if (args.fork_at != ~0u)
        return fuzzForks(args);
    return fuzz(args);
}
