#!/usr/bin/env python3
"""Compare two google-benchmark JSON outputs.

Reads a baseline and a candidate file produced with
`--benchmark_out_format=json --benchmark_report_aggregates_only=true
--benchmark_repetitions=N`, matches benchmarks by name using the
`_median` aggregate (falling back to plain entries for single-rep
runs), and fails when any candidate median exceeds the baseline by
more than --max-regression (a fraction; 0.07 allows +7%).

CI uses this to bound the cost of the compiled-in-but-disabled
observability path against an EAAO_ENABLE_OBS=OFF build: the design
target is <2% on the placement micro-benchmarks, with the threshold
held slightly looser to absorb shared-runner noise.

Usage:
  tools/compare_benchmarks.py baseline.json candidate.json \
      [--max-regression 0.07]
"""

import argparse
import json
import sys


def medians(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        name = b["name"]
        if name.endswith("_median"):
            out[name[: -len("_median")]] = b["real_time"]
        elif b.get("run_type", "iteration") == "iteration":
            out.setdefault(name, b["real_time"])
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--max-regression", type=float, default=0.07)
    args = parser.parse_args()

    base = medians(args.baseline)
    cand = medians(args.candidate)
    common = sorted(set(base) & set(cand))
    if not common:
        print("no common benchmarks between the two files")
        return 1

    failed = False
    for name in common:
        ratio = cand[name] / base[name]
        verdict = "OK"
        if ratio > 1.0 + args.max_regression:
            verdict = "REGRESSION"
            failed = True
        print(f"{verdict}: {name}: {base[name]:.0f} -> {cand[name]:.0f} ns "
              f"({(ratio - 1.0) * 100.0:+.1f}%)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
