#!/usr/bin/env python3
"""Compare benchmark timing files (google-benchmark JSON or bench-json
JSONL).

Two input formats are auto-detected per file:

* google-benchmark JSON, produced with `--benchmark_out_format=json
  --benchmark_report_aggregates_only=true --benchmark_repetitions=N`.
  Benchmarks are matched by name using the `_median` aggregate
  (falling back to plain entries for single-rep runs).

* bench-json JSONL, produced with `--bench-json <path>` (one record
  per line; see src/support/bench_timer.hpp). Records are grouped by
  their `bench` name; the median `wall_s` of each group is compared.
  In addition, `events_processed` must match EXACTLY between baseline
  and candidate — the simulated workload is deterministic, so any
  difference means the benchmark no longer runs the same work and the
  wall-clock comparison is meaningless (reported as WORKLOAD DRIFT).

The comparison fails when any candidate median exceeds the baseline
by more than --max-regression (a fraction; 0.07 allows +7%). For
bench-json trajectories the committed baseline was recorded on a
different machine, so CI passes a deliberately loose value there; the
robust gate is --assert-speedup, which compares two records of the
SAME candidate file (same machine, same run):

  --assert-speedup macro_campaign_legacy:macro_campaign:2.0

asserts that the `macro_campaign_legacy` median is at least 2.0x the
`macro_campaign` median, i.e. the indexed paths are >= 2x faster than
the retained reference-scan paths.

CI also uses the google-benchmark mode to bound the cost of the
compiled-in-but-disabled observability path against an
EAAO_ENABLE_OBS=OFF build: the design target is <2% on the placement
micro-benchmarks, with the threshold held slightly looser to absorb
shared-runner noise.

Usage:
  tools/compare_benchmarks.py baseline.json candidate.json \
      [--max-regression 0.07] \
      [--assert-speedup SLOW:FAST:MIN_RATIO]
"""

import argparse
import json
import statistics
import sys


def load_google_benchmark(doc):
    out = {}
    for b in doc.get("benchmarks", []):
        name = b["name"]
        if name.endswith("_median"):
            out[name[: -len("_median")]] = {
                "median": b["real_time"],
                "events": None,
                "unit": "ns",
            }
        elif b.get("run_type", "iteration") == "iteration":
            out.setdefault(
                name,
                {"median": b["real_time"], "events": None, "unit": "ns"},
            )
    return out


def load_bench_jsonl(lines):
    walls = {}
    events = {}
    for line in lines:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        name = rec["bench"]
        walls.setdefault(name, []).append(float(rec["wall_s"]))
        events.setdefault(name, set()).add(int(rec["events_processed"]))
    out = {}
    for name, values in walls.items():
        out[name] = {
            "median": statistics.median(values),
            "events": events[name],
            "unit": "s",
        }
    return out


def load(path):
    """Return {name: {median, events, unit}} for either format."""
    with open(path) as f:
        text = f.read()
    first = text.lstrip()[:1]
    if first != "{":
        raise SystemExit(f"{path}: not a JSON benchmark file")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "benchmarks" in doc:
        return load_google_benchmark(doc)
    # JSONL: one bench-json record per line (a single-record file also
    # parses as `doc` above but has a "bench" key, not "benchmarks").
    return load_bench_jsonl(text.splitlines())


def fmt(entry):
    if entry["unit"] == "s":
        return f"{entry['median'] * 1e3:.1f} ms"
    return f"{entry['median']:.0f} ns"


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--max-regression", type=float, default=0.07)
    parser.add_argument(
        "--assert-speedup",
        action="append",
        default=[],
        metavar="SLOW:FAST:MIN_RATIO",
        help="require candidate median of SLOW >= MIN_RATIO x median "
        "of FAST (same-machine speedup gate; may repeat)",
    )
    args = parser.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    common = sorted(set(base) & set(cand))
    if not common and not args.assert_speedup:
        print("no common benchmarks between the two files")
        return 1

    failed = False
    for name in common:
        b, c = base[name], cand[name]
        if b["events"] is not None and c["events"] is not None:
            if b["events"] != c["events"]:
                print(
                    f"WORKLOAD DRIFT: {name}: events_processed "
                    f"{sorted(b['events'])} -> {sorted(c['events'])}"
                )
                failed = True
                continue
        ratio = c["median"] / b["median"]
        verdict = "OK"
        if ratio > 1.0 + args.max_regression:
            verdict = "REGRESSION"
            failed = True
        print(
            f"{verdict}: {name}: {fmt(b)} -> {fmt(c)} "
            f"({(ratio - 1.0) * 100.0:+.1f}%)"
        )

    for spec in args.assert_speedup:
        try:
            slow, fast, min_ratio = spec.rsplit(":", 2)
            min_ratio = float(min_ratio)
        except ValueError:
            raise SystemExit(f"bad --assert-speedup spec: {spec}")
        # The gate compares two candidate records, but both names must
        # exist in BOTH files: a record absent from the baseline means
        # the benchmark was renamed or deleted and the gate would
        # otherwise pass vacuously forever.
        missing = [f"{n} ({src})"
                   for src, table in (("baseline", base), ("candidate", cand))
                   for n in (slow, fast) if n not in table]
        if missing:
            print(f"SPEEDUP: missing bench records: {', '.join(missing)}")
            failed = True
            continue
        ratio = cand[slow]["median"] / cand[fast]["median"]
        verdict = "OK" if ratio >= min_ratio else "TOO SLOW"
        if ratio < min_ratio:
            failed = True
        print(
            f"SPEEDUP {verdict}: {fast} is {ratio:.2f}x faster than "
            f"{slow} (required >= {min_ratio:.2f}x)"
        )

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
