#!/usr/bin/env python3
"""Unit tests for tools/compare_benchmarks.py.

Run directly (python3 tools/test_compare_benchmarks.py) or through
ctest as `tools_compare_benchmarks`. Exercises both input formats and,
in particular, the --assert-speedup missing-record rules: a bench name
absent from EITHER file must be a hard failure, not a silent pass.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import compare_benchmarks  # noqa: E402


def jsonl(records):
    return "\n".join(json.dumps(r) for r in records) + "\n"


def record(bench, wall_s, events=1000):
    return {"bench": bench, "wall_s": wall_s, "events_processed": events}


class CompareBenchmarksTest(unittest.TestCase):
    def run_main(self, baseline_text, candidate_text, extra_args=()):
        with tempfile.TemporaryDirectory() as tmp:
            base = os.path.join(tmp, "baseline.json")
            cand = os.path.join(tmp, "candidate.json")
            with open(base, "w") as f:
                f.write(baseline_text)
            with open(cand, "w") as f:
                f.write(candidate_text)
            argv = sys.argv
            try:
                sys.argv = ["compare_benchmarks.py", base, cand,
                            *extra_args]
                return compare_benchmarks.main()
            finally:
                sys.argv = argv

    def test_identical_files_pass(self):
        text = jsonl([record("a", 1.0), record("b", 2.0)])
        self.assertEqual(self.run_main(text, text), 0)

    def test_regression_fails(self):
        base = jsonl([record("a", 1.0)])
        cand = jsonl([record("a", 1.5)])
        self.assertEqual(
            self.run_main(base, cand, ["--max-regression", "0.07"]), 1)

    def test_within_tolerance_passes(self):
        base = jsonl([record("a", 1.0)])
        cand = jsonl([record("a", 1.05)])
        self.assertEqual(
            self.run_main(base, cand, ["--max-regression", "0.07"]), 0)

    def test_workload_drift_fails(self):
        base = jsonl([record("a", 1.0, events=1000)])
        cand = jsonl([record("a", 1.0, events=999)])
        self.assertEqual(self.run_main(base, cand), 1)

    def test_speedup_gate_passes(self):
        text = jsonl([record("slow", 3.0), record("fast", 1.0)])
        self.assertEqual(
            self.run_main(text, text,
                          ["--assert-speedup", "slow:fast:2.0"]), 0)

    def test_speedup_gate_too_slow_fails(self):
        text = jsonl([record("slow", 1.5), record("fast", 1.0)])
        self.assertEqual(
            self.run_main(text, text,
                          ["--assert-speedup", "slow:fast:2.0"]), 1)

    def test_speedup_name_missing_from_candidate_fails(self):
        base = jsonl([record("slow", 3.0), record("fast", 1.0)])
        cand = jsonl([record("slow", 3.0)])
        self.assertEqual(
            self.run_main(base, cand,
                          ["--assert-speedup", "slow:fast:2.0"]), 1)

    def test_speedup_name_missing_from_baseline_fails(self):
        # The regression this file exists for: the gate compares two
        # candidate records, but a name absent from the *baseline*
        # (benchmark renamed or deleted) used to pass silently.
        base = jsonl([record("fast", 1.0)])
        cand = jsonl([record("slow", 3.0), record("fast", 1.0)])
        self.assertEqual(
            self.run_main(base, cand,
                          ["--assert-speedup", "slow:fast:2.0"]), 1)

    def test_speedup_name_missing_from_both_fails(self):
        base = jsonl([record("fast", 1.0)])
        cand = jsonl([record("fast", 1.0)])
        self.assertEqual(
            self.run_main(base, cand,
                          ["--assert-speedup", "slow:fast:2.0"]), 1)

    def test_no_common_benchmarks_fails(self):
        base = jsonl([record("a", 1.0)])
        cand = jsonl([record("b", 1.0)])
        self.assertEqual(self.run_main(base, cand), 1)

    def test_google_benchmark_format(self):
        def gb(benchmarks):
            return json.dumps({"benchmarks": benchmarks})

        base = gb([{"name": "bm_x_median", "real_time": 100.0,
                    "run_type": "aggregate"}])
        cand_ok = gb([{"name": "bm_x_median", "real_time": 101.0,
                       "run_type": "aggregate"}])
        cand_bad = gb([{"name": "bm_x_median", "real_time": 200.0,
                        "run_type": "aggregate"}])
        self.assertEqual(self.run_main(base, cand_ok), 0)
        self.assertEqual(self.run_main(base, cand_bad), 1)


if __name__ == "__main__":
    unittest.main()
