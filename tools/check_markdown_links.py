#!/usr/bin/env python3
"""Check intra-repository markdown links.

Scans the given markdown files (default: README.md, DESIGN.md,
EXPERIMENTS.md, ROADMAP.md and everything under docs/) for inline
links `[text](target)` and verifies that every relative target exists
in the repository. External links (http/https/mailto) and pure
anchors (#...) are skipped; `path#anchor` targets are checked for the
path only. Exits non-zero listing every broken link.

Usage: tools/check_markdown_links.py [file.md ...]
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline markdown links; images share the syntax with a leading '!'.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def default_files():
    files = [
        REPO_ROOT / "README.md",
        REPO_ROOT / "DESIGN.md",
        REPO_ROOT / "EXPERIMENTS.md",
        REPO_ROOT / "ROADMAP.md",
    ]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def strip_code(text):
    """Drop fenced and inline code spans, which may hold link-like text."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def check_file(path):
    broken = []
    for target in LINK_RE.findall(strip_code(path.read_text())):
        if target.startswith(SKIP_PREFIXES):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = (path.parent / rel).resolve()
        if not resolved.exists():
            broken.append((target, path))
    return broken


def main(argv):
    files = [Path(a).resolve() for a in argv[1:]] or default_files()
    broken = []
    for f in files:
        broken.extend(check_file(f))
    for target, source in broken:
        rel_source = source.relative_to(REPO_ROOT)
        print(f"BROKEN: {rel_source}: ({target})")
    print(f"checked {len(files)} files, {len(broken)} broken links")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
