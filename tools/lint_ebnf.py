#!/usr/bin/env python3
"""Lint the ```ebnf code blocks in docs/scenario-dsl.md.

The spec book's grammar snippets are the DSL's contract, so CI checks
that they stay well-formed EBNF rather than rotting into prose:

- every block line is blank, a comment, a `name ::= rhs` rule, or an
  indented continuation of the previous rule;
- rule names are lowercase dashed identifiers and defined only once;
- quotes and ( ) [ ] { } balance within each rule;
- every nonterminal referenced anywhere is defined by some rule in the
  union of the document's blocks (the grammar is closed);
- every defined rule is referenced at least once, except a designated
  set of start symbols.

Exit 0 when clean; otherwise one `file:line: message` per problem and
exit 1.

Usage: lint_ebnf.py [markdown-file ...]
"""

import re
import sys

DEFAULT_FILES = ["docs/scenario-dsl.md"]

# Grammar roots: referenced by prose, not by other rules.
START_SYMBOLS = {"file", "trigger-line", "or-expr", "stream-line"}

RULE_NAME = re.compile(r"^[a-z][a-z0-9-]*$")
IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_-]*")

OPEN = {"(": ")", "[": "]", "{": "}"}
CLOSE = {v: k for k, v in OPEN.items()}


def extract_blocks(path):
    """Yield (start_line, [(line_no, text), ...]) per ```ebnf block."""
    blocks = []
    current = None
    with open(path, encoding="utf-8") as f:
        for no, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if current is None:
                if line.strip() == "```ebnf":
                    current = (no, [])
            elif line.strip() == "```":
                blocks.append(current)
                current = None
            else:
                current[1].append((no, line))
    if current is not None:
        blocks.append(current)  # unterminated; flagged by caller
        return blocks, current[0]
    return blocks, None


def tokenize_rhs(text):
    """Split an rhs into quoted literals and structural tokens.

    Returns (tokens, error) where tokens are ('lit', s), ('id', s) or
    ('op', s); error is None or a message.
    """
    tokens = []
    i = 0
    while i < len(text):
        c = text[i]
        if c.isspace():
            i += 1
            continue
        if c in "'\"":
            close = text.find(c, i + 1)
            if close < 0:
                return tokens, "unclosed %s quote" % c
            tokens.append(("lit", text[i + 1 : close]))
            i = close + 1
            continue
        if c in OPEN or c in CLOSE or c == "|":
            tokens.append(("op", c))
            i += 1
            continue
        if text.startswith("..", i):
            tokens.append(("op", ".."))
            i += 2
            continue
        m = IDENT.match(text, i)
        if m:
            tokens.append(("id", m.group(0)))
            i = m.end()
            continue
        return tokens, "unexpected character %r" % c
    return tokens, None


def main(argv):
    files = argv[1:] or DEFAULT_FILES
    problems = []
    defined = {}  # name -> "file:line"
    referenced = {}  # name -> first "file:line"

    for path in files:
        blocks, unterminated = extract_blocks(path)
        if unterminated is not None:
            problems.append(
                "%s:%d: unterminated ```ebnf block" % (path, unterminated)
            )
        if not blocks:
            problems.append("%s:1: no ```ebnf blocks found" % path)
            continue

        for _, lines in blocks:
            # Fold continuations: a rule is its `::=` line plus every
            # following line that is indented and has no `::=`.
            rules = []  # (line_no, name, rhs)
            for no, line in lines:
                if not line.strip() or line.strip().startswith("(*"):
                    continue
                if "::=" in line:
                    lhs, rhs = line.split("::=", 1)
                    name = lhs.strip()
                    if not RULE_NAME.match(name):
                        problems.append(
                            "%s:%d: rule name %r is not a lowercase "
                            "dashed identifier" % (path, no, name)
                        )
                    rules.append((no, name, rhs))
                elif line[:1].isspace() and rules:
                    no0, name, rhs = rules[-1]
                    rules[-1] = (no0, name, rhs + " " + line.strip())
                else:
                    problems.append(
                        "%s:%d: line is neither a rule, a continuation, "
                        "a comment, nor blank: %r" % (path, no, line)
                    )

            for no, name, rhs in rules:
                where = "%s:%d" % (path, no)
                if name in defined:
                    problems.append(
                        "%s: rule %r already defined at %s"
                        % (where, name, defined[name])
                    )
                else:
                    defined[name] = where

                tokens, err = tokenize_rhs(rhs)
                if err:
                    problems.append("%s: %s in rule %r" % (where, err, name))
                stack = []
                for kind, tok in tokens:
                    if kind == "op" and tok in OPEN:
                        stack.append(tok)
                    elif kind == "op" and tok in CLOSE:
                        if not stack or OPEN[stack.pop()] != tok:
                            problems.append(
                                "%s: unbalanced %r in rule %r"
                                % (where, tok, name)
                            )
                            break
                    elif kind == "id":
                        referenced.setdefault(tok, where)
                if stack:
                    problems.append(
                        "%s: unclosed %r in rule %r"
                        % (where, stack[-1], name)
                    )
                if not tokens:
                    problems.append("%s: rule %r has an empty rhs"
                                    % (where, name))

    for name, where in sorted(referenced.items()):
        if name not in defined:
            problems.append(
                "%s: nonterminal %r is referenced but never defined"
                % (where, name)
            )
    for name, where in sorted(defined.items()):
        if name not in referenced and name not in START_SYMBOLS:
            problems.append(
                "%s: rule %r is defined but never referenced "
                "(add it to START_SYMBOLS if it is a grammar root)"
                % (where, name)
            )

    for p in problems:
        print(p)
    if problems:
        return 1
    print(
        "lint_ebnf: %d rules across %d file(s), grammar closed"
        % (len(defined), len(files))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
