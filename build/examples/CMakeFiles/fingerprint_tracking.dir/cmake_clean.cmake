file(REMOVE_RECURSE
  "CMakeFiles/fingerprint_tracking.dir/fingerprint_tracking.cpp.o"
  "CMakeFiles/fingerprint_tracking.dir/fingerprint_tracking.cpp.o.d"
  "fingerprint_tracking"
  "fingerprint_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fingerprint_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
