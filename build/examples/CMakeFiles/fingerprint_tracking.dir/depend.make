# Empty dependencies file for fingerprint_tracking.
# This may be replaced when dependencies are built.
