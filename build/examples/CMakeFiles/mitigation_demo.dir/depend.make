# Empty dependencies file for mitigation_demo.
# This may be replaced when dependencies are built.
