file(REMOVE_RECURSE
  "libeaao_hw.a"
)
