# Empty dependencies file for eaao_hw.
# This may be replaced when dependencies are built.
