file(REMOVE_RECURSE
  "CMakeFiles/eaao_hw.dir/cpu_sku.cpp.o"
  "CMakeFiles/eaao_hw.dir/cpu_sku.cpp.o.d"
  "CMakeFiles/eaao_hw.dir/host.cpp.o"
  "CMakeFiles/eaao_hw.dir/host.cpp.o.d"
  "CMakeFiles/eaao_hw.dir/tsc.cpp.o"
  "CMakeFiles/eaao_hw.dir/tsc.cpp.o.d"
  "libeaao_hw.a"
  "libeaao_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eaao_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
