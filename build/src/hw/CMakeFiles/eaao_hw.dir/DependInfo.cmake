
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cpu_sku.cpp" "src/hw/CMakeFiles/eaao_hw.dir/cpu_sku.cpp.o" "gcc" "src/hw/CMakeFiles/eaao_hw.dir/cpu_sku.cpp.o.d"
  "/root/repo/src/hw/host.cpp" "src/hw/CMakeFiles/eaao_hw.dir/host.cpp.o" "gcc" "src/hw/CMakeFiles/eaao_hw.dir/host.cpp.o.d"
  "/root/repo/src/hw/tsc.cpp" "src/hw/CMakeFiles/eaao_hw.dir/tsc.cpp.o" "gcc" "src/hw/CMakeFiles/eaao_hw.dir/tsc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/eaao_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eaao_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
