file(REMOVE_RECURSE
  "CMakeFiles/eaao_stats.dir/cdf.cpp.o"
  "CMakeFiles/eaao_stats.dir/cdf.cpp.o.d"
  "CMakeFiles/eaao_stats.dir/clustering.cpp.o"
  "CMakeFiles/eaao_stats.dir/clustering.cpp.o.d"
  "CMakeFiles/eaao_stats.dir/hypothesis.cpp.o"
  "CMakeFiles/eaao_stats.dir/hypothesis.cpp.o.d"
  "CMakeFiles/eaao_stats.dir/regression.cpp.o"
  "CMakeFiles/eaao_stats.dir/regression.cpp.o.d"
  "CMakeFiles/eaao_stats.dir/summary.cpp.o"
  "CMakeFiles/eaao_stats.dir/summary.cpp.o.d"
  "libeaao_stats.a"
  "libeaao_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eaao_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
