file(REMOVE_RECURSE
  "libeaao_stats.a"
)
