# Empty dependencies file for eaao_stats.
# This may be replaced when dependencies are built.
