file(REMOVE_RECURSE
  "libeaao_support.a"
)
