file(REMOVE_RECURSE
  "CMakeFiles/eaao_support.dir/logging.cpp.o"
  "CMakeFiles/eaao_support.dir/logging.cpp.o.d"
  "libeaao_support.a"
  "libeaao_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eaao_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
