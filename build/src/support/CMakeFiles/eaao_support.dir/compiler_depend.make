# Empty compiler generated dependencies file for eaao_support.
# This may be replaced when dependencies are built.
