# Empty dependencies file for eaao_core.
# This may be replaced when dependencies are built.
