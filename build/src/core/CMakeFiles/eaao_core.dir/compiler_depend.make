# Empty compiler generated dependencies file for eaao_core.
# This may be replaced when dependencies are built.
