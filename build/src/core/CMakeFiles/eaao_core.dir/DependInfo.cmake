
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fingerprint.cpp" "src/core/CMakeFiles/eaao_core.dir/fingerprint.cpp.o" "gcc" "src/core/CMakeFiles/eaao_core.dir/fingerprint.cpp.o.d"
  "/root/repo/src/core/freq_estimator.cpp" "src/core/CMakeFiles/eaao_core.dir/freq_estimator.cpp.o" "gcc" "src/core/CMakeFiles/eaao_core.dir/freq_estimator.cpp.o.d"
  "/root/repo/src/core/host_registry.cpp" "src/core/CMakeFiles/eaao_core.dir/host_registry.cpp.o" "gcc" "src/core/CMakeFiles/eaao_core.dir/host_registry.cpp.o.d"
  "/root/repo/src/core/repeat_attack.cpp" "src/core/CMakeFiles/eaao_core.dir/repeat_attack.cpp.o" "gcc" "src/core/CMakeFiles/eaao_core.dir/repeat_attack.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/eaao_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/eaao_core.dir/report.cpp.o.d"
  "/root/repo/src/core/strategy.cpp" "src/core/CMakeFiles/eaao_core.dir/strategy.cpp.o" "gcc" "src/core/CMakeFiles/eaao_core.dir/strategy.cpp.o.d"
  "/root/repo/src/core/tracker.cpp" "src/core/CMakeFiles/eaao_core.dir/tracker.cpp.o" "gcc" "src/core/CMakeFiles/eaao_core.dir/tracker.cpp.o.d"
  "/root/repo/src/core/verify.cpp" "src/core/CMakeFiles/eaao_core.dir/verify.cpp.o" "gcc" "src/core/CMakeFiles/eaao_core.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/channel/CMakeFiles/eaao_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/faas/CMakeFiles/eaao_faas.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/eaao_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eaao_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eaao_support.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/eaao_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/eaao_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
