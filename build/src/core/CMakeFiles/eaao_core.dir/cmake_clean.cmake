file(REMOVE_RECURSE
  "CMakeFiles/eaao_core.dir/fingerprint.cpp.o"
  "CMakeFiles/eaao_core.dir/fingerprint.cpp.o.d"
  "CMakeFiles/eaao_core.dir/freq_estimator.cpp.o"
  "CMakeFiles/eaao_core.dir/freq_estimator.cpp.o.d"
  "CMakeFiles/eaao_core.dir/host_registry.cpp.o"
  "CMakeFiles/eaao_core.dir/host_registry.cpp.o.d"
  "CMakeFiles/eaao_core.dir/repeat_attack.cpp.o"
  "CMakeFiles/eaao_core.dir/repeat_attack.cpp.o.d"
  "CMakeFiles/eaao_core.dir/report.cpp.o"
  "CMakeFiles/eaao_core.dir/report.cpp.o.d"
  "CMakeFiles/eaao_core.dir/strategy.cpp.o"
  "CMakeFiles/eaao_core.dir/strategy.cpp.o.d"
  "CMakeFiles/eaao_core.dir/tracker.cpp.o"
  "CMakeFiles/eaao_core.dir/tracker.cpp.o.d"
  "CMakeFiles/eaao_core.dir/verify.cpp.o"
  "CMakeFiles/eaao_core.dir/verify.cpp.o.d"
  "libeaao_core.a"
  "libeaao_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eaao_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
