file(REMOVE_RECURSE
  "libeaao_core.a"
)
