# Empty compiler generated dependencies file for eaao_sim.
# This may be replaced when dependencies are built.
