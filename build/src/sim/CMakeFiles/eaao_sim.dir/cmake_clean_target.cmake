file(REMOVE_RECURSE
  "libeaao_sim.a"
)
