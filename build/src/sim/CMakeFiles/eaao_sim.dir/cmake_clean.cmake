file(REMOVE_RECURSE
  "CMakeFiles/eaao_sim.dir/distributions.cpp.o"
  "CMakeFiles/eaao_sim.dir/distributions.cpp.o.d"
  "CMakeFiles/eaao_sim.dir/event_queue.cpp.o"
  "CMakeFiles/eaao_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/eaao_sim.dir/rng.cpp.o"
  "CMakeFiles/eaao_sim.dir/rng.cpp.o.d"
  "CMakeFiles/eaao_sim.dir/time.cpp.o"
  "CMakeFiles/eaao_sim.dir/time.cpp.o.d"
  "libeaao_sim.a"
  "libeaao_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eaao_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
