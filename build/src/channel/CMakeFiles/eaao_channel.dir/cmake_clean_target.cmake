file(REMOVE_RECURSE
  "libeaao_channel.a"
)
