# Empty dependencies file for eaao_channel.
# This may be replaced when dependencies are built.
