file(REMOVE_RECURSE
  "CMakeFiles/eaao_channel.dir/activity.cpp.o"
  "CMakeFiles/eaao_channel.dir/activity.cpp.o.d"
  "CMakeFiles/eaao_channel.dir/covert.cpp.o"
  "CMakeFiles/eaao_channel.dir/covert.cpp.o.d"
  "libeaao_channel.a"
  "libeaao_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eaao_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
