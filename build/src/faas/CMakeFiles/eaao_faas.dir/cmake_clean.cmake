file(REMOVE_RECURSE
  "CMakeFiles/eaao_faas.dir/fleet.cpp.o"
  "CMakeFiles/eaao_faas.dir/fleet.cpp.o.d"
  "CMakeFiles/eaao_faas.dir/orchestrator.cpp.o"
  "CMakeFiles/eaao_faas.dir/orchestrator.cpp.o.d"
  "CMakeFiles/eaao_faas.dir/platform.cpp.o"
  "CMakeFiles/eaao_faas.dir/platform.cpp.o.d"
  "CMakeFiles/eaao_faas.dir/sandbox.cpp.o"
  "CMakeFiles/eaao_faas.dir/sandbox.cpp.o.d"
  "CMakeFiles/eaao_faas.dir/trace.cpp.o"
  "CMakeFiles/eaao_faas.dir/trace.cpp.o.d"
  "CMakeFiles/eaao_faas.dir/types.cpp.o"
  "CMakeFiles/eaao_faas.dir/types.cpp.o.d"
  "CMakeFiles/eaao_faas.dir/workload.cpp.o"
  "CMakeFiles/eaao_faas.dir/workload.cpp.o.d"
  "libeaao_faas.a"
  "libeaao_faas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eaao_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
