# Empty dependencies file for eaao_faas.
# This may be replaced when dependencies are built.
