file(REMOVE_RECURSE
  "libeaao_faas.a"
)
