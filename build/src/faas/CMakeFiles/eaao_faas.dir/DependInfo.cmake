
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faas/fleet.cpp" "src/faas/CMakeFiles/eaao_faas.dir/fleet.cpp.o" "gcc" "src/faas/CMakeFiles/eaao_faas.dir/fleet.cpp.o.d"
  "/root/repo/src/faas/orchestrator.cpp" "src/faas/CMakeFiles/eaao_faas.dir/orchestrator.cpp.o" "gcc" "src/faas/CMakeFiles/eaao_faas.dir/orchestrator.cpp.o.d"
  "/root/repo/src/faas/platform.cpp" "src/faas/CMakeFiles/eaao_faas.dir/platform.cpp.o" "gcc" "src/faas/CMakeFiles/eaao_faas.dir/platform.cpp.o.d"
  "/root/repo/src/faas/sandbox.cpp" "src/faas/CMakeFiles/eaao_faas.dir/sandbox.cpp.o" "gcc" "src/faas/CMakeFiles/eaao_faas.dir/sandbox.cpp.o.d"
  "/root/repo/src/faas/trace.cpp" "src/faas/CMakeFiles/eaao_faas.dir/trace.cpp.o" "gcc" "src/faas/CMakeFiles/eaao_faas.dir/trace.cpp.o.d"
  "/root/repo/src/faas/types.cpp" "src/faas/CMakeFiles/eaao_faas.dir/types.cpp.o" "gcc" "src/faas/CMakeFiles/eaao_faas.dir/types.cpp.o.d"
  "/root/repo/src/faas/workload.cpp" "src/faas/CMakeFiles/eaao_faas.dir/workload.cpp.o" "gcc" "src/faas/CMakeFiles/eaao_faas.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/defense/CMakeFiles/eaao_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/eaao_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eaao_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eaao_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
