file(REMOVE_RECURSE
  "CMakeFiles/eaao_defense.dir/detector.cpp.o"
  "CMakeFiles/eaao_defense.dir/detector.cpp.o.d"
  "CMakeFiles/eaao_defense.dir/tsc_defense.cpp.o"
  "CMakeFiles/eaao_defense.dir/tsc_defense.cpp.o.d"
  "libeaao_defense.a"
  "libeaao_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eaao_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
