
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defense/detector.cpp" "src/defense/CMakeFiles/eaao_defense.dir/detector.cpp.o" "gcc" "src/defense/CMakeFiles/eaao_defense.dir/detector.cpp.o.d"
  "/root/repo/src/defense/tsc_defense.cpp" "src/defense/CMakeFiles/eaao_defense.dir/tsc_defense.cpp.o" "gcc" "src/defense/CMakeFiles/eaao_defense.dir/tsc_defense.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/eaao_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eaao_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eaao_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
