# Empty dependencies file for eaao_defense.
# This may be replaced when dependencies are built.
