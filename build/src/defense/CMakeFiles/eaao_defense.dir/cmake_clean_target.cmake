file(REMOVE_RECURSE
  "libeaao_defense.a"
)
