file(REMOVE_RECURSE
  "CMakeFiles/core_verify_test.dir/core_verify_test.cpp.o"
  "CMakeFiles/core_verify_test.dir/core_verify_test.cpp.o.d"
  "core_verify_test"
  "core_verify_test.pdb"
  "core_verify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_verify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
