# Empty dependencies file for core_verify_test.
# This may be replaced when dependencies are built.
