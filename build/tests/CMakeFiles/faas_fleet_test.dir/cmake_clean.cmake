file(REMOVE_RECURSE
  "CMakeFiles/faas_fleet_test.dir/faas_fleet_test.cpp.o"
  "CMakeFiles/faas_fleet_test.dir/faas_fleet_test.cpp.o.d"
  "faas_fleet_test"
  "faas_fleet_test.pdb"
  "faas_fleet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faas_fleet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
