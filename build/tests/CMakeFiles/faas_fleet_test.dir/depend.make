# Empty dependencies file for faas_fleet_test.
# This may be replaced when dependencies are built.
