file(REMOVE_RECURSE
  "CMakeFiles/faas_orchestrator_test.dir/faas_orchestrator_test.cpp.o"
  "CMakeFiles/faas_orchestrator_test.dir/faas_orchestrator_test.cpp.o.d"
  "faas_orchestrator_test"
  "faas_orchestrator_test.pdb"
  "faas_orchestrator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faas_orchestrator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
