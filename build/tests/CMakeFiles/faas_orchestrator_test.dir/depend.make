# Empty dependencies file for faas_orchestrator_test.
# This may be replaced when dependencies are built.
