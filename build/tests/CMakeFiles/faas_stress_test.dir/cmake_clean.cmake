file(REMOVE_RECURSE
  "CMakeFiles/faas_stress_test.dir/faas_stress_test.cpp.o"
  "CMakeFiles/faas_stress_test.dir/faas_stress_test.cpp.o.d"
  "faas_stress_test"
  "faas_stress_test.pdb"
  "faas_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faas_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
