# Empty dependencies file for faas_stress_test.
# This may be replaced when dependencies are built.
