# Empty dependencies file for faas_platform_test.
# This may be replaced when dependencies are built.
