# Empty compiler generated dependencies file for faas_workload_test.
# This may be replaced when dependencies are built.
