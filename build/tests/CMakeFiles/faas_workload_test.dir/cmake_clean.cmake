file(REMOVE_RECURSE
  "CMakeFiles/faas_workload_test.dir/faas_workload_test.cpp.o"
  "CMakeFiles/faas_workload_test.dir/faas_workload_test.cpp.o.d"
  "faas_workload_test"
  "faas_workload_test.pdb"
  "faas_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faas_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
