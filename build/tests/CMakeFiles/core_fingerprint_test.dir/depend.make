# Empty dependencies file for core_fingerprint_test.
# This may be replaced when dependencies are built.
