
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_fingerprint_test.cpp" "tests/CMakeFiles/core_fingerprint_test.dir/core_fingerprint_test.cpp.o" "gcc" "tests/CMakeFiles/core_fingerprint_test.dir/core_fingerprint_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eaao_core.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/eaao_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/faas/CMakeFiles/eaao_faas.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/eaao_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/eaao_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eaao_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eaao_support.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/eaao_defense.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
