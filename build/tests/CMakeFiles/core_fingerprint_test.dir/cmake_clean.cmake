file(REMOVE_RECURSE
  "CMakeFiles/core_fingerprint_test.dir/core_fingerprint_test.cpp.o"
  "CMakeFiles/core_fingerprint_test.dir/core_fingerprint_test.cpp.o.d"
  "core_fingerprint_test"
  "core_fingerprint_test.pdb"
  "core_fingerprint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_fingerprint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
