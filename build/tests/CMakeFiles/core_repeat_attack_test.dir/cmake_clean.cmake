file(REMOVE_RECURSE
  "CMakeFiles/core_repeat_attack_test.dir/core_repeat_attack_test.cpp.o"
  "CMakeFiles/core_repeat_attack_test.dir/core_repeat_attack_test.cpp.o.d"
  "core_repeat_attack_test"
  "core_repeat_attack_test.pdb"
  "core_repeat_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_repeat_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
