# Empty dependencies file for core_repeat_attack_test.
# This may be replaced when dependencies are built.
