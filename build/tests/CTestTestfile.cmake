# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_time_test[1]_include.cmake")
include("/root/repo/build/tests/sim_rng_test[1]_include.cmake")
include("/root/repo/build/tests/sim_event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/faas_platform_test[1]_include.cmake")
include("/root/repo/build/tests/faas_orchestrator_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/core_fingerprint_test[1]_include.cmake")
include("/root/repo/build/tests/core_verify_test[1]_include.cmake")
include("/root/repo/build/tests/core_strategy_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/defense_test[1]_include.cmake")
include("/root/repo/build/tests/core_repeat_attack_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/faas_workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_host_registry_test[1]_include.cmake")
include("/root/repo/build/tests/faas_stress_test[1]_include.cmake")
include("/root/repo/build/tests/core_report_test[1]_include.cmake")
include("/root/repo/build/tests/faas_fleet_test[1]_include.cmake")
include("/root/repo/build/tests/stats_hypothesis_test[1]_include.cmake")
include("/root/repo/build/tests/error_handling_test[1]_include.cmake")
