file(REMOVE_RECURSE
  "../bench/fig06_idle_termination"
  "../bench/fig06_idle_termination.pdb"
  "CMakeFiles/fig06_idle_termination.dir/fig06_idle_termination.cpp.o"
  "CMakeFiles/fig06_idle_termination.dir/fig06_idle_termination.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_idle_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
