# Empty compiler generated dependencies file for fig06_idle_termination.
# This may be replaced when dependencies are built.
