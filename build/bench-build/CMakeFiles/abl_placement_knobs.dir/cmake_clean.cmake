file(REMOVE_RECURSE
  "../bench/abl_placement_knobs"
  "../bench/abl_placement_knobs.pdb"
  "CMakeFiles/abl_placement_knobs.dir/abl_placement_knobs.cpp.o"
  "CMakeFiles/abl_placement_knobs.dir/abl_placement_knobs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_placement_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
