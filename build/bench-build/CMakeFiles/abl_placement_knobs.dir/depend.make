# Empty dependencies file for abl_placement_knobs.
# This may be replaced when dependencies are built.
