file(REMOVE_RECURSE
  "../bench/abl_pboot_tradeoff"
  "../bench/abl_pboot_tradeoff.pdb"
  "CMakeFiles/abl_pboot_tradeoff.dir/abl_pboot_tradeoff.cpp.o"
  "CMakeFiles/abl_pboot_tradeoff.dir/abl_pboot_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pboot_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
