# Empty dependencies file for abl_pboot_tradeoff.
# This may be replaced when dependencies are built.
