# Empty dependencies file for abl_channel_robustness.
# This may be replaced when dependencies are built.
