file(REMOVE_RECURSE
  "../bench/abl_channel_robustness"
  "../bench/abl_channel_robustness.pdb"
  "CMakeFiles/abl_channel_robustness.dir/abl_channel_robustness.cpp.o"
  "CMakeFiles/abl_channel_robustness.dir/abl_channel_robustness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_channel_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
