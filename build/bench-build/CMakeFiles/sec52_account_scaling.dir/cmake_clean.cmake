file(REMOVE_RECURSE
  "../bench/sec52_account_scaling"
  "../bench/sec52_account_scaling.pdb"
  "CMakeFiles/sec52_account_scaling.dir/sec52_account_scaling.cpp.o"
  "CMakeFiles/sec52_account_scaling.dir/sec52_account_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_account_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
