# Empty dependencies file for sec52_account_scaling.
# This may be replaced when dependencies are built.
