# Empty compiler generated dependencies file for sec42_freq_methods.
# This may be replaced when dependencies are built.
