file(REMOVE_RECURSE
  "../bench/sec42_freq_methods"
  "../bench/sec42_freq_methods.pdb"
  "CMakeFiles/sec42_freq_methods.dir/sec42_freq_methods.cpp.o"
  "CMakeFiles/sec42_freq_methods.dir/sec42_freq_methods.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec42_freq_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
