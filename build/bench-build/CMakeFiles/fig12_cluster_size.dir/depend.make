# Empty dependencies file for fig12_cluster_size.
# This may be replaced when dependencies are built.
