# Empty dependencies file for fig11_victim_coverage.
# This may be replaced when dependencies are built.
