file(REMOVE_RECURSE
  "../bench/fig11_victim_coverage"
  "../bench/fig11_victim_coverage.pdb"
  "CMakeFiles/fig11_victim_coverage.dir/fig11_victim_coverage.cpp.o"
  "CMakeFiles/fig11_victim_coverage.dir/fig11_victim_coverage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_victim_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
