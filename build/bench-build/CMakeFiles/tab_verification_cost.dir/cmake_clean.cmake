file(REMOVE_RECURSE
  "../bench/tab_verification_cost"
  "../bench/tab_verification_cost.pdb"
  "CMakeFiles/tab_verification_cost.dir/tab_verification_cost.cpp.o"
  "CMakeFiles/tab_verification_cost.dir/tab_verification_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_verification_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
