# Empty dependencies file for tab_verification_cost.
# This may be replaced when dependencies are built.
