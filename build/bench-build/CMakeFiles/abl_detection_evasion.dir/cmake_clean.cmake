file(REMOVE_RECURSE
  "../bench/abl_detection_evasion"
  "../bench/abl_detection_evasion.pdb"
  "CMakeFiles/abl_detection_evasion.dir/abl_detection_evasion.cpp.o"
  "CMakeFiles/abl_detection_evasion.dir/abl_detection_evasion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_detection_evasion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
