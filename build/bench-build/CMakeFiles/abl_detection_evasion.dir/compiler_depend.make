# Empty compiler generated dependencies file for abl_detection_evasion.
# This may be replaced when dependencies are built.
