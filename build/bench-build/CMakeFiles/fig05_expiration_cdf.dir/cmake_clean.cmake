file(REMOVE_RECURSE
  "../bench/fig05_expiration_cdf"
  "../bench/fig05_expiration_cdf.pdb"
  "CMakeFiles/fig05_expiration_cdf.dir/fig05_expiration_cdf.cpp.o"
  "CMakeFiles/fig05_expiration_cdf.dir/fig05_expiration_cdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_expiration_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
