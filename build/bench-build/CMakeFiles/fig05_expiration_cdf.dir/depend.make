# Empty dependencies file for fig05_expiration_cdf.
# This may be replaced when dependencies are built.
