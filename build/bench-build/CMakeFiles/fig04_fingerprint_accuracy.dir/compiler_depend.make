# Empty compiler generated dependencies file for fig04_fingerprint_accuracy.
# This may be replaced when dependencies are built.
