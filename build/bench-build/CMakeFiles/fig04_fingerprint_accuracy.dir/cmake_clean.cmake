file(REMOVE_RECURSE
  "../bench/fig04_fingerprint_accuracy"
  "../bench/fig04_fingerprint_accuracy.pdb"
  "CMakeFiles/fig04_fingerprint_accuracy.dir/fig04_fingerprint_accuracy.cpp.o"
  "CMakeFiles/fig04_fingerprint_accuracy.dir/fig04_fingerprint_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_fingerprint_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
