# Empty dependencies file for fig10_exp4_episodes.
# This may be replaced when dependencies are built.
