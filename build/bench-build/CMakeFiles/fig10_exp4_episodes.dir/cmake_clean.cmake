file(REMOVE_RECURSE
  "../bench/fig10_exp4_episodes"
  "../bench/fig10_exp4_episodes.pdb"
  "CMakeFiles/fig10_exp4_episodes.dir/fig10_exp4_episodes.cpp.o"
  "CMakeFiles/fig10_exp4_episodes.dir/fig10_exp4_episodes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_exp4_episodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
