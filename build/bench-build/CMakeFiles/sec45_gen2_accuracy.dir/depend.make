# Empty dependencies file for sec45_gen2_accuracy.
# This may be replaced when dependencies are built.
