file(REMOVE_RECURSE
  "../bench/sec45_gen2_accuracy"
  "../bench/sec45_gen2_accuracy.pdb"
  "CMakeFiles/sec45_gen2_accuracy.dir/sec45_gen2_accuracy.cpp.o"
  "CMakeFiles/sec45_gen2_accuracy.dir/sec45_gen2_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec45_gen2_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
