# Empty dependencies file for sec6_mitigations.
# This may be replaced when dependencies are built.
