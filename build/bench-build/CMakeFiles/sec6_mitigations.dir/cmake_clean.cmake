file(REMOVE_RECURSE
  "../bench/sec6_mitigations"
  "../bench/sec6_mitigations.pdb"
  "CMakeFiles/sec6_mitigations.dir/sec6_mitigations.cpp.o"
  "CMakeFiles/sec6_mitigations.dir/sec6_mitigations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_mitigations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
