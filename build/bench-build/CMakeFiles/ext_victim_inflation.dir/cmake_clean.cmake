file(REMOVE_RECURSE
  "../bench/ext_victim_inflation"
  "../bench/ext_victim_inflation.pdb"
  "CMakeFiles/ext_victim_inflation.dir/ext_victim_inflation.cpp.o"
  "CMakeFiles/ext_victim_inflation.dir/ext_victim_inflation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_victim_inflation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
