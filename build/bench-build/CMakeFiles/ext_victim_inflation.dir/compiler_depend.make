# Empty compiler generated dependencies file for ext_victim_inflation.
# This may be replaced when dependencies are built.
