file(REMOVE_RECURSE
  "../bench/sec52_repeat_attack"
  "../bench/sec52_repeat_attack.pdb"
  "CMakeFiles/sec52_repeat_attack.dir/sec52_repeat_attack.cpp.o"
  "CMakeFiles/sec52_repeat_attack.dir/sec52_repeat_attack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_repeat_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
