# Empty dependencies file for sec52_repeat_attack.
# This may be replaced when dependencies are built.
