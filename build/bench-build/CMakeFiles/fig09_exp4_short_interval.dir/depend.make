# Empty dependencies file for fig09_exp4_short_interval.
# This may be replaced when dependencies are built.
