file(REMOVE_RECURSE
  "../bench/fig09_exp4_short_interval"
  "../bench/fig09_exp4_short_interval.pdb"
  "CMakeFiles/fig09_exp4_short_interval.dir/fig09_exp4_short_interval.cpp.o"
  "CMakeFiles/fig09_exp4_short_interval.dir/fig09_exp4_short_interval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_exp4_short_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
