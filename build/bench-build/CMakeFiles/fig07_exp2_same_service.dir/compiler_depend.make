# Empty compiler generated dependencies file for fig07_exp2_same_service.
# This may be replaced when dependencies are built.
