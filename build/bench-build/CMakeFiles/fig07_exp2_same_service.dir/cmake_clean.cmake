file(REMOVE_RECURSE
  "../bench/fig07_exp2_same_service"
  "../bench/fig07_exp2_same_service.pdb"
  "CMakeFiles/fig07_exp2_same_service.dir/fig07_exp2_same_service.cpp.o"
  "CMakeFiles/fig07_exp2_same_service.dir/fig07_exp2_same_service.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_exp2_same_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
