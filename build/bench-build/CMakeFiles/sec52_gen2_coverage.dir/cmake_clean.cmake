file(REMOVE_RECURSE
  "../bench/sec52_gen2_coverage"
  "../bench/sec52_gen2_coverage.pdb"
  "CMakeFiles/sec52_gen2_coverage.dir/sec52_gen2_coverage.cpp.o"
  "CMakeFiles/sec52_gen2_coverage.dir/sec52_gen2_coverage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_gen2_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
