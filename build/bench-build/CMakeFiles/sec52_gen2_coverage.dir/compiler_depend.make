# Empty compiler generated dependencies file for sec52_gen2_coverage.
# This may be replaced when dependencies are built.
