file(REMOVE_RECURSE
  "../bench/fig08_exp3_accounts"
  "../bench/fig08_exp3_accounts.pdb"
  "CMakeFiles/fig08_exp3_accounts.dir/fig08_exp3_accounts.cpp.o"
  "CMakeFiles/fig08_exp3_accounts.dir/fig08_exp3_accounts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_exp3_accounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
