# Empty compiler generated dependencies file for fig08_exp3_accounts.
# This may be replaced when dependencies are built.
