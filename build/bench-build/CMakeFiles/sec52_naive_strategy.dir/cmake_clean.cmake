file(REMOVE_RECURSE
  "../bench/sec52_naive_strategy"
  "../bench/sec52_naive_strategy.pdb"
  "CMakeFiles/sec52_naive_strategy.dir/sec52_naive_strategy.cpp.o"
  "CMakeFiles/sec52_naive_strategy.dir/sec52_naive_strategy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_naive_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
