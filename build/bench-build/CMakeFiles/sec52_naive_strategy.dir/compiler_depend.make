# Empty compiler generated dependencies file for sec52_naive_strategy.
# This may be replaced when dependencies are built.
