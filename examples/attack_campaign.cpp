/**
 * @file
 * End-to-end attack campaign: the paper's full co-location pipeline.
 *
 *  1. The attacker primes six services into a high-demand state
 *     (Strategy 2) and keeps the final launches connected.
 *  2. A victim service scales out (e.g. a login service under load).
 *  3. Attacker and victim instances are verified for co-location with
 *     the scalable covert-channel methodology.
 *  4. The attacker selects its footholds (instances sharing hosts with
 *     the victim) and records the hosts' fingerprints for future
 *     attacks (the repeat-attack optimization).
 */

#include <cstdio>
#include <set>

#include "channel/covert.hpp"
#include "core/repeat_attack.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"

int
main()
{
    using namespace eaao;

    std::printf("=== attack_campaign: Strategy 2 end to end "
                "(us-east1) ===\n\n");

    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = 1337;
    faas::Platform platform(cfg);
    const auto attacker = platform.createAccount(0);
    const auto victim = platform.createAccount(2);

    // ---- 1. Prime and hold. ----
    core::CampaignConfig campaign; // 6 services x 6 launches x 800
    const core::CampaignResult attack =
        core::runOptimizedCampaign(platform, attacker, campaign);
    std::printf("primed %zu services; holding %zu instances on %zu "
                "apparent hosts\n(cost so far: %.1f USD)\n\n",
                attack.services.size(), attack.final_instances.size(),
                attack.apparent_hosts.size(), attack.cost_usd);

    // ---- 2. The victim scales out. ----
    const auto vsvc = platform.deployService(victim, faas::ExecEnv::Gen1);
    core::LaunchOptions vopts;
    vopts.instances = 100;
    vopts.disconnect_after = false;
    const core::LaunchObservation vobs =
        core::launchAndObserve(platform, vsvc, vopts);
    std::printf("victim service scaled to %zu instances\n\n",
                vobs.ids.size());

    // ---- 3. Verify co-location via the covert channel. ----
    channel::RngChannel chan(platform);
    const core::CoverageResult coverage =
        core::measureCoverageViaChannel(platform, chan, attack,
                                        vobs.ids, vobs.fp_keys,
                                        vobs.class_keys);
    std::printf("covert-channel verification: %u of %u victim "
                "instances co-located\n(coverage %.1f%%, %llu group "
                "tests so far)\n\n",
                coverage.covered_instances, coverage.victim_instances,
                coverage.coverage() * 100.0,
                static_cast<unsigned long long>(chan.testsRun()));

    // ---- 4. Select footholds and record victim hosts. ----
    // Footholds: one attacker instance per victim-occupied fingerprint.
    std::set<std::uint64_t> victim_keys(vobs.fp_keys.begin(),
                                        vobs.fp_keys.end());
    core::RepeatAttackPlanner planner;
    std::set<std::uint64_t> recorded;
    std::size_t footholds = 0;
    for (std::size_t i = 0; i < attack.final_instances.size(); ++i) {
        const auto key = attack.final_fp_keys[i];
        if (victim_keys.count(key) == 0)
            continue;
        ++footholds;
        if (recorded.insert(key).second) {
            faas::SandboxView sbx =
                platform.sandbox(attack.final_instances[i]);
            planner.recordVictimHost(core::readGen1Median(sbx, 15));
        }
    }
    std::printf("selected %zu foothold instances across %zu victim "
                "hosts; fingerprints\nrecorded for repeat attacks "
                "(planner holds %zu hosts)\n\n",
                footholds, recorded.size(), planner.size());

    std::printf("total attacker spend: %.1f USD (paper: a full "
                "campaign costs 23-27 USD)\n",
                platform.accountSpendUsd(attacker));
    std::printf("\nnext step (out of scope here, Section 2.1): run a "
                "microarchitectural side\nchannel from the footholds "
                "to exfiltrate victim secrets.\n");
    return 0;
}
