/**
 * @file
 * End-to-end attack campaign: the paper's full co-location pipeline.
 *
 *  1. The attacker primes six services into a high-demand state
 *     (Strategy 2) and keeps the final launches connected.
 *  2. A victim service scales out (e.g. a login service under load).
 *  3. Attacker and victim instances are verified for co-location with
 *     the scalable covert-channel methodology.
 *  4. The attacker selects its footholds (instances sharing hosts with
 *     the victim) and records the hosts' fingerprints for future
 *     attacks (the repeat-attack optimization).
 *
 * The example runs several independent campaign replicas on the
 * parallel trial harness (`--threads N` / EAAO_THREADS); replica 0
 * reproduces the historical single-campaign walkthrough, and the
 * closing summary aggregates across replicas. Output is byte-identical
 * for any thread count.
 */

#include <cstdio>
#include <set>

#include "channel/covert.hpp"
#include "core/repeat_attack.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "exp/trial_runner.hpp"
#include "obs/export.hpp"
#include "stats/summary.hpp"
#include "support/bench_timer.hpp"
#include "support/options.hpp"

namespace {

constexpr std::size_t kReplicas = 4;

/** Everything one campaign replica measured, for serial printing. */
struct CampaignMetrics
{
    std::size_t services = 0;
    std::size_t held_instances = 0;
    std::size_t apparent_hosts = 0;
    double prime_cost_usd = 0.0;
    std::size_t victim_instances = 0;
    unsigned covered = 0;
    unsigned victims = 0;
    double coverage = 0.0;
    std::uint64_t group_tests = 0;
    std::size_t footholds = 0;
    std::size_t victim_hosts = 0;
    std::size_t planner_hosts = 0;
    double total_spend_usd = 0.0;
};

CampaignMetrics
runReplica(std::uint64_t seed, eaao::obs::Observer observer)
{
    using namespace eaao;

    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = seed;
    cfg.obs = observer;
    faas::Platform platform(cfg);
    const auto attacker = platform.createAccount(0);
    const auto victim = platform.createAccount(2);

    CampaignMetrics m;

    // ---- 1. Prime and hold. ----
    core::CampaignConfig campaign; // 6 services x 6 launches x 800
    const core::CampaignResult attack =
        core::runOptimizedCampaign(platform, attacker, campaign);
    m.services = attack.services.size();
    m.held_instances = attack.final_instances.size();
    m.apparent_hosts = attack.apparent_hosts.size();
    m.prime_cost_usd = attack.cost_usd;

    // ---- 2. The victim scales out. ----
    const auto vsvc = platform.deployService(victim, faas::ExecEnv::Gen1);
    core::LaunchOptions vopts;
    vopts.instances = 100;
    vopts.disconnect_after = false;
    const core::LaunchObservation vobs =
        core::launchAndObserve(platform, vsvc, vopts);
    m.victim_instances = vobs.ids.size();

    // ---- 3. Verify co-location via the covert channel. ----
    channel::RngChannel chan(platform);
    const core::CoverageResult coverage =
        core::measureCoverageViaChannel(platform, chan, attack,
                                        vobs.ids, vobs.fp_keys,
                                        vobs.class_keys);
    m.covered = coverage.covered_instances;
    m.victims = coverage.victim_instances;
    m.coverage = coverage.coverage();
    m.group_tests = chan.testsRun();

    // ---- 4. Select footholds and record victim hosts. ----
    // Footholds: one attacker instance per victim-occupied fingerprint.
    std::set<std::uint64_t> victim_keys(vobs.fp_keys.begin(),
                                        vobs.fp_keys.end());
    core::RepeatAttackPlanner planner;
    std::set<std::uint64_t> recorded;
    for (std::size_t i = 0; i < attack.final_instances.size(); ++i) {
        const auto key = attack.final_fp_keys[i];
        if (victim_keys.count(key) == 0)
            continue;
        ++m.footholds;
        if (recorded.insert(key).second) {
            faas::SandboxView sbx =
                platform.sandbox(attack.final_instances[i]);
            planner.recordVictimHost(core::readGen1Median(sbx, 15));
        }
    }
    m.victim_hosts = recorded.size();
    m.planner_hosts = planner.size();
    m.total_spend_usd = platform.accountSpendUsd(attacker);
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace eaao;
    const unsigned threads = support::threadsFromArgs(argc, argv);
    const obs::ObsConfig obs_cfg = obs::ObsConfig::fromArgs(argc, argv);
    obs::TrialSet obs_set(obs_cfg);

    std::printf("=== attack_campaign: Strategy 2 end to end "
                "(us-east1, %zu replicas) ===\n\n", kReplicas);

    // Replica 0 keeps the classic seed 1337; the others derive theirs
    // from the replica index.
    support::BenchTimer timer("attack_campaign", threads,
                              /*seed=*/1337);
    const std::vector<CampaignMetrics> replicas = exp::runTrials(
        kReplicas, /*seed=*/1337,
        [](exp::TrialContext &trial) {
            return runReplica(1337 + trial.index, trial.obs);
        },
        threads, &obs_set);
    support::maybeWriteBenchJson(argc, argv, timer.stop());
    obs::writeOutputs(obs_cfg, obs_set);

    const CampaignMetrics &m = replicas.front();
    std::printf("primed %zu services; holding %zu instances on %zu "
                "apparent hosts\n(cost so far: %.1f USD)\n\n",
                m.services, m.held_instances, m.apparent_hosts,
                m.prime_cost_usd);
    std::printf("victim service scaled to %zu instances\n\n",
                m.victim_instances);
    std::printf("covert-channel verification: %u of %u victim "
                "instances co-located\n(coverage %.1f%%, %llu group "
                "tests so far)\n\n",
                m.covered, m.victims, m.coverage * 100.0,
                static_cast<unsigned long long>(m.group_tests));
    std::printf("selected %zu foothold instances across %zu victim "
                "hosts; fingerprints\nrecorded for repeat attacks "
                "(planner holds %zu hosts)\n\n",
                m.footholds, m.victim_hosts, m.planner_hosts);
    std::printf("total attacker spend: %.1f USD (paper: a full "
                "campaign costs 23-27 USD)\n",
                m.total_spend_usd);

    stats::OnlineStats cov, spend;
    for (const CampaignMetrics &r : replicas) {
        cov.add(r.coverage);
        spend.add(r.total_spend_usd);
    }
    std::printf("\nacross %zu independent replicas: coverage %s "
                "(sd %.3f), spend %.1f USD (sd %.1f)\n",
                kReplicas, core::percent(cov.mean()).c_str(),
                cov.stddev(), spend.mean(), spend.stddev());

    std::printf("\nnext step (out of scope here, Section 2.1): run a "
                "microarchitectural side\nchannel from the footholds "
                "to exfiltrate victim secrets.\n");
    return 0;
}
