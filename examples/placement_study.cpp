/**
 * @file
 * Placement study: reverse-engineering an unknown FaaS orchestrator
 * the way Section 5.1 of the paper does it — using only the public
 * tenant surface (deploy / connect / fingerprints), no oracle calls.
 *
 * Walks through the four experiments and prints the observations they
 * support: base hosts, idle reaping, cross-account separation, and
 * the helper-host load-balancing behaviour.
 */

#include <cstdio>
#include <set>

#include "core/report.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"

namespace {

using namespace eaao;

std::set<std::uint64_t>
launchFootprint(faas::Platform &p, faas::ServiceId svc, std::uint32_t n)
{
    core::LaunchOptions opts;
    opts.instances = n;
    return core::launchAndObserve(p, svc, opts).apparentHosts();
}

} // namespace

int
main()
{
    std::printf("=== placement_study: black-box study of the "
                "orchestrator ===\n\n");

    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = 2024;
    faas::Platform p(cfg);

    // ---- Experiment 1: how are instances distributed? ----
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    const auto first = launchFootprint(p, svc, 800);
    std::printf("Experiment 1: 800 instances -> %zu apparent hosts "
                "(~%.1f instances/host).\n",
                first.size(), 800.0 / static_cast<double>(first.size()));
    std::printf("  => instances of a service share hosts, spread "
                "near-uniformly (Obs 1).\n\n");

    // ---- Experiment 2: is placement consistent across launches? ----
    std::set<std::uint64_t> cumulative = first;
    p.advance(sim::Duration::minutes(45));
    for (int launch = 2; launch <= 4; ++launch) {
        const auto hosts = launchFootprint(p, svc, 800);
        cumulative.insert(hosts.begin(), hosts.end());
        p.advance(sim::Duration::minutes(45));
    }
    std::printf("Experiment 2: four cold launches, cumulative "
                "footprint %zu vs %zu per launch.\n",
                cumulative.size(), first.size());
    std::printf("  => the account has preferred 'base hosts' "
                "(Obs 3).\n\n");

    // ---- Experiment 3: do accounts share base hosts? ----
    const auto other = p.createAccount();
    const auto other_svc = p.deployService(other, faas::ExecEnv::Gen1);
    const auto other_hosts = launchFootprint(p, other_svc, 800);
    std::size_t overlap = 0;
    for (const auto key : other_hosts)
        overlap += cumulative.count(key);
    std::printf("Experiment 3: a second account's 800 instances land "
                "on %zu hosts,\n  only %zu shared with the first "
                "account.\n",
                other_hosts.size(), overlap);
    std::printf("  => different accounts get different base hosts "
                "(Obs 4).\n\n");
    p.advance(sim::Duration::minutes(45));

    // ---- Experiment 4: what does high demand do? ----
    core::TextTable table;
    table.header({"launch (10-min interval)", "apparent hosts",
                  "cumulative"});
    std::set<std::uint64_t> hot_cumulative;
    for (int launch = 1; launch <= 6; ++launch) {
        const auto hosts = launchFootprint(p, svc, 800);
        hot_cumulative.insert(hosts.begin(), hosts.end());
        table.row({core::format("%d", launch),
                   core::format("%zu", hosts.size()),
                   core::format("%zu", hot_cumulative.size())});
        if (launch < 6)
            p.advance(sim::Duration::minutes(10) -
                      sim::Duration::seconds(30));
    }
    table.print();
    std::printf("  => a service hot within ~30 minutes spills onto "
                "'helper hosts'\n     beyond the base set, saturating "
                "after ~3 launches (Obs 5).\n\n");

    // ---- Idle reaping (Obs 2). ----
    p.disconnectAll(svc);
    int checkpoints[] = {1, 5, 13};
    std::printf("idle survivors after disconnecting 800 instances:\n");
    sim::SimTime last = p.now();
    for (const int minutes : checkpoints) {
        p.advance(sim::Duration::minutes(minutes) - (p.now() - last));
        last = p.now();
        // The tenant sees survivors as instances that still accept its
        // connections; here we reconnect and count reused ids.
        const auto ids = p.connect(svc, 1);
        p.disconnectAll(svc);
        std::printf("  t=%2d min: reconnect served by instance %llu\n",
                    minutes,
                    static_cast<unsigned long long>(ids.front()));
    }
    std::printf("  => idle instances persist ~2 minutes untouched and "
                "are all reaped\n     by ~12-15 minutes (Obs 2); a "
                "reconnect after that gets a fresh instance.\n");
    return 0;
}
