/**
 * @file
 * Mitigation demo: the same fingerprinting pipeline run against a
 * hardened platform (Section 6 defenses), showing what each knob
 * buys and what it costs.
 */

#include <cstdio>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "defense/tsc_defense.hpp"
#include "stats/clustering.hpp"

namespace {

using namespace eaao;

/** Run the standard fingerprint pipeline; return pairwise quality. */
stats::PairConfusion
pipeline(const faas::PlatformConfig &cfg, faas::ExecEnv env,
         std::string &sample_model)
{
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, env);
    core::LaunchOptions launch;
    launch.instances = 300;
    launch.disconnect_after = false;
    const core::LaunchObservation obs =
        core::launchAndObserve(p, svc, launch);
    sample_model = p.sandbox(obs.ids.front()).cpuModelName();
    std::vector<std::uint64_t> oracle;
    for (const auto id : obs.ids)
        oracle.push_back(p.oracleHostOf(id));
    return stats::comparePairs(obs.fp_keys, oracle);
}

} // namespace

int
main()
{
    std::printf("=== mitigation_demo: hardening the platform against "
                "host fingerprinting ===\n\n");

    core::TextTable table;
    table.header({"configuration", "env", "cpuid shows", "FMI",
                  "timer cost"});

    auto add_row = [&table](const char *label, faas::ExecEnv env,
                            const faas::PlatformConfig &cfg) {
        std::string model;
        faas::PlatformConfig local = cfg;
        const auto quality = pipeline(local, env, model);
        table.row({label, faas::toString(env), model,
                   core::format("%.4f", quality.fmi()),
                   env == faas::ExecEnv::Gen1
                       ? cfg.tsc_defense.gen1TimerCost().str()
                       : cfg.tsc_defense.native_timer_cost.str()});
    };

    faas::PlatformConfig base;
    base.profile = faas::DataCenterProfile::usEast1();
    base.seed = 66;
    add_row("no defense", faas::ExecEnv::Gen1, base);
    add_row("no defense", faas::ExecEnv::Gen2, base);

    faas::PlatformConfig trap = base;
    trap.seed = 67;
    trap.tsc_defense.gen1 = defense::Gen1TscPolicy::TrapEmulate;
    add_row("Gen1 trap-and-emulate", faas::ExecEnv::Gen1, trap);

    faas::PlatformConfig masked = trap;
    masked.seed = 68;
    masked.tsc_defense.gen1_mask_cpuid = true;
    add_row("  + cpuid masking", faas::ExecEnv::Gen1, masked);

    faas::PlatformConfig scaled = base;
    scaled.seed = 69;
    scaled.tsc_defense.gen2 = defense::Gen2TscPolicy::OffsetAndScale;
    add_row("Gen2 TSC offset+scale", faas::ExecEnv::Gen2, scaled);

    table.print();

    std::printf("\ntimer-cost consequences of trap-and-emulate "
                "(Section 6):\n\n");
    core::TextTable impact;
    impact.header({"workload", "added latency"});
    std::size_t count = 0;
    const auto *profiles = defense::timerSensitiveWorkloads(count);
    for (std::size_t i = 0; i < count; ++i) {
        impact.row({profiles[i].name,
                    core::percent(defense::timerOverheadFraction(
                        trap.tsc_defense, profiles[i]))});
    }
    impact.print();

    std::printf("\nsummary: trap-and-emulate (or hardware TSC "
                "scaling on Gen 2) destroys both\nfingerprints; the "
                "Gen 1 variant taxes timer-heavy tenants, the Gen 2 "
                "variant\nis free but needs hardware support — exactly "
                "the trade-off the paper draws.\n");
    return 0;
}
