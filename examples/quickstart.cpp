/**
 * @file
 * Quickstart: stand up a simulated Cloud Run-style data center,
 * deploy a service, launch instances, fingerprint their hosts, and
 * verify co-location — the library's core loop in ~80 lines.
 */

#include <cstdio>

#include "channel/covert.hpp"
#include "core/fingerprint.hpp"
#include "core/report.hpp"
#include "core/strategy.hpp"
#include "core/verify.hpp"
#include "stats/clustering.hpp"

int
main()
{
    using namespace eaao;

    // 1. One simulated data center (us-east1 preset, fixed seed).
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = 42;
    faas::Platform platform(cfg);

    // 2. A tenant deploys a Gen 1 service and opens 200 connections;
    //    the platform autoscales to 200 container instances.
    const faas::AccountId account = platform.createAccount();
    const faas::ServiceId service =
        platform.deployService(account, faas::ExecEnv::Gen1);

    core::LaunchOptions launch;
    launch.instances = 200;
    launch.disconnect_after = false; // keep them for the covert channel
    const core::LaunchObservation obs =
        core::launchAndObserve(platform, service, launch);

    std::printf("launched %zu instances; %zu apparent hosts "
                "(distinct fingerprints)\n",
                obs.ids.size(), obs.apparentHosts().size());

    // 3. Inspect one instance's sandbox: what the attacker code sees.
    faas::SandboxView sandbox = platform.sandbox(obs.ids.front());
    const core::Gen1Reading reading = core::readGen1(sandbox);
    std::printf("first instance: model='%s'  reported f=%.2f GHz  "
                "derived T_boot=%.3f s\n",
                reading.cpu_model.c_str(), reading.frequency_hz / 1e9,
                reading.tboot_s);

    // 4. Verify co-location at scale with the covert channel.
    channel::RngChannel chan(platform);
    const core::VerifyResult verified = core::verifyScalable(
        platform, chan, obs.ids, obs.fp_keys, obs.class_keys);

    std::printf("verified %zu clusters (hosts) with %llu group tests "
                "in %s (cost: %.2f USD)\n",
                verified.clusterCount(),
                static_cast<unsigned long long>(verified.group_tests),
                verified.elapsed.str().c_str(), verified.cost_usd);

    // 5. Score the fingerprints against the verified ground truth.
    const stats::PairConfusion pc =
        stats::comparePairs(obs.fp_keys, verified.cluster_of);
    std::printf("fingerprint quality: precision=%.4f recall=%.4f "
                "FMI=%.4f\n",
                pc.precision(), pc.recall(), pc.fmi());

    // 6. The bill so far.
    std::printf("account spend: %.2f USD\n",
                platform.accountSpendUsd(account));
    return 0;
}
