/**
 * @file
 * Fingerprint tracking: following physical hosts across days.
 *
 * Demonstrates the part of the toolkit that pairwise covert channels
 * cannot provide (Section 4.3's comparison): long-lived host identity.
 * Tracks a handful of hosts hourly for four days, fits each host's
 * T_boot drift, predicts when its rounded fingerprint will expire,
 * and then checks the prediction against what actually happens.
 */

#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/report.hpp"
#include "core/tracker.hpp"
#include "faas/platform.hpp"

int
main()
{
    using namespace eaao;

    std::printf("=== fingerprint_tracking: host identity over days "
                "===\n\n");

    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = 404;
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);

    // One probe per host, eight hosts.
    const auto all = p.connect(svc, 100);
    std::vector<faas::InstanceId> probes;
    {
        std::set<hw::HostId> hosts;
        for (const auto id : all) {
            if (hosts.insert(p.oracleHostOf(id)).second)
                probes.push_back(id);
            if (probes.size() == 8)
                break;
        }
    }

    constexpr double kPBoot = 1.0;
    constexpr int kHours = 4 * 24;

    std::vector<core::FingerprintHistory> histories(probes.size());
    std::vector<std::int64_t> first_bucket(probes.size());
    std::vector<int> observed_expiry_h(probes.size(), -1);

    for (int hour = 0; hour <= kHours; ++hour) {
        for (std::size_t i = 0; i < probes.size(); ++i) {
            faas::SandboxView sbx = p.sandbox(probes[i]);
            const core::Gen1Reading r = core::readGen1Median(sbx, 15);
            histories[i].add(p.now(), r.tboot_s);
            const auto bucket = core::quantizeGen1(r, kPBoot).boot_bucket;
            if (hour == 0) {
                first_bucket[i] = bucket;
            } else if (observed_expiry_h[i] < 0 &&
                       bucket != first_bucket[i]) {
                observed_expiry_h[i] = hour;
            }
        }
        p.advance(sim::Duration::hours(1));
    }

    core::TextTable table;
    table.header({"host", "drift/day", "|r|", "predicted expiry",
                  "observed"});
    for (std::size_t i = 0; i < probes.size(); ++i) {
        const auto fit = histories[i].fitDrift();
        // Prediction from the first 24 hours only (fair forecast).
        core::FingerprintHistory early;
        for (std::size_t k = 0; k < 25 && k < histories[i].size(); ++k) {
            early.add(sim::SimTime::fromSecondsF(
                          histories[i].wallSeconds()[k]),
                      histories[i].tbootSeconds()[k]);
        }
        const auto predicted = early.expirationSeconds(kPBoot);
        std::string predicted_str = "never (within horizon)";
        if (predicted && *predicted < 1e7) {
            predicted_str = core::format(
                "%.1f h after hour 24", *predicted / 3600.0);
        }
        table.row(
            {core::format("#%zu", i),
             core::format("%+.1f ms",
                          fit.slope * 86400.0 * 1e3),
             core::format("%.5f", std::fabs(fit.r_value)),
             predicted_str,
             observed_expiry_h[i] < 0
                 ? std::string("stable all 4 days")
                 : core::format("changed at hour %d",
                                observed_expiry_h[i])});
    }
    table.print();

    std::printf("\nreading the table: hosts drift linearly (|r| ~ 1, "
                "Section 4.4.2); slow\ndrifters keep one fingerprint "
                "for the whole window, fast drifters expire\nroughly "
                "when the 24-hour forecast says they will.\n");
    return 0;
}
