/**
 * @file
 * Extraction-step demo: detecting victim activity from a co-located
 * foothold (the threat-model capability the co-location attack feeds,
 * paper Sections 2.1/3).
 *
 * After co-locating with the victim, the attacker's foothold instance
 * probes shared-resource contention once per second. The victim's
 * request bursts show up as busy intervals in the probe trace — the
 * timing signal that secret-extracting side channels build on.
 */

#include <cstdio>
#include <string>

#include "channel/activity.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"
#include "faas/workload.hpp"

int
main()
{
    using namespace eaao;

    std::printf("=== extraction_demo: watching a victim from a "
                "co-located foothold ===\n\n");

    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = 4242;
    faas::Platform p(cfg);
    const auto attacker = p.createAccount(0);
    const auto victim = p.createAccount(1);

    // Attacker co-locates (abridged: 3 services).
    core::CampaignConfig campaign;
    campaign.services = 3;
    const core::CampaignResult attack =
        core::runOptimizedCampaign(p, attacker, campaign);

    // The victim's warm serving instance: route one request and see
    // where it executes (the same instance keeps serving afterwards —
    // most-recently-idled instances are reused first).
    const auto vsvc = p.deployService(victim, faas::ExecEnv::Gen1);
    const faas::InstanceId server =
        p.orchestrator().routeRequest(vsvc, sim::Duration::millis(100));
    const hw::HostId watched_host = p.oracleHostOf(server);
    p.advance(sim::Duration::millis(200));

    // Pick an attacker foothold on that host.
    faas::InstanceId foothold = faas::kNoInstance;
    for (const auto aid : attack.final_instances) {
        if (p.oracleHostOf(aid) == watched_host) {
            foothold = aid;
            break;
        }
    }
    if (foothold == faas::kNoInstance) {
        std::printf("no co-location with this seed — rerun.\n");
        return 1;
    }
    std::printf("foothold instance %llu shares host %u with the "
                "victim\n\n",
                static_cast<unsigned long long>(foothold),
                watched_host);

    // The victim's traffic arrives in bursts; the attacker watches.
    // Schedule: 20 s quiet, 20 s busy, repeated.
    sim::Rng rng(5);
    channel::ActivityProbeConfig probe_cfg;
    probe_cfg.background_rate = 0.02;
    channel::ActivityProbe probe(p, foothold, probe_cfg);

    std::printf("timeline (1 sample/s; '#' = busy, '.' = quiet; victim "
                "bursts at 20-40 s and 60-80 s):\n\n  ");
    std::string line;
    int correct = 0, total = 0;
    for (int second = 0; second < 100; ++second) {
        const bool victim_active =
            (second >= 20 && second < 40) ||
            (second >= 60 && second < 80);
        if (victim_active && second % 1 == 0) {
            // One victim request per second during a burst.
            p.orchestrator().routeRequest(vsvc,
                                          sim::Duration::millis(900));
        }
        const auto sample = probe.sample();
        line += sample.busy ? '#' : '.';
        correct += (sample.busy == victim_active);
        ++total;
        p.advance(sim::Duration::seconds(1));
        if (line.size() == 50) {
            std::printf("%s\n  ", line.c_str());
            line.clear();
        }
    }
    std::printf("%s\n\n", line.c_str());
    std::printf("detection agreement with ground truth: %d/%d "
                "samples (%.0f%%)\n",
                correct, total, 100.0 * correct / total);
    std::printf("\nwith victim execution timing in hand, the attacker "
                "schedules the actual\nside-channel extraction (cache, "
                "TLB, port contention, ... — prior work cited\nby the "
                "paper) precisely when the victim computes on "
                "secrets.\n");
    return 0;
}
