/**
 * @file
 * Unit tests for the small-buffer-optimized event callback.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/inplace_callback.hpp"

namespace eaao::sim {
namespace {

/** Counts constructions/destructions to catch leaks and double-frees. */
struct LifetimeProbe
{
    static int alive;
    LifetimeProbe() { ++alive; }
    LifetimeProbe(const LifetimeProbe &) { ++alive; }
    LifetimeProbe(LifetimeProbe &&) noexcept { ++alive; }
    ~LifetimeProbe() { --alive; }
};
int LifetimeProbe::alive = 0;

TEST(InplaceCallback, EmptyByDefault)
{
    InplaceCallback cb;
    EXPECT_FALSE(static_cast<bool>(cb));
    EXPECT_FALSE(cb.isInline());
    cb.reset(); // reset of empty is a no-op
    EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InplaceCallback, SmallLambdaIsStoredInline)
{
    int hits = 0;
    InplaceCallback cb = [&hits] { ++hits; };
    ASSERT_TRUE(static_cast<bool>(cb));
    EXPECT_TRUE(cb.isInline());
    cb();
    cb();
    EXPECT_EQ(hits, 2);
}

TEST(InplaceCallback, CaptureAtTheInlineBoundaryStaysInline)
{
    // Exactly kInlineSize bytes of capture must still fit.
    std::array<std::uint8_t, InplaceCallback::kInlineSize> blob{};
    blob[0] = 7;
    std::uint8_t seen = 0;
    auto fn = [blob, &seen]() mutable { seen = blob[0]; };
    static_assert(sizeof(fn) > InplaceCallback::kInlineSize);
    InplaceCallback big = std::move(fn);
    EXPECT_FALSE(big.isInline());

    std::array<std::uint8_t, InplaceCallback::kInlineSize -
                                 sizeof(std::uint8_t *)> fitting{};
    fitting[0] = 9;
    auto fits = [fitting, &seen] { seen = fitting[0]; };
    InplaceCallback small = std::move(fits);
    EXPECT_TRUE(small.isInline());
    small();
    EXPECT_EQ(seen, 9);
    big();
    EXPECT_EQ(seen, 7);
}

TEST(InplaceCallback, OversizedCaptureFallsBackToHeapAndWorks)
{
    std::array<std::uint64_t, 32> payload{};
    payload[31] = 0xabcd;
    std::uint64_t got = 0;
    InplaceCallback cb = [payload, &got] { got = payload[31]; };
    ASSERT_TRUE(static_cast<bool>(cb));
    EXPECT_FALSE(cb.isInline());
    cb();
    EXPECT_EQ(got, 0xabcdu);
}

TEST(InplaceCallback, MoveTransfersOwnershipInline)
{
    int hits = 0;
    InplaceCallback a = [&hits] { ++hits; };
    InplaceCallback b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a)); // NOLINT(bugprone-use-after-move)
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);

    InplaceCallback c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b)); // NOLINT(bugprone-use-after-move)
    c();
    EXPECT_EQ(hits, 2);
}

TEST(InplaceCallback, MoveTransfersOwnershipHeap)
{
    std::array<std::uint64_t, 32> payload{};
    payload[0] = 42;
    std::uint64_t got = 0;
    InplaceCallback a = [payload, &got] { got = payload[0]; };
    ASSERT_FALSE(a.isInline());
    InplaceCallback b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a)); // NOLINT(bugprone-use-after-move)
    b();
    EXPECT_EQ(got, 42u);
}

TEST(InplaceCallback, AssignmentDestroysPreviousCallable)
{
    {
        InplaceCallback cb = [probe = LifetimeProbe{}] { (void)probe; };
        EXPECT_EQ(LifetimeProbe::alive, 1);
        cb = [] {};
        EXPECT_EQ(LifetimeProbe::alive, 0); // old capture destroyed
        cb();
    }
    EXPECT_EQ(LifetimeProbe::alive, 0);
}

TEST(InplaceCallback, ResetAndDestructorReleaseCaptures)
{
    // Inline path.
    {
        InplaceCallback cb = [probe = LifetimeProbe{}] { (void)probe; };
        EXPECT_EQ(LifetimeProbe::alive, 1);
        cb.reset();
        EXPECT_EQ(LifetimeProbe::alive, 0);
        EXPECT_FALSE(static_cast<bool>(cb));
    }
    // Heap path: pad the capture past the inline budget.
    {
        std::array<std::uint64_t, 32> pad{};
        InplaceCallback cb =
            [probe = LifetimeProbe{}, pad] { (void)probe; (void)pad; };
        EXPECT_FALSE(cb.isInline());
        EXPECT_EQ(LifetimeProbe::alive, 1);
    }
    EXPECT_EQ(LifetimeProbe::alive, 0);
}

TEST(InplaceCallback, MoveOnlyCapturesAreSupported)
{
    auto owned = std::make_unique<int>(31337);
    int got = 0;
    InplaceCallback cb = [owned = std::move(owned), &got] {
        got = *owned;
    };
    InplaceCallback moved = std::move(cb);
    moved();
    EXPECT_EQ(got, 31337);
}

TEST(InplaceCallback, SelfMoveAssignmentIsSafe)
{
    int hits = 0;
    InplaceCallback cb = [&hits] { ++hits; };
    InplaceCallback &alias = cb;
    cb = std::move(alias);
    ASSERT_TRUE(static_cast<bool>(cb));
    cb();
    EXPECT_EQ(hits, 1);
}

TEST(InplaceCallback, ManyWrappersDoNotLeak)
{
    std::vector<InplaceCallback> cbs;
    for (int i = 0; i < 100; ++i) {
        cbs.emplace_back([probe = LifetimeProbe{}] { (void)probe; });
        std::array<std::uint64_t, 32> pad{};
        cbs.emplace_back(
            [probe = LifetimeProbe{}, pad] { (void)probe; (void)pad; });
    }
    EXPECT_EQ(LifetimeProbe::alive, 200);
    cbs.clear();
    EXPECT_EQ(LifetimeProbe::alive, 0);
}

} // namespace
} // namespace eaao::sim
