/**
 * @file
 * Unit tests for the repeat-attack planner and the account quota
 * model (Section 5.2 optimizations).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/repeat_attack.hpp"
#include "support/logging.hpp"
#include "core/strategy.hpp"
#include "faas/platform.hpp"

namespace eaao::core {
namespace {

Gen1Reading
reading(const char *model, double tboot, double wall)
{
    Gen1Reading r;
    r.cpu_model = model;
    r.frequency_hz = 2.0e9;
    r.tboot_s = tboot;
    r.wall_s = wall;
    return r;
}

TEST(RepeatAttackPlanner, MatchesSameBucketSameModel)
{
    RepeatAttackPlanner planner(1.0, 0);
    planner.recordVictimHost(
        reading("Intel Xeon CPU @ 2.00GHz", 1000.2, 0.0));
    EXPECT_TRUE(planner.matches(
        reading("Intel Xeon CPU @ 2.00GHz", 1000.4, 100.0)));
    EXPECT_FALSE(planner.matches(
        reading("Intel Xeon CPU @ 2.00GHz", 1003.0, 100.0)));
    EXPECT_FALSE(planner.matches(
        reading("Intel Xeon CPU @ 2.20GHz", 1000.2, 100.0)));
    EXPECT_EQ(planner.size(), 1u);
}

TEST(RepeatAttackPlanner, ToleranceAcceptsNearbyBuckets)
{
    RepeatAttackPlanner tight(1.0, 0);
    RepeatAttackPlanner loose(1.0, 2);
    const auto rec = reading("Intel Xeon CPU @ 2.00GHz", 1000.0, 0.0);
    tight.recordVictimHost(rec);
    loose.recordVictimHost(rec);
    const auto probe = reading("Intel Xeon CPU @ 2.00GHz", 1002.0, 50.0);
    EXPECT_FALSE(tight.matches(probe));
    EXPECT_TRUE(loose.matches(probe));
}

TEST(RepeatAttackPlanner, DriftExtrapolationTracksFastHosts)
{
    // A host drifting +0.5 s/day; two days later it is 1 s away from
    // the recorded bucket, but extrapolation follows it.
    RepeatAttackPlanner planner(1.0, 0);
    const double drift = 0.5 / 86400.0;
    planner.recordVictimHost(
        reading("Intel Xeon CPU @ 2.00GHz", 1000.0, 0.0), drift);
    const double two_days = 2.0 * 86400.0;
    EXPECT_TRUE(planner.matches(reading("Intel Xeon CPU @ 2.00GHz",
                                        1000.0 + drift * two_days,
                                        two_days)));
    // Without following the drift the stale bucket no longer matches.
    RepeatAttackPlanner no_drift(1.0, 0);
    no_drift.recordVictimHost(
        reading("Intel Xeon CPU @ 2.00GHz", 1000.0, 0.0), 0.0);
    EXPECT_FALSE(no_drift.matches(
        reading("Intel Xeon CPU @ 2.00GHz",
                1000.0 + drift * two_days, two_days)));
}

TEST(RepeatAttackPlanner, FocusIndicesSelectsMatches)
{
    RepeatAttackPlanner planner(1.0, 1);
    planner.recordVictimHost(
        reading("Intel Xeon CPU @ 2.00GHz", 500.0, 0.0));
    planner.recordVictimHost(
        reading("Intel Xeon CPU @ 2.20GHz", 900.0, 0.0));

    const std::vector<Gen1Reading> probes = {
        reading("Intel Xeon CPU @ 2.00GHz", 500.3, 10.0), // match
        reading("Intel Xeon CPU @ 2.00GHz", 760.0, 10.0), // miss
        reading("Intel Xeon CPU @ 2.20GHz", 900.9, 10.0), // match
        reading("Intel Xeon CPU @ 2.60GHz", 500.0, 10.0), // miss
    };
    EXPECT_EQ(planner.focusIndices(probes),
              (std::vector<std::size_t>{0, 2}));
}

TEST(RepeatAttackPlanner, EndToEndFocusKeepsVictimHosts)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.seed = 77;
    faas::Platform p(cfg);
    const auto attacker = p.createAccount(0);
    const auto victim = p.createAccount(1);

    CampaignConfig campaign;
    campaign.services = 3;
    const auto attack1 = runOptimizedCampaign(p, attacker, campaign);
    const auto vsvc = p.deployService(victim, faas::ExecEnv::Gen1);
    const auto vids = p.connect(vsvc, 60);
    std::set<hw::HostId> victim_hosts;
    for (const auto id : vids)
        victim_hosts.insert(p.oracleHostOf(id));

    RepeatAttackPlanner planner(1.0, 2);
    std::set<hw::HostId> recorded;
    for (const auto inst : attack1.final_instances) {
        const hw::HostId host = p.oracleHostOf(inst);
        if (victim_hosts.count(host) && recorded.insert(host).second) {
            faas::SandboxView sbx = p.sandbox(inst);
            planner.recordVictimHost(readGen1Median(sbx, 15));
        }
    }
    ASSERT_GT(planner.size(), 0u);

    // Hours later, match fresh attacker readings host by host.
    p.advance(sim::Duration::hours(6));
    std::size_t matched_victim_hosts = 0, matched_other = 0;
    std::set<hw::HostId> seen;
    for (const auto inst : attack1.final_instances) {
        if (p.instanceInfo(inst).state != faas::InstanceState::Active)
            continue;
        const hw::HostId host = p.oracleHostOf(inst);
        if (!seen.insert(host).second)
            continue;
        faas::SandboxView sbx = p.sandbox(inst);
        const bool match = planner.matches(readGen1Median(sbx, 15));
        if (recorded.count(host))
            matched_victim_hosts += match;
        else
            matched_other += match;
    }
    // Every recorded host is re-identified; false matches are rare.
    EXPECT_EQ(matched_victim_hosts, recorded.size());
    EXPECT_LE(matched_other, 2u);
}

TEST(Quota, FreshAccountsAreClamped)
{
    eaao::setLogLevel(eaao::LogLevel::Silent);
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.profile.host_count = 330;
    cfg.seed = 78;
    faas::Platform p(cfg);
    const auto fresh = p.createAccount(std::nullopt, 10);
    const auto svc = p.deployService(fresh, faas::ExecEnv::Gen1);
    const auto ids = p.connect(svc, 800);
    EXPECT_EQ(ids.size(), 10u);

    // Promotion lifts the cap.
    p.setAccountQuota(fresh, 1000);
    const auto more = p.connect(svc, 800);
    EXPECT_EQ(more.size(), 800u);
    eaao::setLogLevel(eaao::LogLevel::Warn);
}

TEST(Quota, EstablishedAccountsUnaffected)
{
    faas::PlatformConfig cfg;
    cfg.profile = faas::DataCenterProfile::usEast1();
    cfg.profile.host_count = 330;
    cfg.seed = 79;
    faas::Platform p(cfg);
    const auto acct = p.createAccount();
    const auto svc = p.deployService(acct, faas::ExecEnv::Gen1);
    EXPECT_EQ(p.connect(svc, 800).size(), 800u);
}

} // namespace
} // namespace eaao::core
