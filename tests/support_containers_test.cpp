/**
 * @file
 * Property tests for the support containers backing the orchestrator's
 * hot paths: SmallFlatMap against std::map, and MinLoadTree against a
 * brute-force prefix scan, under long random operation sequences.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "sim/rng.hpp"
#include "support/flat_map.hpp"
#include "support/min_load_tree.hpp"

namespace eaao::support {
namespace {

TEST(SmallFlatMapProperty, MatchesStdMapOverRandomOps)
{
    sim::Rng rng(2024);
    SmallFlatMap<std::uint32_t, std::uint64_t> flat;
    std::map<std::uint32_t, std::uint64_t> model;

    // A small key universe forces plenty of hits, overwrites and
    // erase-then-reinsert slot churn.
    constexpr std::uint32_t kKeys = 64;
    for (int op = 0; op < 10'000; ++op) {
        const auto key = static_cast<std::uint32_t>(rng.uniformInt(kKeys));
        switch (rng.uniformInt(4)) {
        case 0: { // default-insert / overwrite via operator[]
            const std::uint64_t value = rng();
            flat[key] = value;
            model[key] = value;
            break;
        }
        case 1: { // read-modify-write via operator[]
            flat[key] += 1;
            model[key] += 1;
            break;
        }
        case 2: { // find
            const auto fit = flat.find(key);
            const auto mit = model.find(key);
            ASSERT_EQ(fit == flat.end(), mit == model.end())
                << "op " << op << " key " << key;
            if (mit != model.end()) {
                ASSERT_EQ(fit->second, mit->second);
            }
            break;
        }
        default: { // erase
            ASSERT_EQ(flat.erase(key), model.erase(key) == 1)
                << "op " << op << " key " << key;
            break;
        }
        }
        ASSERT_EQ(flat.size(), model.size());
    }

    // Final sweep: identical contents in identical (sorted) order.
    auto mit = model.begin();
    for (const auto &[key, value] : flat) {
        ASSERT_NE(mit, model.end());
        EXPECT_EQ(key, mit->first);
        EXPECT_EQ(value, mit->second);
        ++mit;
    }
    EXPECT_EQ(mit, model.end());
}

TEST(SmallFlatMapProperty, IterationStaysSorted)
{
    sim::Rng rng(7);
    SmallFlatMap<std::uint64_t, int> flat;
    for (int i = 0; i < 500; ++i)
        flat[rng()] = i;
    std::uint64_t prev = 0;
    bool first = true;
    for (const auto &[key, value] : flat) {
        (void)value;
        if (!first) {
            EXPECT_LT(prev, key);
        }
        prev = key;
        first = false;
    }
}

/** Brute-force reference for MinLoadTree::minInPrefix. */
template <typename Accept>
std::optional<std::size_t>
referenceMinInPrefix(const std::vector<std::uint32_t> &loads,
                     std::size_t prefix, Accept &&accept)
{
    prefix = std::min(prefix, loads.size());
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < prefix; ++i) {
        if (!accept(i))
            continue;
        if (!best || loads[i] < loads[*best])
            best = i; // first position with strictly minimal load wins
    }
    return best;
}

TEST(MinLoadTreeProperty, MatchesBruteForceOverRandomOps)
{
    sim::Rng rng(5150);
    constexpr std::size_t kPositions = 97; // non-power-of-two on purpose
    std::vector<std::uint32_t> loads(kPositions);
    for (std::uint32_t &l : loads)
        l = static_cast<std::uint32_t>(rng.uniformInt(12));

    MinLoadTree tree;
    tree.assign(loads);
    ASSERT_EQ(tree.size(), kPositions);

    // Capacity predicate of the placement path: some positions are
    // "full" and must be skipped even when they carry the minimum.
    std::vector<bool> full(kPositions, false);

    for (int op = 0; op < 10'000; ++op) {
        switch (rng.uniformInt(3)) {
        case 0: { // load update
            const auto pos =
                static_cast<std::size_t>(rng.uniformInt(kPositions));
            const auto load =
                static_cast<std::uint32_t>(rng.uniformInt(12));
            loads[pos] = load;
            tree.update(pos, load);
            break;
        }
        case 1: { // flip a position's capacity
            const auto pos =
                static_cast<std::size_t>(rng.uniformInt(kPositions));
            full[pos] = !full[pos];
            break;
        }
        default: { // query a random prefix (incl. 0 and > size)
            const auto prefix =
                static_cast<std::size_t>(rng.uniformInt(kPositions + 10));
            const auto accept = [&](std::size_t i) { return !full[i]; };
            ASSERT_EQ(tree.minInPrefix(prefix, accept),
                      referenceMinInPrefix(loads, prefix, accept))
                << "op " << op << " prefix " << prefix;
            break;
        }
        }
    }
}

TEST(MinLoadTreeProperty, EmptyAndDegenerateCases)
{
    MinLoadTree tree;
    const auto any = [](std::size_t) { return true; };
    EXPECT_EQ(tree.minInPrefix(5, any), std::nullopt);

    tree.assign({3});
    EXPECT_EQ(tree.minInPrefix(0, any), std::nullopt);
    EXPECT_EQ(tree.minInPrefix(1, any), std::optional<std::size_t>{0});
    EXPECT_EQ(tree.minInPrefix(99, any), std::optional<std::size_t>{0});
    const auto none = [](std::size_t) { return false; };
    EXPECT_EQ(tree.minInPrefix(1, none), std::nullopt);

    // Ties break toward the first position, matching the legacy scan.
    tree.assign({5, 5, 5});
    EXPECT_EQ(tree.minInPrefix(3, any), std::optional<std::size_t>{0});
    const auto skip0 = [](std::size_t i) { return i != 0; };
    EXPECT_EQ(tree.minInPrefix(3, skip0), std::optional<std::size_t>{1});
}

} // namespace
} // namespace eaao::support
