/**
 * @file
 * Bit-exactness of checkpoint/restore round-trips: RNG stream
 * positions (including the Box-Muller cache), the event queue under a
 * randomized 10k-op workload, and full sharded-platform snapshots —
 * a restored run's totals (spend doubles included) must equal the
 * straight-through run's bit for bit, from a fresh platform, from a
 * reused one (the fork-many fast path), and from a pre-parsed
 * SnapshotReader.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "faas/sharded.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "snap/format.hpp"
#include "snap/snapshotter.hpp"

namespace eaao::snap {
namespace {

// ------------------------------------------------------------------ rng

TEST(SnapRoundTrip, RngStateRoundTripsBitExact)
{
    sim::Rng rng(0x5eedULL);
    for (int i = 0; i < 17; ++i)
        rng();
    // An odd number of normal() draws leaves the Box-Muller cache
    // armed; the captured state must replay it.
    for (int i = 0; i < 3; ++i)
        rng.normal();

    const sim::RngState state = rng.saveState();
    sim::Rng resumed(1ULL); // different seed: restoreState must win
    resumed.restoreState(state);

    for (int i = 0; i < 64; ++i) {
        const double a = rng.normal(), b = resumed.normal();
        EXPECT_EQ(0, std::memcmp(&a, &b, sizeof a)) << "draw " << i;
        EXPECT_EQ(rng(), resumed());
    }
}

TEST(SnapRoundTrip, RngForkPositionsSurviveRoundTrip)
{
    sim::Rng rng(99ULL);
    rng.normal(); // arm the cache before forking
    const sim::RngState state = rng.saveState();
    sim::Rng resumed(12345ULL);
    resumed.restoreState(state);
    // fork() must derive identical child streams from the restored
    // position, and identical draws must follow the fork.
    for (const std::uint64_t stream : {0ULL, 7ULL, 0x123456789ULL}) {
        sim::Rng a = rng.fork(stream), b = resumed.fork(stream);
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(a(), b());
    }
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(rng(), resumed());
}

// ---------------------------------------------------------------- queue

/** An event queue plus the log its tagged callbacks append to. */
struct QueueHarness
{
    sim::EventQueue eq;
    std::vector<std::uint64_t> log;

    sim::EventQueue::Callback
    callbackFor(std::uint64_t arg)
    {
        return [this, arg] { log.push_back(arg ^ (arg << 7)); };
    }
};

/**
 * Drive @p h with @p n deterministic pseudo-random operations
 * (schedule / cancel / advance), mirroring every EventId into
 * @p ids so later cancels target identical handles in two harnesses.
 */
void
driveOps(QueueHarness &h, sim::Rng &rng, std::size_t n,
         std::vector<sim::EventId> &ids)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t pick = rng() % 100;
        if (pick < 60) {
            const std::uint64_t arg = rng();
            const sim::Duration delay =
                sim::Duration::nanos(1 + static_cast<std::int64_t>(
                                             rng() % 10'000));
            ids.push_back(h.eq.scheduleAfter(
                delay, sim::EventTag{1, arg}, h.callbackFor(arg)));
        } else if (pick < 75 && !ids.empty()) {
            h.eq.cancel(ids[rng() % ids.size()]);
        } else {
            h.eq.advance(sim::Duration::nanos(
                static_cast<std::int64_t>(rng() % 5'000)));
        }
    }
}

TEST(SnapRoundTrip, EventQueueSurvives10kOpPropertyTest)
{
    // Phase A: 10k random ops, then capture the queue mid-flight.
    QueueHarness ref;
    sim::Rng rng(2024ULL);
    std::vector<sim::EventId> ids;
    driveOps(ref, rng, 10'000, ids);

    sim::EventQueueImage img;
    ASSERT_TRUE(ref.eq.exportImage(img));

    QueueHarness restored;
    restored.eq.importImage(img, [&](std::uint32_t kind,
                                     std::uint64_t arg) {
        EXPECT_EQ(kind, 1u);
        return restored.callbackFor(arg);
    });
    ASSERT_EQ(restored.eq.now().ns(), ref.eq.now().ns());
    ASSERT_EQ(restored.eq.pending(), ref.eq.pending());

    // Phase B: 10k more identical ops on both queues — the restored
    // queue must schedule identical EventIds (verbatim slab/free-list
    // restore), honor pre-capture handles for cancels, and fire the
    // same events in the same order.
    const sim::RngState fork_point = rng.saveState();
    std::vector<sim::EventId> ref_ids = ids;
    driveOps(ref, rng, 10'000, ref_ids);

    sim::Rng rng2(54321ULL);
    rng2.restoreState(fork_point);
    std::vector<sim::EventId> restored_ids = ids;
    driveOps(restored, rng2, 10'000, restored_ids);

    ref.eq.run();
    restored.eq.run();

    // The reference harness logged phase-A firings the restored one
    // never saw; everything from the capture point on must match.
    ASSERT_GE(ref.log.size(), restored.log.size());
    const std::size_t pre = ref.log.size() - restored.log.size();
    EXPECT_TRUE(std::equal(restored.log.begin(), restored.log.end(),
                           ref.log.begin() + static_cast<std::ptrdiff_t>(
                                                 pre)));
    EXPECT_EQ(restored.eq.now().ns(), ref.eq.now().ns());
    EXPECT_EQ(restored.eq.scheduled(), ref.eq.scheduled());
    EXPECT_EQ(restored.eq.processed(), ref.eq.processed());
    EXPECT_EQ(restored.eq.cancelled(), ref.eq.cancelled());
    EXPECT_EQ(restored.eq.pending(), ref.eq.pending());
}

// ------------------------------------------------------------- platform

faas::ShardedConfig
campaignConfig(std::uint32_t shards, unsigned threads)
{
    faas::ShardedConfig cfg;
    cfg.profile.host_count = 550; // 5 lanes
    cfg.seed = 4242;
    cfg.shards = shards;
    cfg.threads = threads;
    return cfg;
}

/** A small prime-then-storm campaign across every lane. */
std::vector<faas::ShardOp>
campaignOps(faas::ShardedPlatform &platform, sim::SimTime &horizon)
{
    using Kind = faas::ShardOp::Kind;
    std::vector<faas::ShardOp> ops;
    for (std::uint32_t lane = 0; lane < platform.laneCount(); ++lane) {
        const faas::AccountId acct = platform.createAccount(lane, 1000);
        const faas::ServiceId svc =
            platform.deployService(acct, faas::ExecEnv::Gen1);
        sim::SimTime t;
        std::uint32_t step = 0;
        const auto push = [&](Kind kind) -> faas::ShardOp & {
            faas::ShardOp op;
            op.kind = kind;
            op.at = t;
            op.step = step++;
            op.service = svc;
            op.account = acct;
            ops.push_back(op);
            return ops.back();
        };
        push(Kind::Connect).a = 20;
        t = t + sim::Duration::minutes(1);
        push(Kind::Disconnect);
        t = t + sim::Duration::minutes(4);
        faas::ShardOp &storm = push(Kind::RouteStorm);
        storm.n = 400;
        storm.dur = sim::Duration::fromSecondsF(0.05);
        storm.dur_step = sim::Duration::fromSecondsF(0.01);
        storm.dur_mod = 7;
        storm.gap_every = 8;
        storm.gap = sim::Duration::fromSecondsF(0.02);
        storm.spend_every = 64;
        horizon = t + sim::Duration::minutes(5);
    }
    return ops;
}

struct CapturedRun
{
    std::vector<std::uint8_t> image;
    faas::ShardedTotals totals;
};

/** Run to the pre-fold barrier of @p capture_at, snapshot, finish. */
CapturedRun
primeCaptureFinish(std::uint32_t shards, unsigned threads)
{
    faas::ShardedPlatform platform(campaignConfig(shards, threads));
    sim::SimTime horizon;
    std::vector<faas::ShardOp> ops = campaignOps(platform, horizon);
    platform.beginRun(std::move(ops), horizon);
    CapturedRun out;
    // Capture at the last priming window: 5 min / 30 s = 10 windows,
    // barrier index 9, pre-fold (advanceWindow done, fold pending).
    for (std::uint32_t w = 0; w < 9; ++w) {
        platform.advanceWindow();
        platform.completeWindow();
    }
    platform.advanceWindow();
    out.image = Snapshotter::capture(platform);
    platform.completeWindow();
    platform.resumeRun();
    out.totals = platform.totals();
    return out;
}

void
expectTotalsBitExact(const faas::ShardedTotals &a,
                     const faas::ShardedTotals &b)
{
    EXPECT_EQ(a.routed, b.routed);
    EXPECT_EQ(a.instances, b.instances);
    EXPECT_EQ(a.windows, b.windows);
    EXPECT_EQ(a.events_scheduled, b.events_scheduled);
    EXPECT_EQ(a.events_processed, b.events_processed);
    // Spend doubles compare as bit patterns, not approximately: the
    // snapshot stores IEEE-754 bits verbatim and the resumed run must
    // accumulate from exactly the captured partial sums.
    EXPECT_EQ(0, std::memcmp(&a.spend_checksum, &b.spend_checksum, 8));
    EXPECT_EQ(0, std::memcmp(&a.final_spend_usd, &b.final_spend_usd, 8));
}

TEST(SnapRoundTrip, RestoredRunMatchesStraightRunBitExact)
{
    const CapturedRun ref = primeCaptureFinish(2, 1);

    faas::ShardedPlatform platform(campaignConfig(2, 1));
    std::string error;
    ASSERT_TRUE(Snapshotter::restore(ref.image, platform, error)) << error;
    platform.resumeRun();
    expectTotalsBitExact(platform.totals(), ref.totals);
}

TEST(SnapRoundTrip, RestoreIsGroupingInvariant)
{
    // A snapshot captured at one (shards, threads) grouping restores
    // at another: lane layout depends only on the fleet size.
    const CapturedRun ref = primeCaptureFinish(2, 1);

    faas::ShardedPlatform platform(campaignConfig(5, 4));
    std::string error;
    ASSERT_TRUE(Snapshotter::restore(ref.image, platform, error)) << error;
    platform.resumeRun();
    expectTotalsBitExact(platform.totals(), ref.totals);
}

TEST(SnapRoundTrip, ForkManyReusesOnePlatformAndOneParse)
{
    const CapturedRun ref = primeCaptureFinish(3, 2);

    // The forked-storm fast path: parse (and checksum) once, then
    // restore repeatedly into one reused platform — including into a
    // platform that has already run to completion.
    SnapshotReader reader;
    std::string error;
    ASSERT_TRUE(reader.parse(ref.image, error, 2)) << error;

    faas::ShardedPlatform platform(campaignConfig(3, 2));
    for (int fork = 0; fork < 3; ++fork) {
        ASSERT_TRUE(Snapshotter::restore(reader, platform, error))
            << "fork " << fork << ": " << error;
        platform.resumeRun();
        expectTotalsBitExact(platform.totals(), ref.totals);
    }
}

TEST(SnapRoundTrip, CapturedImageIsThreadCountInvariant)
{
    // Parallel per-lane capture must assemble the identical image a
    // serial capture produces.
    const CapturedRun serial = primeCaptureFinish(5, 1);
    const CapturedRun fanned = primeCaptureFinish(5, 4);
    EXPECT_EQ(serial.image, fanned.image);
}

TEST(SnapRoundTrip, RestoreRejectsConfigMismatch)
{
    const CapturedRun ref = primeCaptureFinish(2, 1);

    faas::ShardedConfig other = campaignConfig(2, 1);
    other.seed = 4243; // fingerprinted: must refuse
    faas::ShardedPlatform platform(other);
    std::string error;
    EXPECT_FALSE(Snapshotter::restore(ref.image, platform, error));
    EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
}

} // namespace
} // namespace eaao::snap
