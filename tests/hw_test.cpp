/**
 * @file
 * Unit tests for the hardware layer: SKUs, TSC domains, host noise.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hw/cpu_sku.hpp"
#include "hw/host.hpp"
#include "hw/tsc.hpp"

namespace eaao::hw {
namespace {

TEST(SkuCatalog, ParsesLabeledFrequency)
{
    EXPECT_DOUBLE_EQ(
        SkuCatalog::labeledFrequencyHz("Intel Xeon CPU @ 2.00GHz"),
        2.00e9);
    EXPECT_DOUBLE_EQ(
        SkuCatalog::labeledFrequencyHz("Intel Xeon CPU @ 2.25GHz"),
        2.25e9);
    EXPECT_DOUBLE_EQ(SkuCatalog::labeledFrequencyHz("Virtual CPU"), 0.0);
    EXPECT_DOUBLE_EQ(SkuCatalog::labeledFrequencyHz(""), 0.0);
}

TEST(SkuCatalog, CatalogEntriesAreSelfConsistent)
{
    SkuCatalog catalog;
    ASSERT_GT(catalog.size(), 0u);
    for (SkuId id = 0; id < catalog.size(); ++id) {
        const CpuSku &sku = catalog.get(id);
        EXPECT_GT(sku.nominal_hz, 0.0);
        EXPECT_GT(sku.vcpus, 0u);
        // The label the attacker parses must equal the nominal rate.
        EXPECT_DOUBLE_EQ(SkuCatalog::labeledFrequencyHz(sku.model_name),
                         sku.nominal_hz);
    }
}

class TscDomainTest : public ::testing::Test
{
  protected:
    sim::Rng rng_{99};
    TscConfig cfg_;
};

TEST_F(TscDomainTest, CounterStartsAtBootAndTicksAtTrueRate)
{
    const sim::SimTime boot = sim::SimTime() - sim::Duration::days(10);
    TscDomain tsc(boot, 2.0e9, 1500.0, cfg_, rng_);
    EXPECT_EQ(tsc.idealRead(boot), 0u);
    const sim::SimTime later = boot + sim::Duration::seconds(100);
    const double expected = 100.0 * (2.0e9 + 1500.0);
    EXPECT_NEAR(static_cast<double>(tsc.idealRead(later)), expected, 1.0);
}

TEST_F(TscDomainTest, ReadJitterIsSmall)
{
    const sim::SimTime boot = sim::SimTime() - sim::Duration::days(1);
    TscDomain tsc(boot, 2.0e9, 0.0, cfg_, rng_);
    const sim::SimTime t = sim::SimTime();
    const auto ideal = static_cast<double>(tsc.idealRead(t));
    for (int i = 0; i < 100; ++i) {
        const auto v = static_cast<double>(tsc.read(t, rng_));
        EXPECT_NEAR(v, ideal, 2000.0); // within ~1 us at 2 GHz
    }
}

TEST_F(TscDomainTest, RefinedFrequencySnapsToGranularity)
{
    for (int i = 0; i < 50; ++i) {
        TscDomain tsc(sim::SimTime(), 2.2e9, 700.0, cfg_, rng_);
        const double refined = tsc.refinedHz();
        EXPECT_DOUBLE_EQ(std::fmod(refined, 1000.0), 0.0);
        // Calibration noise is kHz-scale; refined stays near true.
        EXPECT_NEAR(refined, 2.2e9, 50e3);
    }
}

TEST_F(TscDomainTest, RefinedFrequencyVariesAcrossBoots)
{
    // Per-boot calibration noise dominates: two boots of the same
    // crystal usually refine to different values.
    int distinct = 0;
    TscDomain first(sim::SimTime(), 2.0e9, 300.0, cfg_, rng_);
    for (int i = 0; i < 20; ++i) {
        TscDomain other(sim::SimTime(), 2.0e9, 300.0, cfg_, rng_);
        distinct += (other.refinedHz() != first.refinedHz());
    }
    EXPECT_GT(distinct, 10);
}

class HostMachineTest : public ::testing::Test
{
  protected:
    HostMachine
    makeHost(std::uint64_t seed, double noisy_fraction = 0.0)
    {
        sim::Rng rng(seed);
        TimingNoiseConfig timing;
        timing.noisy_timer_fraction = noisy_fraction;
        SkuCatalog catalog;
        return HostMachine(0, 0, catalog.get(0),
                           sim::SimTime() - sim::Duration::days(5),
                           1000.0, TscConfig{}, timing, rng);
    }
};

TEST_F(HostMachineTest, ExposesSkuMetadata)
{
    HostMachine host = makeHost(1);
    EXPECT_EQ(host.modelName(), "Intel Xeon CPU @ 2.00GHz");
    EXPECT_GT(host.vcpus(), 0u);
    EXPECT_FALSE(host.noisyTimer());
    EXPECT_DOUBLE_EQ(host.freqMeasSigmaHz(), 30.0);
}

TEST_F(HostMachineTest, NoisyTimerHostsGetLargeSigma)
{
    HostMachine host = makeHost(2, 1.0);
    EXPECT_TRUE(host.noisyTimer());
    EXPECT_GE(host.freqMeasSigmaHz(), 10e3);
}

TEST_F(HostMachineTest, WallClockDelayIsNonNegativeAndMostlySmall)
{
    HostMachine host = makeHost(3);
    sim::Rng rng(7);
    const sim::SimTime now;
    int clean = 0;
    for (int i = 0; i < 2000; ++i) {
        const sim::SimTime sample = host.sampleWallClock(now, rng);
        const double delay = (sample - now).secondsF();
        ASSERT_GT(delay, 0.0);
        ASSERT_LT(delay, 1.0);
        clean += (delay < 100e-6);
    }
    // ~80% of samples follow the clean microsecond-scale path.
    EXPECT_GT(clean, 1400);
    EXPECT_LT(clean, 1900);
}

TEST_F(HostMachineTest, RebootResetsCounterKeepsCrystal)
{
    HostMachine host = makeHost(4);
    const double true_before = host.tsc().trueHz();
    sim::Rng rng(11);
    const sim::SimTime when = sim::SimTime() + sim::Duration::hours(1);
    host.reboot(when, TscConfig{}, rng);
    EXPECT_EQ(host.tsc().bootTime(), when);
    EXPECT_EQ(host.tsc().idealRead(when), 0u);
    // Label error is a crystal property: unchanged across reboots.
    EXPECT_DOUBLE_EQ(host.tsc().trueHz(), true_before);
}

TEST_F(HostMachineTest, RngPressureBookkeeping)
{
    HostMachine host = makeHost(5);
    EXPECT_EQ(host.rngPressure(), 0u);
    host.addRngPressure();
    host.addRngPressure();
    EXPECT_EQ(host.rngPressure(), 2u);
    host.removeRngPressure();
    EXPECT_EQ(host.rngPressure(), 1u);
}

} // namespace
} // namespace eaao::hw
