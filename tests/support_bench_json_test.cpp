/**
 * @file
 * Regression test for --bench-json appending: concurrent writers to
 * the same file must never tear or interleave a record. appendJsonLine
 * uses O_APPEND plus a single write() per record, which POSIX makes
 * atomic; the old ofstream path could split lines under contention.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "support/bench_timer.hpp"

namespace eaao {
namespace {

class BenchJsonFile : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "bench_json_test_" +
                std::to_string(::getpid()) + ".jsonl";
        std::remove(path_.c_str());
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    std::vector<std::string>
    readLines() const
    {
        std::ifstream in(path_);
        std::vector<std::string> lines;
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
        return lines;
    }

    std::string path_;
};

TEST_F(BenchJsonFile, AppendsRecordsAsJsonLines)
{
    support::BenchTimingRecord record;
    record.bench = "unit";
    record.threads = 2;
    record.seed = 7;
    support::appendBenchJson(path_, record);
    support::appendBenchJson(path_, record);

    const auto lines = readLines();
    ASSERT_EQ(lines.size(), 2u);
    for (const std::string &l : lines) {
        EXPECT_EQ(l.front(), '{');
        EXPECT_EQ(l.back(), '}');
        EXPECT_NE(l.find("\"bench\": \"unit\""), std::string::npos);
        EXPECT_NE(l.find("\"threads\": 2"), std::string::npos);
        EXPECT_NE(l.find("\"seed\": 7"), std::string::npos);
    }
}

TEST_F(BenchJsonFile, ConcurrentAppendersNeverTearLines)
{
    // Distinctive payloads long enough that a torn write would be
    // visible, from enough threads to actually contend.
    constexpr unsigned kThreads = 8;
    constexpr unsigned kLinesPerThread = 200;
    const std::string pad(120, 'x');

    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([this, t, &pad] {
            for (unsigned i = 0; i < kLinesPerThread; ++i) {
                support::appendJsonLine(
                    path_, "{\"thread\": " + std::to_string(t) +
                               ", \"line\": " + std::to_string(i) +
                               ", \"pad\": \"" + pad + "\"}");
            }
        });
    }
    for (std::thread &w : workers)
        w.join();

    const auto lines = readLines();
    ASSERT_EQ(lines.size(), kThreads * kLinesPerThread);

    std::set<std::pair<unsigned, unsigned>> seen;
    for (const std::string &l : lines) {
        unsigned thread = 0;
        unsigned line = 0;
        // A torn or interleaved record fails this exact-shape parse.
        ASSERT_EQ(std::sscanf(l.c_str(),
                              "{\"thread\": %u, \"line\": %u, ", &thread,
                              &line),
                  2)
            << "malformed line: " << l;
        EXPECT_NE(l.find("\"pad\": \"" + pad + "\"}"), std::string::npos)
            << "truncated line: " << l;
        EXPECT_TRUE(seen.emplace(thread, line).second)
            << "duplicate record " << thread << "/" << line;
    }
    EXPECT_EQ(seen.size(), kThreads * kLinesPerThread);
}

} // namespace
} // namespace eaao
