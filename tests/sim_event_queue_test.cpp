/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace eaao::sim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(SimTime::fromNanos(300), [&] { order.push_back(3); });
    eq.scheduleAt(SimTime::fromNanos(100), [&] { order.push_back(1); });
    eq.scheduleAt(SimTime::fromNanos(200), [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), SimTime::fromNanos(300));
}

TEST(EventQueue, SameTimeIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        eq.scheduleAt(SimTime::fromNanos(100),
                      [&order, i] { order.push_back(i); });
    }
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    SimTime fired;
    eq.scheduleAfter(Duration::seconds(5),
                     [&] { fired = eq.now(); });
    eq.run();
    EXPECT_EQ(fired, SimTime() + Duration::seconds(5));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    const EventId id =
        eq.scheduleAfter(Duration::seconds(1), [&] { ran = true; });
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id)); // second cancel is a no-op
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, RunUntilStopsAtHorizon)
{
    EventQueue eq;
    int count = 0;
    eq.scheduleAfter(Duration::seconds(1), [&] { ++count; });
    eq.scheduleAfter(Duration::seconds(10), [&] { ++count; });
    eq.runUntil(SimTime() + Duration::seconds(5));
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), SimTime() + Duration::seconds(5));
    eq.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, AdvanceMovesClockWithoutEvents)
{
    EventQueue eq;
    eq.advance(Duration::minutes(30));
    EXPECT_EQ(eq.now(), SimTime() + Duration::minutes(30));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    std::vector<std::int64_t> times;
    std::function<void()> tick = [&] {
        times.push_back(eq.now().ns());
        if (times.size() < 3)
            eq.scheduleAfter(Duration::seconds(10), tick);
    };
    eq.scheduleAfter(Duration::seconds(10), tick);
    eq.run();
    const std::int64_t s = Duration::seconds(10).ns();
    EXPECT_EQ(times, (std::vector<std::int64_t>{s, 2 * s, 3 * s}));
}

TEST(EventQueue, PendingCountsUncancelled)
{
    EventQueue eq;
    const EventId a = eq.scheduleAfter(Duration::seconds(1), [] {});
    eq.scheduleAfter(Duration::seconds(2), [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, PropertyFifoTieBreakAmongRandomSchedules)
{
    // Property: execution order equals a stable sort of the insertion
    // sequence by timestamp — FIFO among same-time events — for
    // arbitrary interleavings of a small set of times.
    Rng rng(321);
    for (int round = 0; round < 20; ++round) {
        EventQueue eq;
        std::vector<std::pair<std::int64_t, int>> inserted;
        std::vector<int> executed;
        const int n = 50;
        for (int i = 0; i < n; ++i) {
            // Few distinct times => many ties.
            const std::int64_t t =
                static_cast<std::int64_t>(rng.uniformInt(
                    std::uint64_t{5})) * 100;
            inserted.emplace_back(t, i);
            eq.scheduleAt(SimTime::fromNanos(t),
                          [&executed, i] { executed.push_back(i); });
        }
        eq.run();

        auto expected = inserted;
        std::stable_sort(expected.begin(), expected.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        ASSERT_EQ(executed.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i)
            EXPECT_EQ(executed[i], expected[i].second)
                << "round " << round << " position " << i;
    }
}

TEST(EventQueue, CancelOfAlreadyFiredIdReturnsFalse)
{
    EventQueue eq;
    bool ran = false;
    const EventId id =
        eq.scheduleAfter(Duration::seconds(1), [&] { ran = true; });
    eq.run();
    EXPECT_TRUE(ran);
    EXPECT_FALSE(eq.cancel(id));
    // A cancelled-then-fired-time id also stays false on re-cancel.
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, RunUntilSetsClockToHorizonWithNoEvents)
{
    EventQueue eq;
    const SimTime horizon = SimTime() + Duration::minutes(42);
    eq.runUntil(horizon);
    EXPECT_EQ(eq.now(), horizon);
    EXPECT_EQ(eq.pending(), 0u);

    // Same when the only events lie beyond the horizon: clock lands
    // exactly on the horizon and the events stay pending.
    EventQueue eq2;
    bool ran = false;
    eq2.scheduleAfter(Duration::hours(2), [&] { ran = true; });
    eq2.runUntil(SimTime() + Duration::hours(1));
    EXPECT_EQ(eq2.now(), SimTime() + Duration::hours(1));
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq2.pending(), 1u);
}

TEST(EventQueue, CancelInsideEventWorks)
{
    EventQueue eq;
    bool second_ran = false;
    EventId second =
        eq.scheduleAfter(Duration::seconds(2), [&] { second_ran = true; });
    eq.scheduleAfter(Duration::seconds(1), [&] { eq.cancel(second); });
    eq.run();
    EXPECT_FALSE(second_ran);
}

} // namespace
} // namespace eaao::sim
