/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace eaao::sim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(SimTime::fromNanos(300), [&] { order.push_back(3); });
    eq.scheduleAt(SimTime::fromNanos(100), [&] { order.push_back(1); });
    eq.scheduleAt(SimTime::fromNanos(200), [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), SimTime::fromNanos(300));
}

TEST(EventQueue, SameTimeIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        eq.scheduleAt(SimTime::fromNanos(100),
                      [&order, i] { order.push_back(i); });
    }
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    SimTime fired;
    eq.scheduleAfter(Duration::seconds(5),
                     [&] { fired = eq.now(); });
    eq.run();
    EXPECT_EQ(fired, SimTime() + Duration::seconds(5));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    const EventId id =
        eq.scheduleAfter(Duration::seconds(1), [&] { ran = true; });
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id)); // second cancel is a no-op
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, RunUntilStopsAtHorizon)
{
    EventQueue eq;
    int count = 0;
    eq.scheduleAfter(Duration::seconds(1), [&] { ++count; });
    eq.scheduleAfter(Duration::seconds(10), [&] { ++count; });
    eq.runUntil(SimTime() + Duration::seconds(5));
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), SimTime() + Duration::seconds(5));
    eq.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, AdvanceMovesClockWithoutEvents)
{
    EventQueue eq;
    eq.advance(Duration::minutes(30));
    EXPECT_EQ(eq.now(), SimTime() + Duration::minutes(30));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    std::vector<std::int64_t> times;
    std::function<void()> tick = [&] {
        times.push_back(eq.now().ns());
        if (times.size() < 3)
            eq.scheduleAfter(Duration::seconds(10), tick);
    };
    eq.scheduleAfter(Duration::seconds(10), tick);
    eq.run();
    const std::int64_t s = Duration::seconds(10).ns();
    EXPECT_EQ(times, (std::vector<std::int64_t>{s, 2 * s, 3 * s}));
}

TEST(EventQueue, PendingCountsUncancelled)
{
    EventQueue eq;
    const EventId a = eq.scheduleAfter(Duration::seconds(1), [] {});
    eq.scheduleAfter(Duration::seconds(2), [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, PropertyFifoTieBreakAmongRandomSchedules)
{
    // Property: execution order equals a stable sort of the insertion
    // sequence by timestamp — FIFO among same-time events — for
    // arbitrary interleavings of a small set of times.
    Rng rng(321);
    for (int round = 0; round < 20; ++round) {
        EventQueue eq;
        std::vector<std::pair<std::int64_t, int>> inserted;
        std::vector<int> executed;
        const int n = 50;
        for (int i = 0; i < n; ++i) {
            // Few distinct times => many ties.
            const std::int64_t t =
                static_cast<std::int64_t>(rng.uniformInt(
                    std::uint64_t{5})) * 100;
            inserted.emplace_back(t, i);
            eq.scheduleAt(SimTime::fromNanos(t),
                          [&executed, i] { executed.push_back(i); });
        }
        eq.run();

        auto expected = inserted;
        std::stable_sort(expected.begin(), expected.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        ASSERT_EQ(executed.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i)
            EXPECT_EQ(executed[i], expected[i].second)
                << "round " << round << " position " << i;
    }
}

TEST(EventQueue, CancelOfAlreadyFiredIdReturnsFalse)
{
    EventQueue eq;
    bool ran = false;
    const EventId id =
        eq.scheduleAfter(Duration::seconds(1), [&] { ran = true; });
    eq.run();
    EXPECT_TRUE(ran);
    EXPECT_FALSE(eq.cancel(id));
    // A cancelled-then-fired-time id also stays false on re-cancel.
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, RunUntilSetsClockToHorizonWithNoEvents)
{
    EventQueue eq;
    const SimTime horizon = SimTime() + Duration::minutes(42);
    eq.runUntil(horizon);
    EXPECT_EQ(eq.now(), horizon);
    EXPECT_EQ(eq.pending(), 0u);

    // Same when the only events lie beyond the horizon: clock lands
    // exactly on the horizon and the events stay pending.
    EventQueue eq2;
    bool ran = false;
    eq2.scheduleAfter(Duration::hours(2), [&] { ran = true; });
    eq2.runUntil(SimTime() + Duration::hours(1));
    EXPECT_EQ(eq2.now(), SimTime() + Duration::hours(1));
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq2.pending(), 1u);
}

TEST(EventQueue, CancelInsideEventWorks)
{
    EventQueue eq;
    bool second_ran = false;
    EventId second =
        eq.scheduleAfter(Duration::seconds(2), [&] { second_ran = true; });
    eq.scheduleAfter(Duration::seconds(1), [&] { eq.cancel(second); });
    eq.run();
    EXPECT_FALSE(second_ran);
}

TEST(EventQueue, StaleHandleAfterSlotReuseIsRefused)
{
    // Cancel an event, then schedule again so its slab slot is reused.
    // The old handle must not cancel (or otherwise affect) the new
    // occupant: the generation tag distinguishes them.
    EventQueue eq;
    const EventId old_id = eq.scheduleAfter(Duration::seconds(1), [] {});
    ASSERT_TRUE(eq.cancel(old_id));

    bool newer_ran = false;
    const EventId new_id =
        eq.scheduleAfter(Duration::seconds(2), [&] { newer_ran = true; });
    // Slot recycling means the two handles share the low (slot) bits
    // but differ in generation.
    ASSERT_NE(old_id, new_id);

    EXPECT_FALSE(eq.cancel(old_id)); // stale generation -> refused
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_TRUE(newer_ran);
}

TEST(EventQueue, StaleHandleAfterFireAndReuseIsRefused)
{
    // Same as above but the slot is freed by firing, not cancelling.
    EventQueue eq;
    int fired = 0;
    const EventId old_id =
        eq.scheduleAfter(Duration::seconds(1), [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);

    int second_fired = 0;
    eq.scheduleAfter(Duration::seconds(1), [&] { ++second_fired; });
    EXPECT_FALSE(eq.cancel(old_id));
    eq.run();
    EXPECT_EQ(second_fired, 1);
}

TEST(EventQueue, HandlesAreNeverNull)
{
    // EventId 0 is the orchestrator's null sentinel; a real handle
    // must never collide with it, even for the first slot.
    EventQueue eq;
    for (int i = 0; i < 100; ++i) {
        const EventId id = eq.scheduleAfter(Duration::seconds(1), [] {});
        EXPECT_NE(id, 0u);
        eq.cancel(id);
    }
}

/**
 * Reference scheduler: std::multimap keyed by (when, seq) with
 * explicit cancellation by erase. Trivially correct; the arena must
 * match it event for event.
 */
class ReferenceQueue
{
  public:
    SimTime now() const { return now_; }

    std::uint64_t
    scheduleAfter(Duration delay, std::function<void()> cb)
    {
        const std::uint64_t id = next_id_++;
        pending_.emplace(std::make_pair(now_ + delay, id),
                         std::move(cb));
        return id;
    }

    bool
    cancel(std::uint64_t id)
    {
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            if (it->first.second == id) {
                pending_.erase(it);
                return true;
            }
        }
        return false;
    }

    std::size_t pending() const { return pending_.size(); }

    void
    runUntil(SimTime horizon)
    {
        while (!pending_.empty() &&
               pending_.begin()->first.first <= horizon) {
            auto it = pending_.begin();
            now_ = it->first.first;
            auto cb = std::move(it->second);
            pending_.erase(it);
            cb();
        }
        now_ = horizon;
    }

    void
    run()
    {
        while (!pending_.empty())
            runUntil(pending_.begin()->first.first);
    }

  private:
    SimTime now_;
    std::uint64_t next_id_ = 1;
    // (when, insertion seq) -> callback; seq keeps FIFO among ties.
    std::map<std::pair<SimTime, std::uint64_t>, std::function<void()>>
        pending_;
};

TEST(EventQueue, PropertyMatchesReferenceOverRandomOps)
{
    // 10k mixed schedule/cancel/runUntil ops driven by one RNG against
    // both the arena and the multimap reference; the observable
    // execution traces (which event fired, at what virtual time) and
    // every cancel() verdict must agree exactly.
    Rng rng(0xeaa0);
    EventQueue arena;
    ReferenceQueue ref;
    std::vector<std::pair<int, std::int64_t>> arena_trace, ref_trace;
    std::vector<std::pair<EventId, std::uint64_t>> cancellable;
    int tag = 0;

    for (int op = 0; op < 10000; ++op) {
        const std::uint64_t kind = rng.uniformInt(std::uint64_t{10});
        if (kind < 6) { // schedule
            const Duration d = Duration::millis(static_cast<std::int64_t>(
                rng.uniformInt(std::uint64_t{5000})));
            const int t = tag++;
            const EventId a = arena.scheduleAfter(
                d, [&arena_trace, &arena, t] {
                    arena_trace.emplace_back(t, arena.now().ns());
                });
            const std::uint64_t r = ref.scheduleAfter(
                d, [&ref_trace, &ref, t] {
                    ref_trace.emplace_back(t, ref.now().ns());
                });
            if (rng.uniformInt(std::uint64_t{2}) == 0)
                cancellable.emplace_back(a, r);
        } else if (kind < 9) { // cancel a remembered handle
            if (!cancellable.empty()) {
                const std::uint64_t pick = rng.uniformInt(
                    static_cast<std::uint64_t>(cancellable.size()));
                const auto [a, r] = cancellable[pick];
                cancellable.erase(cancellable.begin() +
                                  static_cast<std::ptrdiff_t>(pick));
                EXPECT_EQ(arena.cancel(a), ref.cancel(r));
            }
        } else { // advance the horizon
            const Duration d = Duration::millis(static_cast<std::int64_t>(
                rng.uniformInt(std::uint64_t{2000})));
            arena.runUntil(arena.now() + d);
            ref.runUntil(ref.now() + d);
            EXPECT_EQ(arena.now(), ref.now());
        }
        ASSERT_EQ(arena.pending(), ref.pending()) << "op " << op;
    }
    arena.run();
    ref.run();
    EXPECT_EQ(arena_trace, ref_trace);
    EXPECT_EQ(arena.pending(), 0u);
}

} // namespace
} // namespace eaao::sim
