/**
 * @file
 * Time-travel triage tests: snapshot-forked differential fuzzing.
 *
 * Covers the `[timetravel]` replay metadata (serialize/parse round
 * trip, digest pinning), deterministic suffix generation, the
 * prime-once/fork-many runner path (runScenarioToBarrier,
 * restoreScenarioBarrier, runScenarioForked), the prefix-consistency
 * and fork-determinism oracles, the planted fork-path fault
 * (fault_injection 6), and the suffix-only shrinker mode.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testkit/invariants.hpp"
#include "testkit/runner.hpp"
#include "testkit/scenario.hpp"
#include "testkit/shrink.hpp"

namespace eaao::testkit {
namespace {

/** A prefix with real traffic: generated, so it exercises the DSL. */
Scenario
generatedPrefix(std::uint64_t index)
{
    return generateScenario(11, index);
}

/**
 * The fault-6 bite shape (tests/corpus/mutation-timetravel-min): a
 * 101 rps Poisson stream with 131 ms service against a quota-4
 * account keeps the admission queue saturated, so a dispatch timer
 * is always armed at the window-0 barrier where the image is
 * captured — exactly what the planted re-arm fault needs to bite.
 */
Scenario
biteScenario(std::uint32_t fault)
{
    Scenario sc;
    sc.seed = 7;
    sc.profile = 0;
    sc.host_count = 120;
    sc.fault = fault;
    sc.accounts.push_back({-1, 4});
    sc.services.push_back({0, 0, 1});
    ScenarioStep st;
    st.kind = ScenarioStep::Kind::OpenLoop;
    st.target = 0;
    st.a = 81; // Poisson, 101 rps, 131 ms mean service
    st.b = 10; // 40 s span, no churn
    sc.steps.push_back(st);
    return composeTimeTravel(sc, {}, 0);
}

/** Small oracle arms so the heavier tests stay quick. */
InvariantOptions
quickOpts()
{
    InvariantOptions opts;
    opts.threads = 2;
    opts.shard_arm = 2;
    return opts;
}

TEST(TimeTravel, ComposeSerializeParseRoundTrips)
{
    const Scenario prefix = generatedPrefix(0);
    const std::vector<ScenarioStep> suffix =
        generateSuffixSteps(11, 0, 0, prefix);
    ASSERT_FALSE(suffix.empty());
    const Scenario sc = composeTimeTravel(prefix, suffix, 3);
    EXPECT_TRUE(sc.has_timetravel);
    EXPECT_EQ(sc.tt_barrier, 3u);
    EXPECT_EQ(sc.tt_prefix_steps, prefix.steps.size());
    EXPECT_EQ(sc.steps.size(), prefix.steps.size() + suffix.size());
    EXPECT_EQ(sc.tt_prefix_digest, timeTravelPrefixDigest(sc));

    const std::string text = sc.serialize();
    EXPECT_NE(text.find("[timetravel]"), std::string::npos);
    Scenario parsed;
    std::string error;
    ASSERT_TRUE(Scenario::parse(text, parsed, error)) << error;
    EXPECT_TRUE(parsed.has_timetravel);
    EXPECT_EQ(parsed.tt_barrier, sc.tt_barrier);
    EXPECT_EQ(parsed.tt_prefix_steps, sc.tt_prefix_steps);
    EXPECT_EQ(parsed.tt_prefix_digest, sc.tt_prefix_digest);
    EXPECT_EQ(parsed.serialize(), text);
}

TEST(TimeTravel, ParseRejectsDigestMismatch)
{
    const Scenario sc = biteScenario(0);
    std::string text = sc.serialize();
    const std::size_t pos = text.find("prefix_digest = ");
    ASSERT_NE(pos, std::string::npos);
    // Flip the first digest nibble to a guaranteed-different hex char.
    char &nibble = text[pos + std::string("prefix_digest = ").size()];
    nibble = nibble == '0' ? '1' : '0';

    Scenario parsed;
    std::string error;
    EXPECT_FALSE(Scenario::parse(text, parsed, error));
    EXPECT_NE(error.find("prefix digest mismatch"), std::string::npos)
        << error;
    // The error names the digest line so a `path:line:` report works.
    EXPECT_NE(error.find("line "), std::string::npos) << error;
}

TEST(TimeTravel, ParseRejectsPrefixStepsBeyondScript)
{
    const Scenario sc = biteScenario(0);
    std::string text = sc.serialize();
    const std::size_t pos = text.find("prefix_steps = 1");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, std::string("prefix_steps = 1").size(),
                 "prefix_steps = 9");
    Scenario parsed;
    std::string error;
    EXPECT_FALSE(Scenario::parse(text, parsed, error));
    EXPECT_NE(error.find("prefix_steps"), std::string::npos) << error;
}

TEST(TimeTravel, ParseRejectsIncompleteSection)
{
    const Scenario sc = biteScenario(0);
    std::string text = sc.serialize();
    const std::size_t pos = text.find("prefix_digest = ");
    ASSERT_NE(pos, std::string::npos);
    text.erase(pos, text.find('\n', pos) - pos + 1);
    Scenario parsed;
    std::string error;
    EXPECT_FALSE(Scenario::parse(text, parsed, error));
    EXPECT_NE(error.find("[timetravel] needs"), std::string::npos)
        << error;
}

TEST(TimeTravel, DigestCoversExactlyThePrefix)
{
    const Scenario prefix = generatedPrefix(1);
    const Scenario a = composeTimeTravel(
        prefix, generateSuffixSteps(11, 1, 0, prefix), 2);
    const Scenario b = composeTimeTravel(
        prefix, generateSuffixSteps(11, 1, 1, prefix), 2);
    // Different suffixes, same prefix: same snapshot reference.
    EXPECT_EQ(a.tt_prefix_digest, b.tt_prefix_digest);

    Scenario edited = prefix;
    ASSERT_FALSE(edited.steps.empty());
    edited.steps[0].a ^= 1;
    const Scenario c = composeTimeTravel(
        edited, generateSuffixSteps(11, 1, 0, prefix), 2);
    EXPECT_NE(a.tt_prefix_digest, c.tt_prefix_digest);
}

TEST(TimeTravel, SuffixGenerationIsPureAndForkDivergent)
{
    const Scenario prefix = generatedPrefix(2);
    const std::vector<ScenarioStep> again_a =
        generateSuffixSteps(11, 2, 0, prefix);
    const std::vector<ScenarioStep> again_b =
        generateSuffixSteps(11, 2, 0, prefix);
    ASSERT_EQ(again_a.size(), again_b.size());
    for (std::size_t i = 0; i < again_a.size(); ++i) {
        EXPECT_EQ(again_a[i].kind, again_b[i].kind);
        EXPECT_EQ(again_a[i].target, again_b[i].target);
        EXPECT_EQ(again_a[i].a, again_b[i].a);
        EXPECT_EQ(again_a[i].b, again_b[i].b);
    }

    // Across fork ids the streams diverge (on serialized step text —
    // at least one of the first few forks must differ from fork 0).
    const auto script = [&](std::uint64_t fork) {
        Scenario sc = prefix;
        sc.steps = generateSuffixSteps(11, 2, fork, prefix);
        return sc.serialize();
    };
    const std::string fork0 = script(0);
    bool diverged = false;
    for (std::uint64_t fork = 1; fork < 5 && !diverged; ++fork)
        diverged = script(fork) != fork0;
    EXPECT_TRUE(diverged);
}

TEST(TimeTravel, ForkedRunMatchesStraightComposedRun)
{
    const Scenario prefix = generatedPrefix(3);
    const Scenario sc = composeTimeTravel(
        prefix, generateSuffixSteps(11, 3, 0, prefix), 1);

    BarrierPrime prime;
    std::string error;
    ASSERT_TRUE(runScenarioToBarrier(sc, {}, prime, error)) << error;

    std::string forked;
    ASSERT_TRUE(runScenarioForked(sc, {}, prime, forked, error)) << error;
    EXPECT_EQ(forked, runScenarioSharded(sc));
}

TEST(TimeTravel, PrimeIsReusableAcrossForks)
{
    const Scenario prefix = generatedPrefix(4);
    const Scenario primed_sc = composeTimeTravel(prefix, {}, 1);
    BarrierPrime prime;
    std::string error;
    ASSERT_TRUE(runScenarioToBarrier(primed_sc, {}, prime, error)) << error;

    // Two divergent suffixes branch from the one image; each must
    // match its own straight composed run.
    for (std::uint64_t fork = 0; fork < 2; ++fork) {
        SCOPED_TRACE(fork);
        const Scenario sc = composeTimeTravel(
            prefix, generateSuffixSteps(11, 4, fork, prefix), 1);
        std::string forked;
        ASSERT_TRUE(runScenarioForked(sc, {}, prime, forked, error))
            << error;
        EXPECT_EQ(forked, runScenarioSharded(sc));
    }
}

TEST(TimeTravel, PrefixRestoreConsistentAcrossGroupings)
{
    const Scenario prefix = generatedPrefix(5);
    const Scenario sc = composeTimeTravel(
        prefix, generateSuffixSteps(11, 5, 0, prefix), 2);
    BarrierPrime prime;
    std::string error;
    ASSERT_TRUE(runScenarioToBarrier(sc, {}, prime, error)) << error;

    // The acceptance grouping grid: shards {1, 8} x threads {1, 8}.
    for (const std::uint32_t shards : {1u, 8u}) {
        for (const unsigned threads : {1u, 8u}) {
            SCOPED_TRACE(testing::Message()
                         << "shards=" << shards << " threads=" << threads);
            ShardedRunOptions ro;
            ro.shards = shards;
            ro.threads = threads;
            std::string log;
            ASSERT_TRUE(
                restoreScenarioBarrier(sc, ro, prime, log, error))
                << error;
            EXPECT_EQ(log, prime.prefix_log);
        }
    }
}

TEST(TimeTravel, OraclesHoldOnGeneratedForks)
{
    const Scenario prefix = generatedPrefix(6);
    const InvariantOptions opts = quickOpts();
    const Scenario primed_sc = composeTimeTravel(prefix, {}, 1);
    TimeTravelPrime prime;
    std::string error;
    ASSERT_TRUE(primeTimeTravel(primed_sc, opts, prime, error)) << error;

    for (std::uint64_t fork = 0; fork < 2; ++fork) {
        SCOPED_TRACE(fork);
        const Scenario sc = composeTimeTravel(
            prefix, generateSuffixSteps(11, 6, fork, prefix), 1);
        const std::vector<Violation> violations =
            checkTimeTravelForks(sc, opts, &prime);
        for (const Violation &v : violations)
            ADD_FAILURE() << "[" << v.oracle << "] " << v.detail;
    }
}

TEST(TimeTravel, CatchesInjectedForkFault)
{
    // Fault 6 re-arms admission dispatch timers from the stale base
    // startup estimate — but only on the fork path (appendOps), so
    // the straight composed run is clean and only the fork-vs-
    // straight differential can see it.
    const Scenario sc = biteScenario(6);
    const std::vector<Violation> violations =
        checkTimeTravelForks(sc, quickOpts());
    ASSERT_FALSE(violations.empty());
    EXPECT_EQ(violations[0].oracle, "fork");

    // The same scenario with the fault knob reset holds everywhere.
    EXPECT_TRUE(checkTimeTravelForks(biteScenario(0), quickOpts()).empty());
}

TEST(TimeTravel, SuffixOnlyShrinkPinsPrefix)
{
    // Pad the failing fork with junk suffix steps; the shrinker must
    // strip the suffix down (fault 6 bites even with an empty one)
    // while leaving the prefix — the snapshot reference — untouched,
    // so the cached prime stays valid for every candidate.
    Scenario prefix = biteScenario(6);
    prefix.has_timetravel = false; // recover the raw prefix script
    std::vector<ScenarioStep> suffix;
    for (std::uint32_t i = 0; i < 6; ++i) {
        ScenarioStep st;
        st.kind = i % 2 == 0 ? ScenarioStep::Kind::Advance
                             : ScenarioStep::Kind::Route;
        st.target = 0;
        st.a = 40 + i;
        suffix.push_back(st);
    }
    const Scenario failing = composeTimeTravel(prefix, suffix, 0);

    const InvariantOptions opts = quickOpts();
    TimeTravelPrime prime;
    std::string error;
    ASSERT_TRUE(primeTimeTravel(composeTimeTravel(prefix, {}, 0), opts,
                                prime, error))
        << error;
    const FailurePredicate still_fails =
        [&opts, &prime](const Scenario &candidate) {
            return !checkTimeTravelForks(candidate, opts, &prime).empty();
        };
    ASSERT_TRUE(still_fails(failing));

    const ShrinkResult shrunk = shrink(failing, still_fails);
    EXPECT_TRUE(still_fails(shrunk.scenario));
    // Prefix pinned byte-for-byte; suffix minimized to <= 3 steps.
    ASSERT_EQ(shrunk.scenario.tt_prefix_steps, failing.tt_prefix_steps);
    for (std::uint32_t i = 0; i < failing.tt_prefix_steps; ++i) {
        EXPECT_EQ(shrunk.scenario.steps[i].a, failing.steps[i].a);
        EXPECT_EQ(shrunk.scenario.steps[i].b, failing.steps[i].b);
    }
    EXPECT_LE(shrunk.scenario.steps.size() -
                  shrunk.scenario.tt_prefix_steps,
              3u);
    EXPECT_EQ(shrunk.scenario.tt_prefix_digest, failing.tt_prefix_digest);

    // The minimized repro still round-trips through its replay file
    // (the digest the parse gate recomputes is still the prefix's).
    Scenario parsed;
    ASSERT_TRUE(Scenario::parse(shrunk.scenario.serialize(), parsed, error))
        << error;
}

} // namespace
} // namespace eaao::testkit
